//! Robustness regression tests for the resilient matrix supervisor:
//! worker isolation under injected panics, bounded time-budget
//! overshoot inside the solver hot loop, checkpoint/resume equivalence
//! with an uninterrupted run, and the graceful-degradation ladder.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use holistic_checker::{
    ChaosConfig, Checker, CheckerConfig, MatrixJob, Strategy, Verdict, WORKER_PANIC_PREFIX,
};
use holistic_models::{BvBroadcastModel, NaiveConsensusModel};
use holistic_supervise::{
    reports_equivalent, Checkpoint, FailureKind, Rung, SupervisedJob, Supervisor, SupervisorConfig,
};

/// A scratch checkpoint directory unique to this process and tag,
/// wiped before use so reruns start clean.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("holistic-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Satellite regression: a panic inside a work-stealing DFS worker must
/// degrade that cell to `Unknown("worker panic: ...")` instead of
/// aborting the whole `check_matrix` run. The chaos hook panics at the
/// exact point a buggy guard evaluation would strike (right before a
/// prefix's feasibility is resolved), on every feasibility decision, so
/// every cell of the matrix trips it — and every cell must still come
/// back classified.
#[test]
fn injected_worker_panic_degrades_cell_not_the_matrix() {
    let model = BvBroadcastModel::new();
    let justice = model.justice();
    let specs = model.table2_specs();
    let jobs: Vec<MatrixJob<'_>> = specs
        .iter()
        .map(|(name, spec)| MatrixJob {
            ta: &model.ta,
            spec,
            justice: &justice,
            label: name,
        })
        .collect();
    let checker = Checker::with_config(CheckerConfig {
        chaos: ChaosConfig { panic_every: 1 },
        threads: Some(2),
        ..CheckerConfig::default()
    });
    // The run must complete (no process abort) with one report per job.
    let reports = checker.check_matrix(&jobs, 2);
    assert_eq!(reports.len(), jobs.len(), "one report per cell, in order");
    for ((name, _), report) in specs.iter().zip(reports) {
        let report = report.expect("in fragment");
        match report.verdict() {
            Verdict::Unknown(reason) => assert!(
                reason.contains(WORKER_PANIC_PREFIX),
                "{name}: expected the canonical worker-panic marker, got {reason:?}"
            ),
            other => panic!("{name}: expected Unknown after injected panic, got {other:?}"),
        }
    }
}

/// The uninjected matrix, run through the same per-cell isolation
/// wrapper, must be untouched: chaos off means every bv cell verifies
/// exactly as before.
#[test]
fn isolation_wrapper_is_transparent_without_chaos() {
    let model = BvBroadcastModel::new();
    let justice = model.justice();
    let specs = model.table2_specs();
    let jobs: Vec<MatrixJob<'_>> = specs
        .iter()
        .map(|(name, spec)| MatrixJob {
            ta: &model.ta,
            spec,
            justice: &justice,
            label: name,
        })
        .collect();
    let checker = Checker::with_config(CheckerConfig {
        threads: Some(1),
        strategy: Strategy::Enumerate,
        ..CheckerConfig::default()
    });
    for ((name, _), report) in specs.iter().zip(checker.check_matrix(&jobs, 1)) {
        let report = report.expect("in fragment");
        assert!(
            report.verdict().is_verified(),
            "{name}: bv-broadcast property must verify with chaos off"
        );
    }
}

/// Satellite regression: the wall-clock budget is polled inside the
/// simplex pivot loop (every `DEADLINE_STRIDE` pivots), not just at
/// coarse DFS boundaries — so even on the naive automaton, whose
/// queries blow through any practical schema cap, a run with budget `B`
/// must come back `Unknown` in well under `2 * B`.
#[test]
fn time_budget_overshoot_is_bounded() {
    let model = NaiveConsensusModel::new();
    let justice = model.justice();
    let (name, spec) = &model.table2_specs()[0];
    let budget = Duration::from_millis(400);
    let checker = Checker::with_config(CheckerConfig {
        time_budget: Some(budget),
        threads: Some(1),
        ..CheckerConfig::default()
    });
    let start = Instant::now();
    let report = checker
        .check_ltl(&model.ta, spec, &justice)
        .expect("in fragment");
    let elapsed = start.elapsed();
    assert!(
        matches!(report.verdict(), Verdict::Unknown(_)),
        "{name}: the naive automaton cannot finish within {budget:?}"
    );
    assert!(
        elapsed < budget * 2,
        "{name}: budget {budget:?} overshot to {elapsed:?} (>= 2x)"
    );
}

/// Builds the bv-broadcast Table-2 matrix as supervised jobs.
fn bv_jobs<'a>(
    model: &'a BvBroadcastModel,
    specs: &'a [(&'static str, holistic_ltl::Ltl)],
    justice: &'a holistic_ltl::Justice,
) -> Vec<SupervisedJob<'a>> {
    specs
        .iter()
        .map(|(name, spec)| SupervisedJob {
            id: format!("bv/{name}"),
            property: (*name).to_owned(),
            ta: &model.ta,
            spec,
            justice,
        })
        .collect()
}

/// Deterministic supervisor configuration (sequential cells, sequential
/// DFS) so the interrupted and uninterrupted runs are byte-comparable.
fn deterministic_config() -> SupervisorConfig {
    SupervisorConfig {
        checker: CheckerConfig {
            threads: Some(1),
            strategy: Strategy::Enumerate,
            ..CheckerConfig::default()
        },
        workers: 1,
        ..SupervisorConfig::default()
    }
}

/// Tentpole acceptance: killing a matrix run midway loses no completed
/// cells, and the resumed run is *observably identical* — verdicts,
/// counterexamples, and every `QueryStats` counter except wall time —
/// to a run that was never interrupted.
#[test]
fn checkpoint_resume_matches_uninterrupted_run() {
    let model = BvBroadcastModel::new();
    let justice = model.justice();
    let specs = model.table2_specs();
    let jobs = bv_jobs(&model, &specs, &justice);
    let ids: Vec<String> = jobs.iter().map(|j| j.id.clone()).collect();

    // Reference: one uninterrupted supervised run, no checkpoint.
    let reference = Supervisor::new(deterministic_config())
        .run(&jobs, None)
        .expect("reference run");

    // "Crash" after the first two cells: run a prefix of the job list
    // against a checkpoint manifested for the full matrix, then drop
    // every in-process structure on the floor.
    let dir = scratch_dir("resume-equiv");
    {
        let checkpoint = Checkpoint::create(&dir, "test", 0, &ids).expect("create checkpoint");
        let partial = Supervisor::new(deterministic_config())
            .run(&jobs[..2], Some(&checkpoint))
            .expect("partial run");
        assert_eq!(
            partial.resumed_cells(),
            0,
            "fresh checkpoint resumes nothing"
        );
        assert_eq!(partial.cells.len(), 2);
    }

    // Resume from disk only: the two completed cells must be loaded,
    // the rest verified live, and the whole row must match the
    // uninterrupted reference byte-for-byte (modulo wall time).
    let (checkpoint, manifest) = Checkpoint::open(&dir).expect("reopen checkpoint");
    assert_eq!(manifest.cells, ids, "manifest records the full matrix");
    let resumed = Supervisor::new(deterministic_config())
        .run(&jobs, Some(&checkpoint))
        .expect("resumed run");
    assert_eq!(
        resumed.resumed_cells(),
        2,
        "both completed cells must be skipped on resume"
    );
    assert_eq!(resumed.cells.len(), reference.cells.len());
    for (reference_cell, resumed_cell) in reference.cells.iter().zip(&resumed.cells) {
        let a = &reference_cell.record;
        let b = &resumed_cell.record;
        assert_eq!(a.id, b.id);
        assert_eq!(a.rung, b.rung, "{}: degradation rung must match", a.id);
        assert_eq!(a.failure, b.failure, "{}: failure kind must match", a.id);
        assert!(
            reports_equivalent(&a.report, &b.report),
            "{}: resumed report must be observably identical\n  reference: {:?}\n  resumed: {:?}",
            a.id,
            a.report.verdict(),
            b.report.verdict()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The degradation ladder: a cell whose full-strength attempts are
/// poisoned by injected panics exhausts its retries, is classified
/// `RetryExhausted`, and steps down the ladder (chaos stays off below
/// rung 1) instead of surfacing a bare panic string.
#[test]
fn chaos_poisoned_cell_walks_the_ladder() {
    let model = BvBroadcastModel::new();
    let justice = model.justice();
    let specs = model.table2_specs();
    let jobs = bv_jobs(&model, &specs[..1], &justice);
    let mut config = deterministic_config();
    config.checker.chaos = ChaosConfig { panic_every: 1 };
    config.max_retries = 1;
    config.backoff_base = Duration::from_millis(1);
    let run = Supervisor::new(config)
        .run(&jobs, None)
        .expect("supervised run");
    assert!(
        run.all_classified(),
        "every non-Proved cell carries a failure kind"
    );
    let cell = &run.cells[0].record;
    assert_eq!(
        cell.failure,
        Some(FailureKind::RetryExhausted),
        "transient panics must exhaust retries, not classify as terminal"
    );
    assert_eq!(cell.attempts, 2, "one initial attempt plus one retry");
    assert_ne!(cell.rung, Rung::Full, "the cell must have stepped down");
    if cell.rung == Rung::DepthBounded {
        assert!(
            !matches!(cell.report.verdict(), Verdict::Unknown(_)),
            "a depth-bounded rung is only reported when it reached a definite verdict"
        );
    }
    assert!(
        cell.note.is_some(),
        "the rung that answered must be documented"
    );
}

/// A terminal (non-transient) failure — the wall-clock budget on the
/// naive automaton — must not burn retries, and must fall through the
/// depth-bounded rung (the naive lattice blows the rung-2 schema bound
/// too) to seeded simulation, which cannot refute the property and says
/// so in the note while the verdict stays `Unknown`.
#[test]
fn time_budget_walks_to_simulation_rung() {
    let model = NaiveConsensusModel::new();
    let justice = model.justice();
    let specs = model.table2_specs();
    let jobs: Vec<SupervisedJob<'_>> = specs[..1]
        .iter()
        .map(|(name, spec)| SupervisedJob {
            id: format!("naive/{name}"),
            property: (*name).to_owned(),
            ta: &model.ta,
            spec,
            justice: &justice,
        })
        .collect();
    let mut config = deterministic_config();
    config.checker.time_budget = Some(Duration::from_millis(150));
    config.ladder.depth_budget = Some(Duration::from_millis(500));
    let run = Supervisor::new(config)
        .run(&jobs, None)
        .expect("supervised run");
    let cell = &run.cells[0].record;
    assert_eq!(cell.failure, Some(FailureKind::TimeBudget));
    assert_eq!(cell.attempts, 1, "a terminal failure must not be retried");
    assert_eq!(
        cell.rung,
        Rung::Simulation,
        "the naive lattice exceeds the rung-2 bound, so rung 3 answers"
    );
    assert!(
        matches!(cell.report.verdict(), Verdict::Unknown(_)),
        "simulation never upgrades an Unknown verdict"
    );
    let note = cell.note.as_deref().expect("rung-3 outcome is documented");
    assert!(
        note.contains("seeded adversarial scenarios") || note.contains("falsified"),
        "note must state the simulation outcome, got {note:?}"
    );
}
