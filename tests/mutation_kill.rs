//! The mutation-kill acceptance tests: the verifier must catch at
//! least 90% of the seeded corpora, every kill must be backed by a
//! counterexample that replays to a concrete property violation, and
//! every survivor must carry a triage note.

use holistic_verification::ltl::Justice;
use holistic_verification::mutate::kill::Outcome;
use holistic_verification::mutate::{
    bv_broadcast_corpus, bv_kill_properties, run_kill_matrix, simplified_corpus,
    simplified_kill_properties, smoke_ids, KillConfig,
};

/// The default kill configuration, with as many whole-property workers
/// as the machine offers (the matrices are embarrassingly parallel).
fn test_config() -> KillConfig {
    KillConfig {
        workers: std::thread::available_parallelism().map_or(2, |n| n.get()),
        ..KillConfig::default()
    }
}

#[test]
fn bv_corpus_clears_the_kill_gate() {
    let (model, corpus) = bv_broadcast_corpus();
    let properties = bv_kill_properties(&model);
    let matrix = run_kill_matrix(
        "bv_broadcast",
        &corpus,
        &properties,
        Justice::from_rules,
        &test_config(),
    );

    // The headline acceptance criterion: >= 90% caught, zero vacuous
    // kills (gate() fails on any unconfirmed counterexample). The
    // documented rate for this corpus is exactly 30/33 = 90.9%, with
    // Farkas-core pruning at its default (enabled) — a drop OR a rise
    // means the verifier's discriminating power silently changed.
    matrix.gate(0.9).unwrap_or_else(|e| panic!("{e}"));
    assert!(matrix.unconfirmed_kills().is_empty());
    assert_eq!(
        (matrix.caught_rate() * 1000.0).round() as u64,
        909,
        "bv corpus caught rate drifted from the documented 90.9%"
    );

    // Every kill is concretely confirmed: the killing cells carry the
    // witness parameters and replayed trace of the confirmation.
    for r in &matrix.results {
        if r.outcome == Outcome::Killed {
            assert!(!r.killed_by.is_empty(), "{}: killed by nothing", r.id);
            for cell in r.cells.iter().filter(|c| c.verdict == "violated") {
                assert!(cell.confirmed, "{}/{}: vacuous kill", r.id, cell.property);
                assert!(
                    !cell.witness_params.is_empty() && cell.trace_len > 0,
                    "{}/{}: confirmation carries no witness",
                    r.id,
                    cell.property
                );
            }
        }
        // Survivors must be triaged: either a designed-survivor note or
        // the explicit triage flag — never silence.
        if r.outcome == Outcome::Survived {
            let note = r.note.as_deref().unwrap_or("");
            assert!(
                !note.is_empty() && !note.contains("UNEXPECTED"),
                "{}: untriaged survivor ({note:?})",
                r.id
            );
        }
    }

    // The designed survivors are exactly the documented equivalent
    // mutants — nothing else slips through.
    let survivors: Vec<&str> = matrix
        .results
        .iter()
        .filter(|r| r.outcome == Outcome::Survived)
        .map(|r| r.id.as_str())
        .collect();
    assert_eq!(survivors, ["thr.down.b0_high", "res.ge3t", "dup.r3"]);

    // The CI smoke subset must exist in the corpus and be caught in
    // the full run (killed or statically rejected).
    for id in smoke_ids() {
        let r = matrix
            .results
            .iter()
            .find(|r| r.id == id)
            .unwrap_or_else(|| panic!("smoke id {id} not in corpus"));
        assert!(
            matches!(r.outcome, Outcome::Killed | Outcome::Rejected(_)),
            "smoke mutant {id} was not caught: {:?}",
            r.outcome
        );
    }
}

#[test]
fn simplified_corpus_clears_the_kill_gate() {
    let (model, corpus) = simplified_corpus();
    let properties = simplified_kill_properties(&model);
    let justice = model.justice();
    let matrix = run_kill_matrix(
        "simplified_consensus",
        &corpus,
        &properties,
        |_| justice.clone(),
        &test_config(),
    );
    matrix.gate(0.9).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(
        (matrix.caught_rate() * 1000.0).round() as u64,
        909,
        "simplified corpus caught rate drifted from the documented 90.9%"
    );

    // The paper's §6 experiment is in the corpus and killed by
    // agreement: weakening n > 3t to n > 2t breaks Inv1.
    let weakened = matrix
        .results
        .iter()
        .find(|r| r.id == "res.gt2t")
        .expect("§6 mutant");
    assert_eq!(weakened.outcome, Outcome::Killed);
    assert!(
        weakened.killed_by.iter().any(|p| p.starts_with("Inv1")),
        "res.gt2t killed by {:?}, expected agreement",
        weakened.killed_by
    );
}

/// Farkas-core pruning is a pure search optimization: switching it off
/// must reproduce the exact same kill matrix — same per-mutant
/// outcomes, same killing properties, same caught rate. A divergence
/// here means a learned pattern pruned a schema it had no licence to.
#[test]
fn core_pruning_does_not_change_the_kill_matrix() {
    let (model, corpus) = bv_broadcast_corpus();
    let properties = bv_kill_properties(&model);
    let with_pruning = run_kill_matrix(
        "bv_broadcast",
        &corpus,
        &properties,
        Justice::from_rules,
        &test_config(),
    );
    let without_pruning = run_kill_matrix(
        "bv_broadcast",
        &corpus,
        &properties,
        Justice::from_rules,
        &KillConfig {
            core_pruning: false,
            ..test_config()
        },
    );

    assert_eq!(with_pruning.caught_rate(), without_pruning.caught_rate());
    for (on, off) in with_pruning
        .results
        .iter()
        .zip(without_pruning.results.iter())
    {
        assert_eq!(on.id, off.id);
        assert_eq!(on.outcome, off.outcome, "{}: outcome diverged", on.id);
        assert_eq!(on.killed_by, off.killed_by, "{}: killers diverged", on.id);
    }
}
