//! The adversarial robustness harness, end to end.
//!
//! * the **standard sweep** (`FaultPlan::standard`): every Byzantine
//!   strategy × every fault schedule × three system sizes at the
//!   resilience boundary `f = t = ⌊(n−1)/3⌋` — all safety monitors must
//!   pass on every run (Theorem 1/5, executed);
//! * the **broken-resilience probe**: at `t ≥ n/3` the equivocator
//!   splits the correct processes; the violation is delta-debugged to a
//!   minimal reproducing schedule;
//! * the **checker bridge**: the model checker's §6 counterexample
//!   (Inv1₀ violated under the weakened resilience `n > 2t`) is carried
//!   over to the simulator — the same parameters, driven by the
//!   equivocator, exhibit the same disagreement at the message level,
//!   and the shrunk trace becomes a replayable regression fixture.

use holistic_verification::checker::Checker;
use holistic_verification::models::SimplifiedConsensusModel;
use holistic_verification::sim::{
    monitor, shrink, FaultPlan, FaultScheduleKind, Outcome, Scenario, SimParams, StrategyKind,
};

#[test]
fn standard_sweep_is_safe_within_resilience() {
    let plan = FaultPlan::standard(2026);
    assert_eq!(
        plan.scenarios.len(),
        60,
        "3 sizes × 5 strategies × 4 faults"
    );
    let reports = plan.run();
    let unsafe_runs: Vec<String> = reports
        .iter()
        .filter(|r| !r.is_safe())
        .map(|r| format!("{}: {:?}", r.label, r.violations))
        .collect();
    assert!(unsafe_runs.is_empty(), "{}", unsafe_runs.join("\n"));
    // Sanity against vacuity: the harness must actually drive runs to
    // completion somewhere, inject faults somewhere, and retransmit
    // somewhere.
    assert!(reports.iter().any(|r| r.outcome == Outcome::AllDecided));
    assert!(reports.iter().any(|r| r.dropped > 0));
    assert!(reports.iter().any(|r| r.retransmissions > 0));
}

#[test]
fn misparameterized_run_violates_and_shrinks_to_minimal_trace() {
    // n = 3 with t = 1 violates t < n/3: the deployment the paper's §6
    // experiment warns about. The equivocator finds the disagreement;
    // the shrinker reduces the recorded schedule to a minimal trace.
    let params = SimParams { n: 3, t: 1, f: 1 };
    let shrunk = (0..50)
        .find_map(|seed| {
            let mut scenario = Scenario::new(
                params,
                StrategyKind::Equivocator,
                FaultScheduleKind::Reliable,
                seed,
            );
            scenario.proposals = vec![0, 1, 0];
            scenario.max_deliveries = 5_000;
            holistic_verification::sim::plan::shrink_first_violation(&scenario)
        })
        .expect("t >= n/3 must be observably broken");
    assert_eq!(shrunk.violation.property, "Agreement");
    // ddmin guarantees 1-minimality (removing any one event loses the
    // violation), so "minimal" here means every remaining delivery is
    // load-bearing — a genuine two-round disagreement still needs its
    // quorum traffic, so expect tens of events, not thousands.
    assert!(
        shrunk.minimal.len() < shrunk.original_len,
        "shrinker made no progress: {} -> {}",
        shrunk.original_len,
        shrunk.minimal.len()
    );
    // The minimal schedule is a self-contained regression fixture:
    // replaying it (no adversary, no scheduler, no faults) reproduces
    // the violation.
    let replayed = shrink::replay(params, &[0, 1, 0], &shrunk.minimal);
    let violation = monitor::check_agreement(&replayed).unwrap_err();
    assert_eq!(violation.property, "Agreement");
}

#[test]
fn checker_counterexample_replays_in_the_simulator() {
    // Holistic verification, the paper's pitch: the model checker's
    // abstract counterexample and the simulator's concrete traces talk
    // about the same system. Weakened resilience n > 2t makes the
    // checker produce a §6 agreement counterexample with concrete
    // parameters; the simulator, configured with those very parameters
    // and an equivocating adversary, realises the disagreement as an
    // actual message schedule — which then shrinks to a fixture.
    let model = SimplifiedConsensusModel::with_resilience(2);
    let checker = Checker::new();
    let report = checker
        .check_ltl(&model.ta, &model.inv1(0), &model.justice())
        .expect("model in fragment");
    let ce = report
        .verdict()
        .counterexample()
        .cloned()
        .expect("Inv1_0 must be violated under weakened resilience (the §6 experiment)");
    // The automaton's parameters are (n, t, f) in declaration order.
    let [n, t, f] = ce.params[..] else {
        panic!("expected 3 parameters, got {:?}", ce.params)
    };
    let params = SimParams {
        n: n as usize,
        t: t as usize,
        f: f as usize,
    };
    assert!(3 * params.t >= params.n, "the ce must break t < n/3");

    let shrunk = (0..80)
        .find_map(|seed| {
            let mut scenario = Scenario::new(
                params,
                StrategyKind::Equivocator,
                FaultScheduleKind::Reliable,
                seed,
            );
            // Mixed proposals: disagreement needs both values proposed.
            scenario.proposals = (0..params.n).map(|i| (i % 2) as u8).collect();
            scenario.max_deliveries = 5_000;
            holistic_verification::sim::plan::shrink_first_violation(&scenario)
        })
        .expect("checker counterexample must be realisable as a concrete schedule");
    assert_eq!(shrunk.violation.property, "Agreement");
    let proposals: Vec<u8> = (0..params.n).map(|i| (i % 2) as u8).collect();
    let replayed = shrink::replay(params, &proposals, &shrunk.minimal);
    assert!(monitor::check_agreement(&replayed).is_err());
}
