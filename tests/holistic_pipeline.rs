//! End-to-end integration: the paper's headline results, fast subset.
//!
//! The two full-lattice properties (Inv1 and SRoundTerm on the
//! simplified automaton) live in `slow_verification.rs`.

use holistic_verification::checker::{Checker, Verdict};
use holistic_verification::core::HolisticVerification;
use holistic_verification::models::{BvBroadcastModel, SimplifiedConsensusModel};

#[test]
fn bv_broadcast_all_four_properties_verify() {
    let model = BvBroadcastModel::new();
    let checker = Checker::new();
    let justice = model.justice();
    for (name, spec) in model.table2_specs() {
        let report = checker.check_ltl(&model.ta, &spec, &justice).unwrap();
        assert!(
            report.verdict().is_verified(),
            "{name}: {:?}",
            report.verdict()
        );
        assert!(report.total_schemas() > 0);
    }
}

#[test]
fn simplified_consensus_fast_properties_verify() {
    let model = SimplifiedConsensusModel::new();
    let checker = Checker::new();
    let justice = model.justice();
    for (name, spec) in [
        ("Inv2_0", model.inv2(0)),
        ("Inv2_1", model.inv2(1)),
        ("Dec_0", model.dec(0)),
        ("Dec_1", model.dec(1)),
        ("Good_0", model.good(0)),
        ("Good_1", model.good(1)),
    ] {
        let report = checker.check_ltl(&model.ta, &spec, &justice).unwrap();
        assert!(
            report.verdict().is_verified(),
            "{name}: {:?}",
            report.verdict()
        );
    }
}

#[test]
fn weakened_resilience_yields_validated_counterexample() {
    // §6: a counterexample to Inv1_0 exists once n > 3t is weakened.
    let model = SimplifiedConsensusModel::with_resilience(2);
    let checker = Checker::new();
    let report = checker
        .check_ltl(&model.ta, &model.inv1(0), &model.justice())
        .unwrap();
    let verdict = report.verdict();
    let ce = verdict.counterexample().expect("must find a violation");
    // The counterexample is replay-validated; its parameters break
    // n > 3t but satisfy n > 2t.
    let (n, t) = (ce.params[0], ce.params[1]);
    assert!(n > 2 * t && n <= 3 * t, "params {:?}", ce.params);
    // Both decision locations are visited along the trace.
    let d0 = model.ta.location_by_name("D0").unwrap();
    let d1 = model.ta.location_by_name("D1").unwrap();
    assert!(ce.boundaries.iter().any(|c| c.counters[d0.0] > 0));
    assert!(ce.boundaries.iter().any(|c| c.counters[d1.0] > 0));
}

#[test]
fn inner_phase_report_feeds_theorem6() {
    let pipeline = HolisticVerification::new();
    let inner = pipeline.verify_inner().unwrap();
    assert_eq!(inner.len(), 4);
    let names: Vec<&str> = inner.iter().map(|r| r.name.as_str()).collect();
    assert_eq!(names, ["BV-Just0", "BV-Obl0", "BV-Unif0", "BV-Term"]);
    assert!(inner.iter().all(|r| r.verdict.is_verified()));
}

#[test]
fn bv_justification_for_value_one_also_verifies() {
    // The paper benchmarks v = 0; symmetry says v = 1 holds too — check
    // it rather than assume it.
    let model = BvBroadcastModel::new();
    let checker = Checker::new();
    let justice = model.justice();
    for spec in [
        model.justification(1),
        model.obligation(1),
        model.uniformity(1),
    ] {
        let report = checker.check_ltl(&model.ta, &spec, &justice).unwrap();
        assert!(report.verdict().is_verified());
    }
}

#[test]
fn broken_model_is_caught_not_misverified() {
    // Sanity: a deliberately broken bv-broadcast (delivery after t+1
    // instead of 2t+1) must violate justification-style reasoning
    // downstream. Here: BV-Just still holds (justification is about
    // broadcasts, not thresholds), but agreement-style counting breaks:
    // we check that the checker *finds* the broken-threshold violation
    // of uniformity rather than reporting Verified.
    use holistic_verification::ta::parse_ta;
    let src = r#"
        automaton broken_bv {
            params n, t, f;
            shared b0, b1;
            resilience n > 3t, t >= f, f >= 0;
            processes n - f;
            initial V0, V1;
            locations B0, B1;
            final C0, C1;
            rule r1: V0 -> B0 when true do b0 += 1;
            rule r2: V1 -> B1 when true do b1 += 1;
            // BROKEN: deliver after only t+1-f correct copies.
            rule r3: B0 -> C0 when b0 >= t + 1 - f;
            rule r4: B1 -> C1 when b1 >= t + 1 - f;
            selfloop C0, C1;
        }
    "#;
    let ta = parse_ta(src).unwrap();
    use holistic_verification::ltl::{Justice, Ltl, Prop};
    // "Uniformity-like": if someone delivers 0, eventually nobody is
    // still stuck in B1 with... simpler: termination-style check that
    // everyone delivers — which FAILS for this automaton because a
    // process whose value never reaches t+1-f copies stays in B0/B1.
    let pending = ["V0", "V1", "B0", "B1"]
        .iter()
        .map(|l| ta.location_by_name(l).unwrap())
        .collect::<Vec<_>>();
    let spec = Ltl::eventually(Ltl::state(Prop::all_empty(pending)));
    let checker = Checker::new();
    let report = checker
        .check_ltl(&ta, &spec, &Justice::from_rules(&ta))
        .unwrap();
    match report.verdict() {
        Verdict::Violated(ce) => {
            // Concrete stuck run found and replayed.
            assert!(!ce.params.is_empty());
        }
        other => panic!("broken broadcast must not terminate: {other:?}"),
    }
}
