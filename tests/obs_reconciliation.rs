//! Reconciliation of the observability registry against the checker's
//! own statistics.
//!
//! The metrics registry ([`holistic_verification::obs`]) is fed by
//! side-channel `add()` calls scattered through the checker and the LIA
//! solver; the [`CheckReport`] statistics are threaded through return
//! values. The two accountings must agree **exactly** — a counter that
//! drifts from the report means a code path publishes twice, not at
//! all, or from the wrong merge point.
//!
//! On randomly generated automata (same generator and master-seed
//! convention as `tests/cross_validation.rs`):
//!
//! * with `share_exploration = false` there is no skeleton pass, so
//!   every registry counter equals the summed report fields exactly, at
//!   1, 2 and 3 worker threads;
//! * with sharing on, the skeleton's work is published to the registry
//!   but dropped from reports (except the two core-pruning fields the
//!   checker folds in), so the registry must *dominate* the report and
//!   still match exactly on `cores_learned` /
//!   `schemas_pruned_by_core`.
//!
//! The registry is process-global, so every test serializes on one
//! mutex and resets the registry around each measured run.

use std::sync::Mutex;

use holistic_verification::checker::{CheckReport, Checker, CheckerConfig, Strategy};
use holistic_verification::lia::SolverStats;
use holistic_verification::ltl::{Justice, Ltl, Prop};
use holistic_verification::mutate::generator::random_ta;
use holistic_verification::obs;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Serializes registry access across the tests of this binary.
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Master seed: `HOLISTIC_MASTER_SEED` if set, else 0 (the committed
/// corpus, same convention as `tests/cross_validation.rs`).
fn master_seed() -> u64 {
    match std::env::var("HOLISTIC_MASTER_SEED") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("HOLISTIC_MASTER_SEED must be a u64, got {v:?}")),
        Err(_) => 0,
    }
}

fn checker(share: bool, threads: usize) -> Checker {
    Checker::with_config(CheckerConfig {
        share_exploration: share,
        threads: Some(threads),
        strategy: Strategy::Enumerate,
        ..CheckerConfig::default()
    })
}

/// The thirteen solver counters, in `SolverStats` field order, paired
/// with their registry names.
fn solver_fields(s: &SolverStats) -> [(&'static str, u64); 13] {
    [
        ("lia.checks", s.checks),
        ("lia.branch_nodes", s.branch_nodes),
        ("lia.case_splits", s.case_splits),
        ("lia.pivots", s.pivots),
        ("lia.intern_hits", s.intern_hits),
        ("lia.intern_misses", s.intern_misses),
        ("lia.cores_extracted", s.cores_extracted),
        ("lia.core_members", s.core_members),
        ("lia.core_micros", s.core_micros),
        ("lia.propagations", s.propagations),
        ("lia.propagation_refutations", s.propagation_refutations),
        ("lia.learned_conflicts", s.learned_conflicts),
        ("lia.disjuncts_skipped", s.disjuncts_skipped),
    ]
}

/// Total segments across a report, reconstructed from the per-query
/// average (`avg = segments / schemas` in f64; multiplying back and
/// rounding is exact for the magnitudes these runs produce).
fn report_segments(report: &CheckReport) -> u64 {
    report
        .queries
        .iter()
        .map(|q| (q.stats.avg_segments * q.stats.schemas as f64).round() as u64)
        .sum()
}

/// Runs one property with a fresh, enabled registry and returns the
/// report next to the drained counter totals.
fn measured_run(
    checker: &Checker,
    ta: &holistic_verification::ta::ThresholdAutomaton,
    spec: &Ltl,
    justice: &Justice,
) -> Option<(CheckReport, Vec<(String, u64)>)> {
    obs::reset();
    obs::set_enabled(true);
    let report = checker.check_ltl(ta, spec, justice);
    obs::set_enabled(false);
    obs::flush();
    let snapshot = obs::drain();
    obs::reset();
    report.ok().map(|r| (r, snapshot.counters))
}

fn counter(counters: &[(String, u64)], name: &str) -> u64 {
    counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

/// The two Table-2-shaped questions asked of every random automaton.
fn specs(ta: &holistic_verification::ta::ThresholdAutomaton) -> Vec<Ltl> {
    let target = *ta.final_locations().last().unwrap();
    vec![
        Ltl::always(Ltl::state(Prop::loc_empty(target))),
        Ltl::eventually(Ltl::state(Prop::loc_nonempty(target))),
    ]
}

#[test]
fn registry_equals_reports_without_sharing() {
    let _guard = OBS_LOCK.lock().unwrap();
    let master = master_seed();
    eprintln!("reconciliation (share=off) under master seed {master}");
    let mut cases = 0;
    for i in 0..6u64 {
        let seed = master.wrapping_add(i);
        let mut rng = StdRng::seed_from_u64(seed);
        let ta = random_ta(&mut rng);
        let justice = Justice::from_rules(&ta);
        for spec in specs(&ta) {
            for threads in 1..=3usize {
                let checker = checker(false, threads);
                let Some((report, counters)) = measured_run(&checker, &ta, &spec, &justice) else {
                    continue; // outside the fragment; seed-dependent
                };
                cases += 1;
                let ctx = format!("seed {seed}, threads {threads}, spec {spec:?}");
                assert_eq!(
                    counter(&counters, "checker.schemas"),
                    report.total_schemas() as u64,
                    "{ctx}: schemas"
                );
                assert_eq!(
                    counter(&counters, "checker.segments"),
                    report_segments(&report),
                    "{ctx}: segments"
                );
                assert_eq!(
                    counter(&counters, "checker.cache_hits"),
                    report.total_cache_hits(),
                    "{ctx}: cache hits"
                );
                assert_eq!(
                    counter(&counters, "checker.cache_misses"),
                    report.total_cache_misses(),
                    "{ctx}: cache misses"
                );
                assert_eq!(
                    counter(&counters, "checker.cores_learned"),
                    report.total_cores_learned(),
                    "{ctx}: cores learned"
                );
                assert_eq!(
                    counter(&counters, "checker.schemas_pruned_by_core"),
                    report.total_schemas_pruned_by_core(),
                    "{ctx}: schemas pruned by core"
                );
                for (name, expected) in solver_fields(&report.solver_stats()) {
                    assert_eq!(
                        counter(&counters, name),
                        expected,
                        "{ctx}: {name} must equal the merged report value"
                    );
                }
            }
        }
    }
    assert!(
        cases >= 12,
        "corpus too thin: only {cases} in-fragment runs"
    );
}

#[test]
fn registry_dominates_reports_with_sharing() {
    let _guard = OBS_LOCK.lock().unwrap();
    let master = master_seed();
    eprintln!("reconciliation (share=on) under master seed {master}");
    let mut cases = 0;
    for i in 0..6u64 {
        let seed = master.wrapping_add(i);
        let mut rng = StdRng::seed_from_u64(seed);
        let ta = random_ta(&mut rng);
        let justice = Justice::from_rules(&ta);
        for spec in specs(&ta) {
            // One fresh checker per property: the skeleton pass runs on
            // first contact with the automaton, so every run exercises
            // the registry-dominates case.
            let checker = checker(true, 1);
            let Some((report, counters)) = measured_run(&checker, &ta, &spec, &justice) else {
                continue;
            };
            cases += 1;
            let ctx = format!("seed {seed}, spec {spec:?}");
            // The two fields the checker folds back into the report
            // must still reconcile exactly.
            assert_eq!(
                counter(&counters, "checker.cores_learned"),
                report.total_cores_learned(),
                "{ctx}: cores learned (skeleton folded into report)"
            );
            assert_eq!(
                counter(&counters, "checker.schemas_pruned_by_core"),
                report.total_schemas_pruned_by_core(),
                "{ctx}: schemas pruned by core (skeleton folded into report)"
            );
            // Everything else: the skeleton publishes but is dropped
            // from the report, so registry ≥ report, never less.
            assert!(
                counter(&counters, "checker.schemas") >= report.total_schemas() as u64,
                "{ctx}: registry schemas must dominate the report"
            );
            assert!(
                counter(&counters, "checker.cache_hits") >= report.total_cache_hits(),
                "{ctx}: registry cache hits must dominate the report"
            );
            for (name, expected) in solver_fields(&report.solver_stats()) {
                assert!(
                    counter(&counters, name) >= expected,
                    "{ctx}: registry {name} must dominate the report"
                );
            }
        }
    }
    assert!(cases >= 6, "corpus too thin: only {cases} in-fragment runs");
}
