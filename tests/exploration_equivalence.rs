//! Equivalence of the cross-property exploration cache with the
//! independent per-property DFS.
//!
//! `CheckerConfig::share_exploration = true` (the default) replays and
//! prunes the schedule lattice from recordings made by earlier
//! properties of the same automaton; `false` restores the old fully
//! independent DFS. The two must be **observably identical** — same
//! verdicts (byte-for-byte, including counterexamples), same schema
//! counts, same average schema lengths — on every automaton of the
//! paper's Table 2. Both sides run with `threads = Some(1)` so the
//! exploration order is byte-deterministic.

use holistic_checker::{CheckReport, Checker, CheckerConfig, MatrixJob, Strategy};
use holistic_lia::SolverConfig;
use holistic_ltl::{Justice, Ltl};
use holistic_models::{BvBroadcastModel, NaiveConsensusModel, SimplifiedConsensusModel};
use holistic_ta::ThresholdAutomaton;

/// The workspace-wide slow-test gate (same convention as
/// `tests/slow_verification.rs`): run only under `HOLISTIC_SLOW=1`.
fn skip_slow(name: &str) -> bool {
    if std::env::var("HOLISTIC_SLOW").as_deref() == Ok("1") {
        return false;
    }
    eprintln!("{name}: skipped (slow test); set HOLISTIC_SLOW=1 to run");
    true
}

fn checker(share: bool, max_schemas: usize) -> Checker {
    Checker::with_config(CheckerConfig {
        share_exploration: share,
        threads: Some(1),
        max_schemas,
        strategy: Strategy::Enumerate,
        ..CheckerConfig::default()
    })
}

/// Runs every property through both checkers (one shared cache across
/// the whole sequence — the point of the exercise) and asserts the
/// reports are observably identical.
fn assert_equivalent(
    ta: &ThresholdAutomaton,
    specs: &[(&'static str, Ltl)],
    justice: &Justice,
    max_schemas: usize,
) -> Vec<(CheckReport, CheckReport)> {
    let shared = checker(true, max_schemas);
    let independent = checker(false, max_schemas);
    let mut reports = Vec::new();
    for (name, spec) in specs {
        let with_cache = shared.check_ltl(ta, spec, justice).expect("in fragment");
        let without = independent
            .check_ltl(ta, spec, justice)
            .expect("in fragment");
        assert_eq!(
            format!("{:?}", with_cache.verdict()),
            format!("{:?}", without.verdict()),
            "{name}: verdicts (incl. counterexamples) must be byte-identical"
        );
        assert_eq!(
            with_cache.total_schemas(),
            without.total_schemas(),
            "{name}: schema counts must match"
        );
        assert_eq!(
            with_cache.avg_segments(),
            without.avg_segments(),
            "{name}: average schema length must match"
        );
        assert_eq!(
            with_cache.queries.len(),
            without.queries.len(),
            "{name}: query decomposition must match"
        );
        for (q_cache, q_plain) in with_cache.queries.iter().zip(&without.queries) {
            assert_eq!(
                q_cache.stats.schemas, q_plain.stats.schemas,
                "{name}: per-query schema counts must match"
            );
            assert_eq!(
                q_cache.stats.capped, q_plain.stats.capped,
                "{name}: cap behaviour must match"
            );
        }
        reports.push((with_cache, without));
    }
    reports
}

#[test]
fn bv_broadcast_cached_equals_independent() {
    let model = BvBroadcastModel::new();
    let justice = model.justice();
    let reports = assert_equivalent(&model.ta, &model.table2_specs(), &justice, 100_000);
    // Every property after the first must have touched the cache.
    for ((with_cache, _), (name, _)) in reports.iter().zip(model.table2_specs()).skip(1) {
        assert!(
            with_cache.total_cache_hits() > 0,
            "{name}: expected cache hits after the first property"
        );
    }
}

#[test]
fn simplified_consensus_cached_equals_independent() {
    // Runs Inv1_0 and SRoundTerm both cached and uncached — the
    // workspace's longest test by far.
    if skip_slow("simplified_consensus_cached_equals_independent") {
        return;
    }
    let model = SimplifiedConsensusModel::new();
    let justice = model.justice();
    let reports = assert_equivalent(&model.ta, &model.table2_specs(), &justice, 100_000);
    for ((with_cache, _), (name, _)) in reports.iter().zip(model.table2_specs()).skip(1) {
        assert!(
            with_cache.total_cache_hits() > 0,
            "{name}: expected cache hits after the first property"
        );
    }
}

#[test]
fn naive_capped_cached_equals_independent() {
    // The naive automaton blows through any practical cap (Table 2's
    // ">100 000 schemas, timeout" rows); equivalence must hold for the
    // capped Unknown verdicts too, with the cap firing at the same
    // schema count on both sides.
    let model = NaiveConsensusModel::new();
    let justice = model.justice();
    assert_equivalent(&model.ta, &model.table2_specs(), &justice, 40);
}

#[test]
fn work_stealing_pool_matches_single_thread() {
    // The parallel DFS (work-stealing frontier, donation on idle) must
    // produce the same verdicts and schema counts as the inline
    // single-threaded walk — schema *count* is scheduling-independent
    // because exploration always completes the feasible frontier.
    let model = BvBroadcastModel::new();
    let justice = model.justice();
    for share in [true, false] {
        let pooled = Checker::with_config(CheckerConfig {
            share_exploration: share,
            threads: Some(4),
            ..CheckerConfig::default()
        });
        let inline = Checker::with_config(CheckerConfig {
            share_exploration: share,
            threads: Some(1),
            ..CheckerConfig::default()
        });
        for (name, spec) in model.table2_specs() {
            let par = pooled
                .check_ltl(&model.ta, &spec, &justice)
                .expect("in fragment");
            let seq = inline
                .check_ltl(&model.ta, &spec, &justice)
                .expect("in fragment");
            assert_eq!(
                format!("{:?}", par.verdict()),
                format!("{:?}", seq.verdict()),
                "{name} (share={share}): pooled verdict must match inline"
            );
            assert_eq!(
                par.total_schemas(),
                seq.total_schemas(),
                "{name} (share={share}): pooled schema count must match inline"
            );
            assert!(par.queries.iter().all(|q| q.stats.threads == 4), "{name}");
        }
    }
}

#[test]
fn matrix_scheduler_matches_inline_walk() {
    // The cross-property matrix scheduler (4 workers pulling whole
    // properties off a shared queue, lock-striped exploration cache)
    // must produce the same verdicts, schema counts, and average
    // schema lengths as the inline deterministic walk, in the same
    // order — results are cache-independent, so property-level
    // scheduling can only change wall time and hit counters.
    let bv = BvBroadcastModel::new();
    let bv_justice = bv.justice();
    let sc = SimplifiedConsensusModel::new();
    let sc_justice = sc.justice();
    let bv_specs = bv.table2_specs();
    let sc_specs = sc.table2_specs();
    let mut jobs: Vec<MatrixJob<'_>> = Vec::new();
    let mut names: Vec<&'static str> = Vec::new();
    for (name, spec) in &bv_specs {
        names.push(name);
        jobs.push(MatrixJob {
            ta: &bv.ta,
            spec,
            justice: &bv_justice,
            label: name,
        });
    }
    for (name, spec) in &sc_specs {
        names.push(name);
        jobs.push(MatrixJob {
            ta: &sc.ta,
            spec,
            justice: &sc_justice,
            label: name,
        });
    }
    let concurrent: Vec<CheckReport> = checker(true, 100_000)
        .check_matrix(&jobs, 4)
        .into_iter()
        .map(|r| r.expect("in fragment"))
        .collect();
    let sequential: Vec<CheckReport> = checker(true, 100_000)
        .check_matrix(&jobs, 1)
        .into_iter()
        .map(|r| r.expect("in fragment"))
        .collect();
    assert_eq!(concurrent.len(), jobs.len(), "one report per job, in order");
    for ((name, par), seq) in names.iter().zip(&concurrent).zip(&sequential) {
        assert_eq!(
            format!("{:?}", par.verdict()),
            format!("{:?}", seq.verdict()),
            "{name}: matrix verdict (incl. counterexamples) must match inline"
        );
        assert_eq!(
            par.total_schemas(),
            seq.total_schemas(),
            "{name}: matrix schema count must match inline"
        );
        assert_eq!(
            par.avg_segments(),
            seq.avg_segments(),
            "{name}: matrix average schema length must match inline"
        );
    }
}

#[test]
fn matrix_scheduler_finds_identical_counterexamples() {
    // A violated property through the matrix scheduler must replay the
    // exact counterexample the inline walk finds.
    let model = SimplifiedConsensusModel::with_resilience(2);
    let justice = model.justice();
    let spec = model.inv1(0);
    let jobs = [
        MatrixJob {
            ta: &model.ta,
            spec: &spec,
            justice: &justice,
            label: "Inv1_0",
        },
        MatrixJob {
            ta: &model.ta,
            spec: &spec,
            justice: &justice,
            label: "Inv1_0",
        },
    ];
    let reports: Vec<CheckReport> = checker(true, 100_000)
        .check_matrix(&jobs, 2)
        .into_iter()
        .map(|r| r.expect("in fragment"))
        .collect();
    let inline = checker(true, 100_000)
        .check_ltl(&model.ta, &spec, &justice)
        .expect("in fragment");
    assert!(inline.verdict().is_violated(), "Inv1_0 under n > 2t");
    for par in &reports {
        assert_eq!(
            format!("{:?}", par.verdict()),
            format!("{:?}", inline.verdict()),
            "matrix counterexample must be byte-identical to inline"
        );
    }
}

#[test]
fn violation_counterexamples_are_identical() {
    // Weakened resilience n > 2t: Inv1_0 is violated. The cached and
    // independent explorations must find (and replay) the *same*
    // counterexample.
    let model = SimplifiedConsensusModel::with_resilience(2);
    let justice = model.justice();
    let shared = checker(true, 100_000);
    let independent = checker(false, 100_000);
    let spec = model.inv1(0);
    let with_cache = shared
        .check_ltl(&model.ta, &spec, &justice)
        .expect("in fragment");
    let without = independent
        .check_ltl(&model.ta, &spec, &justice)
        .expect("in fragment");
    assert!(with_cache.verdict().is_violated(), "Inv1_0 under n > 2t");
    assert_eq!(
        format!("{:?}", with_cache.verdict()),
        format!("{:?}", without.verdict()),
        "counterexamples must be byte-identical"
    );
}

/// Runs every property with Farkas-core pruning on and off and asserts
/// the reports are observably identical — pruning is licensed only by
/// UNSAT certificates, so it must never change a verdict, a schema
/// count, or a counterexample, only the SMT work spent getting there.
fn assert_core_pruning_inert(
    ta: &ThresholdAutomaton,
    specs: &[(&'static str, Ltl)],
    justice: &Justice,
) -> u64 {
    let pruning = checker(true, 100_000);
    let plain = Checker::with_config(CheckerConfig {
        share_exploration: true,
        threads: Some(1),
        max_schemas: 100_000,
        strategy: Strategy::Enumerate,
        core_pruning: false,
        ..CheckerConfig::default()
    });
    let mut pruned_total = 0;
    for (name, spec) in specs {
        let with_cores = pruning.check_ltl(ta, spec, justice).expect("in fragment");
        let without = plain.check_ltl(ta, spec, justice).expect("in fragment");
        assert_eq!(
            format!("{:?}", with_cores.verdict()),
            format!("{:?}", without.verdict()),
            "{name}: verdicts (incl. counterexamples) must be byte-identical \
             with core pruning on vs off"
        );
        assert_eq!(
            with_cores.total_schemas(),
            without.total_schemas(),
            "{name}: core pruning must not change the schema count"
        );
        assert_eq!(
            with_cores.avg_segments(),
            without.avg_segments(),
            "{name}: core pruning must not change average schema length"
        );
        assert_eq!(
            without.total_cores_learned(),
            0,
            "{name}: the disabled side must not learn cores"
        );
        pruned_total += with_cores.total_schemas_pruned_by_core();
    }
    pruned_total
}

#[test]
fn core_pruning_is_inert_on_bv_broadcast() {
    let model = BvBroadcastModel::new();
    let justice = model.justice();
    let pruned = assert_core_pruning_inert(&model.ta, &model.table2_specs(), &justice);
    assert!(
        pruned > 0,
        "bv-broadcast must actually exercise core pruning"
    );
}

#[test]
fn core_pruning_is_inert_on_simplified_consensus() {
    if skip_slow("core_pruning_is_inert_on_simplified_consensus") {
        return;
    }
    let model = SimplifiedConsensusModel::new();
    let justice = model.justice();
    let pruned = assert_core_pruning_inert(&model.ta, &model.table2_specs(), &justice);
    assert!(
        pruned > 0,
        "simplified consensus must actually exercise core pruning"
    );
}

#[test]
fn core_pruning_preserves_counterexamples() {
    // Weakened resilience n > 2t: Inv1_0 is violated. The pruned and
    // unpruned explorations must find (and replay) the *same*
    // counterexample — a pattern that swallowed the violating schema
    // would surface here as a verdict flip.
    let model = SimplifiedConsensusModel::with_resilience(2);
    let justice = model.justice();
    let spec = model.inv1(0);
    let pruned = checker(true, 100_000)
        .check_ltl(&model.ta, &spec, &justice)
        .expect("in fragment");
    let plain = Checker::with_config(CheckerConfig {
        threads: Some(1),
        core_pruning: false,
        ..CheckerConfig::default()
    });
    let unpruned = plain
        .check_ltl(&model.ta, &spec, &justice)
        .expect("in fragment");
    assert!(pruned.verdict().is_violated(), "Inv1_0 under n > 2t");
    assert_eq!(
        format!("{:?}", pruned.verdict()),
        format!("{:?}", unpruned.verdict()),
        "counterexamples must be byte-identical with core pruning on vs off"
    );
}

/// Runs every property with the interval-propagation presolve (and the
/// disjunct filtering / pervasive-conflict learning that rides on it)
/// on and off and asserts the reports are observably identical —
/// propagation only short-circuits work whose outcome the simplex
/// would reach anyway, so verdicts, schema counts, and average schema
/// lengths must not move.
fn assert_propagation_inert(
    ta: &ThresholdAutomaton,
    specs: &[(&'static str, Ltl)],
    justice: &Justice,
) {
    let with_propagation = checker(true, 100_000);
    let without_propagation = Checker::with_config(CheckerConfig {
        share_exploration: true,
        threads: Some(1),
        max_schemas: 100_000,
        strategy: Strategy::Enumerate,
        solver: SolverConfig {
            propagation: false,
            ..SolverConfig::default()
        },
        ..CheckerConfig::default()
    });
    for (name, spec) in specs {
        let on = with_propagation
            .check_ltl(ta, spec, justice)
            .expect("in fragment");
        let off = without_propagation
            .check_ltl(ta, spec, justice)
            .expect("in fragment");
        assert_eq!(
            format!("{:?}", on.verdict()),
            format!("{:?}", off.verdict()),
            "{name}: verdicts (incl. counterexamples) must be byte-identical \
             with propagation on vs off"
        );
        assert_eq!(
            on.total_schemas(),
            off.total_schemas(),
            "{name}: propagation must not change the schema count"
        );
        assert_eq!(
            on.avg_segments(),
            off.avg_segments(),
            "{name}: propagation must not change average schema length"
        );
        assert_eq!(
            off.solver_stats().propagations,
            0,
            "{name}: the disabled side must not propagate"
        );
    }
}

#[test]
fn propagation_is_inert_on_bv_broadcast() {
    let model = BvBroadcastModel::new();
    let justice = model.justice();
    assert_propagation_inert(&model.ta, &model.table2_specs(), &justice);
}

#[test]
fn propagation_is_inert_on_simplified_consensus() {
    if skip_slow("propagation_is_inert_on_simplified_consensus") {
        return;
    }
    let model = SimplifiedConsensusModel::new();
    let justice = model.justice();
    assert_propagation_inert(&model.ta, &model.table2_specs(), &justice);
}

#[test]
fn propagation_preserves_counterexamples() {
    // Weakened resilience n > 2t: Inv1_0 is violated. The propagation
    // presolve must not change which counterexample is found — a
    // disjunct wrongly filtered (or a branch wrongly refuted) would
    // surface here as a different or missing witness.
    let model = SimplifiedConsensusModel::with_resilience(2);
    let justice = model.justice();
    let spec = model.inv1(0);
    let on = checker(true, 100_000)
        .check_ltl(&model.ta, &spec, &justice)
        .expect("in fragment");
    let off = Checker::with_config(CheckerConfig {
        threads: Some(1),
        solver: SolverConfig {
            propagation: false,
            ..SolverConfig::default()
        },
        ..CheckerConfig::default()
    });
    let off = off
        .check_ltl(&model.ta, &spec, &justice)
        .expect("in fragment");
    assert!(on.verdict().is_violated(), "Inv1_0 under n > 2t");
    assert_eq!(
        format!("{:?}", on.verdict()),
        format!("{:?}", off.verdict()),
        "counterexamples must be byte-identical with propagation on vs off"
    );
}

#[test]
fn tracing_is_verdict_inert() {
    // Enabling the observability layer must be invisible to the
    // checker: spans and counters are recorded on the side, so verdicts
    // (including counterexamples), schema counts, and average schema
    // lengths must be byte-identical with tracing on and off. Runs the
    // full bv-broadcast block plus a violated property so both verdict
    // polarities are covered.
    struct DisableOnDrop;
    impl Drop for DisableOnDrop {
        fn drop(&mut self) {
            holistic_obs::set_enabled(false);
            holistic_obs::reset();
        }
    }
    let _guard = DisableOnDrop;

    let bv = BvBroadcastModel::new();
    let bv_justice = bv.justice();
    let weakened = SimplifiedConsensusModel::with_resilience(2);
    let weakened_justice = weakened.justice();
    let inv1 = weakened.inv1(0);

    let run = || -> Vec<String> {
        let shared = checker(true, 100_000);
        let mut out = Vec::new();
        for (name, spec) in bv.table2_specs() {
            let report = shared
                .check_ltl(&bv.ta, &spec, &bv_justice)
                .expect("in fragment");
            out.push(format!(
                "{name}: {:?} schemas={} avg={} queries={}",
                report.verdict(),
                report.total_schemas(),
                report.avg_segments(),
                report.queries.len(),
            ));
        }
        let violated = checker(true, 100_000)
            .check_ltl(&weakened.ta, &inv1, &weakened_justice)
            .expect("in fragment");
        assert!(violated.verdict().is_violated(), "Inv1_0 under n > 2t");
        out.push(format!("Inv1_0-weak: {:?}", violated.verdict()));
        out
    };

    holistic_obs::set_enabled(false);
    let silent = run();

    holistic_obs::reset();
    holistic_obs::set_enabled(true);
    let traced = run();
    holistic_obs::flush();
    let snapshot = holistic_obs::drain();

    assert_eq!(
        silent, traced,
        "tracing must be verdict-inert: every report byte-identical"
    );
    assert!(
        !snapshot.spans.is_empty(),
        "the traced run must actually record spans"
    );
    assert!(
        holistic_obs::counter_value("checker.schemas") > 0
            || snapshot
                .counters
                .iter()
                .any(|(n, v)| n == "checker.schemas" && *v > 0),
        "the traced run must actually publish counters"
    );
}

#[test]
fn second_property_hits_the_cache() {
    // The cheap pair from the simplified-consensus block: after Inv2_0
    // has populated the cache, Dec_0's exploration must be answered (at
    // least partially) from it — nonzero hit counters, and a hit rate
    // the stats actually expose.
    let model = SimplifiedConsensusModel::new();
    let justice = model.justice();
    let shared = checker(true, 100_000);
    let specs = model.table2_specs();
    let (_, inv2) = &specs[1]; // Inv2_0
    let (_, dec) = &specs[4]; // Dec_0
    let first = shared
        .check_ltl(&model.ta, inv2, &justice)
        .expect("in fragment");
    assert!(first.verdict().is_verified());
    let second = shared
        .check_ltl(&model.ta, dec, &justice)
        .expect("in fragment");
    assert!(second.verdict().is_verified());
    assert!(
        second.total_cache_hits() > 0,
        "second property of a run must hit the exploration cache \
         (got {} hits / {} misses)",
        second.total_cache_hits(),
        second.total_cache_misses(),
    );
    assert!(shared.cached_explorations() > 0);
}
