//! Differential validation: the symbolic checker against the
//! explicit-state oracle.
//!
//! The fast test runs the smoke scope (bv-broadcast Table-2 cells plus
//! the bv smoke mutant subset) on every `cargo test`; the full sweep —
//! all twelve Table-2 cells, both complete mutant corpora and the
//! survivor adjudication — runs behind `HOLISTIC_SLOW=1` like the other
//! whole-corpus suites.

use holistic_oracle::{run_adjudication, run_diff, DiffConfig};

/// The workspace-wide slow-test gate (see README "Testing").
fn skip_slow(name: &str) -> bool {
    if std::env::var("HOLISTIC_SLOW").as_deref() == Ok("1") {
        return false;
    }
    eprintln!("{name}: skipped (slow test); set HOLISTIC_SLOW=1 to run");
    true
}

#[test]
fn smoke_scope_has_zero_definite_disagreements() {
    let report = run_diff(&DiffConfig::smoke(), |_| {});
    assert!(
        report.passed(),
        "definite-verdict disagreements:\n{}",
        report.render()
    );
    // The smoke scope is not allowed to degenerate into vacuity: the
    // four bv-broadcast Table-2 cells must actually agree (symbolic
    // verified + oracle exhaustive holds), and the killed smoke mutants
    // must produce concretely replayed counterexamples.
    let (agree, _, _, _, _) = report.tally();
    assert!(
        agree >= 4,
        "expected at least the 4 bv cells to agree:\n{}",
        report.render()
    );
    let replays: usize = report.cells.iter().map(|c| c.replays).sum();
    assert!(replays > 0, "no counterexample went through oracle replay");
    let states: usize = report.cells.iter().map(|c| c.states).sum();
    assert!(states > 0, "oracle never explored a state");
}

#[test]
fn full_sweep_and_adjudication_agree() {
    if skip_slow("full_sweep_and_adjudication_agree") {
        return;
    }
    let report = run_diff(&DiffConfig::full(), |_| {});
    assert!(
        report.passed(),
        "definite-verdict disagreements:\n{}",
        report.render()
    );
    // Both documented kill-matrix survivors must be adjudicated, and
    // the adjudication must reproduce the triage claims: a concrete
    // equivalence for thr.down.b0_high, a justice-encoding mask (kill
    // reappears under rule-wise justice) for drop.s3.
    assert_eq!(report.survivors.len(), 2);
    let b0 = &report.survivors[0];
    assert_eq!(b0.id, "thr.down.b0_high");
    assert!(b0.equivalent, "{}", b0.conclusion);
    let s3 = &report.survivors[1];
    assert_eq!(s3.id, "drop.s3");
    assert_eq!(s3.alt_kill_reappears, Some(true), "{}", s3.conclusion);
}

#[test]
fn adjudication_is_runnable_standalone() {
    if skip_slow("adjudication_is_runnable_standalone") {
        return;
    }
    let survivors = run_adjudication(&DiffConfig::full());
    assert_eq!(survivors.len(), 2);
    for s in &survivors {
        assert!(
            s.rows
                .iter()
                .any(|r| r.mutant != "unknown" || r.pristine != "unknown"),
            "{}: adjudication produced no definite verdicts",
            s.id
        );
    }
}
