//! The two full-lattice verification tasks of Table 2: Inv1₀ and
//! SRoundTerm on the simplified consensus automaton. Each explores the
//! complete 10-guard schedule lattice (169 feasible schemas) and takes
//! on the order of a minute — together they are this suite's long pole,
//! and the heart of the reproduction: safety *and liveness* of the
//! consensus, for all parameters.

use holistic_verification::checker::Checker;
use holistic_verification::models::SimplifiedConsensusModel;

#[test]
fn inv1_verifies_for_all_parameters() {
    let model = SimplifiedConsensusModel::new();
    let checker = Checker::new();
    let report = checker
        .check_ltl(&model.ta, &model.inv1(0), &model.justice())
        .unwrap();
    assert!(
        report.verdict().is_verified(),
        "Inv1_0: {:?}",
        report.verdict()
    );
    // The pruned DFS visits far fewer schemas than the factorial
    // lattice; the count is stable for a fixed model.
    assert!(report.total_schemas() >= 100, "{}", report.total_schemas());
}

#[test]
fn sround_term_verifies_for_all_parameters() {
    let model = SimplifiedConsensusModel::new();
    let checker = Checker::new();
    let report = checker
        .check_ltl(&model.ta, &model.sround_term(), &model.justice())
        .unwrap();
    assert!(
        report.verdict().is_verified(),
        "SRoundTerm: {:?}",
        report.verdict()
    );
}
