//! The two full-lattice verification tasks of Table 2: Inv1₀ and
//! SRoundTerm on the simplified consensus automaton. Each explores the
//! complete 10-guard schedule lattice (169 feasible schemas) and takes
//! on the order of a minute — together they are this suite's long pole,
//! and the heart of the reproduction: safety *and liveness* of the
//! consensus, for all parameters.
//!
//! The third test is the *other* half of Table 2's story: the naive
//! (undecomposed) consensus automaton, whose row reads ">100 000
//! schemas, >24h (timeout)". With a wall-clock `time_budget` the
//! checker reproduces that outcome in seconds, gracefully, as
//! `Verdict::Unknown`.

use std::time::{Duration, Instant};

use holistic_verification::checker::{Checker, CheckerConfig, Strategy, Verdict};
use holistic_verification::models::{NaiveConsensusModel, SimplifiedConsensusModel};

/// The workspace-wide slow-test gate: tests behind it run only when
/// `HOLISTIC_SLOW=1` (CI's nightly job sets it; the per-push job and a
/// plain `cargo test` do not — see README "Testing"). Returns `true`
/// when the calling test should return early.
fn skip_slow(name: &str) -> bool {
    if std::env::var("HOLISTIC_SLOW").as_deref() == Ok("1") {
        return false;
    }
    eprintln!("{name}: skipped (slow test); set HOLISTIC_SLOW=1 to run");
    true
}

#[test]
fn inv1_verifies_for_all_parameters() {
    if skip_slow("inv1_verifies_for_all_parameters") {
        return;
    }
    let model = SimplifiedConsensusModel::new();
    let checker = Checker::new();
    let report = checker
        .check_ltl(&model.ta, &model.inv1(0), &model.justice())
        .unwrap();
    assert!(
        report.verdict().is_verified(),
        "Inv1_0: {:?}",
        report.verdict()
    );
    // The pruned DFS visits far fewer schemas than the factorial
    // lattice; the count is stable for a fixed model.
    assert!(report.total_schemas() >= 100, "{}", report.total_schemas());
}

#[test]
fn sround_term_verifies_for_all_parameters() {
    if skip_slow("sround_term_verifies_for_all_parameters") {
        return;
    }
    let model = SimplifiedConsensusModel::new();
    let checker = Checker::new();
    let report = checker
        .check_ltl(&model.ta, &model.sround_term(), &model.justice())
        .unwrap();
    assert!(
        report.verdict().is_verified(),
        "SRoundTerm: {:?}",
        report.verdict()
    );
}

#[test]
fn naive_consensus_times_out_gracefully() {
    let model = NaiveConsensusModel::new();
    let budget = Duration::from_secs(2);
    let checker = Checker::with_config(CheckerConfig {
        strategy: Strategy::Enumerate,
        time_budget: Some(budget),
        ..CheckerConfig::default()
    });
    let start = Instant::now();
    let report = checker
        .check_ltl(&model.ta, &model.inv1(0), &model.justice())
        .expect("naive model is in the checkable fragment");
    let elapsed = start.elapsed();
    match report.verdict() {
        Verdict::Unknown(reason) => {
            assert!(
                reason.contains("time budget"),
                "unexpected reason: {reason}"
            )
        }
        v => panic!("expected Unknown on budget exhaustion, got {v:?}"),
    }
    assert!(
        report.queries.iter().any(|q| q.stats.timed_out),
        "the timeout must be attributed in the stats"
    );
    // "Promptly": the budget plus a little slack for the in-flight,
    // solver-bounded schema — not the paper's >24h.
    assert!(elapsed < Duration::from_secs(60), "took {elapsed:?}");
}
