//! The multi-round machinery end-to-end: build a round automaton, unroll
//! it with round switches (the paper's Appendix A reduction works on the
//! unrolled superround with arbitrary initial distributions — exactly
//! what the checker quantifies over), and verify cross-round properties.

use holistic_verification::checker::Checker;
use holistic_verification::ltl::{Justice, Ltl, Prop};
use holistic_verification::ta::{
    unroll, AtomicGuard, Guard, ParamExpr, TaBuilder, ThresholdAutomaton, VarExpr,
};

/// A one-round echo: everyone broadcasts, waits for n−f echoes, and
/// exits with its value (x-senders to X, y-senders to Y).
fn round() -> ThresholdAutomaton {
    let mut b = TaBuilder::new("echo_round");
    let n = b.param("n");
    let t = b.param("t");
    let f = b.param("f");
    b.resilience_gt(n, t, 3);
    b.resilience_ge(t, f);
    b.resilience_ge_const(f, 0);
    b.size_n_minus_f(n, f);
    let e = b.shared("e");
    let v0 = b.initial_location("V0");
    let v1 = b.initial_location("V1");
    let w0 = b.location("W0");
    let w1 = b.location("W1");
    let x = b.final_location("X");
    let y = b.final_location("Y");
    let mut quorum = ParamExpr::param(n);
    quorum.add_term(f, -1);
    b.rule("send0", v0, w0, Guard::always()).inc(e, 1);
    b.rule("send1", v1, w1, Guard::always()).inc(e, 1);
    b.rule(
        "out0",
        w0,
        x,
        Guard::atom(AtomicGuard::ge(VarExpr::var(e), quorum.clone())),
    );
    b.rule(
        "out1",
        w1,
        y,
        Guard::atom(AtomicGuard::ge(VarExpr::var(e), quorum)),
    );
    b.build().unwrap()
}

#[test]
fn unrolled_superround_preserves_partition() {
    let ta = round();
    let x = ta.location_by_name("X").unwrap();
    let y = ta.location_by_name("Y").unwrap();
    let v0 = ta.location_by_name("V0").unwrap();
    let v1 = ta.location_by_name("V1").unwrap();
    // Value carries over: X -> V0', Y -> V1'.
    let two = unroll(&ta, 2, &[(x, v0), (y, v1)], "echo_superround");
    assert!(two.validate().is_ok());
    assert!(two.is_dag());
    assert_eq!(two.locations.len(), 12);
    assert_eq!(two.variables.len(), 2); // e and e'

    // Cross-round safety: if nobody starts with value 1, nobody ends
    // round 2 in Y' (validity across the round switch).
    let v1_r1 = two.location_by_name("V1").unwrap();
    let y_r2 = two.location_by_name("Y'").unwrap();
    let y_r1 = two.location_by_name("Y").unwrap();
    let spec = Ltl::implies(
        Ltl::always(Ltl::state(Prop::all_empty([v1_r1, y_r1]))),
        Ltl::always(Ltl::state(Prop::loc_empty(y_r2))),
    );
    let checker = Checker::new();
    let report = checker
        .check_ltl(&two, &spec, &Justice::from_rules(&two))
        .unwrap();
    assert!(report.verdict().is_verified(), "{:?}", report.verdict());
}

#[test]
fn unrolled_superround_terminates() {
    let ta = round();
    let x = ta.location_by_name("X").unwrap();
    let y = ta.location_by_name("Y").unwrap();
    let v0 = ta.location_by_name("V0").unwrap();
    let v1 = ta.location_by_name("V1").unwrap();
    let two = unroll(&ta, 2, &[(x, v0), (y, v1)], "echo_superround");

    // Liveness through the round switch: eventually everyone reaches a
    // round-2 final location.
    let finals = two.final_locations();
    let pending: Vec<_> = (0..two.locations.len())
        .map(holistic_verification::ta::LocationId)
        .filter(|l| !finals.contains(l))
        .collect();
    let spec = Ltl::eventually(Ltl::state(Prop::all_empty(pending)));
    let checker = Checker::new();
    let report = checker
        .check_ltl(&two, &spec, &Justice::from_rules(&two))
        .unwrap();
    assert!(report.verdict().is_verified(), "{:?}", report.verdict());
}

#[test]
fn three_round_unrolling_checks_too() {
    let ta = round();
    let x = ta.location_by_name("X").unwrap();
    let y = ta.location_by_name("Y").unwrap();
    let v0 = ta.location_by_name("V0").unwrap();
    let v1 = ta.location_by_name("V1").unwrap();
    let three = unroll(&ta, 3, &[(x, v0), (y, v1)], "echo_three");
    assert_eq!(three.locations.len(), 18);
    // Validity across three rounds.
    let spec = Ltl::implies(
        Ltl::always(Ltl::state(Prop::all_empty([
            three.location_by_name("V1").unwrap(),
            three.location_by_name("Y").unwrap(),
            three.location_by_name("Y'").unwrap(),
        ]))),
        Ltl::always(Ltl::state(Prop::loc_empty(
            three.location_by_name("Y''").unwrap(),
        ))),
    );
    let checker = Checker::new();
    let report = checker
        .check_ltl(&three, &spec, &Justice::from_rules(&three))
        .unwrap();
    assert!(report.verdict().is_verified(), "{:?}", report.verdict());
}
