//! Cross-validation of the symbolic checker against explicit-state
//! exploration on randomly generated threshold automata.
//!
//! For each random DAG automaton we ask two questions both ways:
//!
//! * **safety** — `□(κ[target] = 0)`: the checker's verdict must agree
//!   with exhaustive reachability at several concrete parameter
//!   valuations (checker-Verified ⟹ unreachable everywhere;
//!   concretely-reachable ⟹ checker-Violated);
//! * **liveness** — `♢(κ[target] ≠ 0)` under rule-wise justice: a
//!   violation is exactly a reachable *stuck* configuration with the
//!   target empty, which explicit exploration can decide.
//!
//! This exercises the whole stack — guard analysis, schedule DFS,
//! encoding, LIA solver, replay — against an independent ground truth.
//!
//! # Seed handling
//!
//! Every per-case RNG seed derives from **one master seed** as
//! `master + case_index` (safety cases 0..40, liveness cases 100..130).
//! The default master seed is [`DEFAULT_MASTER_SEED`]; override it with
//! the `HOLISTIC_MASTER_SEED` environment variable to sweep a different
//! corpus:
//!
//! ```sh
//! HOLISTIC_MASTER_SEED=12345 cargo test --test cross_validation
//! ```
//!
//! Every failure message prints the *derived* per-case seed, and the
//! generator ([`holistic_verification::mutate::generator::random_ta`])
//! guarantees stable RNG consumption order, so re-running with the same
//! `HOLISTIC_MASTER_SEED` reproduces the exact failing automaton.

use holistic_verification::checker::{Checker, Verdict};
use holistic_verification::ltl::{Justice, Ltl, Prop};
use holistic_verification::mutate::generator::random_ta;
use holistic_verification::ta::CounterSystem;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The documented default master seed. All committed expectations (the
/// sample exercises both Verified and Violated outcomes) hold for this
/// corpus; sweeping other masters is for bug hunting, not CI.
const DEFAULT_MASTER_SEED: u64 = 0;

/// The master seed: `HOLISTIC_MASTER_SEED` if set, else
/// [`DEFAULT_MASTER_SEED`].
fn master_seed() -> u64 {
    match std::env::var("HOLISTIC_MASTER_SEED") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("HOLISTIC_MASTER_SEED must be a u64, got {v:?}")),
        Err(_) => DEFAULT_MASTER_SEED,
    }
}

/// Derives the per-case seeds for `indices` from the master seed and
/// announces the master so a failing run is reproducible from the log.
fn case_seeds(indices: std::ops::Range<u64>) -> Vec<u64> {
    let master = master_seed();
    eprintln!(
        "cross-validation cases {indices:?} under master seed {master} \
         (override with HOLISTIC_MASTER_SEED)"
    );
    indices.map(|i| master.wrapping_add(i)).collect()
}

/// Concrete parameter valuations satisfying `n > 3f`.
const GRID: [[i64; 2]; 4] = [[2, 0], [3, 0], [4, 1], [5, 1]];

#[test]
fn safety_agrees_with_explicit_reachability() {
    let checker = Checker::new();
    for seed in case_seeds(0..40) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ta = random_ta(&mut rng);
        let target = *ta.final_locations().last().unwrap();
        let spec = Ltl::always(Ltl::state(Prop::loc_empty(target)));
        let verdict = checker
            .check_ltl(&ta, &spec, &Justice::from_rules(&ta))
            .unwrap_or_else(|e| panic!("failing seed {seed}: {e}"))
            .verdict();

        for params in GRID {
            let sys = CounterSystem::new(&ta, &params).unwrap();
            let ex = sys.explore(300_000);
            assert!(ex.complete(), "failing seed {seed}: exploration budget");
            let reachable = ex.find(|c| c.counters[target.0] > 0).is_some();
            match (&verdict, reachable) {
                (Verdict::Verified, true) => panic!(
                    "failing seed {seed}: checker Verified but target reachable at {params:?}"
                ),
                (Verdict::Violated(_), _) | (Verdict::Verified, false) => {}
                (Verdict::Unknown(r), _) => panic!("failing seed {seed}: unexpected Unknown: {r}"),
            }
        }
        // Violations must come with consistent witness parameters.
        if let Verdict::Violated(ce) = &verdict {
            assert!(
                ce.params[0] > 3 * ce.params[1],
                "failing seed {seed}: {:?}",
                ce.params
            );
            let last = ce.final_config();
            assert!(
                ce.boundaries.iter().any(|c| c.counters[target.0] > 0)
                    || last.counters[target.0] > 0,
                "failing seed {seed}: counterexample never visits the target"
            );
        }
    }
}

#[test]
fn liveness_agrees_with_explicit_stuck_analysis() {
    let checker = Checker::new();
    let mut violations = 0;
    let mut verifications = 0;
    for seed in case_seeds(100..130) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ta = random_ta(&mut rng);
        let target = *ta.final_locations().last().unwrap();
        // ♢(κ[target] ≠ 0): needs target non-emptiness to be stable;
        // skip generated automata where the analysis cannot prove it
        // (possible when the "final" location grew an outgoing edge).
        let spec = Ltl::eventually(Ltl::state(Prop::loc_nonempty(target)));
        let justice = Justice::from_rules(&ta);
        let Ok(report) = checker.check_ltl(&ta, &spec, &justice) else {
            continue; // outside fragment for this sample
        };
        let verdict = report.verdict();

        for params in GRID {
            let sys = CounterSystem::new(&ta, &params).unwrap();
            let ex = sys.explore(300_000);
            assert!(ex.complete(), "failing seed {seed}: exploration budget");
            // A fair violation exists iff some reachable stuck config
            // misses the target.
            let concrete_violation = ex
                .configs()
                .iter()
                .any(|c| sys.is_stuck(c) && c.counters[target.0] == 0);
            match (&verdict, concrete_violation) {
                (Verdict::Verified, true) => panic!(
                    "failing seed {seed}: checker claims liveness but {params:?} has a fair \
                     non-reaching run"
                ),
                (Verdict::Violated(_), _) | (Verdict::Verified, false) => {}
                (Verdict::Unknown(r), _) => panic!("failing seed {seed}: unexpected Unknown: {r}"),
            }
        }
        match verdict {
            Verdict::Violated(_) => violations += 1,
            Verdict::Verified => verifications += 1,
            Verdict::Unknown(_) => {}
        }
    }
    // The sample must exercise both outcomes, or the test is vacuous.
    // (Holds for the default master seed; a swept corpus may not.)
    if master_seed() == DEFAULT_MASTER_SEED {
        assert!(violations > 0, "no liveness violations sampled");
        assert!(verifications > 0, "no liveness verifications sampled");
    }
}

#[test]
fn safety_violations_exist_in_the_sample() {
    // Guard against a generator that only produces unreachable targets.
    let checker = Checker::new();
    let mut seen_violation = false;
    let mut seen_verified = false;
    for seed in case_seeds(0..40) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ta = random_ta(&mut rng);
        let target = *ta.final_locations().last().unwrap();
        let spec = Ltl::always(Ltl::state(Prop::loc_empty(target)));
        match checker
            .check_ltl(&ta, &spec, &Justice::from_rules(&ta))
            .unwrap_or_else(|e| panic!("failing seed {seed}: {e}"))
            .verdict()
        {
            Verdict::Violated(_) => seen_violation = true,
            Verdict::Verified => seen_verified = true,
            Verdict::Unknown(_) => {}
        }
    }
    if master_seed() == DEFAULT_MASTER_SEED {
        assert!(seen_violation, "sample never reaches the target");
    }
    // Note: with a spine of rules L0 -> ... -> Lk, most targets are
    // reachable; Verified cases come from unsatisfiable guard chains.
    let _ = seen_verified;
}
