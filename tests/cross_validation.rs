//! Cross-validation of the symbolic checker against explicit-state
//! exploration on randomly generated threshold automata.
//!
//! For each random DAG automaton we ask two questions both ways:
//!
//! * **safety** — `□(κ[target] = 0)`: the checker's verdict must agree
//!   with exhaustive reachability at several concrete parameter
//!   valuations (checker-Verified ⟹ unreachable everywhere;
//!   concretely-reachable ⟹ checker-Violated);
//! * **liveness** — `♢(κ[target] ≠ 0)` under rule-wise justice: a
//!   violation is exactly a reachable *stuck* configuration with the
//!   target empty, which explicit exploration can decide.
//!
//! This exercises the whole stack — guard analysis, schedule DFS,
//! encoding, LIA solver, replay — against an independent ground truth.

use holistic_verification::checker::{Checker, Verdict};
use holistic_verification::ltl::{Justice, Ltl, Prop};
use holistic_verification::ta::{
    AtomicGuard, CounterSystem, Guard, LocationId, ParamExpr, TaBuilder, ThresholdAutomaton,
    VarExpr,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a random increment-only DAG automaton with parameters
/// `n, f`, resilience `n > 3f ∧ f ≥ 0 ∧ n ≥ 2`, and `n − f` processes.
fn random_ta(rng: &mut StdRng) -> ThresholdAutomaton {
    let mut b = TaBuilder::new("random");
    let n = b.param("n");
    let f = b.param("f");
    b.resilience_gt(n, f, 3);
    b.resilience_ge_const(f, 0);
    b.resilience_ge_const(n, 2);
    b.size_n_minus_f(n, f);

    let num_vars = rng.gen_range(1..=2);
    let vars: Vec<_> = (0..num_vars).map(|i| b.shared(format!("x{i}"))).collect();

    let num_locs = rng.gen_range(3..=5);
    let mut locs: Vec<LocationId> = Vec::new();
    for i in 0..num_locs {
        locs.push(if i == 0 || (i == 1 && rng.gen_bool(0.5)) {
            b.initial_location(format!("L{i}"))
        } else if i == num_locs - 1 {
            b.final_location(format!("L{i}"))
        } else {
            b.location(format!("L{i}"))
        });
    }

    let num_rules = rng.gen_range(num_locs - 1..=num_locs + 3);
    for r in 0..num_rules {
        // Forward edges only: guaranteed DAG. Make sure the target is
        // reachable in the graph by always including the spine.
        let (from, to) = if r < num_locs - 1 {
            (r, r + 1)
        } else {
            let from = rng.gen_range(0..num_locs - 1);
            (from, rng.gen_range(from + 1..num_locs))
        };
        let guard = if rng.gen_bool(0.5) {
            Guard::always()
        } else {
            let v = vars[rng.gen_range(0..vars.len())];
            let rhs = match rng.gen_range(0..3) {
                0 => ParamExpr::constant(rng.gen_range(1..=2)),
                1 => {
                    // n - f (everyone sent)
                    let mut e = ParamExpr::param(holistic_verification::ta::ParamId(0));
                    e.add_term(holistic_verification::ta::ParamId(1), -1);
                    e
                }
                _ => {
                    // f + 1
                    let mut e = ParamExpr::param(holistic_verification::ta::ParamId(1));
                    e.add_constant(1);
                    e
                }
            };
            Guard::atom(AtomicGuard::ge(VarExpr::var(v), rhs))
        };
        let handle = b.rule(format!("r{r}"), locs[from], locs[to], guard);
        if rng.gen_bool(0.6) {
            let v = vars[rng.gen_range(0..vars.len())];
            handle.inc(v, 1);
        }
    }
    b.build().expect("generated automaton is valid")
}

/// Concrete parameter valuations satisfying `n > 3f`.
const GRID: [[i64; 2]; 4] = [[2, 0], [3, 0], [4, 1], [5, 1]];

#[test]
fn safety_agrees_with_explicit_reachability() {
    let checker = Checker::new();
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let ta = random_ta(&mut rng);
        let target = *ta.final_locations().last().unwrap();
        let spec = Ltl::always(Ltl::state(Prop::loc_empty(target)));
        let verdict = checker
            .check_ltl(&ta, &spec, &Justice::from_rules(&ta))
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"))
            .verdict();

        for params in GRID {
            let sys = CounterSystem::new(&ta, &params).unwrap();
            let ex = sys.explore(300_000);
            assert!(ex.complete(), "seed {seed}: exploration budget");
            let reachable = ex.find(|c| c.counters[target.0] > 0).is_some();
            match (&verdict, reachable) {
                (Verdict::Verified, true) => {
                    panic!("seed {seed}: checker Verified but target reachable at {params:?}")
                }
                (Verdict::Violated(_), _) | (Verdict::Verified, false) => {}
                (Verdict::Unknown(r), _) => panic!("seed {seed}: unexpected Unknown: {r}"),
            }
        }
        // Violations must come with consistent witness parameters.
        if let Verdict::Violated(ce) = &verdict {
            assert!(
                ce.params[0] > 3 * ce.params[1],
                "seed {seed}: {:?}",
                ce.params
            );
            let last = ce.final_config();
            assert!(
                ce.boundaries.iter().any(|c| c.counters[target.0] > 0)
                    || last.counters[target.0] > 0,
                "seed {seed}: counterexample never visits the target"
            );
        }
    }
}

#[test]
fn liveness_agrees_with_explicit_stuck_analysis() {
    let checker = Checker::new();
    let mut violations = 0;
    let mut verifications = 0;
    for seed in 100..130u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let ta = random_ta(&mut rng);
        let target = *ta.final_locations().last().unwrap();
        // ♢(κ[target] ≠ 0): needs target non-emptiness to be stable;
        // skip generated automata where the analysis cannot prove it
        // (possible when the "final" location grew an outgoing edge).
        let spec = Ltl::eventually(Ltl::state(Prop::loc_nonempty(target)));
        let justice = Justice::from_rules(&ta);
        let Ok(report) = checker.check_ltl(&ta, &spec, &justice) else {
            continue; // outside fragment for this sample
        };
        let verdict = report.verdict();

        for params in GRID {
            let sys = CounterSystem::new(&ta, &params).unwrap();
            let ex = sys.explore(300_000);
            assert!(ex.complete());
            // A fair violation exists iff some reachable stuck config
            // misses the target.
            let concrete_violation = ex
                .configs()
                .iter()
                .any(|c| sys.is_stuck(c) && c.counters[target.0] == 0);
            match (&verdict, concrete_violation) {
                (Verdict::Verified, true) => panic!(
                    "seed {seed}: checker claims liveness but {params:?} has a fair \
                     non-reaching run"
                ),
                (Verdict::Violated(_), _) | (Verdict::Verified, false) => {}
                (Verdict::Unknown(r), _) => panic!("seed {seed}: unexpected Unknown: {r}"),
            }
        }
        match verdict {
            Verdict::Violated(_) => violations += 1,
            Verdict::Verified => verifications += 1,
            Verdict::Unknown(_) => {}
        }
    }
    // The sample must exercise both outcomes, or the test is vacuous.
    assert!(violations > 0, "no liveness violations sampled");
    assert!(verifications > 0, "no liveness verifications sampled");
}

#[test]
fn safety_violations_exist_in_the_sample() {
    // Guard against a generator that only produces unreachable targets.
    let checker = Checker::new();
    let mut seen_violation = false;
    let mut seen_verified = false;
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let ta = random_ta(&mut rng);
        let target = *ta.final_locations().last().unwrap();
        let spec = Ltl::always(Ltl::state(Prop::loc_empty(target)));
        match checker
            .check_ltl(&ta, &spec, &Justice::from_rules(&ta))
            .unwrap()
            .verdict()
        {
            Verdict::Violated(_) => seen_violation = true,
            Verdict::Verified => seen_verified = true,
            Verdict::Unknown(_) => {}
        }
    }
    assert!(seen_violation, "sample never reaches the target");
    // Note: with a spine of rules L0 -> ... -> Lk, most targets are
    // reachable; Verified cases come from unsatisfiable guard chains.
    let _ = seen_verified;
}
