//! The two schema-generation strategies must agree: the enumerative
//! schedule DFS (per-schedule queries, Table 2's schema counts) and the
//! monolithic symbolic-context query (Para²-style acceleration).

use holistic_verification::checker::{Checker, CheckerConfig, Strategy, Verdict};
use holistic_verification::models::{BvBroadcastModel, ReliableBroadcastModel};

fn checkers() -> (Checker, Checker) {
    (
        Checker::with_config(CheckerConfig {
            strategy: Strategy::Enumerate,
            ..CheckerConfig::default()
        }),
        Checker::with_config(CheckerConfig {
            strategy: Strategy::Monolithic,
            ..CheckerConfig::default()
        }),
    )
}

fn agree(v1: &Verdict, v2: &Verdict) -> bool {
    matches!(
        (v1, v2),
        (Verdict::Verified, Verdict::Verified) | (Verdict::Violated(_), Verdict::Violated(_))
    )
}

#[test]
fn strategies_agree_on_reliable_broadcast_safety() {
    let m = ReliableBroadcastModel::new();
    let (enumerate, monolithic) = checkers();
    let justice = m.justice();
    let spec = m.unforgeability();
    let r1 = enumerate.check_ltl(&m.ta, &spec, &justice).unwrap();
    let r2 = monolithic.check_ltl(&m.ta, &spec, &justice).unwrap();
    assert!(
        agree(&r1.verdict(), &r2.verdict()),
        "enumerate {:?} vs monolithic {:?}",
        r1.verdict(),
        r2.verdict()
    );
    assert!(r1.verdict().is_verified());
    // The monolithic strategy reports a single schema.
    assert_eq!(r2.total_schemas(), 1);
}

#[test]
fn strategies_agree_on_bv_justification() {
    let m = BvBroadcastModel::new();
    let (enumerate, monolithic) = checkers();
    let justice = m.justice();
    for v in [0u8, 1] {
        let spec = m.justification(v);
        let r1 = enumerate.check_ltl(&m.ta, &spec, &justice).unwrap();
        let r2 = monolithic.check_ltl(&m.ta, &spec, &justice).unwrap();
        assert!(r1.verdict().is_verified());
        assert!(
            agree(&r1.verdict(), &r2.verdict()),
            "v={v}: enumerate {:?} vs monolithic {:?}",
            r1.verdict(),
            r2.verdict()
        );
    }
}

#[test]
fn strategies_agree_on_a_violation() {
    // A deliberately false property: the bv-broadcast *can* deliver 1
    // when someone proposes it, so □(κ[C1]=0) with both inputs allowed
    // is violated.
    let m = BvBroadcastModel::new();
    let c1 = m.ta.location_by_name("C1").unwrap();
    use holistic_verification::ltl::{Ltl, Prop};
    let spec = Ltl::always(Ltl::state(Prop::loc_empty(c1)));
    let (enumerate, monolithic) = checkers();
    let justice = m.justice();
    let r1 = enumerate.check_ltl(&m.ta, &spec, &justice).unwrap();
    let r2 = monolithic.check_ltl(&m.ta, &spec, &justice).unwrap();
    for (name, r) in [("enumerate", &r1), ("monolithic", &r2)] {
        let v = r.verdict();
        let ce = v
            .counterexample()
            .unwrap_or_else(|| panic!("{name} must violate"));
        // Both counterexamples reach C1 (the replay validated them).
        assert!(
            ce.boundaries.iter().any(|c| c.counters[c1.0] > 0),
            "{name}: counterexample must visit C1"
        );
    }
}
