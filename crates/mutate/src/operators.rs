//! Semantic mutation operators over threshold automata.
//!
//! Every operator clones the subject automaton through the surgery
//! APIs of `holistic-ta` and yields [`Mutant`]s — named, described
//! variants with exactly one seeded deviation. Operators do **not**
//! validate their output: some mutations (fall guards, self-loops with
//! updates) are *supposed* to be caught by static validation and guard
//! analysis rather than by a counterexample, and the kill matrix
//! classifies those separately as `rejected`.

use holistic_ta::{
    AtomicGuard, Guard, LocationId, ParamCmp, ParamConstraint, RuleId, ThresholdAutomaton, VarId,
};

/// One mutant: an automaton with a single seeded semantic deviation.
#[derive(Clone, Debug)]
pub struct Mutant {
    /// Stable identifier, e.g. `drop.r3` or `thr.down.b0_high`.
    pub id: String,
    /// Operator family, e.g. `rule-drop`.
    pub operator: &'static str,
    /// Human description of the seeded deviation.
    pub description: String,
    /// Triage note for mutants *designed* to survive (equivalent
    /// mutants); `None` for mutants the checker is expected to catch.
    pub note: Option<&'static str>,
    /// The mutated automaton.
    pub ta: ThresholdAutomaton,
}

impl Mutant {
    fn new(
        base: &ThresholdAutomaton,
        id: String,
        operator: &'static str,
        description: String,
        ta: ThresholdAutomaton,
    ) -> Mutant {
        let ta = ta.renamed(format!("{}~{id}", base.name));
        Mutant {
            id,
            operator,
            description,
            note: None,
            ta,
        }
    }

    /// Attaches a triage note marking this as a designed survivor.
    pub fn expect_survivor(mut self, note: &'static str) -> Mutant {
        self.note = Some(note);
        self
    }
}

fn rule_id(ta: &ThresholdAutomaton, name: &str) -> RuleId {
    ta.rule_by_name(name)
        .unwrap_or_else(|| panic!("rule {name} exists in {}", ta.name))
}

/// Rule drop: removes the named rule outright (a forgotten protocol
/// transition). One mutant per name.
pub fn drop_rules(ta: &ThresholdAutomaton, names: &[&str]) -> Vec<Mutant> {
    names
        .iter()
        .map(|name| {
            let r = rule_id(ta, name);
            let rule = &ta.rules[r.0];
            Mutant::new(
                ta,
                format!("drop.{name}"),
                "rule-drop",
                format!(
                    "rule {name} ({} -> {}) removed",
                    ta.location_name(rule.from),
                    ta.location_name(rule.to)
                ),
                ta.with_rule_removed(r),
            )
        })
        .collect()
}

/// Rule duplication: appends an exact copy of the rule. In counter
/// semantics a duplicate rule is inert, so this is the canonical
/// *equivalent mutant* — it calibrates the survivor accounting.
pub fn duplicate_rule(ta: &ThresholdAutomaton, name: &str) -> Mutant {
    let r = rule_id(ta, name);
    Mutant::new(
        ta,
        format!("dup.{name}"),
        "rule-duplicate",
        format!("rule {name} duplicated verbatim"),
        ta.with_rule_duplicated(r, format!("{name}'")),
    )
}

/// Threshold off-by-one: shifts the constant of one *unique* guard by
/// `delta` in **every** rule using that guard (the "threshold macro
/// defined wrong" bug, e.g. `2t+1-f` -> `2t-f`).
pub fn shift_threshold(
    ta: &ThresholdAutomaton,
    guard: &AtomicGuard,
    delta: i64,
    id: String,
) -> Mutant {
    let mut mutant = ta.clone();
    for rule in &mut mutant.rules {
        if rule.guard.atoms().iter().any(|a| a == guard) {
            let atoms: Vec<AtomicGuard> = rule
                .guard
                .atoms()
                .iter()
                .map(|a| {
                    if a == guard {
                        let mut shifted = a.clone();
                        shifted.rhs.add_constant(delta);
                        shifted
                    } else {
                        a.clone()
                    }
                })
                .collect();
            rule.guard = Guard::all(atoms);
        }
    }
    let dir = if delta < 0 { "lowered" } else { "raised" };
    Mutant::new(
        ta,
        id,
        "threshold-off-by-one",
        format!(
            "threshold {} >= {} {dir} by {}",
            guard.lhs.display(&ta.variables),
            guard.rhs.display(&ta.params),
            delta.abs()
        ),
        mutant,
    )
}

/// Guard direction flip: turns the rule's rise guards (`>=`) into fall
/// guards (`<`). The result leaves the increment-only rise-guard
/// fragment, which the checker's guard analysis must refuse — a
/// `rejected` outcome, not a counterexample.
pub fn flip_guard(ta: &ThresholdAutomaton, name: &str) -> Mutant {
    let r = rule_id(ta, name);
    let atoms: Vec<AtomicGuard> = ta.rules[r.0]
        .guard
        .atoms()
        .iter()
        .map(|a| AtomicGuard::lt(a.lhs.clone(), a.rhs.clone()))
        .collect();
    assert!(!atoms.is_empty(), "flip target {name} must be guarded");
    Mutant::new(
        ta,
        format!("flip.{name}"),
        "guard-direction-flip",
        format!("rule {name}: every >= guard flipped to <"),
        ta.with_guard(r, Guard::all(atoms)),
    )
}

/// Resilience weakening: replaces a strict `lhs > rhs` resilience
/// constraint with `lhs >= rhs` (admitting the boundary, e.g.
/// `n > 3t` -> `n >= 3t`).
pub fn weaken_resilience_gt_to_ge(ta: &ThresholdAutomaton, index: usize, id: String) -> Mutant {
    let c = &ta.resilience[index];
    assert_eq!(c.cmp, ParamCmp::Gt, "weakening targets a strict bound");
    let mut resilience = ta.resilience.clone();
    resilience[index] = ParamConstraint::new(c.lhs.clone(), ParamCmp::Ge, c.rhs.clone());
    Mutant::new(
        ta,
        id,
        "resilience-weakening",
        format!(
            "resilience {} > {} weakened to >=",
            c.lhs.display(&ta.params),
            c.rhs.display(&ta.params)
        ),
        ta.with_resilience(resilience),
    )
}

/// Resilience weakening by deletion: drops one constraint entirely
/// (e.g. losing `t >= f` admits runs with more Byzantine processes
/// than the tolerated bound).
pub fn drop_resilience(ta: &ThresholdAutomaton, index: usize, id: String) -> Mutant {
    let c = &ta.resilience[index];
    let mut resilience = ta.resilience.clone();
    resilience.remove(index);
    Mutant::new(
        ta,
        id,
        "resilience-weakening",
        format!(
            "resilience constraint {} {:?} {} dropped",
            c.lhs.display(&ta.params),
            c.cmp,
            c.rhs.display(&ta.params)
        ),
        ta.with_resilience(resilience),
    )
}

/// Update tamper: replaces the rule's update vector (dropped, redirected
/// to another shared variable, or rescaled — the "counts the wrong
/// thing" family of bugs).
pub fn tamper_update(
    ta: &ThresholdAutomaton,
    name: &str,
    update: Vec<(VarId, u64)>,
    id: String,
    what: &str,
) -> Mutant {
    let r = rule_id(ta, name);
    Mutant::new(
        ta,
        id,
        "update-tamper",
        format!("rule {name}: update {what}"),
        ta.with_update(r, update),
    )
}

/// Rule retarget: the transition fires under the right guard but lands
/// in the wrong location (the "deliver the wrong value" family of
/// bugs).
pub fn retarget_rule(ta: &ThresholdAutomaton, name: &str, to: LocationId) -> Mutant {
    let r = rule_id(ta, name);
    Mutant::new(
        ta,
        format!("retgt.{name}"),
        "rule-retarget",
        format!(
            "rule {name} retargeted: {} -> {} instead of {}",
            ta.location_name(ta.rules[r.0].from),
            ta.location_name(to),
            ta.location_name(ta.rules[r.0].to)
        ),
        ta.with_target(r, to),
    )
}

/// Self-loop injection with an increment: adds `loc -> loc` with a
/// non-empty update, leaving the increment-only terminating class.
/// Static validation must reject it (`SelfLoopWithUpdate`).
pub fn inject_updating_self_loop(ta: &ThresholdAutomaton, loc: LocationId, var: VarId) -> Mutant {
    let name = ta.location_name(loc).to_owned();
    Mutant::new(
        ta,
        format!("loop.{name}"),
        "self-loop-injection",
        format!("self-loop on {name} incrementing {}", ta.variables[var.0]),
        ta.with_self_loop(loc, format!("loop_{name}"), Guard::always(), vec![(var, 1)]),
    )
}

/// The unique guard of `ta` whose left-hand side is exactly variable
/// `var` and whose right-hand side has coefficient `coeff` on parameter
/// index `param` — the lookup the corpora use to address "the `2t+1-f`
/// guard on `b0`" without hard-coding guard indices.
pub fn find_guard(
    ta: &ThresholdAutomaton,
    var: &str,
    param: &str,
    coeff: i64,
) -> Option<AtomicGuard> {
    let v = ta.variable_by_name(var)?;
    let p = ta.param_by_name(param)?;
    ta.unique_guards()
        .into_iter()
        .find(|g| g.lhs.coeff(v) == 1 && g.lhs.iter().count() == 1 && g.rhs.coeff(p) == coeff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistic_models::BvBroadcastModel;
    use holistic_ta::{GuardCmp, ValidationError};

    #[test]
    fn drop_and_duplicate_change_rule_counts() {
        let ta = BvBroadcastModel::new().ta;
        let drops = drop_rules(&ta, &["r1", "r3"]);
        assert_eq!(drops.len(), 2);
        for m in &drops {
            assert_eq!(m.ta.rules.len(), ta.rules.len() - 1);
            assert!(m.ta.validate().is_ok(), "{}: drop mutants stay valid", m.id);
        }
        let dup = duplicate_rule(&ta, "r3");
        assert_eq!(dup.ta.rules.len(), ta.rules.len() + 1);
        assert!(dup.ta.validate().is_ok());
    }

    #[test]
    fn threshold_shift_applies_to_every_occurrence() {
        let ta = BvBroadcastModel::new().ta;
        // b0 >= 2t+1-f appears in r3, r8 and r12.
        let high = find_guard(&ta, "b0", "t", 2).expect("high guard on b0");
        let m = shift_threshold(&ta, &high, -1, "thr.down.b0_high".into());
        let mut shifted = 0;
        for rule in &m.ta.rules {
            for a in rule.guard.atoms() {
                if a.lhs == high.lhs && a.rhs.coeff(ta.param_by_name("t").unwrap()) == 2 {
                    assert_eq!(a.rhs.constant_term(), high.rhs.constant_term() - 1);
                    shifted += 1;
                }
            }
        }
        assert_eq!(shifted, 3, "r3, r8, r12 all use the high b0 guard");
        assert!(m.ta.validate().is_ok());
    }

    #[test]
    fn flip_produces_fall_guards() {
        let ta = BvBroadcastModel::new().ta;
        let m = flip_guard(&ta, "r3");
        let r = m.ta.rule_by_name("r3").unwrap();
        assert!(m.ta.rules[r.0]
            .guard
            .atoms()
            .iter()
            .all(|a| a.cmp == GuardCmp::Lt));
    }

    #[test]
    fn injected_updating_self_loop_is_invalid() {
        let ta = BvBroadcastModel::new().ta;
        let loc = ta.location_by_name("B0").unwrap();
        let var = ta.variable_by_name("b0").unwrap();
        let m = inject_updating_self_loop(&ta, loc, var);
        assert!(matches!(
            m.ta.validate(),
            Err(ValidationError::SelfLoopWithUpdate(_))
        ));
    }

    #[test]
    fn resilience_weakening_edits_the_right_constraint() {
        let ta = BvBroadcastModel::new().ta;
        // Constraint 0 is n > 3t.
        let m = weaken_resilience_gt_to_ge(&ta, 0, "res.ge3t".into());
        assert_eq!(m.ta.resilience[0].cmp, ParamCmp::Ge);
        // n = 3t is now admissible.
        assert!(m.ta.resilience.iter().all(|c| c.eval(&[3, 1, 1])));
        assert!(!ta.resilience.iter().all(|c| c.eval(&[3, 1, 1])));
        let d = drop_resilience(&ta, 1, "res.drop_tf".into());
        assert_eq!(d.ta.resilience.len(), ta.resilience.len() - 1);
        // f > t is now admissible.
        assert!(d.ta.resilience.iter().all(|c| c.eval(&[7, 1, 2])));
    }
}
