//! The survivor adjudication hook.
//!
//! The kill matrices leave two *documented verifier blind spots* at
//! 90.9% caught: `thr.down.b0_high` (bv-broadcast) and `drop.s3`
//! (simplified consensus). Their triage notes claim, respectively, a
//! genuine semantic equivalence in the abstraction and a liveness gap
//! masked by the requirement-based Appendix-F justice. This module
//! packages each survivor with everything an *independent* oracle needs
//! to test those claims concretely: the mutant, the pristine automaton,
//! the kill-property set, the justice used by the kill matrix — and,
//! where the note blames the justice encoding, an alternative justice
//! plus the property the blind spot hides (`SRoundTerm`), so the
//! adjudicator can show the kill reappear when the mask is removed.
//!
//! `holistic-oracle`'s differential harness consumes these cases; the
//! written verdicts live in EXPERIMENTS.md ("Differential validation").

use holistic_ltl::{Justice, Ltl};
use holistic_ta::ThresholdAutomaton;

use crate::corpus::{
    bv_broadcast_corpus, bv_kill_properties, simplified_corpus, simplified_kill_properties,
};
use crate::operators::Mutant;

/// A justice/property combination under which a survivor's claimed
/// blind spot should become visible.
pub struct AltScenario {
    /// What distinguishes this scenario (e.g. `"rule-wise justice"`).
    pub label: &'static str,
    /// Properties to decide under the alternative justice.
    pub properties: Vec<(String, Ltl)>,
    /// Justice for the mutant.
    pub mutant_justice: Justice,
    /// Justice for the pristine automaton.
    pub pristine_justice: Justice,
}

/// One kill-matrix survivor packaged for independent adjudication.
pub struct SurvivorCase {
    /// Corpus name (`bv_broadcast` / `simplified_consensus`).
    pub automaton: &'static str,
    /// The surviving mutant (its `note` carries the equivalence claim).
    pub mutant: Mutant,
    /// The pristine automaton it mutated.
    pub pristine: ThresholdAutomaton,
    /// The kill-property set the matrix ran (the survivor survived all
    /// of these).
    pub properties: Vec<(String, Ltl)>,
    /// Justice used by the kill matrix for the mutant.
    pub mutant_justice: Justice,
    /// Justice used by the kill matrix for the pristine automaton.
    pub pristine_justice: Justice,
    /// The scenario that should expose the blind spot, when the triage
    /// note claims one (rather than a plain equivalence).
    pub alt: Option<AltScenario>,
}

/// The two 90.9% blind-spot survivors, ready for adjudication.
///
/// # Panics
///
/// Panics if the corpora stop containing the documented survivors —
/// that would silently invalidate EXPERIMENTS.md, so it should be loud.
pub fn survivor_cases() -> Vec<SurvivorCase> {
    let mut cases = Vec::new();

    // 1. thr.down.b0_high — claimed equivalent in the abstraction: the
    //    echo guard t+1-f already gates every b0 increment on the
    //    1-side, so lowering the delivery threshold cannot fake a
    //    justification. No alternative scenario: the claim is a plain
    //    semantic equivalence, tested by comparing verdicts (and
    //    reachable state spaces) mutant vs. pristine.
    let (bv, corpus) = bv_broadcast_corpus();
    let mutant = corpus
        .into_iter()
        .find(|m| m.id == "thr.down.b0_high")
        .expect("bv corpus contains the documented survivor thr.down.b0_high");
    assert!(mutant.note.is_some(), "survivor must carry a triage note");
    cases.push(SurvivorCase {
        automaton: "bv_broadcast",
        mutant_justice: Justice::from_rules(&mutant.ta),
        pristine_justice: Justice::from_rules(&bv.ta),
        properties: bv_kill_properties(&bv),
        pristine: bv.ta.clone(),
        mutant,
        alt: None,
    });

    // 2. drop.s3 — claimed masked by the requirement-based justice:
    //    dropping a rule only breaks liveness, and Appendix-F justice
    //    assumes the dropped drain still fires, so SRoundTerm holds
    //    vacuously. The alternative scenario re-checks SRoundTerm under
    //    *rule-wise* justice, where the stuck run the drop creates is
    //    fair and the kill should reappear.
    let (simplified, corpus) = simplified_corpus();
    let mutant = corpus
        .into_iter()
        .find(|m| m.id == "drop.s3")
        .expect("simplified corpus contains the documented survivor drop.s3");
    assert!(mutant.note.is_some(), "survivor must carry a triage note");
    let matrix_justice = simplified.justice();
    cases.push(SurvivorCase {
        automaton: "simplified_consensus",
        mutant_justice: matrix_justice.clone(),
        pristine_justice: matrix_justice,
        properties: simplified_kill_properties(&simplified),
        alt: Some(AltScenario {
            label: "rule-wise justice",
            properties: vec![("SRoundTerm".to_owned(), simplified.sround_term())],
            mutant_justice: Justice::from_rules(&mutant.ta),
            pristine_justice: Justice::from_rules(&simplified.ta),
        }),
        pristine: simplified.ta.clone(),
        mutant,
    });

    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_documented_survivors_are_packaged() {
        let cases = survivor_cases();
        assert_eq!(cases.len(), 2);
        assert_eq!(cases[0].mutant.id, "thr.down.b0_high");
        assert!(cases[0].alt.is_none());
        assert_eq!(cases[1].mutant.id, "drop.s3");
        let alt = cases[1].alt.as_ref().unwrap();
        assert_eq!(alt.label, "rule-wise justice");
        assert_eq!(alt.properties[0].0, "SRoundTerm");
        // The packaged pristine automaton differs from the mutant in
        // both cases (otherwise the adjudication is meaningless).
        for c in &cases {
            assert_ne!(c.mutant.ta, c.pristine);
        }
    }
}
