//! The seeded mutant corpora.
//!
//! Each corpus applies every operator family to one of the paper's
//! verified automata. The composition is deliberate: most mutants are
//! semantic breakages the checker must kill with a counterexample; two
//! are *statically* ill-formed (fall guard, updating self-loop) and
//! must be rejected before verification; and a couple are **designed
//! survivors** — equivalent mutants carrying a triage note — so the
//! survivor accounting in the kill matrix is exercised honestly rather
//! than tuned to 100%.

use holistic_ltl::Ltl;
use holistic_models::{BvBroadcastModel, SimplifiedConsensusModel};
use holistic_ta::{AtomicGuard, ParamCmp, ParamConstraint, ParamExpr, VarExpr};

use crate::operators::{
    drop_resilience, drop_rules, duplicate_rule, find_guard, flip_guard, inject_updating_self_loop,
    retarget_rule, shift_threshold, tamper_update, weaken_resilience_gt_to_ge, Mutant,
};

/// The properties the bv-broadcast kill matrix runs: the Table-2 block
/// (`v = 0` instances + termination) **plus** the symmetric `v = 1`
/// instances. The extension matters: value-symmetric mutants (e.g.
/// tampering rule `r1` to count a `0`-broadcast in `b1`) are invisible
/// to a `v = 0`-only matrix.
pub fn bv_kill_properties(model: &BvBroadcastModel) -> Vec<(String, Ltl)> {
    vec![
        ("BV-Just0".to_owned(), model.justification(0)),
        ("BV-Just1".to_owned(), model.justification(1)),
        ("BV-Obl0".to_owned(), model.obligation(0)),
        ("BV-Obl1".to_owned(), model.obligation(1)),
        ("BV-Unif0".to_owned(), model.uniformity(0)),
        ("BV-Unif1".to_owned(), model.uniformity(1)),
        ("BV-Term".to_owned(), model.termination()),
    ]
}

/// The seeded bv-broadcast corpus: 33 mutants across all eight
/// operator families.
pub fn bv_broadcast_corpus() -> (BvBroadcastModel, Vec<Mutant>) {
    let model = BvBroadcastModel::new();
    let ta = &model.ta;
    let b0 = ta.variable_by_name("b0").expect("b0");
    let b1 = ta.variable_by_name("b1").expect("b1");

    let mut corpus = Vec::new();

    // Rule drops: every proper rule of Fig. 2.
    corpus.extend(drop_rules(
        ta,
        &[
            "r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8", "r9", "r10", "r11", "r12",
        ],
    ));

    // Threshold off-by-one, downward, on the echo thresholds
    // (`t+1-f -> t-f`): at t = f the guard drops to zero and values
    // echo out of nothing — justification breaks.
    for (var, label) in [("b0", "b0_low"), ("b1", "b1_low")] {
        let g = find_guard(ta, var, "t", 1).expect("unique bv guard");
        corpus.push(shift_threshold(ta, &g, -1, format!("thr.down.{label}")));
    }
    // Downward on the delivery threshold (`2t+1-f -> 2t-f`) is a
    // designed survivor — a genuine finding of this harness: the echo
    // guard `t+1-f` gates every b0 increment reachable without a
    // 0-broadcast (r5, r10), so a 0-delivery still implies a genuine
    // 0-broadcast even with the delivery bar lowered, and lowering a
    // rise guard only *enables* transitions, which preserves the
    // (premise-guarded) liveness properties. The real-world off-by-one
    // danger — f Byzantine echoes faking a `2t+1-f` quorum — lives in
    // the refinement between protocol and abstraction, which already
    // folded those echoes into the `-f` offsets. The `b1` mirror
    // behaves identically and is omitted as redundant.
    {
        let g = find_guard(ta, "b0", "t", 2).expect("unique bv guard");
        corpus.push(
            shift_threshold(ta, &g, -1, "thr.down.b0_high".into()).expect_survivor(
                "equivalent in the abstraction: the echo guard t+1-f gates every b0 \
                 increment on the 1-side, so 0-delivery still implies a 0-broadcast; \
                 Byzantine quorum-faking lives below the abstraction (folded into -f)",
            ),
        );
    }
    // Threshold off-by-one, upward, on all four guards: raising the
    // delivery threshold (`2t+1-f -> 2t+2-f`) strands a lone correct
    // process; raising the echo threshold (`t+1-f -> t+2-f`) breaks
    // the obligation premise (t+1 broadcasts no longer suffice).
    for (var, coeff, label) in [
        ("b0", 1, "b0_low"),
        ("b0", 2, "b0_high"),
        ("b1", 1, "b1_low"),
        ("b1", 2, "b1_high"),
    ] {
        let g = find_guard(ta, var, "t", coeff).expect("unique bv guard");
        corpus.push(shift_threshold(ta, &g, 1, format!("thr.up.{label}")));
    }

    // Resilience weakening. `n > 3t -> n >= 3t` is a designed survivor:
    // the Fig. 2 abstraction folds the up-to-`f` Byzantine echoes into
    // the `-f` guard offsets, and its properties only need `n >= 2t+1`
    // (obligation/termination) and `t >= f` (justification) — the
    // strict `n > 3t` bound is consumed by the protocol-level
    // refinement argument, not by the abstract counter system.
    corpus.push(
        weaken_resilience_gt_to_ge(ta, 0, "res.ge3t".into()).expect_survivor(
            "equivalent in the abstraction: Fig. 2's guards only need n >= 2t+1 and t >= f; \
             n > 3t is used by the protocol-level refinement, not the counter system",
        ),
    );
    // Dropping `t >= f` is NOT equivalent: with f > t the echo
    // threshold `t+1-f` drops to zero and values materialise from
    // nothing (BV-Justification breaks).
    corpus.push(drop_resilience(ta, 1, "res.drop_tf".into()));

    // Update tampers: broadcasts counted on the wrong side, or not at
    // all, on both broadcast rules and both first-echo rules.
    corpus.push(tamper_update(
        ta,
        "r1",
        vec![(b1, 1)],
        "upd.redirect.r1".into(),
        "counts the 0-broadcast in b1",
    ));
    corpus.push(tamper_update(
        ta,
        "r2",
        vec![(b0, 1)],
        "upd.redirect.r2".into(),
        "counts the 1-broadcast in b0",
    ));
    corpus.push(tamper_update(
        ta,
        "r1",
        vec![],
        "upd.drop.r1".into(),
        "dropped (the broadcast is not counted)",
    ));
    corpus.push(tamper_update(
        ta,
        "r2",
        vec![],
        "upd.drop.r2".into(),
        "dropped (the broadcast is not counted)",
    ));
    corpus.push(tamper_update(
        ta,
        "r7",
        vec![],
        "upd.drop.r7".into(),
        "dropped (the 1-echo is not counted)",
    ));

    // Rule retargets: deliver the *wrong* value under the right guard
    // (r3 sends a 0-quorum holder to C1, r6 a 1-quorum holder to C0).
    corpus.push(retarget_rule(
        ta,
        "r3",
        ta.location_by_name("C1").expect("C1"),
    ));
    corpus.push(retarget_rule(
        ta,
        "r6",
        ta.location_by_name("C0").expect("C0"),
    ));

    // Rule duplication: the canonical equivalent mutant.
    corpus.push(duplicate_rule(ta, "r3").expect_survivor(
        "equivalent mutant: a verbatim duplicate rule adds no behaviour in counter semantics",
    ));

    // Statically ill-formed mutants: caught before verification.
    corpus.push(flip_guard(ta, "r3"));
    corpus.push(flip_guard(ta, "r6"));
    corpus.push(inject_updating_self_loop(
        ta,
        ta.location_by_name("B0").expect("B0"),
        b0,
    ));
    corpus.push(inject_updating_self_loop(
        ta,
        ta.location_by_name("C1").expect("C1"),
        b1,
    ));

    (model, corpus)
}

/// The fixed 10-mutant smoke subset the CI `mutation-smoke` job runs:
/// one or two representatives per operator family, all expected to be
/// caught (killed or statically rejected).
pub fn smoke_ids() -> [&'static str; 10] {
    [
        "drop.r1",
        "drop.r3",
        "thr.down.b0_low",
        "thr.down.b1_low",
        "thr.up.b0_high",
        "res.drop_tf",
        "upd.redirect.r1",
        "upd.drop.r1",
        "flip.r3",
        "loop.B0",
    ]
}

/// Properties for the simplified-consensus kill matrix: both value
/// instances of the four Appendix-F safety properties.
///
/// `SRoundTerm` is deliberately excluded, for a reason worth spelling
/// out: the Appendix-F justice is *requirement-based* (it assumes the
/// bv-broadcast gadget delivers), so a mutation that removes a drain
/// falsifies the fairness assumption together with the behaviour — the
/// stuck runs it creates are unfair, the liveness property holds
/// vacuously, and the matrix would pay the full 169-schema lattice per
/// verified mutant for zero kills. Rule drops are therefore represented
/// by a designed survivor ([`simplified_corpus`]) documenting exactly
/// this blind spot.
pub fn simplified_kill_properties(model: &SimplifiedConsensusModel) -> Vec<(String, Ltl)> {
    vec![
        ("Inv1_0".to_owned(), model.inv1(0)),
        ("Inv1_1".to_owned(), model.inv1(1)),
        ("Inv2_0".to_owned(), model.inv2(0)),
        ("Inv2_1".to_owned(), model.inv2(1)),
        ("Good_0".to_owned(), model.good(0)),
        ("Good_1".to_owned(), model.good(1)),
        ("Dec_0".to_owned(), model.dec(0)),
        ("Dec_1".to_owned(), model.dec(1)),
    ]
}

/// The seeded simplified-consensus corpus: 22 mutants. Killable
/// mutants here must break *safety* (see
/// [`simplified_kill_properties`] for why liveness-only breakage is a
/// designed blind spot); the corpus leans on retargets, redirected
/// updates and guard off-by-ones that make a wrong decision reachable.
pub fn simplified_corpus() -> (SimplifiedConsensusModel, Vec<Mutant>) {
    let model = SimplifiedConsensusModel::new();
    let ta = &model.ta;
    let mut corpus = Vec::new();

    // The paper's §6 experiment: weaken `n > 3t` to `n > 2t` and watch
    // Inv1₀ (agreement) fall over.
    let n = ta.param_by_name("n").expect("n");
    let t = ta.param_by_name("t").expect("t");
    let mut resilience = ta.resilience.clone();
    resilience[0] = ParamConstraint::new(ParamExpr::param(n), ParamCmp::Gt, ParamExpr::term(t, 2));
    let weakened = Mutant {
        id: "res.gt2t".into(),
        operator: "resilience-weakening",
        description: "resilience n > 3t weakened to n > 2t (the paper's §6 experiment)".into(),
        note: None,
        ta: ta
            .with_resilience(resilience)
            .renamed(format!("{}~res.gt2t", ta.name)),
    };
    corpus.push(weakened);

    // Rule drop: a designed survivor documenting a real blind spot.
    // Removing behaviour cannot break a safety property, and the
    // requirement-based Appendix-F justice assumes the dropped drain
    // exists — so the stuck runs are unfair and even `SRoundTerm`
    // holds vacuously. Catching drops here needs rule-wise justice,
    // which the gadget encoding does not use.
    corpus.push(drop_rules(ta, &["s3"]).pop().unwrap().expect_survivor(
        "drops only break liveness, and the requirement-based justice assumes the dropped \
         drain fires — stuck runs are unfair, so SRoundTerm would hold vacuously; \
         catching this needs rule-wise justice, which the gadget encoding does not use",
    ));

    // Quorum threshold off-by-one: decide from n-t-f-1 aux messages.
    let a0 = ta.variable_by_name("a0").expect("a0");
    let quorum_guard = ta
        .unique_guards()
        .into_iter()
        .find(|g| g.lhs.coeff(a0) == 1 && g.lhs.iter().count() == 1 && g.rhs.coeff(n) == 1)
        .expect("a0 >= n-t-f quorum guard");
    corpus.push(shift_threshold(
        ta,
        &quorum_guard,
        -1,
        "thr.down.a0_quorum".into(),
    ));

    // Delivery-guard off-by-one: `bvb0 >= 1 -> bvb0 >= 0` lets a
    // process claim a bv-delivery of 0 that never happened (and
    // symmetrically for 1, and in the deciding round).
    let bvb0 = ta.variable_by_name("bvb0").expect("bvb0");
    let bvb1 = ta.variable_by_name("bvb1").expect("bvb1");
    let bvb0_r2 = ta.variable_by_name("bvb0'").expect("bvb0'");
    let a1 = ta.variable_by_name("a1").expect("a1");
    for (v, label) in [
        (bvb0, "bvb0_ge1"),
        (bvb1, "bvb1_ge1"),
        (bvb0_r2, "bvb0p_ge1"),
    ] {
        let g = AtomicGuard::ge(VarExpr::var(v), ParamExpr::constant(1));
        corpus.push(shift_threshold(ta, &g, -1, format!("thr.down.{label}")));
    }
    // Round-2 quorum off-by-one: decide 0 from n-t-f-1 aux messages in
    // the deciding round.
    let a0_r2 = ta.variable_by_name("a0'").expect("a0'");
    let quorum_r2 = ta
        .unique_guards()
        .into_iter()
        .find(|g| g.lhs.coeff(a0_r2) == 1 && g.lhs.iter().count() == 1 && g.rhs.coeff(n) == 1)
        .expect("a0' >= n-t-f quorum guard");
    corpus.push(shift_threshold(
        ta,
        &quorum_r2,
        -1,
        "thr.down.a0p_quorum".into(),
    ));

    // Broadcast updates redirected: the estimate is counted on the
    // wrong side.
    corpus.push(tamper_update(
        ta,
        "s1",
        vec![(bvb1, 1)],
        "upd.redirect.s1".into(),
        "counts the 0-estimate in bvb1",
    ));
    corpus.push(tamper_update(
        ta,
        "s2",
        vec![(bvb0, 1)],
        "upd.redirect.s2".into(),
        "counts the 1-estimate in bvb0",
    ));
    // Deciding-round estimates counted on the wrong side. (The
    // round-1 aux mirror `s3: a0 -> a1` is deliberately absent: it
    // only *blocks* 0-decisions — inflating a1 decides 1 just when
    // genuine 1-estimates exist — so it breaks liveness alone and the
    // safety matrix cannot see it.)
    let bvb1_r2 = ta.variable_by_name("bvb1'").expect("bvb1'");
    corpus.push(tamper_update(
        ta,
        "s1'",
        vec![(bvb1_r2, 1)],
        "upd.redirect.s1p".into(),
        "counts the round-2 0-estimate in bvb1'",
    ));
    corpus.push(tamper_update(
        ta,
        "s2'",
        vec![(bvb0_r2, 1)],
        "upd.redirect.s2p".into(),
        "counts the round-2 1-estimate in bvb0'",
    ));
    // Aux message counted for the wrong value.
    corpus.push(tamper_update(
        ta,
        "s4",
        vec![(a0, 1)],
        "upd.redirect.s4".into(),
        "counts the 1-aux in a0",
    ));

    // Rule retargets: decide the wrong value, decide from the wrong
    // qualifier, or carry the wrong estimate across the round switch.
    corpus.push(retarget_rule(
        ta,
        "s8'",
        ta.location_by_name("D0").expect("D0"),
    ));
    corpus.push(retarget_rule(
        ta,
        "s8",
        ta.location_by_name("E1").expect("E1"),
    ));
    corpus.push(retarget_rule(
        ta,
        "s5",
        ta.location_by_name("D1").expect("D1"),
    ));
    corpus.push(retarget_rule(
        ta,
        "s14",
        ta.location_by_name("V0'").expect("V0'"),
    ));
    corpus.push(retarget_rule(
        ta,
        "s13",
        ta.location_by_name("V0'").expect("V0'"),
    ));

    // The equivalent-mutant calibration point.
    corpus.push(duplicate_rule(ta, "s1").expect_survivor(
        "equivalent mutant: a verbatim duplicate rule adds no behaviour in counter semantics",
    ));

    // Statically ill-formed mutants: caught before verification.
    corpus.push(flip_guard(ta, "s5"));
    corpus.push(flip_guard(ta, "s9'"));
    corpus.push(inject_updating_self_loop(
        ta,
        ta.location_by_name("M0").expect("M0"),
        a0,
    ));
    corpus.push(inject_updating_self_loop(
        ta,
        ta.location_by_name("M1'").expect("M1'"),
        a1,
    ));

    (model, corpus)
}
