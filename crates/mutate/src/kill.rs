//! The kill-matrix runner.
//!
//! Runs every mutant of a corpus against every property of the matrix
//! through [`Checker::check_matrix`], classifies each mutant, and
//! confirms every kill concretely:
//!
//! * **rejected** — static validation or guard analysis refuses the
//!   automaton before any verification (fall guards, updating
//!   self-loops): the front line of the toolchain caught the breakage;
//! * **killed** — some property is `Violated` and *every* violated
//!   query's counterexample replays through the concrete
//!   counter-system semantics to a property violation
//!   ([`holistic_sim::replay::confirm_counterexample`]) — no vacuous
//!   kills: an unconfirmable counterexample fails the whole run
//!   ([`KillMatrix::gate`]) because it would mean the checker and the
//!   semantics disagree;
//! * **survived** — every property verifies. Designed survivors
//!   (equivalent mutants) carry their triage note; any other survivor
//!   is flagged for triage in the JSON;
//! * **unknown** — a property gave up (schema cap / time budget)
//!   and nothing else killed the mutant.

use std::path::{Path, PathBuf};
use std::time::Duration;

use holistic_bench::json::{escape, num};

/// Quotes and escapes a string as a JSON string literal.
fn q(s: &str) -> String {
    format!("\"{}\"", escape(s))
}
use holistic_checker::{
    CheckError, CheckReport, Checker, CheckerConfig, GuardInfo, MatrixJob, Verdict,
};
use holistic_ltl::{Justice, Ltl};
use holistic_sim::replay::confirm_counterexample;
use holistic_supervise::{Checkpoint, SupervisedJob, Supervisor, SupervisorConfig};

use crate::operators::Mutant;

/// Configuration for a kill-matrix run.
#[derive(Clone, Debug)]
pub struct KillConfig {
    /// Whole-property workers for [`Checker::check_matrix`].
    pub workers: usize,
    /// Per-property wall-clock budget (mutants can reshape the
    /// schedule lattice, so every cell is bounded).
    pub time_budget: Duration,
    /// Schema cap per property.
    pub max_schemas: usize,
    /// Run the cells through the resilient supervisor with an on-disk
    /// checkpoint at this directory: completed (mutant, property)
    /// cells persist across kills of the process and are skipped on
    /// the next run.
    pub checkpoint: Option<PathBuf>,
    /// Farkas-core learning and pruning in the checker (see
    /// [`CheckerConfig::core_pruning`]). On by default; the kill-rate
    /// acceptance tests flip it off to prove the matrix is identical
    /// either way.
    pub core_pruning: bool,
}

impl Default for KillConfig {
    fn default() -> KillConfig {
        KillConfig {
            workers: 2,
            time_budget: Duration::from_secs(30),
            max_schemas: 20_000,
            checkpoint: None,
            core_pruning: true,
        }
    }
}

/// One (mutant, property) cell.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// Property name.
    pub property: String,
    /// `verified`, `violated`, `unknown: …`, or `error: …`.
    pub verdict: String,
    /// Schemas explored.
    pub schemas: usize,
    /// For `violated` cells: whether every violated query's
    /// counterexample was confirmed concretely.
    pub confirmed: bool,
    /// For confirmed cells: the witness parameter valuation.
    pub witness_params: Vec<i64>,
    /// For confirmed cells: single-step length of the replayed trace.
    pub trace_len: usize,
}

/// How a mutant fared against the whole matrix.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// At least one property violated, all counterexamples confirmed.
    Killed,
    /// Static validation / guard analysis refused the automaton.
    Rejected(String),
    /// Every property verified.
    Survived,
    /// No kill, and at least one property gave up.
    Unknown,
}

/// Per-mutant result row.
#[derive(Clone, Debug)]
pub struct MutantResult {
    /// Mutant identifier.
    pub id: String,
    /// Operator family.
    pub operator: &'static str,
    /// Seeded deviation, in words.
    pub description: String,
    /// Classification.
    pub outcome: Outcome,
    /// Properties that killed it (violated + confirmed).
    pub killed_by: Vec<String>,
    /// Property names whose counterexample failed confirmation — must
    /// stay empty; non-empty fails [`KillMatrix::gate`].
    pub unconfirmed: Vec<String>,
    /// Per-property cells (empty for rejected mutants).
    pub cells: Vec<CellResult>,
    /// Triage note: the designed-survivor note, or a flag for
    /// unexpected survivors.
    pub note: Option<String>,
}

/// A completed kill matrix.
#[derive(Clone, Debug)]
pub struct KillMatrix {
    /// Name of the subject automaton.
    pub automaton: String,
    /// Property names, in matrix column order.
    pub properties: Vec<String>,
    /// Per-mutant rows, in corpus order.
    pub results: Vec<MutantResult>,
}

/// Runs the kill matrix: `mutants × properties`, with per-mutant
/// justice derived by `justice_for` (rule-wise justice must be
/// recomputed against each mutated rule set).
pub fn run_kill_matrix(
    automaton: &str,
    mutants: &[Mutant],
    properties: &[(String, Ltl)],
    justice_for: impl Fn(&holistic_ta::ThresholdAutomaton) -> Justice,
    config: &KillConfig,
) -> KillMatrix {
    let checker = Checker::with_config(CheckerConfig {
        max_schemas: config.max_schemas,
        time_budget: Some(config.time_budget),
        threads: Some(1),
        core_pruning: config.core_pruning,
        ..CheckerConfig::default()
    });

    // Static front line: validation + guard analysis.
    let mut rejected: Vec<Option<String>> = Vec::with_capacity(mutants.len());
    for m in mutants {
        let reason = match m.ta.validate() {
            Err(e) => Some(format!("validation: {e}")),
            Ok(()) => match GuardInfo::analyse(&m.ta) {
                Err(e) => Some(format!("guard analysis: {e:?}")),
                Ok(_) => None,
            },
        };
        rejected.push(reason);
    }

    // One justice per checkable mutant, then the flat job list.
    let checkable: Vec<usize> = (0..mutants.len())
        .filter(|&i| rejected[i].is_none())
        .collect();
    let justices: Vec<Justice> = checkable
        .iter()
        .map(|&i| justice_for(&mutants[i].ta))
        .collect();
    let mut jobs = Vec::new();
    let mut job_ids = Vec::new();
    for (k, &i) in checkable.iter().enumerate() {
        for (name, spec) in properties {
            jobs.push(MatrixJob {
                ta: &mutants[i].ta,
                spec,
                justice: &justices[k],
                label: name,
            });
            job_ids.push((mutants[i].id.clone(), name.clone()));
        }
    }
    let reports = match &config.checkpoint {
        None => checker.check_matrix(&jobs, config.workers),
        Some(dir) => run_supervised(&checker, &jobs, &job_ids, dir, config),
    };

    let mut results = Vec::with_capacity(mutants.len());
    let mut next_report = 0usize;
    for (i, m) in mutants.iter().enumerate() {
        if let Some(reason) = &rejected[i] {
            results.push(MutantResult {
                id: m.id.clone(),
                operator: m.operator,
                description: m.description.clone(),
                outcome: Outcome::Rejected(reason.clone()),
                killed_by: Vec::new(),
                unconfirmed: Vec::new(),
                cells: Vec::new(),
                note: m.note.map(str::to_owned),
            });
            continue;
        }
        let k = checkable.iter().position(|&j| j == i).expect("checkable");
        let justice = &justices[k];
        let mut cells = Vec::new();
        let mut killed_by = Vec::new();
        let mut unconfirmed = Vec::new();
        let mut gave_up = false;
        for (name, spec) in properties {
            let report = &reports[next_report];
            next_report += 1;
            let cell = match report {
                Err(e) => CellResult {
                    property: name.clone(),
                    verdict: format!("error: {e}"),
                    schemas: 0,
                    confirmed: false,
                    witness_params: Vec::new(),
                    trace_len: 0,
                },
                Ok(report) => {
                    let mut confirmed_all = true;
                    let mut violated = false;
                    let mut witness_params = Vec::new();
                    let mut trace_len = 0;
                    for (qi, q) in report.queries.iter().enumerate() {
                        if let Verdict::Violated(ce) = &q.verdict {
                            violated = true;
                            match confirm_counterexample(&m.ta, spec, justice, qi, ce) {
                                Ok(confirmation) => {
                                    witness_params = confirmation.params;
                                    trace_len = confirmation.trace_len;
                                }
                                Err(_) => confirmed_all = false,
                            }
                        }
                    }
                    let verdict = match report.verdict() {
                        Verdict::Verified => "verified".to_owned(),
                        Verdict::Violated(_) => "violated".to_owned(),
                        Verdict::Unknown(r) => format!("unknown: {r}"),
                    };
                    if violated {
                        if confirmed_all {
                            killed_by.push(name.clone());
                        } else {
                            unconfirmed.push(name.clone());
                        }
                    } else if verdict.starts_with("unknown") {
                        gave_up = true;
                    }
                    CellResult {
                        property: name.clone(),
                        verdict,
                        schemas: report.total_schemas(),
                        confirmed: violated && confirmed_all,
                        witness_params,
                        trace_len,
                    }
                }
            };
            cells.push(cell);
        }
        let outcome = if !killed_by.is_empty() && unconfirmed.is_empty() {
            Outcome::Killed
        } else if !killed_by.is_empty() || !unconfirmed.is_empty() {
            // A kill exists but some violated cell failed confirmation:
            // classify as killed for rate purposes but the gate will
            // fail on the unconfirmed list.
            Outcome::Killed
        } else if gave_up {
            Outcome::Unknown
        } else {
            Outcome::Survived
        };
        let note = match (&outcome, m.note) {
            (Outcome::Survived, Some(n)) => Some(n.to_owned()),
            (Outcome::Survived, None) => Some("UNEXPECTED SURVIVOR: triage required".to_owned()),
            (_, Some(n)) => Some(format!("expected survivor, but: {n}")),
            _ => None,
        };
        results.push(MutantResult {
            id: m.id.clone(),
            operator: m.operator,
            description: m.description.clone(),
            outcome,
            killed_by,
            unconfirmed,
            cells,
            note,
        });
    }
    KillMatrix {
        automaton: automaton.to_owned(),
        properties: properties.iter().map(|(n, _)| n.clone()).collect(),
        results,
    }
}

/// Runs the flat job list through the resilient supervisor with an
/// on-disk checkpoint: a run killed midway skips every completed
/// (mutant, property) cell on the next invocation with the same
/// directory. A checkpoint recorded for a *different* corpus (cell ids
/// don't match) is refused rather than silently ignored.
fn run_supervised(
    checker: &Checker,
    jobs: &[MatrixJob<'_>],
    job_ids: &[(String, String)],
    dir: &Path,
    config: &KillConfig,
) -> Vec<Result<CheckReport, CheckError>> {
    let ids: Vec<String> = job_ids
        .iter()
        .map(|(mutant, prop)| format!("{mutant}/{prop}"))
        .collect();
    let checkpoint = if dir.join("manifest.json").exists() {
        let (cp, manifest) =
            Checkpoint::open(dir).unwrap_or_else(|e| panic!("cannot resume kill matrix: {e}"));
        assert_eq!(
            manifest.cells,
            ids,
            "checkpoint at {} belongs to a different mutant corpus",
            dir.display()
        );
        cp
    } else {
        Checkpoint::create(dir, "mutation_matrix", 0, &ids)
            .unwrap_or_else(|e| panic!("cannot create checkpoint: {e}"))
    };
    let supervised: Vec<SupervisedJob<'_>> = jobs
        .iter()
        .zip(&ids)
        .zip(job_ids)
        .map(|((job, id), (_, prop))| SupervisedJob {
            id: id.clone(),
            property: prop.clone(),
            ta: job.ta,
            spec: job.spec,
            justice: job.justice,
        })
        .collect();
    let supervisor = Supervisor::new(SupervisorConfig {
        checker: checker.config().clone(),
        workers: config.workers,
        ..SupervisorConfig::default()
    });
    let run = supervisor
        .run(&supervised, Some(&checkpoint))
        .unwrap_or_else(|e| panic!("supervised kill matrix failed: {e}"));
    let resumed = run.resumed_cells();
    if resumed > 0 {
        println!(
            "checkpoint: skipped {resumed} completed cell(s) recorded at {}",
            dir.display()
        );
    }
    run.cells.into_iter().map(|c| Ok(c.record.report)).collect()
}

impl KillMatrix {
    /// Total mutants.
    pub fn total(&self) -> usize {
        self.results.len()
    }

    /// Mutants killed by a confirmed counterexample.
    pub fn killed(&self) -> usize {
        self.results
            .iter()
            .filter(|r| r.outcome == Outcome::Killed)
            .count()
    }

    /// Mutants rejected statically.
    pub fn rejected(&self) -> usize {
        self.results
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Rejected(_)))
            .count()
    }

    /// Mutants every property verified.
    pub fn survived(&self) -> usize {
        self.results
            .iter()
            .filter(|r| r.outcome == Outcome::Survived)
            .count()
    }

    /// Mutants with a gave-up cell and no kill.
    pub fn unknown(&self) -> usize {
        self.results
            .iter()
            .filter(|r| r.outcome == Outcome::Unknown)
            .count()
    }

    /// `(killed + rejected) / total` — the fraction of seeded mutants
    /// the toolchain caught, by counterexample or by static refusal.
    pub fn caught_rate(&self) -> f64 {
        if self.results.is_empty() {
            return 1.0;
        }
        (self.killed() + self.rejected()) as f64 / self.total() as f64
    }

    /// Kills whose counterexample failed concrete confirmation
    /// (property names per mutant id). Must be empty.
    pub fn unconfirmed_kills(&self) -> Vec<(String, Vec<String>)> {
        self.results
            .iter()
            .filter(|r| !r.unconfirmed.is_empty())
            .map(|r| (r.id.clone(), r.unconfirmed.clone()))
            .collect()
    }

    /// The acceptance gate: the caught rate must reach `min_rate` and
    /// every kill must be backed by a confirmed counterexample.
    ///
    /// # Errors
    ///
    /// A human-readable description of the failure.
    pub fn gate(&self, min_rate: f64) -> Result<(), String> {
        let unconfirmed = self.unconfirmed_kills();
        if !unconfirmed.is_empty() {
            return Err(format!(
                "vacuous kills (counterexample failed concrete replay): {unconfirmed:?}"
            ));
        }
        let rate = self.caught_rate();
        if rate < min_rate {
            let survivors: Vec<&str> = self
                .results
                .iter()
                .filter(|r| matches!(r.outcome, Outcome::Survived | Outcome::Unknown))
                .map(|r| r.id.as_str())
                .collect();
            return Err(format!(
                "caught rate {:.1}% below the {:.1}% gate; uncaught: {survivors:?}",
                rate * 100.0,
                min_rate * 100.0
            ));
        }
        Ok(())
    }

    /// Renders the matrix as text: one row per mutant, one column per
    /// property (`.` verified, `X` confirmed kill, `!` unconfirmed,
    /// `?` gave up), plus the outcome and note.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let id_w = self
            .results
            .iter()
            .map(|r| r.id.len())
            .max()
            .unwrap_or(6)
            .max(6);
        let _ = write!(out, "{:id_w$}  ", "mutant");
        for p in &self.properties {
            let _ = write!(out, "{p:>10} ");
        }
        let _ = writeln!(out, " outcome");
        for r in &self.results {
            let _ = write!(out, "{:id_w$}  ", r.id);
            match &r.outcome {
                Outcome::Rejected(reason) => {
                    for _ in &self.properties {
                        let _ = write!(out, "{:>10} ", "-");
                    }
                    let _ = writeln!(out, " rejected ({reason})");
                }
                _ => {
                    for c in &r.cells {
                        let mark = if c.verdict == "verified" {
                            "."
                        } else if c.confirmed {
                            "X"
                        } else if c.verdict == "violated" {
                            "!"
                        } else {
                            "?"
                        };
                        let _ = write!(out, "{mark:>10} ");
                    }
                    let outcome = match &r.outcome {
                        Outcome::Killed => format!("killed by {:?}", r.killed_by),
                        Outcome::Survived => "SURVIVED".to_owned(),
                        Outcome::Unknown => "unknown".to_owned(),
                        Outcome::Rejected(_) => unreachable!(),
                    };
                    let note = r
                        .note
                        .as_deref()
                        .map(|n| format!("  // {n}"))
                        .unwrap_or_default();
                    let _ = writeln!(out, " {outcome}{note}");
                }
            }
        }
        let _ = writeln!(
            out,
            "total {} = {} killed + {} rejected + {} survived + {} unknown; caught {:.1}%",
            self.total(),
            self.killed(),
            self.rejected(),
            self.survived(),
            self.unknown(),
            self.caught_rate() * 100.0
        );
        out
    }

    /// Serialises the matrix in the same hand-rolled JSON style as
    /// `BENCH_table2.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema_version\": 1,\n");
        out.push_str("  \"generated_by\": \"mutation_matrix\",\n");
        out.push_str(&format!("  \"automaton\": {},\n", q(&self.automaton)));
        let props: Vec<String> = self.properties.iter().map(|p| q(p)).collect();
        out.push_str(&format!("  \"properties\": [{}],\n", props.join(", ")));
        out.push_str("  \"summary\": {\n");
        out.push_str(&format!("    \"total\": {},\n", self.total()));
        out.push_str(&format!("    \"killed\": {},\n", self.killed()));
        out.push_str(&format!("    \"rejected\": {},\n", self.rejected()));
        out.push_str(&format!("    \"survived\": {},\n", self.survived()));
        out.push_str(&format!("    \"unknown\": {},\n", self.unknown()));
        out.push_str(&format!(
            "    \"caught_rate\": {}\n",
            num(self.caught_rate())
        ));
        out.push_str("  },\n");
        out.push_str("  \"mutants\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"id\": {},\n", q(&r.id)));
            out.push_str(&format!("      \"operator\": {},\n", q(r.operator)));
            out.push_str(&format!("      \"description\": {},\n", q(&r.description)));
            let (outcome, reason) = match &r.outcome {
                Outcome::Killed => ("killed", None),
                Outcome::Rejected(reason) => ("rejected", Some(reason.clone())),
                Outcome::Survived => ("survived", None),
                Outcome::Unknown => ("unknown", None),
            };
            out.push_str(&format!("      \"outcome\": {},\n", q(outcome)));
            if let Some(reason) = reason {
                out.push_str(&format!("      \"reason\": {},\n", q(&reason)));
            }
            let killed_by: Vec<String> = r.killed_by.iter().map(|p| q(p)).collect();
            out.push_str(&format!(
                "      \"killed_by\": [{}],\n",
                killed_by.join(", ")
            ));
            match &r.note {
                Some(n) => out.push_str(&format!("      \"note\": {},\n", q(n))),
                None => out.push_str("      \"note\": null,\n"),
            }
            out.push_str("      \"cells\": [\n");
            for (j, c) in r.cells.iter().enumerate() {
                let params: Vec<String> = c.witness_params.iter().map(|p| p.to_string()).collect();
                out.push_str(&format!(
                    "        {{\"property\": {}, \"verdict\": {}, \"schemas\": {}, \
                     \"confirmed\": {}, \"witness_params\": [{}], \"trace_len\": {}}}{}\n",
                    q(&c.property),
                    q(&c.verdict),
                    c.schemas,
                    c.confirmed,
                    params.join(", "),
                    c.trace_len,
                    if j + 1 < r.cells.len() { "," } else { "" }
                ));
            }
            out.push_str("      ]\n");
            out.push_str(&format!(
                "    }}{}\n",
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}
