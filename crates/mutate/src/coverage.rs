//! Guard-lattice shape coverage.
//!
//! The cross-validation suite samples random automata uniformly; most
//! draws land on a handful of schedule-lattice shapes (no guards, one
//! guard unlockable from the start, …) and the rarer shapes — deep
//! implication chains, multi-guard simultaneous unlocks — go
//! unexercised. This module abstracts an automaton to its
//! [`LatticeShape`]: the guard-lattice statistics that the schedule
//! enumerator actually branches on. A [`CoverageMap`] remembers the
//! shapes seen so far, and the generator's rejection-sampling wrapper
//! ([`crate::generator::next_biased`]) uses it to prefer automata whose
//! shape is new.

use std::collections::HashSet;

use holistic_checker::{enumerate_schedules, GuardError, GuardInfo};
use holistic_ta::ThresholdAutomaton;

/// The shape of an automaton's schedule lattice: everything the
/// schedule enumerator's search structure depends on, abstracted away
/// from variable names and thresholds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LatticeShape {
    /// Number of distinct rise guards.
    pub guards: usize,
    /// Number of implication edges between distinct guards.
    pub implications: u32,
    /// Number of guards that can hold initially (all shared variables
    /// zero).
    pub initially_unlocked: u32,
    /// Number of distinct contexts reached across all enumerated
    /// schedules.
    pub contexts: usize,
    /// `floor(log2(#schedules))` — bucketed so that near-identical
    /// lattice sizes collapse to one shape.
    pub schedules_log2: u32,
}

/// Computes the [`LatticeShape`] of an automaton by running guard
/// analysis and schedule enumeration (capped at `cap` schedules).
///
/// # Errors
///
/// Propagates [`GuardError`] for automata outside the rise-guard
/// fragment.
pub fn lattice_shape(ta: &ThresholdAutomaton, cap: usize) -> Result<LatticeShape, GuardError> {
    let info = GuardInfo::analyse(ta)?;
    let enumeration = enumerate_schedules(&info, cap);
    let mut contexts: HashSet<u64> = HashSet::new();
    for s in &enumeration.schedules {
        contexts.extend(s.contexts.iter().copied());
    }
    let implications = info.implies.iter().map(|m| m.count_ones()).sum();
    Ok(LatticeShape {
        guards: info.guards.len(),
        implications,
        initially_unlocked: info.initially_possible.count_ones(),
        contexts: contexts.len(),
        schedules_log2: (enumeration.counted.max(1) as u64).ilog2(),
    })
}

/// The set of lattice shapes exercised so far.
#[derive(Default, Debug)]
pub struct CoverageMap {
    seen: HashSet<LatticeShape>,
}

impl CoverageMap {
    /// An empty coverage map.
    pub fn new() -> CoverageMap {
        CoverageMap::default()
    }

    /// Records a shape; returns `true` if it was novel.
    pub fn observe(&mut self, shape: LatticeShape) -> bool {
        self.seen.insert(shape)
    }

    /// Whether this shape has been seen.
    pub fn contains(&self, shape: &LatticeShape) -> bool {
        self.seen.contains(shape)
    }

    /// Number of distinct shapes seen.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether no shape has been seen yet.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{next_biased, random_ta};
    use holistic_models::BvBroadcastModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bv_broadcast_shape_is_stable() {
        let ta = BvBroadcastModel::new().ta;
        let shape = lattice_shape(&ta, 10_000).expect("bv is in fragment");
        // Four distinct guards, the two per-variable threshold pairs
        // each ordered by implication, none initially unlockable.
        assert_eq!(shape.guards, 4);
        assert_eq!(shape.implications, 2);
        assert_eq!(shape.initially_unlocked, 0);
        assert_eq!(shape, lattice_shape(&ta, 10_000).unwrap());
    }

    #[test]
    fn biased_sampling_covers_at_least_as_many_shapes_as_uniform() {
        const DRAWS: usize = 30;
        let uniform = {
            let mut rng = StdRng::seed_from_u64(7);
            let mut map = CoverageMap::new();
            for _ in 0..DRAWS {
                let ta = random_ta(&mut rng);
                map.observe(lattice_shape(&ta, 5_000).unwrap());
            }
            map.len()
        };
        let biased = {
            let mut rng = StdRng::seed_from_u64(7);
            let mut map = CoverageMap::new();
            for _ in 0..DRAWS {
                let _ = next_biased(&mut rng, &mut map, 8, 5_000);
            }
            map.len()
        };
        assert!(
            biased >= uniform,
            "coverage-guided sampling regressed: {biased} < {uniform} shapes"
        );
        assert!(biased > 1, "sample must exercise several lattice shapes");
    }
}
