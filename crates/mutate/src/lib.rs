//! # holistic-mutate — mutation testing for the verifier
//!
//! The paper's claim is that holistic checking *certifies* the DBFT
//! automata; this crate supplies the standard soundness smoke test for
//! such tooling: seed semantic bugs into the verified automata and
//! demand that the checker catches (kills) them, with every kill backed
//! by a counterexample that replays to a concrete faulty execution.
//!
//! * [`operators`] — the mutation operator library (threshold
//!   off-by-one, guard direction flip, resilience weakening, rule
//!   drop/duplicate, update-vector tamper, self-loop injection), built
//!   on `holistic-ta`'s surgery APIs;
//! * [`corpus`] — the seeded mutant corpora for the bv-broadcast and
//!   simplified-consensus models, with triage notes for the designed
//!   survivors (equivalent mutants);
//! * [`kill`] — the kill-matrix runner: every mutant × every property
//!   through [`Checker::check_matrix`](holistic_checker::Checker),
//!   counterexamples confirmed via `holistic_sim::replay` (no vacuous
//!   kills), results rendered as text and JSON;
//! * [`adjudicate`] — the survivor adjudication hook: the documented
//!   blind-spot survivors packaged (mutant, pristine automaton,
//!   properties, justice variants) for `holistic-oracle`'s independent
//!   explicit-state adjudication;
//! * [`coverage`] — guard-lattice shape coverage over schedule
//!   enumeration, and the coverage-guided layer that biases the
//!   cross-validation random-automaton generator toward shapes not yet
//!   exercised;
//! * [`generator`] — the random DAG threshold-automaton generator
//!   shared with `tests/cross_validation.rs`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adjudicate;
pub mod corpus;
pub mod coverage;
pub mod generator;
pub mod kill;
pub mod operators;

pub use adjudicate::{survivor_cases, AltScenario, SurvivorCase};
pub use corpus::{
    bv_broadcast_corpus, bv_kill_properties, simplified_corpus, simplified_kill_properties,
    smoke_ids,
};
pub use coverage::{lattice_shape, CoverageMap, LatticeShape};
pub use generator::{next_biased, random_ta};
pub use kill::{run_kill_matrix, CellResult, KillConfig, KillMatrix, MutantResult, Outcome};
pub use operators::Mutant;
