//! Random threshold-automaton generation for cross-validation, with an
//! optional coverage-guided layer.
//!
//! [`random_ta`] is the canonical generator the cross-validation suite
//! uses (`tests/cross_validation.rs` re-exports it from here): a random
//! increment-only DAG automaton over parameters `n, f`. Its RNG
//! consumption order is part of the contract — a given seed must keep
//! producing the same automaton across refactors, or recorded failing
//! seeds stop reproducing.
//!
//! [`next_biased`] layers rejection sampling on top: draw up to
//! `attempts` candidates and return the first whose
//! [`LatticeShape`](crate::coverage::LatticeShape) has not been seen
//! yet, falling back to the last draw when every attempt lands on
//! explored territory. This pushes the sample toward the rare lattice
//! shapes (deep implication chains, simultaneous unlocks) that uniform
//! draws almost never hit.

use rand::rngs::StdRng;
use rand::Rng;

use holistic_ta::{
    AtomicGuard, Guard, LocationId, ParamExpr, ParamId, TaBuilder, ThresholdAutomaton, VarExpr,
};

use crate::coverage::{lattice_shape, CoverageMap};

/// Generates a random increment-only DAG automaton with parameters
/// `n, f`, resilience `n > 3f ∧ f ≥ 0 ∧ n ≥ 2`, and `n − f` processes.
///
/// The RNG consumption order is stable by contract: recorded seeds in
/// bug reports and CI logs must keep reproducing the same automaton.
pub fn random_ta(rng: &mut StdRng) -> ThresholdAutomaton {
    let mut b = TaBuilder::new("random");
    let n = b.param("n");
    let f = b.param("f");
    b.resilience_gt(n, f, 3);
    b.resilience_ge_const(f, 0);
    b.resilience_ge_const(n, 2);
    b.size_n_minus_f(n, f);

    let num_vars = rng.gen_range(1..=2);
    let vars: Vec<_> = (0..num_vars).map(|i| b.shared(format!("x{i}"))).collect();

    let num_locs = rng.gen_range(3..=5);
    let mut locs: Vec<LocationId> = Vec::new();
    for i in 0..num_locs {
        locs.push(if i == 0 || (i == 1 && rng.gen_bool(0.5)) {
            b.initial_location(format!("L{i}"))
        } else if i == num_locs - 1 {
            b.final_location(format!("L{i}"))
        } else {
            b.location(format!("L{i}"))
        });
    }

    let num_rules = rng.gen_range(num_locs - 1..=num_locs + 3);
    for r in 0..num_rules {
        // Forward edges only: guaranteed DAG. Make sure the target is
        // reachable in the graph by always including the spine.
        let (from, to) = if r < num_locs - 1 {
            (r, r + 1)
        } else {
            let from = rng.gen_range(0..num_locs - 1);
            (from, rng.gen_range(from + 1..num_locs))
        };
        let guard = if rng.gen_bool(0.5) {
            Guard::always()
        } else {
            let v = vars[rng.gen_range(0..vars.len())];
            let rhs = match rng.gen_range(0..3) {
                0 => ParamExpr::constant(rng.gen_range(1..=2)),
                1 => {
                    // n - f (everyone sent)
                    let mut e = ParamExpr::param(ParamId(0));
                    e.add_term(ParamId(1), -1);
                    e
                }
                _ => {
                    // f + 1
                    let mut e = ParamExpr::param(ParamId(1));
                    e.add_constant(1);
                    e
                }
            };
            Guard::atom(AtomicGuard::ge(VarExpr::var(v), rhs))
        };
        let handle = b.rule(format!("r{r}"), locs[from], locs[to], guard);
        if rng.gen_bool(0.6) {
            let v = vars[rng.gen_range(0..vars.len())];
            handle.inc(v, 1);
        }
    }
    b.build().expect("generated automaton is valid")
}

/// Draws up to `attempts` automata from [`random_ta`] and returns the
/// first whose lattice shape (computed with schedule cap `cap`) is not
/// yet in `coverage`; falls back to the final draw otherwise. The
/// returned automaton's shape is recorded in `coverage` either way.
pub fn next_biased(
    rng: &mut StdRng,
    coverage: &mut CoverageMap,
    attempts: usize,
    cap: usize,
) -> ThresholdAutomaton {
    assert!(attempts > 0, "at least one attempt");
    let mut last = None;
    for _ in 0..attempts {
        let ta = random_ta(rng);
        let shape = lattice_shape(&ta, cap).expect("generator stays in the rise-guard fragment");
        if !coverage.contains(&shape) {
            coverage.observe(shape);
            return ta;
        }
        last = Some((ta, shape));
    }
    let (ta, shape) = last.expect("attempts > 0");
    coverage.observe(shape);
    ta
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generator_is_deterministic_per_seed() {
        // The seed contract: same seed, same automaton. A drift here
        // breaks every recorded failing seed in CI logs.
        let a = random_ta(&mut StdRng::seed_from_u64(42));
        let b = random_ta(&mut StdRng::seed_from_u64(42));
        assert_eq!(a.rules.len(), b.rules.len());
        assert_eq!(a.locations, b.locations);
        for (ra, rb) in a.rules.iter().zip(&b.rules) {
            assert_eq!(ra.guard, rb.guard);
            assert_eq!(ra.update, rb.update);
            assert_eq!((ra.from, ra.to), (rb.from, rb.to));
        }
    }

    #[test]
    fn biased_generator_prefers_novel_shapes() {
        let mut coverage = CoverageMap::new();
        let mut rng = StdRng::seed_from_u64(1);
        let first = next_biased(&mut rng, &mut coverage, 6, 5_000);
        assert_eq!(coverage.len(), 1);
        // A second biased draw either finds a new shape (coverage
        // grows) or exhausts its attempts on the old one.
        let _second = next_biased(&mut rng, &mut coverage, 6, 5_000);
        assert!(!coverage.is_empty());
        assert!(first.validate().is_ok());
    }
}
