//! Randomized system-level properties of the DBFT simulation.

use holistic_sim::{
    monitor, FaultScheduleKind, GoodRoundScheduler, Outcome, RandomScheduler, Scenario, SimParams,
    Simulation, StrategyKind,
};
use proptest::prelude::*;
use rand::SeedableRng;

fn proposals(n: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..=1, n)
}

/// Random well-parameterized systems: `f ≤ t < n/3`, n up to 10.
fn small_system() -> impl Strategy<Value = SimParams> {
    (4usize..=10).prop_flat_map(|n| {
        (Just(n), 1usize..=(n - 1) / 3).prop_flat_map(|(n, t)| {
            (Just(n), Just(t), 0usize..=t).prop_map(|(n, t, f)| SimParams { n, t, f })
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Agreement and validity hold on every random schedule, for both
    /// silent and noisy Byzantine processes.
    #[test]
    fn safety_under_random_schedules(
        props in proposals(4),
        seed in 0u64..1_000_000,
        noise in 0u32..400,
    ) {
        let params = SimParams { n: 4, t: 1, f: 1 };
        let mut sim = Simulation::new(params, &props);
        let mut sched = RandomScheduler::with_noise(
            rand::rngs::StdRng::seed_from_u64(seed),
            noise,
        );
        let _ = sim.run(&mut sched, 150_000);
        let correct = &props[..3];
        prop_assert!(monitor::check_safety(&sim, correct).is_ok());
    }

    /// Under the fair scheduler every run terminates, decisions agree,
    /// and the decided value is some correct process's proposal.
    #[test]
    fn fair_scheduler_terminates_and_decides_validly(
        props in proposals(4),
        _seed in 0u64..10,
    ) {
        let params = SimParams { n: 4, t: 1, f: 1 };
        let mut sim = Simulation::new(params, &props);
        let mut sched = GoodRoundScheduler::new();
        let outcome = sim.run(&mut sched, 2_000_000);
        prop_assert_eq!(outcome, Outcome::AllDecided);
        let decided: Vec<u8> = sim.decisions().into_iter().flatten().map(|d| d.value).collect();
        prop_assert_eq!(decided.len(), 3);
        prop_assert!(decided.windows(2).all(|w| w[0] == w[1]));
        // Validity: the decided value was proposed by some correct
        // process (with mixed inputs both values qualify).
        let correct = &props[..3];
        prop_assert!(correct.contains(&decided[0]));
        prop_assert!(monitor::check_safety(&sim, correct).is_ok());
    }

    /// Larger system: n = 7, t = 2, f = 2.
    #[test]
    fn safety_scales_to_seven_processes(
        props in proposals(7),
        seed in 0u64..1_000_000,
    ) {
        let params = SimParams { n: 7, t: 2, f: 2 };
        let mut sim = Simulation::new(params, &props);
        let mut sched = RandomScheduler::with_noise(
            rand::rngs::StdRng::seed_from_u64(seed),
            150,
        );
        let _ = sim.run(&mut sched, 150_000);
        prop_assert!(monitor::check_safety(&sim, &props[..5]).is_ok());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The full robustness matrix, sampled: any well-parameterized
    /// system (`f ≤ t < n/3`), any Byzantine strategy, any fault
    /// schedule — Agreement, Validity and BV-Justification hold.
    #[test]
    fn any_strategy_and_fault_schedule_preserve_safety(
        params in small_system(),
        strategy in prop::sample::select(StrategyKind::all().to_vec()),
        faults in prop::sample::select(FaultScheduleKind::all().to_vec()),
        seed in 0u64..1_000_000,
    ) {
        let mut scenario = Scenario::new(params, strategy, faults, seed);
        scenario.max_deliveries = 30_000;
        let (_, report) = scenario.run();
        prop_assert!(report.is_safe(), "{}: {:?}", report.label, report.violations);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Under the paper's fairness assumption (the good-round
    /// scheduler) every strategy also admits Termination — Theorem 6
    /// survives an *active* adversary, not just the silent one. (On a
    /// reliable network; lossy schedules trade this for
    /// retransmission-based liveness, probed by the scenario sweep.)
    #[test]
    fn any_strategy_terminates_under_fairness(
        params in small_system(),
        strategy in prop::sample::select(StrategyKind::all().to_vec()),
        seed in 0u64..1_000,
    ) {
        let proposals: Vec<u8> =
            (0..params.n).map(|i| ((i as u64 ^ seed) % 2) as u8).collect();
        let mut sim = Simulation::new(params, &proposals);
        let mut adv = strategy.build(seed, params);
        let mut sched = GoodRoundScheduler::new();
        let outcome = sim.run_with_adversary(&mut sched, adv.as_mut(), 2_000_000);
        prop_assert_eq!(outcome, Outcome::AllDecided, "{} at {:?}", strategy.name(), params);
        let correct = &proposals[..params.n - params.f];
        prop_assert!(monitor::check_safety(&sim, correct).is_ok());
    }
}
