//! Randomized system-level properties of the DBFT simulation.

use holistic_sim::{
    monitor, GoodRoundScheduler, Outcome, RandomScheduler, SimParams, Simulation,
};
use proptest::prelude::*;
use rand::SeedableRng;

fn proposals(n: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..=1, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Agreement and validity hold on every random schedule, for both
    /// silent and noisy Byzantine processes.
    #[test]
    fn safety_under_random_schedules(
        props in proposals(4),
        seed in 0u64..1_000_000,
        noise in 0u32..400,
    ) {
        let params = SimParams { n: 4, t: 1, f: 1 };
        let mut sim = Simulation::new(params, &props);
        let mut sched = RandomScheduler::with_noise(
            rand::rngs::StdRng::seed_from_u64(seed),
            noise,
        );
        let _ = sim.run(&mut sched, 150_000);
        let correct = &props[..3];
        prop_assert!(monitor::check_safety(&sim, correct).is_ok());
    }

    /// Under the fair scheduler every run terminates, decisions agree,
    /// and the decided value is some correct process's proposal.
    #[test]
    fn fair_scheduler_terminates_and_decides_validly(
        props in proposals(4),
        _seed in 0u64..10,
    ) {
        let params = SimParams { n: 4, t: 1, f: 1 };
        let mut sim = Simulation::new(params, &props);
        let mut sched = GoodRoundScheduler::new();
        let outcome = sim.run(&mut sched, 2_000_000);
        prop_assert_eq!(outcome, Outcome::AllDecided);
        let decided: Vec<u8> = sim.decisions().into_iter().flatten().map(|d| d.value).collect();
        prop_assert_eq!(decided.len(), 3);
        prop_assert!(decided.windows(2).all(|w| w[0] == w[1]));
        // Validity: the decided value was proposed by some correct
        // process (with mixed inputs both values qualify).
        let correct = &props[..3];
        prop_assert!(correct.contains(&decided[0]));
        prop_assert!(monitor::check_safety(&sim, correct).is_ok());
    }

    /// Larger system: n = 7, t = 2, f = 2.
    #[test]
    fn safety_scales_to_seven_processes(
        props in proposals(7),
        seed in 0u64..1_000_000,
    ) {
        let params = SimParams { n: 7, t: 2, f: 2 };
        let mut sim = Simulation::new(params, &props);
        let mut sched = RandomScheduler::with_noise(
            rand::rngs::StdRng::seed_from_u64(seed),
            150,
        );
        let _ = sim.run(&mut sched, 150_000);
        prop_assert!(monitor::check_safety(&sim, &props[..5]).is_ok());
    }
}
