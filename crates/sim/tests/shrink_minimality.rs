//! 1-minimality of the delta-debugged schedules.
//!
//! `shrink::shrink_schedule` promises that its result is 1-minimal:
//! dropping any single remaining event makes the failure predicate
//! flip. These tests hold it to that promise on real adversarial runs
//! (not hand-built schedules): a misparameterized deployment
//! (`n = 3, t = 1`, so `t >= n/3`) where the equivocator reliably
//! splits the correct processes, shrunk from two different seeds, and
//! then every single-event deletion of the minimal schedule is
//! replayed to check the violation is gone.

use holistic_sim::plan::shrink_first_violation;
use holistic_sim::shrink::replay;
use holistic_sim::{monitor, FaultScheduleKind, Scenario, ScheduleEvent, SimParams, StrategyKind};

const PARAMS: SimParams = SimParams { n: 3, t: 1, f: 1 };
const PROPOSALS: [u8; 3] = [0, 1, 0];

/// Scans seeds from `from` until the equivocator produces an Agreement
/// violation, and returns the seed with the shrunk minimal schedule.
fn first_violation_from(from: u64) -> (u64, Vec<ScheduleEvent>) {
    (from..from + 50)
        .find_map(|seed| {
            let mut scenario = Scenario::new(
                PARAMS,
                StrategyKind::Equivocator,
                FaultScheduleKind::Reliable,
                seed,
            );
            scenario.proposals = PROPOSALS.to_vec();
            scenario.max_deliveries = 5_000;
            let shrunk = shrink_first_violation(&scenario)?;
            assert_eq!(shrunk.violation.property, "Agreement");
            Some((seed, shrunk.minimal))
        })
        .expect("t >= n/3 must be observably broken within 50 seeds")
}

/// Asserts that `minimal` reproduces the Agreement violation and that
/// removing any single event no longer does (1-minimality, the ddmin
/// termination guarantee).
fn assert_one_minimal(minimal: &[ScheduleEvent], seed: u64) {
    let violates = |schedule: &[ScheduleEvent]| {
        monitor::check_agreement(&replay(PARAMS, &PROPOSALS, schedule)).is_err()
    };
    assert!(
        violates(minimal),
        "seed {seed}: minimal schedule does not reproduce the violation"
    );
    for skip in 0..minimal.len() {
        let mut reduced = minimal.to_vec();
        reduced.remove(skip);
        assert!(
            !violates(&reduced),
            "seed {seed}: schedule is not 1-minimal — event {skip} of {} is redundant",
            minimal.len()
        );
    }
}

#[test]
fn shrunk_equivocator_run_is_one_minimal() {
    let (seed, minimal) = first_violation_from(0);
    assert!(!minimal.is_empty());
    assert_one_minimal(&minimal, seed);
}

#[test]
fn shrunk_equivocator_run_from_a_different_seed_is_one_minimal() {
    // A second, independent violating run: start the scan past the
    // first test's range so the two tests exercise different recorded
    // schedules (the shrinker's input shape differs run to run).
    let (seed, minimal) = first_violation_from(50);
    assert!(!minimal.is_empty());
    assert_one_minimal(&minimal, seed);
}
