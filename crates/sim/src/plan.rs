//! Scenario sweeps: run every adversary strategy against every fault
//! schedule at several system sizes, check all monitors, and shrink any
//! violation to a minimal reproducing trace.
//!
//! This is the robustness harness's single entry point: a
//! [`FaultPlan`] is a list of [`Scenario`]s; [`FaultPlan::run`] drives
//! each one ([`Simulation`] + [`StrategyKind`] adversary +
//! [`FaultScheduleKind`] network + seeded [`RandomScheduler`]) and
//! returns one [`RunReport`] per scenario with the monitor results.
//! [`shrink_first_violation`] re-runs a scenario with schedule
//! recording and delta-debugs any violation (see [`crate::shrink`]).
//!
//! Everything is deterministic in the scenario's seed: the fault
//! layer's RNG, the adversary's RNG, and the scheduler's RNG are all
//! derived from it, so a failing `label()` is a complete bug report.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::adversary::StrategyKind;
use crate::fault::FaultScheduleKind;
use crate::monitor::{self, Violation};
use crate::shrink;
use crate::simulation::{
    Outcome, RandomScheduler, RetransmitPolicy, ScheduleEvent, SimParams, Simulation,
};

/// One fully-specified adversarial run.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// System size and resilience.
    pub params: SimParams,
    /// Proposals, one per process (Byzantine entries are ignored).
    pub proposals: Vec<u8>,
    /// The Byzantine strategy.
    pub strategy: StrategyKind,
    /// The network fault schedule.
    pub faults: FaultScheduleKind,
    /// Master seed (fault layer, adversary, and scheduler RNGs all
    /// derive from it).
    pub seed: u64,
    /// Delivery budget.
    pub max_deliveries: u64,
}

impl Scenario {
    /// Creates a scenario with mixed proposals (process `i` proposes
    /// `(i ⊕ seed) mod 2`) and a default budget.
    pub fn new(
        params: SimParams,
        strategy: StrategyKind,
        faults: FaultScheduleKind,
        seed: u64,
    ) -> Scenario {
        let proposals = (0..params.n)
            .map(|i| ((i as u64 ^ seed) % 2) as u8)
            .collect();
        Scenario {
            params,
            proposals,
            strategy,
            faults,
            seed,
            max_deliveries: 60_000,
        }
    }

    /// A complete, reproducible description of the scenario.
    pub fn label(&self) -> String {
        format!(
            "n={} t={} f={} strategy={} faults={} seed={}",
            self.params.n,
            self.params.t,
            self.params.f,
            self.strategy.name(),
            self.faults.name(),
            self.seed
        )
    }

    /// The correct processes' proposals (the monitors' reference).
    pub fn correct_proposals(&self) -> &[u8] {
        &self.proposals[..self.params.n - self.params.f]
    }

    fn prepare(&self, record: bool) -> Simulation {
        let mut sim = Simulation::new(self.params, &self.proposals);
        if record {
            sim.record_schedule();
        }
        sim.set_faults(self.faults.build(self.seed, self.params));
        if self.faults != FaultScheduleKind::Reliable {
            // A lossy network without retransmission trivially loses
            // liveness; correct implementations resend.
            sim.set_retransmit(RetransmitPolicy::default());
        }
        sim
    }

    fn drive(&self, sim: &mut Simulation) -> RunReport {
        let mut adversary = self.strategy.build(self.seed, self.params);
        let mut scheduler = RandomScheduler::new(StdRng::seed_from_u64(self.seed));
        let outcome =
            sim.run_with_adversary(&mut scheduler, adversary.as_mut(), self.max_deliveries);
        let props = self.correct_proposals();
        let mut violations = Vec::new();
        for result in [
            monitor::check_agreement(sim),
            monitor::check_validity(sim, props),
            monitor::check_bv_justification(sim),
        ] {
            if let Err(v) = result {
                violations.push(v);
            }
        }
        RunReport {
            label: self.label(),
            outcome,
            violations,
            good_round: monitor::find_good_round(sim),
            deliveries: sim.deliveries(),
            dropped: sim.dropped(),
            retransmissions: sim.retransmissions(),
        }
    }

    /// Runs the scenario and checks all safety monitors. Returns the
    /// final simulation (for further inspection) and the report.
    pub fn run(&self) -> (Simulation, RunReport) {
        let mut sim = self.prepare(false);
        let report = self.drive(&mut sim);
        (sim, report)
    }
}

/// The outcome of one scenario: monitor results plus run statistics.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// [`Scenario::label`] of the run.
    pub label: String,
    /// Why the run stopped.
    pub outcome: Outcome,
    /// Safety-monitor violations (Agreement, Validity,
    /// BV-Justification). Empty on healthy runs.
    pub violations: Vec<Violation>,
    /// The first *(r mod 2)-good* round observed, if any (Definition 3).
    pub good_round: Option<u64>,
    /// Deliveries consumed.
    pub deliveries: u64,
    /// Messages dropped by the fault layer.
    pub dropped: u64,
    /// Retransmission rounds fired.
    pub retransmissions: u64,
}

impl RunReport {
    /// Whether every safety monitor passed.
    pub fn is_safe(&self) -> bool {
        self.violations.is_empty()
    }
}

/// A sweep: a list of scenarios run with all monitors attached.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// The scenarios, in execution order.
    pub scenarios: Vec<Scenario>,
}

impl FaultPlan {
    /// The standard robustness sweep: system sizes `(4,1,1)`, `(7,2,2)`
    /// and `(10,3,3)` (each at the resilience boundary `t = ⌊(n−1)/3⌋`,
    /// `f = t`) × every [`StrategyKind`] × every [`FaultScheduleKind`],
    /// seeds derived from `seed`. Within `t < n/3` every run must be
    /// safe — that is Theorem 1/5 made executable.
    pub fn standard(seed: u64) -> FaultPlan {
        let sizes = [
            SimParams { n: 4, t: 1, f: 1 },
            SimParams { n: 7, t: 2, f: 2 },
            SimParams { n: 10, t: 3, f: 3 },
        ];
        let mut scenarios = Vec::new();
        for (i, &params) in sizes.iter().enumerate() {
            for (j, strategy) in StrategyKind::all().into_iter().enumerate() {
                for (k, faults) in FaultScheduleKind::all().into_iter().enumerate() {
                    let derived = seed
                        .wrapping_mul(1_000_003)
                        .wrapping_add((i * 100 + j * 10 + k) as u64);
                    scenarios.push(Scenario::new(params, strategy, faults, derived));
                }
            }
        }
        FaultPlan { scenarios }
    }

    /// Runs every scenario and returns the reports (same order).
    pub fn run(&self) -> Vec<RunReport> {
        self.scenarios.iter().map(|s| s.run().1).collect()
    }
}

/// A shrunk violation: the monitor verdict plus the minimal schedule
/// that reproduces it.
#[derive(Clone, Debug)]
pub struct ShrunkViolation {
    /// The violation found on the full run.
    pub violation: Violation,
    /// Recorded schedule length before shrinking.
    pub original_len: usize,
    /// The 1-minimal reproducing schedule.
    pub minimal: Vec<ScheduleEvent>,
}

/// Re-runs `scenario` with schedule recording; if a safety monitor
/// fails, delta-debugs the recorded schedule down to a minimal trace
/// that still violates the *same property* and returns it. `None` if
/// the run was safe.
pub fn shrink_first_violation(scenario: &Scenario) -> Option<ShrunkViolation> {
    let mut sim = scenario.prepare(true);
    let report = scenario.drive(&mut sim);
    let violation = report.violations.first()?.clone();
    let schedule = sim.schedule().expect("recording was enabled").to_vec();
    let property = violation.property;
    let props = scenario.correct_proposals().to_vec();
    let still_fails = move |s: &Simulation| match property {
        "Agreement" => monitor::check_agreement(s).is_err(),
        "Validity" => monitor::check_validity(s, &props).is_err(),
        "BV-Justification" => monitor::check_bv_justification(s).is_err(),
        _ => false,
    };
    let minimal =
        shrink::shrink_schedule(scenario.params, &scenario.proposals, &schedule, still_fails)
            .unwrap_or_else(|| schedule.clone());
    Some(ShrunkViolation {
        violation,
        original_len: schedule.len(),
        minimal,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_scenario_within_resilience_is_safe() {
        let scenario = Scenario::new(
            SimParams { n: 4, t: 1, f: 1 },
            StrategyKind::Equivocator,
            FaultScheduleKind::Lossy,
            5,
        );
        let (_, report) = scenario.run();
        assert!(
            report.is_safe(),
            "{}: {:?}",
            report.label,
            report.violations
        );
    }

    #[test]
    fn labels_are_reproducible_descriptions() {
        let s = Scenario::new(
            SimParams { n: 7, t: 2, f: 2 },
            StrategyKind::Staller,
            FaultScheduleKind::Partitioned,
            42,
        );
        assert_eq!(
            s.label(),
            "n=7 t=2 f=2 strategy=staller faults=partitioned seed=42"
        );
    }

    #[test]
    fn standard_plan_covers_the_full_matrix() {
        let plan = FaultPlan::standard(1);
        // 3 sizes × 5 strategies × 4 fault schedules.
        assert_eq!(plan.scenarios.len(), 60);
        // All seeds distinct (independent randomness per cell).
        let mut seeds: Vec<u64> = plan.scenarios.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 60);
    }

    #[test]
    fn misparameterized_system_violates_and_shrinks() {
        // t = 1 ≥ n/3 at n = 3: the equivocator splits the two correct
        // processes. Scan a few seeds for a schedule that realises the
        // violation, then require the shrinker to reduce it.
        let params = SimParams { n: 3, t: 1, f: 1 };
        let found = (0..50).find_map(|seed| {
            let mut scenario = Scenario::new(
                params,
                StrategyKind::Equivocator,
                FaultScheduleKind::Reliable,
                seed,
            );
            scenario.proposals = vec![0, 1, 0];
            scenario.max_deliveries = 5_000;
            shrink_first_violation(&scenario)
        });
        let shrunk = found.expect("broken resilience must be observable");
        assert_eq!(shrunk.violation.property, "Agreement");
        assert!(
            shrunk.minimal.len() < shrunk.original_len,
            "shrinker made no progress: {} -> {}",
            shrunk.original_len,
            shrunk.minimal.len()
        );
        // The minimal trace must still reproduce on replay.
        let sim = shrink::replay(params, &[0, 1, 0], &shrunk.minimal);
        assert!(monitor::check_agreement(&sim).is_err());
    }
}
