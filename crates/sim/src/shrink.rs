//! Schedule shrinking: reduce a recorded violating run to a minimal
//! reproducing trace.
//!
//! A run recorded with [`Simulation::record_schedule`] is a flat list of
//! [`ScheduleEvent`]s — Byzantine injections, network deliveries, and
//! retransmissions. Replaying that list against a *fresh* simulation
//! (no fault layer, no adversary, no scheduler) reproduces the exact
//! protocol-state evolution: correct processes are deterministic, drops
//! simply never appear as `Deliver` events, duplicate deliveries are
//! idempotent, and delayed messages are captured by their (late)
//! position in the list.
//!
//! Shrinking then minimises the list while a caller-supplied predicate
//! (e.g. "Agreement still fails") holds:
//!
//! 1. **Prefix binary search** — a violation is monotone in trace
//!    prefixes (once two processes have decided differently, nothing
//!    un-decides them), so the shortest failing prefix is found with
//!    `O(log n)` replays;
//! 2. **ddmin** (Zeller–Hildebrandt delta debugging) — removes
//!    ever-smaller chunks of the remaining events until the list is
//!    1-minimal: removing any single event makes the violation vanish.

use crate::simulation::{ScheduleEvent, SimParams, Simulation};

/// Replays a recorded schedule against a fresh simulation and returns
/// the resulting state. Events that no longer apply (a `Deliver` whose
/// message was never sent in the reduced run) are skipped.
pub fn replay(params: SimParams, proposals: &[u8], schedule: &[ScheduleEvent]) -> Simulation {
    let mut sim = Simulation::new(params, proposals);
    for event in schedule {
        sim.apply_event(event);
    }
    sim
}

/// Shrinks `schedule` to a minimal sub-list whose replay still
/// satisfies `still_fails`. Returns `None` if the *full* schedule does
/// not reproduce (which would indicate the run was not recorded from
/// the start).
///
/// The result is 1-minimal: dropping any single remaining event makes
/// the predicate flip.
pub fn shrink_schedule(
    params: SimParams,
    proposals: &[u8],
    schedule: &[ScheduleEvent],
    still_fails: impl Fn(&Simulation) -> bool,
) -> Option<Vec<ScheduleEvent>> {
    let test = |events: &[ScheduleEvent]| still_fails(&replay(params, proposals, events));
    if !test(schedule) {
        return None;
    }

    // Phase 1: shortest failing prefix.
    let mut lo = 0usize;
    let mut hi = schedule.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if test(&schedule[..mid]) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let mut current: Vec<ScheduleEvent> = schedule[..hi].to_vec();

    // Phase 2: ddmin over the prefix.
    let mut granularity = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let complement: Vec<ScheduleEvent> = current[..start]
                .iter()
                .chain(&current[end..])
                .copied()
                .collect();
            if test(&complement) {
                current = complement;
                granularity = granularity.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if granularity >= current.len() {
                break; // 1-minimal
            }
            granularity = (granularity * 2).min(current.len());
        }
    }
    Some(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Payload, ProcessId};
    use crate::process::Event;
    use crate::simulation::RandomScheduler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const P: SimParams = SimParams { n: 4, t: 1, f: 1 };
    const PROPS: [u8; 4] = [0, 1, 0, 0];

    fn recorded_run(seed: u64) -> Simulation {
        let mut sim = Simulation::new(P, &PROPS);
        sim.record_schedule();
        sim.inject_broadcast(ProcessId(3), Payload::Bv { round: 1, value: 1 });
        let mut sched = RandomScheduler::new(StdRng::seed_from_u64(seed));
        let _ = sim.run(&mut sched, 5_000);
        sim
    }

    fn p0_echoed_one(sim: &Simulation) -> bool {
        sim.trace().iter().any(|e| {
            matches!(
                e,
                Event::BvEcho {
                    process: ProcessId(0),
                    round: 1,
                    value: 1,
                }
            )
        })
    }

    #[test]
    fn replay_reproduces_the_recorded_run() {
        let original = recorded_run(11);
        let schedule = original.schedule().unwrap().to_vec();
        let replayed = replay(P, &PROPS, &schedule);
        assert_eq!(replayed.decisions(), original.decisions());
        assert_eq!(replayed.trace(), original.trace());
    }

    #[test]
    fn shrinking_yields_a_small_one_minimal_trace() {
        let original = recorded_run(11);
        assert!(p0_echoed_one(&original), "p1 + the Byzantine suffice");
        let schedule = original.schedule().unwrap().to_vec();
        let minimal =
            shrink_schedule(P, &PROPS, &schedule, p0_echoed_one).expect("full schedule reproduces");
        assert!(p0_echoed_one(&replay(P, &PROPS, &minimal)));
        // The echo needs t+1 = 2 distinct senders of value 1 at p0: one
        // injection plus one delivery of p1's initial broadcast — plus
        // at most the delivery of the injected copy itself.
        assert!(
            minimal.len() <= 3,
            "expected a tiny trace, got {} events: {minimal:?}",
            minimal.len()
        );
        // 1-minimality: dropping any single event breaks reproduction.
        for skip in 0..minimal.len() {
            let mut reduced = minimal.clone();
            reduced.remove(skip);
            assert!(
                !p0_echoed_one(&replay(P, &PROPS, &reduced)),
                "event {skip} was redundant"
            );
        }
    }

    #[test]
    fn non_reproducing_schedule_is_rejected() {
        let original = recorded_run(11);
        let schedule = original.schedule().unwrap().to_vec();
        assert!(shrink_schedule(P, &PROPS, &schedule, |_| false).is_none());
    }
}
