//! Message types of the DBFT binary consensus (paper Fig. 1 + Alg. 1).

use std::fmt;

use serde::{Deserialize, Serialize};

/// A process identifier (`p₀ … pₙ₋₁`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ProcessId(pub usize);

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A set of binary values — the type of `contestants` and `qualifiers`
/// in Algorithm 1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub struct ValueSet {
    bits: u8,
}

impl ValueSet {
    /// The empty set.
    pub fn empty() -> ValueSet {
        ValueSet::default()
    }

    /// The singleton `{v}`.
    ///
    /// # Panics
    ///
    /// Panics if `v > 1`.
    pub fn singleton(v: u8) -> ValueSet {
        let mut s = ValueSet::empty();
        s.insert(v);
        s
    }

    /// The full set `{0, 1}`.
    pub fn both() -> ValueSet {
        ValueSet { bits: 0b11 }
    }

    /// Inserts a value.
    ///
    /// # Panics
    ///
    /// Panics if `v > 1`.
    pub fn insert(&mut self, v: u8) {
        assert!(v <= 1, "binary value");
        self.bits |= 1 << v;
    }

    /// Whether `v` is in the set.
    pub fn contains(&self, v: u8) -> bool {
        v <= 1 && self.bits & (1 << v) != 0
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Whether `self ⊆ other`.
    pub fn subset_of(&self, other: &ValueSet) -> bool {
        self.bits & !other.bits == 0
    }

    /// Set union.
    pub fn union(&self, other: &ValueSet) -> ValueSet {
        ValueSet {
            bits: self.bits | other.bits,
        }
    }

    /// The single element, if the set is a singleton.
    pub fn as_singleton(&self) -> Option<u8> {
        match self.bits {
            0b01 => Some(0),
            0b10 => Some(1),
            _ => None,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Iterates over the values in the set.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0..=1).filter(|&v| self.contains(v))
    }
}

impl fmt::Display for ValueSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for v in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// A protocol message payload. Every message is tagged with its round
/// (the algorithms are communication-closed, §2 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Payload {
    /// `(BV, ⟨v, i⟩)` — a binary-value-broadcast message (Fig. 1).
    Bv {
        /// The round whose bv-broadcast instance this belongs to.
        round: u64,
        /// The binary value.
        value: u8,
    },
    /// `(aux, ⟨contestants, i⟩)` — the auxiliary message of Alg. 1,
    /// line 8.
    Aux {
        /// The round.
        round: u64,
        /// The sender's `contestants` snapshot.
        values: ValueSet,
    },
}

impl Payload {
    /// The round the payload belongs to.
    pub fn round(&self) -> u64 {
        match self {
            Payload::Bv { round, .. } | Payload::Aux { round, .. } => *round,
        }
    }
}

/// A message in flight.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Envelope {
    /// Sender.
    pub from: ProcessId,
    /// Receiver.
    pub to: ProcessId,
    /// Payload.
    pub payload: Payload,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_set_operations() {
        let mut s = ValueSet::empty();
        assert!(s.is_empty());
        s.insert(0);
        assert!(s.contains(0));
        assert!(!s.contains(1));
        assert_eq!(s.as_singleton(), Some(0));
        s.insert(1);
        assert_eq!(s, ValueSet::both());
        assert_eq!(s.as_singleton(), None);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn subset_and_union() {
        let zero = ValueSet::singleton(0);
        let both = ValueSet::both();
        assert!(zero.subset_of(&both));
        assert!(!both.subset_of(&zero));
        assert!(ValueSet::empty().subset_of(&zero));
        assert_eq!(zero.union(&ValueSet::singleton(1)), both);
    }

    #[test]
    fn display() {
        assert_eq!(ValueSet::both().to_string(), "{0,1}");
        assert_eq!(ValueSet::singleton(1).to_string(), "{1}");
        assert_eq!(ValueSet::empty().to_string(), "{}");
    }

    #[test]
    #[should_panic(expected = "binary value")]
    fn non_binary_rejected() {
        ValueSet::singleton(2);
    }
}
