//! The Byzantine strategy library: adversaries that drive the faulty
//! processes automatically.
//!
//! The seed simulator only supported *scripted* Byzantine behaviour
//! (manual [`inject`](crate::Simulation::inject) calls, as in the
//! Lemma 7 reproduction). An [`Adversary`] closes the loop: before each
//! scheduling step it observes the system through a restricted
//! [`AdversaryView`] — Byzantine processes legitimately see every
//! message sent to them, so exposing rounds/estimates/pending traffic
//! is a *fair* model, not an omniscient one — and injects whatever its
//! strategy calls for.
//!
//! Strategies are intentionally diverse along the axes the paper's
//! properties care about:
//!
//! * [`Silent`] — crash-like: contributes nothing (tests the `n − t`
//!   quorums' tolerance of missing senders);
//! * [`Equivocator`] — splits the correct processes in half and tells
//!   each half a different value, in both `BV` and `aux` messages
//!   (attacks Agreement through bv-broadcast's `2t+1` justification);
//! * [`TargetedLiar`] — picks one victim and feeds it the opposite of
//!   what everyone else is told (attacks Agreement through asymmetry);
//! * [`ValueFlipSpammer`] — floods alternating values at plausible
//!   rounds on a delivery-count cadence (attacks Validity/Justification
//!   by trying to launder a value no correct process proposed);
//! * [`Staller`] — the Lemma 7 shape: keeps the value *opposite* to
//!   each round's parity alive so `qualifiers` stays mixed and no round
//!   decides (attacks Termination; harmless under the paper's fairness
//!   assumption, i.e. the [`GoodRoundScheduler`](crate::GoodRoundScheduler)).
//!
//! All strategies bound their injections (once per round, or on a
//! delivery cadence), so runs still make progress and the pending pool
//! drains.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::message::{Envelope, Payload, ProcessId, ValueSet};
use crate::simulation::{SimParams, Simulation};

/// What an adversary may see and do. A restricted, mutation-safe facade
/// over the simulation: reads are what real Byzantine processes could
/// observe (their own inboxes — approximated here by global state, the
/// standard strong-adversary model), writes are message injections
/// from Byzantine senders only ([`Simulation::inject`] enforces that).
pub struct AdversaryView<'a> {
    sim: &'a mut Simulation,
}

impl<'a> AdversaryView<'a> {
    pub(crate) fn new(sim: &'a mut Simulation) -> AdversaryView<'a> {
        AdversaryView { sim }
    }

    /// System parameters.
    pub fn params(&self) -> SimParams {
        self.sim.params()
    }

    /// Ids of the Byzantine processes.
    pub fn byzantine_ids(&self) -> Vec<ProcessId> {
        (0..self.sim.params().n)
            .map(ProcessId)
            .filter(|&p| self.sim.is_byzantine(p))
            .collect()
    }

    /// Ids of the correct processes.
    pub fn correct_ids(&self) -> Vec<ProcessId> {
        self.sim.correct_ids()
    }

    /// Current round of a correct process.
    pub fn round_of(&self, p: ProcessId) -> u64 {
        self.sim.process(p).round()
    }

    /// Current estimate of a correct process.
    pub fn estimate_of(&self, p: ProcessId) -> u8 {
        self.sim.process(p).estimate()
    }

    /// The highest round any correct process has reached.
    pub fn max_round(&self) -> u64 {
        self.correct_ids()
            .iter()
            .map(|&p| self.round_of(p))
            .max()
            .unwrap_or(1)
    }

    /// The lowest round any correct process is still in.
    pub fn min_round(&self) -> u64 {
        self.correct_ids()
            .iter()
            .map(|&p| self.round_of(p))
            .min()
            .unwrap_or(1)
    }

    /// Total deliveries so far (the simulation clock).
    pub fn deliveries(&self) -> u64 {
        self.sim.deliveries()
    }

    /// The in-flight messages (read-only).
    pub fn pending(&self) -> &[Envelope] {
        self.sim.pending()
    }

    /// Injects one message from a Byzantine sender.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not Byzantine.
    pub fn inject(&mut self, from: ProcessId, to: ProcessId, payload: Payload) {
        self.sim.inject(from, to, payload);
    }

    /// Injects `payload` from a Byzantine sender to every process.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not Byzantine.
    pub fn inject_broadcast(&mut self, from: ProcessId, payload: Payload) {
        self.sim.inject_broadcast(from, payload);
    }
}

/// A Byzantine strategy, consulted before every scheduling step.
pub trait Adversary {
    /// A short stable name (used in reports).
    fn name(&self) -> &'static str;

    /// Observes the system and injects messages (or not).
    fn step(&mut self, view: &mut AdversaryView<'_>);
}

/// Crash-like: the Byzantine processes never send anything.
#[derive(Clone, Copy, Debug, Default)]
pub struct Silent;

impl Adversary for Silent {
    fn name(&self) -> &'static str {
        "silent"
    }

    fn step(&mut self, _view: &mut AdversaryView<'_>) {}
}

/// The classic DBFT equivocation: once per round per Byzantine process,
/// support *both* values at the `BV` layer (so either value can clear
/// the `2t+1` delivery threshold somewhere) while splitting the `aux`
/// votes — one half of the correct processes is told `{0}`, the other
/// half `{1}`. Within resilience (`t < n/3`) the `n−t` aux quorums
/// intersect in a correct process and Agreement holds; at `t ≥ n/3`
/// this is exactly the strategy that makes two correct processes decide
/// differently.
#[derive(Clone, Debug, Default)]
pub struct Equivocator {
    acted: HashSet<(ProcessId, u64)>,
}

impl Equivocator {
    /// Creates the strategy.
    pub fn new() -> Equivocator {
        Equivocator::default()
    }
}

impl Adversary for Equivocator {
    fn name(&self) -> &'static str {
        "equivocator"
    }

    fn step(&mut self, view: &mut AdversaryView<'_>) {
        let round = view.max_round();
        let correct = view.correct_ids();
        let half = correct.len() / 2;
        for from in view.byzantine_ids() {
            if !self.acted.insert((from, round)) {
                continue;
            }
            for (i, &to) in correct.iter().enumerate() {
                view.inject(from, to, Payload::Bv { round, value: 0 });
                view.inject(from, to, Payload::Bv { round, value: 1 });
                view.inject(
                    from,
                    to,
                    Payload::Aux {
                        round,
                        values: ValueSet::singleton(u8::from(i >= half)),
                    },
                );
            }
        }
    }
}

/// Feeds one victim the opposite of what everyone else is told: the
/// victim hears the negation of its own estimate, the rest hear the
/// estimate itself.
#[derive(Clone, Debug)]
pub struct TargetedLiar {
    victim: ProcessId,
    acted: HashSet<(ProcessId, u64)>,
}

impl TargetedLiar {
    /// Creates the strategy against the given victim (clamped to a
    /// correct id at step time — a Byzantine victim would be pointless).
    pub fn new(victim: ProcessId) -> TargetedLiar {
        TargetedLiar {
            victim,
            acted: HashSet::new(),
        }
    }
}

impl Adversary for TargetedLiar {
    fn name(&self) -> &'static str {
        "targeted-liar"
    }

    fn step(&mut self, view: &mut AdversaryView<'_>) {
        let correct = view.correct_ids();
        let victim = if correct.contains(&self.victim) {
            self.victim
        } else {
            match correct.first() {
                Some(&p) => p,
                None => return,
            }
        };
        let round = view.round_of(victim);
        let lie = 1 - view.estimate_of(victim);
        for from in view.byzantine_ids() {
            if !self.acted.insert((from, round)) {
                continue;
            }
            for &to in &correct {
                let value = if to == victim { lie } else { 1 - lie };
                view.inject(from, to, Payload::Bv { round, value });
                view.inject(
                    from,
                    to,
                    Payload::Aux {
                        round,
                        values: ValueSet::singleton(value),
                    },
                );
            }
        }
    }
}

/// Floods alternating binary values at plausible rounds, one injection
/// per Byzantine process every `cadence` deliveries. Tries to launder a
/// value no correct process proposed (the BV-Justification attack) and
/// to re-order quorum formation.
#[derive(Clone, Debug)]
pub struct ValueFlipSpammer {
    rng: StdRng,
    cadence: u64,
    next_at: u64,
    value: u8,
}

impl ValueFlipSpammer {
    /// Creates the strategy with the given RNG seed. `cadence` is in
    /// deliveries; it is clamped to at least 1.
    pub fn new(seed: u64, cadence: u64) -> ValueFlipSpammer {
        ValueFlipSpammer {
            rng: StdRng::seed_from_u64(seed),
            cadence: cadence.max(1),
            next_at: 0,
            value: 1,
        }
    }
}

impl Adversary for ValueFlipSpammer {
    fn name(&self) -> &'static str {
        "value-flip-spammer"
    }

    fn step(&mut self, view: &mut AdversaryView<'_>) {
        if view.deliveries() < self.next_at {
            return;
        }
        self.next_at = view.deliveries() + self.cadence;
        let n = view.params().n;
        let max_round = view.max_round();
        for from in view.byzantine_ids() {
            self.value = 1 - self.value;
            let round = max_round.saturating_sub(self.rng.gen_range(0..2)).max(1);
            let to = ProcessId(self.rng.gen_range(0..n));
            let payload = if self.rng.gen_bool(0.5) {
                Payload::Bv {
                    round,
                    value: self.value,
                }
            } else {
                Payload::Aux {
                    round,
                    values: ValueSet::singleton(self.value),
                }
            };
            view.inject(from, to, payload);
        }
    }
}

/// The Lemma 7 shape, generalised: in every round, keep the value
/// *opposite* to the round's parity alive (`BV` support plus `aux`
/// votes for it), so `qualifiers` tends to stay `{0,1}` or the wrong
/// singleton and the decision guard `qualifiers = {r mod 2}` never
/// fires. Under an unfair scheduler this delays termination
/// indefinitely; under the paper's fairness assumption (Definition 3 —
/// the [`GoodRoundScheduler`](crate::GoodRoundScheduler)) it is
/// harmless, which is exactly Theorem 6.
#[derive(Clone, Debug, Default)]
pub struct Staller {
    acted: HashSet<(ProcessId, u64)>,
}

impl Staller {
    /// Creates the strategy.
    pub fn new() -> Staller {
        Staller::default()
    }
}

impl Adversary for Staller {
    fn name(&self) -> &'static str {
        "staller"
    }

    fn step(&mut self, view: &mut AdversaryView<'_>) {
        let round = view.min_round();
        let poison = 1 - (round % 2) as u8;
        for from in view.byzantine_ids() {
            if !self.acted.insert((from, round)) {
                continue;
            }
            view.inject_broadcast(
                from,
                Payload::Bv {
                    round,
                    value: poison,
                },
            );
            view.inject_broadcast(
                from,
                Payload::Aux {
                    round,
                    values: ValueSet::singleton(poison),
                },
            );
        }
    }
}

/// Named strategies for scenario sweeps. Each expands to a boxed
/// [`Adversary`] parameterized by seed and system size.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StrategyKind {
    /// [`Silent`].
    Silent,
    /// [`Equivocator`].
    Equivocator,
    /// [`TargetedLiar`] (victim: process 0).
    TargetedLiar,
    /// [`ValueFlipSpammer`] (cadence 2).
    ValueFlipSpammer,
    /// [`Staller`].
    Staller,
}

impl StrategyKind {
    /// All named strategies, for sweeps.
    pub fn all() -> [StrategyKind; 5] {
        [
            StrategyKind::Silent,
            StrategyKind::Equivocator,
            StrategyKind::TargetedLiar,
            StrategyKind::ValueFlipSpammer,
            StrategyKind::Staller,
        ]
    }

    /// A short stable name (used in reports).
    pub fn name(&self) -> &'static str {
        match self {
            StrategyKind::Silent => "silent",
            StrategyKind::Equivocator => "equivocator",
            StrategyKind::TargetedLiar => "targeted-liar",
            StrategyKind::ValueFlipSpammer => "value-flip-spammer",
            StrategyKind::Staller => "staller",
        }
    }

    /// Builds the strategy for a concrete system.
    pub fn build(&self, seed: u64, _params: SimParams) -> Box<dyn Adversary> {
        match self {
            StrategyKind::Silent => Box::new(Silent),
            StrategyKind::Equivocator => Box::new(Equivocator::new()),
            StrategyKind::TargetedLiar => Box::new(TargetedLiar::new(ProcessId(0))),
            StrategyKind::ValueFlipSpammer => Box::new(ValueFlipSpammer::new(seed, 2)),
            StrategyKind::Staller => Box::new(Staller::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor;
    use crate::simulation::{GoodRoundScheduler, Outcome, RandomScheduler};

    fn proposals(n: usize, seed: u64) -> Vec<u8> {
        (0..n).map(|i| ((i as u64 ^ seed) % 2) as u8).collect()
    }

    #[test]
    fn every_strategy_preserves_safety_at_4_1_1() {
        let params = SimParams { n: 4, t: 1, f: 1 };
        for kind in StrategyKind::all() {
            for seed in 0..5 {
                let props = proposals(4, seed);
                let mut sim = Simulation::new(params, &props);
                let mut adv = kind.build(seed, params);
                let mut sched = RandomScheduler::new(StdRng::seed_from_u64(seed));
                let _ = sim.run_with_adversary(&mut sched, adv.as_mut(), 200_000);
                monitor::check_safety(&sim, &props[..3])
                    .unwrap_or_else(|v| panic!("{} seed {seed}: {v}", kind.name()));
            }
        }
    }

    #[test]
    fn every_strategy_terminates_under_fairness() {
        let params = SimParams { n: 4, t: 1, f: 1 };
        for kind in StrategyKind::all() {
            let props = [0, 1, 1, 0];
            let mut sim = Simulation::new(params, &props);
            let mut adv = kind.build(7, params);
            let mut sched = GoodRoundScheduler::new();
            let outcome = sim.run_with_adversary(&mut sched, adv.as_mut(), 1_000_000);
            assert_eq!(outcome, Outcome::AllDecided, "{}", kind.name());
        }
    }

    #[test]
    fn equivocator_cannot_break_agreement_within_resilience() {
        let params = SimParams { n: 7, t: 2, f: 2 };
        for seed in 0..5 {
            let props = proposals(7, seed);
            let mut sim = Simulation::new(params, &props);
            let mut adv = Equivocator::new();
            let mut sched = RandomScheduler::new(StdRng::seed_from_u64(seed));
            let _ = sim.run_with_adversary(&mut sched, &mut adv, 400_000);
            monitor::check_agreement(&sim).unwrap();
        }
    }

    #[test]
    fn staller_is_bounded_per_round() {
        // The staller injects once per (process, round): with a budget
        // the run ends without flooding the pending pool unboundedly.
        let params = SimParams { n: 4, t: 1, f: 1 };
        let mut sim = Simulation::new(params, &[0, 0, 1, 0]);
        let mut adv = Staller::new();
        let mut sched = RandomScheduler::new(StdRng::seed_from_u64(3));
        let _ = sim.run_with_adversary(&mut sched, &mut adv, 50_000);
        monitor::check_safety(&sim, &[0, 0, 1]).unwrap();
    }
}
