//! Trace monitors: the consensus properties (§2) and the bv-broadcast
//! properties (§3.2) checked on concrete executions.

use std::collections::{HashMap, HashSet};

use crate::message::ProcessId;
use crate::process::Event;
use crate::simulation::Simulation;

/// A monitor violation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Violation {
    /// Which property failed.
    pub property: &'static str,
    /// Human-readable details.
    pub details: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} violated: {}", self.property, self.details)
    }
}

impl std::error::Error for Violation {}

/// **Agreement**: no two correct processes decide different values.
pub fn check_agreement(sim: &Simulation) -> Result<(), Violation> {
    let mut decided: Option<(ProcessId, u8)> = None;
    for (i, d) in sim.decisions().into_iter().enumerate() {
        if let Some(d) = d {
            match decided {
                None => decided = Some((ProcessId(i), d.value)),
                Some((first, v)) if v != d.value => {
                    return Err(Violation {
                        property: "Agreement",
                        details: format!("{first} decided {v} but p{i} decided {}", d.value),
                    })
                }
                _ => {}
            }
        }
    }
    Ok(())
}

/// **Validity**: if all correct processes propose the same value, no
/// other value is decided. (`proposals` are the correct processes'
/// inputs, in id order.)
pub fn check_validity(sim: &Simulation, proposals: &[u8]) -> Result<(), Violation> {
    let unanimous = proposals.windows(2).all(|w| w[0] == w[1]);
    if !unanimous {
        return Ok(()); // both values admissible
    }
    let Some(&v) = proposals.first() else {
        return Ok(());
    };
    for (i, d) in sim.decisions().into_iter().enumerate() {
        if let Some(d) = d {
            if d.value != v {
                return Err(Violation {
                    property: "Validity",
                    details: format!("all correct proposed {v} but p{i} decided {}", d.value),
                });
            }
        }
    }
    Ok(())
}

/// **Termination** (under a budget): every correct process decided.
pub fn check_termination(sim: &Simulation) -> Result<(), Violation> {
    if sim.all_decided() {
        Ok(())
    } else {
        let undecided: Vec<String> = sim
            .correct_ids()
            .into_iter()
            .filter(|&p| sim.process(p).decision().is_none())
            .map(|p| p.to_string())
            .collect();
        Err(Violation {
            property: "Termination",
            details: format!("undecided: {}", undecided.join(", ")),
        })
    }
}

/// **BV-Justification** on the trace: every value bv-delivered by a
/// correct process in round `r` was bv-broadcast (as an estimate) by
/// some correct process in round `r`. (Echoes cannot launder a purely
/// Byzantine value: `t+1` distinct senders include a correct one.)
pub fn check_bv_justification(sim: &Simulation) -> Result<(), Violation> {
    let mut broadcast: HashSet<(u64, u8)> = HashSet::new();
    for e in sim.trace() {
        if let Event::BvBroadcast { round, value, .. } = e {
            broadcast.insert((*round, *value));
        }
    }
    for e in sim.trace() {
        if let Event::BvDeliver {
            process,
            round,
            value,
            ..
        } = e
        {
            if !broadcast.contains(&(*round, *value)) {
                return Err(Violation {
                    property: "BV-Justification",
                    details: format!(
                        "{process} delivered {value} in round {round}, which no correct \
                         process bv-broadcast"
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Finds a *(r mod 2)-good* round in the trace (Definition 2/3): a round
/// in which every correct process's **first** bv-delivery was the
/// round's parity value. Returns the first such round, if any. The
/// paper's fairness assumption is precisely that such a round exists in
/// every infinite execution.
pub fn find_good_round(sim: &Simulation) -> Option<u64> {
    // first_delivery[(round, process)] = value delivered first.
    let mut first_delivery: HashMap<(u64, ProcessId), u8> = HashMap::new();
    let mut rounds: HashSet<u64> = HashSet::new();
    for e in sim.trace() {
        if let Event::BvDeliver {
            process,
            round,
            value,
            first: true,
        } = e
        {
            first_delivery.insert((*round, *process), *value);
            rounds.insert(*round);
        }
    }
    let correct = sim.correct_ids();
    let mut rounds: Vec<u64> = rounds.into_iter().collect();
    rounds.sort_unstable();
    rounds.into_iter().find(|&r| {
        let parity = (r % 2) as u8;
        correct
            .iter()
            .all(|&p| first_delivery.get(&(r, p)) == Some(&parity))
    })
}

/// Runs all safety monitors; `proposals` are the correct processes'
/// inputs.
pub fn check_safety(sim: &Simulation, proposals: &[u8]) -> Result<(), Violation> {
    check_agreement(sim)?;
    check_validity(sim, proposals)?;
    check_bv_justification(sim)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::{GoodRoundScheduler, Outcome, RandomScheduler, SimParams, Simulation};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn monitors_pass_on_honest_runs() {
        let proposals = [0, 1, 1];
        let mut sim = Simulation::new(SimParams { n: 4, t: 1, f: 1 }, &[0, 1, 1, 0]);
        let mut sched = GoodRoundScheduler::new();
        assert_eq!(sim.run(&mut sched, 1_000_000), Outcome::AllDecided);
        check_safety(&sim, &proposals).unwrap();
        check_termination(&sim).unwrap();
    }

    #[test]
    fn good_round_scheduler_produces_good_round() {
        let mut sim = Simulation::new(SimParams { n: 4, t: 1, f: 1 }, &[0, 1, 0, 0]);
        let mut sched = GoodRoundScheduler::new();
        let _ = sim.run(&mut sched, 1_000_000);
        assert!(
            find_good_round(&sim).is_some(),
            "the fair scheduler must realise Definition 3"
        );
    }

    #[test]
    fn justification_holds_under_byzantine_noise() {
        for seed in 0..10 {
            let mut sim = Simulation::new(SimParams { n: 4, t: 1, f: 1 }, &[0, 0, 1, 0]);
            let mut sched = RandomScheduler::with_noise(StdRng::seed_from_u64(seed), 300);
            let _ = sim.run(&mut sched, 200_000);
            check_bv_justification(&sim).unwrap();
        }
    }

    #[test]
    fn lemma7_runs_pass_safety_but_not_termination() {
        let sim = crate::lemma7::run_lemma7(3);
        check_safety(&sim, &[0, 0, 1]).unwrap();
        assert!(check_termination(&sim).is_err());
        // And indeed no round was good: the adversary prevents fairness.
        assert_eq!(find_good_round(&sim), None);
    }
}
