//! A correct DBFT process: Fig. 1 (bv-broadcast) + Alg. 1 (consensus).

use std::collections::{BTreeMap, HashSet};

use serde::{Deserialize, Serialize};

use crate::message::{Envelope, Payload, ProcessId, ValueSet};

/// A decision: the value and the round it was first decided in.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Decision {
    /// The decided binary value.
    pub value: u8,
    /// The round of the first `decide()` invocation.
    pub round: u64,
}

/// Observable protocol events, recorded for the trace monitors.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Event {
    /// The process bv-broadcast its estimate at the start of a round.
    BvBroadcast {
        /// Acting process.
        process: ProcessId,
        /// Round.
        round: u64,
        /// Estimate broadcast.
        value: u8,
    },
    /// The process echoed a value seen from `t+1` distinct senders.
    BvEcho {
        /// Acting process.
        process: ProcessId,
        /// Round.
        round: u64,
        /// Echoed value.
        value: u8,
    },
    /// The process bv-delivered a value (added it to `contestants`).
    BvDeliver {
        /// Acting process.
        process: ProcessId,
        /// Round.
        round: u64,
        /// Delivered value.
        value: u8,
        /// Whether this was the round's first delivery at this process.
        first: bool,
    },
    /// The process broadcast its `aux` message (Alg. 1 line 8).
    AuxBroadcast {
        /// Acting process.
        process: ProcessId,
        /// Round.
        round: u64,
        /// The `contestants` snapshot sent.
        values: ValueSet,
    },
    /// The process completed a round (Alg. 1 line 9 satisfied).
    RoundComplete {
        /// Acting process.
        process: ProcessId,
        /// Completed round.
        round: u64,
        /// The `qualifiers` set.
        qualifiers: ValueSet,
        /// The estimate carried into the next round.
        new_estimate: u8,
    },
    /// The process decided.
    Decide {
        /// Acting process.
        process: ProcessId,
        /// Round of the decision.
        round: u64,
        /// Decided value.
        value: u8,
    },
}

/// Per-round protocol state.
#[derive(Clone, Debug, Default)]
struct RoundState {
    /// Distinct senders of `(BV, v)` per value.
    bv_received: [HashSet<ProcessId>; 2],
    /// Whether `v` has been (re-)broadcast already (Fig. 1, line 4).
    bv_echoed: [bool; 2],
    /// The delivered values (`contestants`).
    contestants: ValueSet,
    /// Whether the `aux` message was broadcast (Alg. 1, line 8).
    aux_sent: bool,
    /// First `aux` message per sender, in arrival order (Alg. 1's
    /// `favorites`; arrival order resolves the existential choice of
    /// line 9 the way the paper's Lemma 7 proof does: the first `n−t`
    /// qualifying entries).
    favorites: Vec<(ProcessId, ValueSet)>,
}

impl RoundState {
    fn has_favorite_from(&self, q: ProcessId) -> bool {
        self.favorites.iter().any(|&(p, _)| p == q)
    }
}

/// A correct process running the DBFT binary consensus (the
/// coordinator-free, safe variant of Alg. 1), built over the
/// bv-broadcast of Fig. 1.
///
/// Rounds are numbered from 1; round `r` favours the value `r mod 2`
/// (matching the paper's figures, where the first round of a superround
/// decides 1). The process never stops participating: after deciding it
/// keeps helping others (Alg. 1 keeps looping; the decision is simply
/// recorded once).
#[derive(Clone, Debug)]
pub struct DbftProcess {
    id: ProcessId,
    n: usize,
    t: usize,
    est: u8,
    round: u64,
    decision: Option<Decision>,
    rounds: BTreeMap<u64, RoundState>,
    events: Vec<Event>,
}

impl DbftProcess {
    /// Creates a process with its proposal and starts round 1 (the
    /// initial bv-broadcast is produced immediately).
    ///
    /// # Panics
    ///
    /// Panics if `proposal > 1` or `n < 1`.
    pub fn new(id: ProcessId, n: usize, t: usize, proposal: u8) -> (DbftProcess, Vec<Envelope>) {
        assert!(proposal <= 1, "binary proposal");
        assert!(n >= 1);
        let mut p = DbftProcess {
            id,
            n,
            t,
            est: proposal,
            round: 1,
            decision: None,
            rounds: BTreeMap::new(),
            events: Vec::new(),
        };
        let out = p.start_round();
        (p, out)
    }

    /// The process id.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// The current round.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The current estimate.
    pub fn estimate(&self) -> u8 {
        self.est
    }

    /// The decision, if any.
    pub fn decision(&self) -> Option<Decision> {
        self.decision
    }

    /// The values delivered (`contestants`) in the current round.
    pub fn contestants(&self) -> ValueSet {
        self.rounds
            .get(&self.round)
            .map(|s| s.contestants)
            .unwrap_or_default()
    }

    /// Drains the recorded events.
    pub fn take_events(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events)
    }

    fn broadcast(&self, payload: Payload) -> Vec<Envelope> {
        (0..self.n)
            .map(|j| Envelope {
                from: self.id,
                to: ProcessId(j),
                payload,
            })
            .collect()
    }

    fn parity(round: u64) -> u8 {
        (round % 2) as u8
    }

    fn start_round(&mut self) -> Vec<Envelope> {
        // Fig. 1, line 2: the initial broadcast counts as "already
        // broadcast" for the not-yet-re-broadcast check of line 4.
        let est = self.est;
        self.rounds.entry(self.round).or_default().bv_echoed[est as usize] = true;
        self.events.push(Event::BvBroadcast {
            process: self.id,
            round: self.round,
            value: self.est,
        });
        let mut out = self.broadcast(Payload::Bv {
            round: self.round,
            value: self.est,
        });
        // Buffered messages for this round may already let us progress.
        out.extend(self.progress());
        out
    }

    /// Re-emits the process's current-round protocol messages: every
    /// `BV` value it has already (re-)broadcast and, if sent, its `aux`
    /// message (carrying the current `contestants`, which is always a
    /// justified superset of the original snapshot).
    ///
    /// This is the sender side of retransmission-with-backoff: under a
    /// *lossy* network (the fault layer weakens the paper's reliable
    /// link assumption) a correct implementation periodically resends
    /// its round state so that any message lost to a bounded adversary
    /// is eventually delivered. Receivers are idempotent — `bv_received`
    /// is a set and only the first `aux` per sender counts — so
    /// retransmission never changes the protocol state machine, it only
    /// restores the reliable-delivery guarantee the proofs assume.
    pub fn retransmit(&self) -> Vec<Envelope> {
        let mut out = Vec::new();
        let round = self.round;
        if let Some(state) = self.rounds.get(&round) {
            for v in 0..=1u8 {
                if state.bv_echoed[v as usize] {
                    out.extend(self.broadcast(Payload::Bv { round, value: v }));
                }
            }
            if state.aux_sent {
                out.extend(self.broadcast(Payload::Aux {
                    round,
                    values: state.contestants,
                }));
            }
        } else {
            // Round state not yet materialised: resend the estimate.
            out.extend(self.broadcast(Payload::Bv {
                round,
                value: self.est,
            }));
        }
        out
    }

    /// Handles a received message, returning the messages it triggers.
    /// Messages for past rounds are discarded, messages for future
    /// rounds are buffered (communication closure, §2).
    pub fn handle(&mut self, from: ProcessId, payload: Payload) -> Vec<Envelope> {
        let round = payload.round();
        if round < self.round {
            return Vec::new();
        }
        let state = self.rounds.entry(round).or_default();
        match payload {
            Payload::Bv { value, .. } => {
                state.bv_received[value as usize].insert(from);
            }
            Payload::Aux { values, .. } => {
                if !state.has_favorite_from(from) && !values.is_empty() {
                    state.favorites.push((from, values));
                }
            }
        }
        if round == self.round {
            self.progress()
        } else {
            Vec::new()
        }
    }

    /// Runs the current round's guards to quiescence.
    fn progress(&mut self) -> Vec<Envelope> {
        let mut out = Vec::new();
        loop {
            let round = self.round;
            let t = self.t;
            let n = self.n;
            let state = self.rounds.entry(round).or_default();

            // Fig. 1, line 4: echo after t+1 distinct copies.
            let mut echoed_value = None;
            for v in 0..=1u8 {
                if !state.bv_echoed[v as usize] && state.bv_received[v as usize].len() > t {
                    state.bv_echoed[v as usize] = true;
                    echoed_value = Some(v);
                    break;
                }
            }
            if let Some(v) = echoed_value {
                self.events.push(Event::BvEcho {
                    process: self.id,
                    round,
                    value: v,
                });
                out.extend(self.broadcast(Payload::Bv { round, value: v }));
                continue; // self-delivery of the echo arrives via the network
            }

            // Fig. 1, line 6: deliver after 2t+1 distinct copies.
            let mut delivered = None;
            for v in 0..=1u8 {
                if !state.contestants.contains(v) && state.bv_received[v as usize].len() > 2 * t {
                    let first = state.contestants.is_empty();
                    state.contestants.insert(v);
                    delivered = Some((v, first));
                    break;
                }
            }
            if let Some((v, first)) = delivered {
                self.events.push(Event::BvDeliver {
                    process: self.id,
                    round,
                    value: v,
                    first,
                });
                continue;
            }

            // Alg. 1, lines 7–8: once contestants ≠ ∅, broadcast aux.
            if !state.aux_sent && !state.contestants.is_empty() {
                state.aux_sent = true;
                let snapshot = state.contestants;
                self.events.push(Event::AuxBroadcast {
                    process: self.id,
                    round,
                    values: snapshot,
                });
                out.extend(self.broadcast(Payload::Aux {
                    round,
                    values: snapshot,
                }));
                continue;
            }

            // Alg. 1, line 9: n−t aux messages whose union of values is
            // contained in contestants. We take the first n−t qualifying
            // senders in arrival order.
            if state.aux_sent {
                let contestants = state.contestants;
                let qualifying: Vec<ValueSet> = state
                    .favorites
                    .iter()
                    .filter(|(_, vs)| vs.subset_of(&contestants))
                    .map(|&(_, vs)| vs)
                    .take(n - t)
                    .collect();
                if qualifying.len() >= n - t {
                    let qualifiers = qualifying
                        .iter()
                        .fold(ValueSet::empty(), |acc, vs| acc.union(vs));
                    out.extend(self.complete_round(qualifiers));
                    continue;
                }
            }
            break;
        }
        out
    }

    /// Alg. 1, lines 10–14.
    fn complete_round(&mut self, qualifiers: ValueSet) -> Vec<Envelope> {
        let round = self.round;
        let parity = Self::parity(round);
        match qualifiers.as_singleton() {
            Some(v) => {
                self.est = v;
                if v == parity && self.decision.is_none() {
                    self.decision = Some(Decision { value: v, round });
                    self.events.push(Event::Decide {
                        process: self.id,
                        round,
                        value: v,
                    });
                }
            }
            None => {
                // qualifiers = {0, 1}: adopt the round's parity.
                self.est = parity;
            }
        }
        self.events.push(Event::RoundComplete {
            process: self.id,
            round,
            qualifiers,
            new_estimate: self.est,
        });
        self.rounds.remove(&round);
        self.round += 1;
        self.start_round()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Delivers every envelope among a set of correct processes (no
    /// Byzantine) in FIFO order — a fair schedule — until everyone
    /// decided or `max` deliveries. (LIFO would be an *unfair* schedule:
    /// three processes can run ahead forever while the fourth starves,
    /// which is legitimate asynchrony but not what these tests probe.)
    fn run_synchronously(processes: &mut [DbftProcess], pending: Vec<Envelope>, max: usize) {
        let mut queue: std::collections::VecDeque<Envelope> = pending.into();
        let mut steps = 0;
        while let Some(env) = queue.pop_front() {
            steps += 1;
            if steps > max {
                panic!("not decided after {max} deliveries");
            }
            let p = &mut processes[env.to.0];
            queue.extend(p.handle(env.from, env.payload));
            // Stop once everyone decided (processes keep helping, so the
            // message flow never quiesces by itself).
            if processes.iter().all(|p| p.decision().is_some()) {
                break;
            }
        }
    }

    fn spawn(n: usize, t: usize, proposals: &[u8]) -> (Vec<DbftProcess>, Vec<Envelope>) {
        let mut ps = Vec::new();
        let mut pending = Vec::new();
        for (i, &v) in proposals.iter().enumerate() {
            let (p, out) = DbftProcess::new(ProcessId(i), n, t, v);
            ps.push(p);
            pending.extend(out);
        }
        (ps, pending)
    }

    #[test]
    fn unanimous_zero_decides_zero() {
        // n = 4, t = 1, all correct, everyone proposes 0. Round 1
        // (parity 1) sets est to 0; round 2 (parity 0) decides 0.
        let (mut ps, pending) = spawn(4, 1, &[0, 0, 0, 0]);
        run_synchronously(&mut ps, pending, 100_000);
        for p in &ps {
            let d = p.decision().expect("decided");
            assert_eq!(d.value, 0);
            assert_eq!(d.round, 2);
        }
    }

    #[test]
    fn unanimous_one_decides_one_in_round_one() {
        let (mut ps, pending) = spawn(4, 1, &[1, 1, 1, 1]);
        run_synchronously(&mut ps, pending, 100_000);
        for p in &ps {
            let d = p.decision().expect("decided");
            assert_eq!(d.value, 1);
            assert_eq!(d.round, 1);
        }
    }

    #[test]
    fn mixed_proposals_agree() {
        let (mut ps, pending) = spawn(4, 1, &[0, 1, 0, 1]);
        run_synchronously(&mut ps, pending, 200_000);
        let decided: Vec<u8> = ps.iter().map(|p| p.decision().unwrap().value).collect();
        assert!(decided.windows(2).all(|w| w[0] == w[1]), "{decided:?}");
    }

    #[test]
    fn echo_happens_once_per_value() {
        let (mut ps, _) = spawn(4, 1, &[0, 0, 0, 0]);
        // Feed p0 the value 1 from t+1 = 2 distinct senders.
        let out1 = ps[0].handle(ProcessId(1), Payload::Bv { round: 1, value: 1 });
        assert!(out1.is_empty(), "one copy is not enough to echo");
        let out2 = ps[0].handle(ProcessId(2), Payload::Bv { round: 1, value: 1 });
        assert_eq!(out2.len(), 4, "echo broadcast to all");
        // A third copy triggers delivery (and hence the aux broadcast)
        // but no second echo of the same value.
        let out3 = ps[0].handle(ProcessId(3), Payload::Bv { round: 1, value: 1 });
        assert!(
            out3.iter()
                .all(|e| matches!(e.payload, Payload::Aux { .. })),
            "{out3:?}"
        );
    }

    #[test]
    fn delivery_needs_2t_plus_1() {
        let (mut ps, _) = spawn(4, 1, &[0, 0, 0, 0]);
        ps[0].handle(ProcessId(1), Payload::Bv { round: 1, value: 1 });
        ps[0].handle(ProcessId(2), Payload::Bv { round: 1, value: 1 });
        assert!(ps[0].contestants().is_empty());
        // The echo from p0 itself arrives (self-delivery via network).
        ps[0].handle(ProcessId(0), Payload::Bv { round: 1, value: 1 });
        assert!(ps[0].contestants().contains(1), "3 = 2t+1 distinct senders");
    }

    #[test]
    fn past_round_messages_are_discarded() {
        let (mut ps, pending) = spawn(4, 1, &[1, 1, 1, 1]);
        run_synchronously(&mut ps, pending, 100_000);
        let r = ps[0].round();
        let out = ps[0].handle(ProcessId(1), Payload::Bv { round: 1, value: 0 });
        assert!(out.is_empty());
        assert_eq!(ps[0].round(), r);
    }

    #[test]
    fn future_round_messages_are_buffered() {
        let (mut ps, _) = spawn(4, 1, &[0, 0, 0, 0]);
        // Messages for round 7 arrive early: no visible effect yet.
        for s in 1..4 {
            let out = ps[0].handle(ProcessId(s), Payload::Bv { round: 7, value: 1 });
            assert!(out.is_empty());
        }
        assert_eq!(ps[0].round(), 1);
    }

    #[test]
    fn aux_snapshot_is_first_delivery() {
        let (mut ps, _) = spawn(4, 1, &[0, 0, 0, 0]);
        for s in 1..4 {
            ps[0].handle(ProcessId(s), Payload::Bv { round: 1, value: 1 });
        }
        let events = ps[0].take_events();
        let aux = events
            .iter()
            .find_map(|e| match e {
                Event::AuxBroadcast { values, .. } => Some(*values),
                _ => None,
            })
            .expect("aux sent");
        assert_eq!(aux, ValueSet::singleton(1));
    }
}
