//! The non-termination adversary of the paper's Lemma 7 (Appendix B).
//!
//! With `n = 4`, `t = f = 1` and correct proposals `0, 0, 1`, a
//! Byzantine process plus a crafted delivery order keep the correct
//! estimates in a two-against-one split forever: in every round the two
//! majority holders carry `1 − (r mod 2)`, the round's parity value is
//! held by exactly one process, every process ends the round with
//! `qualifiers` that prevent a decision, and the pattern recurs with the
//! roles permuted. DBFT without the fairness assumption therefore never
//! terminates — which is exactly why the paper introduces the fair
//! bv-broadcast (Definition 3) before proving Theorem 6.

use crate::message::{Payload, ProcessId, ValueSet};
use crate::simulation::Simulation;

/// Drives one round of the Lemma 7 schedule.
///
/// `x1`, `x2` hold the majority value `a = 1 − (round mod 2)`; `y` holds
/// the parity value; `byz` is the Byzantine process. Returns the new
/// `(x1, x2, y)` role assignment for the next round.
///
/// # Panics
///
/// Panics if the expected messages are not in flight (i.e. the
/// simulation was not set up with the Lemma 7 preconditions).
fn run_round(
    sim: &mut Simulation,
    x1: ProcessId,
    x2: ProcessId,
    y: ProcessId,
    byz: ProcessId,
    round: u64,
) -> (ProcessId, ProcessId, ProcessId) {
    let parity = (round % 2) as u8;
    let a = 1 - parity;
    let bv = |value: u8| Payload::Bv { round, value };
    let aux = |v: u8| Payload::Aux {
        round,
        values: ValueSet::singleton(v),
    };
    let deliver = |sim: &mut Simulation, from: ProcessId, to: ProcessId, payload: Payload| {
        assert!(
            sim.deliver_matching(|e| e.from == from && e.to == to && e.payload == payload),
            "lemma7 script: missing {payload:?} from {from} to {to} in round {round}"
        );
    };

    // Step 1: x1 and x2 bv-deliver `a` first (from x1, x2 and the
    // Byzantine).
    sim.inject(byz, x1, bv(a));
    sim.inject(byz, x2, bv(a));
    for target in [x1, x2] {
        deliver(sim, x1, target, bv(a));
        deliver(sim, x2, target, bv(a));
        deliver(sim, byz, target, bv(a));
    }

    // Step 2: x2 and y bv-deliver the parity value: both see it from y
    // and the Byzantine; x2 echoes it, completing y's quorum.
    sim.inject(byz, x2, bv(parity));
    sim.inject(byz, y, bv(parity));
    deliver(sim, y, x2, bv(parity));
    deliver(sim, byz, x2, bv(parity)); // t+1 distinct: x2 echoes
    deliver(sim, x2, x2, bv(parity)); // own echo: 2t+1, x2 delivers
    deliver(sim, y, y, bv(parity));
    deliver(sim, byz, y, bv(parity));
    deliver(sim, x2, y, bv(parity)); // y delivers parity *first*

    // Step 3: y bv-delivers `a` second.
    deliver(sim, x1, y, bv(a));
    deliver(sim, x2, y, bv(a)); // t+1: y echoes a
    deliver(sim, y, y, bv(a)); // own echo: 2t+1, y delivers a

    // Step 4: aux quorums. x1 sees only {a}: qualifiers {a}, keeps a (no
    // decision: a is not the parity). x2 and y see mixed values:
    // qualifiers {0, 1}, estimate := parity.
    sim.inject(byz, x1, aux(a));
    deliver(sim, x1, x1, aux(a));
    deliver(sim, x2, x1, aux(a));
    deliver(sim, byz, x1, aux(a));

    sim.inject(byz, x2, aux(parity));
    deliver(sim, x1, x2, aux(a));
    deliver(sim, x2, x2, aux(a));
    deliver(sim, byz, x2, aux(parity));

    sim.inject(byz, y, aux(parity));
    deliver(sim, y, y, aux(parity));
    deliver(sim, byz, y, aux(parity));
    deliver(sim, x1, y, aux(a));

    // Flush stale messages of this round (discarded by communication
    // closure: everyone has advanced).
    while sim.deliver_matching(|e| e.payload.round() <= round) {}

    // New roles: x1 now holds `a`, which is round r+1's parity value, so
    // x1 plays y; x2 and y hold the new majority value.
    (x2, y, x1)
}

/// Runs `superrounds × 2` rounds of the Lemma 7 schedule on a fresh
/// `n = 4, t = f = 1` system with proposals `0, 0, 1` and asserts after
/// each round that **no** correct process has decided.
///
/// Returns the simulation for further inspection.
///
/// # Panics
///
/// Panics if a process decides (the schedule failed) or the scripted
/// messages are missing.
pub fn run_lemma7(superrounds: u64) -> Simulation {
    let params = crate::simulation::SimParams { n: 4, t: 1, f: 1 };
    let mut sim = Simulation::new(params, &[0, 0, 1, 0]);
    let byz = ProcessId(3);
    let (mut x1, mut x2, mut y) = (ProcessId(0), ProcessId(1), ProcessId(2));
    for round in 1..=superrounds * 2 {
        let (nx1, nx2, ny) = run_round(&mut sim, x1, x2, y, byz, round);
        x1 = nx1;
        x2 = nx2;
        y = ny;
        assert!(
            sim.decisions().iter().all(Option::is_none),
            "a process decided in round {round}: the adversary failed"
        );
        // The 2-vs-1 estimate split persists, with the singleton holding
        // the next round's parity value.
        let next_parity = ((round + 1) % 2) as u8;
        let estimates: Vec<u8> = sim
            .correct_ids()
            .iter()
            .map(|&p| sim.process(p).estimate())
            .collect();
        let count_parity = estimates.iter().filter(|&&e| e == next_parity).count();
        assert_eq!(
            count_parity, 1,
            "round {round}: estimates {estimates:?} lost the 2-vs-1 split"
        );
        assert_eq!(sim.process(y).estimate(), next_parity);
    }
    sim
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbft_does_not_terminate_without_fairness() {
        // 10 superrounds = 20 rounds of sustained non-termination.
        let sim = run_lemma7(10);
        assert!(sim.decisions().iter().all(Option::is_none));
        // All correct processes are in round 21.
        for p in sim.correct_ids() {
            assert_eq!(sim.process(p).round(), 21);
        }
    }

    #[test]
    fn estimates_cycle_with_period_two() {
        let sim = run_lemma7(3);
        // After an even number of rounds the multiset of estimates is
        // back to {0, 0, 1}.
        let mut estimates: Vec<u8> = sim
            .correct_ids()
            .iter()
            .map(|&p| sim.process(p).estimate())
            .collect();
        estimates.sort_unstable();
        assert_eq!(estimates, vec![0, 0, 1]);
    }
}
