//! The faulty-network layer: seed-deterministic message loss,
//! duplication, delay, and partition/heal schedules.
//!
//! The paper's algorithms assume a *reliable* asynchronous network —
//! every sent message is eventually delivered, in adversary-chosen
//! order. This module deliberately weakens that assumption so the
//! monitors can be stressed under realistic deployments: a
//! [`FaultConfig`] attached to a
//! [`Simulation`](crate::Simulation) intercepts every send and may
//! drop it (bounded, so eventual delivery is merely *delayed*, not
//! denied — the paper's model), duplicate it (receivers are idempotent,
//! so this tests exactly that), or defer it for a while. Partition
//! windows quarantine all traffic crossing a node cut until the heal
//! point, modelling transient network splits.
//!
//! All randomness is derived from the config's seed, so a scenario is
//! reproducible from `(params, proposals, FaultConfig, scheduler seed)`
//! alone. Time is measured in *deliveries* (the simulation's only
//! clock).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::message::{Envelope, ProcessId};
use crate::simulation::SimParams;

/// A transient network partition: between `start` and `heal`
/// (delivery-count timestamps), messages crossing the cut between
/// `side` and its complement are quarantined; they are released,
/// unharmed, at `heal`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// Delivery count at which the partition starts.
    pub start: u64,
    /// Delivery count at which it heals (exclusive).
    pub heal: u64,
    /// Process ids on one side of the cut (the complement forms the
    /// other side).
    pub side: Vec<ProcessId>,
}

impl Partition {
    /// Whether the partition is active at delivery-time `now`.
    pub fn active_at(&self, now: u64) -> bool {
        (self.start..self.heal).contains(&now)
    }

    /// Whether `env` crosses the cut.
    pub fn cuts(&self, env: &Envelope) -> bool {
        self.side.contains(&env.from) != self.side.contains(&env.to)
    }
}

/// Configuration of the faulty network. All probabilities are in
/// thousandths, all times in deliveries. The default is a perfectly
/// reliable network.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct FaultConfig {
    /// Seed of the fault layer's private RNG.
    pub seed: u64,
    /// Probability (×1000) that a sent message is dropped.
    pub drop_per_mille: u32,
    /// Upper bound on total drops. Keeping this finite preserves the
    /// reliable-network guarantee *eventually*; retransmission (see
    /// [`RetransmitPolicy`](crate::RetransmitPolicy)) restores liveness
    /// even when it is generous.
    pub max_drops: u64,
    /// Probability (×1000) that a sent message is duplicated.
    pub duplicate_per_mille: u32,
    /// Probability (×1000) that a sent message is delayed.
    pub delay_per_mille: u32,
    /// How long (in deliveries) a delayed message stays undeliverable.
    pub delay_deliveries: u64,
    /// Partition/heal schedule.
    pub partitions: Vec<Partition>,
}

/// What the fault layer decides to do with one sent message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fate {
    /// Put it in flight normally.
    Deliver,
    /// Lose it.
    Drop,
    /// Put two copies in flight.
    Duplicate,
    /// Hold it back until the given delivery count.
    Delay(u64),
}

/// The stateful fault layer owned by a simulation: the config, its
/// private RNG, and the drop budget already spent.
#[derive(Clone, Debug)]
pub struct FaultLayer {
    config: FaultConfig,
    rng: StdRng,
    drops: u64,
}

impl FaultLayer {
    /// Builds the layer from a config.
    pub fn new(config: FaultConfig) -> FaultLayer {
        let rng = StdRng::seed_from_u64(config.seed);
        FaultLayer {
            config,
            rng,
            drops: 0,
        }
    }

    /// The config.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Total messages dropped so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Decides the fate of a message sent at delivery-time `now`.
    pub fn route(&mut self, _env: &Envelope, now: u64) -> Fate {
        let c = &self.config;
        if c.drop_per_mille > 0
            && self.drops < c.max_drops
            && self.rng.gen_range(0..1000) < c.drop_per_mille
        {
            self.drops += 1;
            return Fate::Drop;
        }
        if c.duplicate_per_mille > 0 && self.rng.gen_range(0..1000) < c.duplicate_per_mille {
            return Fate::Duplicate;
        }
        if c.delay_per_mille > 0 && self.rng.gen_range(0..1000) < c.delay_per_mille {
            return Fate::Delay(now + c.delay_deliveries.max(1));
        }
        Fate::Deliver
    }

    /// If a partition active at `now` cuts `env`, returns the heal time
    /// at which the message may move again.
    pub fn quarantine_until(&self, env: &Envelope, now: u64) -> Option<u64> {
        self.config
            .partitions
            .iter()
            .filter(|p| p.active_at(now) && p.cuts(env))
            .map(|p| p.heal)
            .max()
    }
}

/// Named fault schedules for scenario sweeps. Each expands to a
/// concrete [`FaultConfig`] parameterized by seed and system size.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultScheduleKind {
    /// Reliable network (the paper's model).
    Reliable,
    /// Bounded loss plus mild delay: every message class is hit
    /// eventually, retransmission keeps the run live.
    Lossy,
    /// Heavy duplication and delay with aggressive reordering pressure.
    Chaotic,
    /// Two partition/heal windows isolating a minority, then a
    /// different minority.
    Partitioned,
}

impl FaultScheduleKind {
    /// All named schedules, for sweeps.
    pub fn all() -> [FaultScheduleKind; 4] {
        [
            FaultScheduleKind::Reliable,
            FaultScheduleKind::Lossy,
            FaultScheduleKind::Chaotic,
            FaultScheduleKind::Partitioned,
        ]
    }

    /// A short stable name (used in reports).
    pub fn name(&self) -> &'static str {
        match self {
            FaultScheduleKind::Reliable => "reliable",
            FaultScheduleKind::Lossy => "lossy",
            FaultScheduleKind::Chaotic => "chaotic",
            FaultScheduleKind::Partitioned => "partitioned",
        }
    }

    /// Expands to a concrete config for the given system.
    pub fn build(&self, seed: u64, params: SimParams) -> FaultConfig {
        match self {
            FaultScheduleKind::Reliable => FaultConfig {
                seed,
                ..FaultConfig::default()
            },
            FaultScheduleKind::Lossy => FaultConfig {
                seed,
                drop_per_mille: 80,
                max_drops: 40 * params.n as u64,
                delay_per_mille: 100,
                delay_deliveries: 50,
                ..FaultConfig::default()
            },
            FaultScheduleKind::Chaotic => FaultConfig {
                seed,
                drop_per_mille: 30,
                max_drops: 10 * params.n as u64,
                duplicate_per_mille: 200,
                delay_per_mille: 250,
                delay_deliveries: 120,
                ..FaultConfig::default()
            },
            FaultScheduleKind::Partitioned => {
                // Isolate the first ⌈n/3⌉ correct processes early on,
                // heal, then isolate a different minority later.
                let third = params.n.div_ceil(3);
                let first: Vec<ProcessId> = (0..third).map(ProcessId).collect();
                let second: Vec<ProcessId> = (third..2 * third).map(ProcessId).collect();
                FaultConfig {
                    seed,
                    partitions: vec![
                        Partition {
                            start: 40,
                            heal: 400,
                            side: first,
                        },
                        Partition {
                            start: 800,
                            heal: 1_400,
                            side: second,
                        },
                    ],
                    ..FaultConfig::default()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Payload;

    fn env(from: usize, to: usize) -> Envelope {
        Envelope {
            from: ProcessId(from),
            to: ProcessId(to),
            payload: Payload::Bv { round: 1, value: 0 },
        }
    }

    #[test]
    fn drops_respect_the_budget() {
        let mut layer = FaultLayer::new(FaultConfig {
            seed: 1,
            drop_per_mille: 1000,
            max_drops: 5,
            ..FaultConfig::default()
        });
        let mut dropped = 0;
        for i in 0..100 {
            if layer.route(&env(0, 1), i) == Fate::Drop {
                dropped += 1;
            }
        }
        assert_eq!(dropped, 5);
        assert_eq!(layer.drops(), 5);
    }

    #[test]
    fn reliable_config_never_touches_messages() {
        let mut layer =
            FaultLayer::new(FaultScheduleKind::Reliable.build(3, SimParams { n: 4, t: 1, f: 1 }));
        for i in 0..1000 {
            assert_eq!(layer.route(&env(0, 1), i), Fate::Deliver);
        }
    }

    #[test]
    fn routing_is_seed_deterministic() {
        let config = FaultScheduleKind::Chaotic.build(9, SimParams { n: 4, t: 1, f: 1 });
        let mut a = FaultLayer::new(config.clone());
        let mut b = FaultLayer::new(config);
        for i in 0..500 {
            assert_eq!(a.route(&env(0, 2), i), b.route(&env(0, 2), i));
        }
    }

    #[test]
    fn partitions_quarantine_crossing_messages_only() {
        let layer = FaultLayer::new(FaultConfig {
            partitions: vec![Partition {
                start: 10,
                heal: 20,
                side: vec![ProcessId(0), ProcessId(1)],
            }],
            ..FaultConfig::default()
        });
        // Crossing, inside the window.
        assert_eq!(layer.quarantine_until(&env(0, 2), 15), Some(20));
        // Same side.
        assert_eq!(layer.quarantine_until(&env(0, 1), 15), None);
        // Outside the window.
        assert_eq!(layer.quarantine_until(&env(0, 2), 25), None);
        assert_eq!(layer.quarantine_until(&env(0, 2), 5), None);
    }
}
