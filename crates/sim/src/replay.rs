//! Replay assertions: concrete confirmation of checker counterexamples.
//!
//! The symbolic checker reports a violation as a [`Counterexample`] —
//! an initial configuration plus an accelerated firing sequence. This
//! module is the bridge that turns "the SMT encoding was satisfiable"
//! into "here is a concrete faulty execution":
//!
//! 1. the firing sequence is expanded step by step through the concrete
//!    counter-system semantics ([`Counterexample::trace`] re-checks
//!    every guard and counter against [`holistic_ta::CounterSystem`],
//!    independently of the encoding);
//! 2. the *negation of the property* is re-evaluated on that concrete
//!    trace with [`Prop::eval`](holistic_ltl::Prop::eval) — for a
//!    safety query the witness props must actually hold somewhere on
//!    the run; for a liveness query the final configuration must be
//!    justice-consistent and satisfy the violating tail.
//!
//! The mutation-kill harness (`crates/mutate`) requires this
//! confirmation for every kill, so no mutant is ever counted as caught
//! on the strength of an unexecutable or vacuous counterexample.

use std::fmt;

use holistic_checker::Counterexample;
use holistic_ltl::{classify, Justice, Ltl, Query};
use holistic_ta::{Config, ThresholdAutomaton};

/// Why a counterexample failed concrete confirmation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ConfirmError {
    /// The property fell outside the checkable fragment on
    /// re-classification (the automaton changed under our feet).
    Fragment(String),
    /// The report's query index does not exist for this property.
    QueryIndex(usize, usize),
    /// The firing sequence is not a legal concrete run.
    Replay(String),
    /// The run replayed, but the violation does not hold on it — a
    /// vacuous kill, which indicates a checker or encoding bug.
    Vacuous(String),
}

impl fmt::Display for ConfirmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfirmError::Fragment(m) => write!(f, "re-classification failed: {m}"),
            ConfirmError::QueryIndex(i, n) => {
                write!(f, "query index {i} out of range ({n} queries)")
            }
            ConfirmError::Replay(m) => write!(f, "concrete replay failed: {m}"),
            ConfirmError::Vacuous(m) => write!(f, "vacuous counterexample: {m}"),
        }
    }
}

impl std::error::Error for ConfirmError {}

/// A confirmed concrete violation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConfirmedViolation {
    /// `"safety"` or `"liveness"` — which query shape was violated.
    pub kind: &'static str,
    /// Concrete parameter values of the faulty execution.
    pub params: Vec<i64>,
    /// Number of single-step configurations in the expanded trace.
    pub trace_len: usize,
}

fn all_empty(config: &Config, locs: &[holistic_ta::LocationId]) -> bool {
    locs.iter().all(|l| config.counters[l.0] == 0)
}

/// Confirms that `ce` — reported by the checker as a violation of
/// query `query_index` of `spec` (the indices of
/// [`CheckReport::queries`](holistic_checker::CheckReport) follow
/// classification order) — is a concrete faulty execution:
///
/// * **safety**: the initial constraint holds at step 0, the
///   `globally_empty` locations stay empty along the whole run, and
///   every witness prop holds at some step;
/// * **liveness**: additionally to the initial/emptiness obligations,
///   the final configuration satisfies the violating tail **and** the
///   justice assumption (no rule with a forever-true guard keeps its
///   source populated), i.e. the run really can stall there fairly.
///
/// # Errors
///
/// [`ConfirmError`] if the run is illegal or the violation does not
/// hold concretely (a vacuous kill).
pub fn confirm_counterexample(
    ta: &ThresholdAutomaton,
    spec: &Ltl,
    justice: &Justice,
    query_index: usize,
    ce: &Counterexample,
) -> Result<ConfirmedViolation, ConfirmError> {
    let queries = classify(ta, spec).map_err(|e| ConfirmError::Fragment(format!("{e:?}")))?;
    let Some(query) = queries.get(query_index) else {
        return Err(ConfirmError::QueryIndex(query_index, queries.len()));
    };
    let trace = ce
        .trace(ta)
        .map_err(|e| ConfirmError::Replay(e.to_string()))?;
    let params = &ce.params;
    let first = trace.first().expect("trace contains the initial config");
    let last = trace.last().expect("trace is non-empty");

    let (kind, globally_empty, initially) = match query {
        Query::Safety {
            globally_empty,
            initially,
            ..
        } => ("safety", globally_empty, initially),
        Query::Liveness {
            globally_empty,
            initially,
            ..
        } => ("liveness", globally_empty, initially),
    };
    if !initially.eval(first, params) {
        return Err(ConfirmError::Vacuous(
            "initial-configuration constraint fails at step 0".to_owned(),
        ));
    }
    if let Some(step) = trace.iter().position(|c| !all_empty(c, globally_empty)) {
        return Err(ConfirmError::Vacuous(format!(
            "a globally-empty location is populated at step {step}"
        )));
    }
    match query {
        Query::Safety { witnesses, .. } => {
            for (i, w) in witnesses.iter().enumerate() {
                if !trace.iter().any(|c| w.eval(c, params)) {
                    return Err(ConfirmError::Vacuous(format!(
                        "witness {i} never holds along the run"
                    )));
                }
            }
        }
        Query::Liveness { tail, .. } => {
            if !tail.eval(last, params) {
                return Err(ConfirmError::Vacuous(
                    "the violating tail constraint fails at the final configuration".to_owned(),
                ));
            }
            if !justice.as_prop().eval(last, params) {
                return Err(ConfirmError::Vacuous(
                    "the final configuration is not justice-consistent (the run cannot \
                     fairly stall there)"
                        .to_owned(),
                ));
            }
        }
    }
    Ok(ConfirmedViolation {
        kind,
        params: params.clone(),
        trace_len: trace.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistic_checker::{Checker, Verdict};
    use holistic_ltl::Prop;
    use holistic_ta::{Guard, TaBuilder};

    /// A two-location automaton where the final location is reachable:
    /// `□ empty(D)` is violated and the counterexample must confirm.
    fn reachable_ta() -> ThresholdAutomaton {
        let mut b = TaBuilder::new("reach");
        let n = b.param("n");
        let f = b.param("f");
        b.resilience_gt(n, f, 1);
        b.resilience_ge_const(f, 0);
        b.resilience_ge_const(n, 1);
        b.size_n_minus_f(n, f);
        let x = b.shared("x");
        let v = b.initial_location("V");
        let d = b.final_location("D");
        b.rule("r1", v, d, Guard::always()).inc(x, 1);
        b.build().unwrap()
    }

    #[test]
    fn safety_violation_confirms_concretely() {
        let ta = reachable_ta();
        let d = ta.location_by_name("D").unwrap();
        let spec = Ltl::always(Ltl::state(Prop::loc_empty(d)));
        let justice = Justice::from_rules(&ta);
        let report = Checker::new().check_ltl(&ta, &spec, &justice).unwrap();
        let (index, ce) = report
            .queries
            .iter()
            .enumerate()
            .find_map(|(i, q)| match &q.verdict {
                Verdict::Violated(ce) => Some((i, ce.clone())),
                _ => None,
            })
            .expect("reachable target violates emptiness");
        let confirmed = confirm_counterexample(&ta, &spec, &justice, index, &ce).unwrap();
        assert_eq!(confirmed.kind, "safety");
        assert!(confirmed.trace_len >= 2);
    }

    #[test]
    fn tampered_counterexample_is_rejected() {
        let ta = reachable_ta();
        let d = ta.location_by_name("D").unwrap();
        let spec = Ltl::always(Ltl::state(Prop::loc_empty(d)));
        let justice = Justice::from_rules(&ta);
        let report = Checker::new().check_ltl(&ta, &spec, &justice).unwrap();
        let (index, mut ce) = report
            .queries
            .iter()
            .enumerate()
            .find_map(|(i, q)| match &q.verdict {
                Verdict::Violated(ce) => Some((i, (**ce).clone())),
                _ => None,
            })
            .unwrap();
        // An overdrafted firing must fail the concrete replay.
        ce.steps[0].times += 100;
        assert!(matches!(
            confirm_counterexample(&ta, &spec, &justice, index, &ce),
            Err(ConfirmError::Replay(_))
        ));
    }
}
