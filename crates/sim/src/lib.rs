//! # holistic-sim — executable DBFT consensus
//!
//! A message-level simulation of the algorithms the paper verifies: the
//! binary value broadcast (Fig. 1) and the DBFT binary Byzantine
//! consensus (Alg. 1, the coordinator-free safe variant), under an
//! asynchronous reliable network whose delivery order is adversarial.
//!
//! * [`DbftProcess`] — a correct process (both protocol layers);
//! * [`Simulation`] — the system: correct + Byzantine processes, the
//!   in-flight message pool, the event trace;
//! * [`Scheduler`]s — [`RandomScheduler`] (optionally with Byzantine
//!   noise), [`GoodRoundScheduler`] (realises the paper's fairness
//!   assumption, Definition 3);
//! * [`run_lemma7`] — the scripted adversary of Lemma 7 / Appendix B
//!   that keeps DBFT undecided forever without fairness;
//! * [`monitor`] — Agreement/Validity/Termination and BV-property
//!   checks over traces;
//! * [`adversary`] — the Byzantine strategy library ([`StrategyKind`]):
//!   silence, equivocation, targeted lying, value-flip spam, Lemma-7
//!   style stalling, driven automatically via
//!   [`Simulation::run_with_adversary`];
//! * [`fault`] — the faulty-network layer ([`FaultScheduleKind`]):
//!   seed-deterministic drop/duplicate/delay and partition/heal
//!   schedules, complemented by retransmission-with-backoff
//!   ([`RetransmitPolicy`]);
//! * [`plan`] — scenario sweeps ([`FaultPlan::standard`]) running every
//!   strategy × fault schedule × system size under all monitors;
//! * [`shrink`] — schedule recording, replay, and delta-debugging of
//!   violating runs to minimal reproducing traces;
//! * [`replay`] — replay assertions for checker counterexamples: a
//!   reported violation is expanded through the concrete counter-system
//!   semantics and the negated property is re-evaluated on the trace
//!   (the mutation harness's "no vacuous kills" bridge).
//!
//! # Examples
//!
//! ```
//! use holistic_sim::{GoodRoundScheduler, Outcome, SimParams, Simulation};
//!
//! let mut sim = Simulation::new(SimParams { n: 4, t: 1, f: 1 }, &[0, 1, 1, 0]);
//! let mut scheduler = GoodRoundScheduler::new();
//! assert_eq!(sim.run(&mut scheduler, 1_000_000), Outcome::AllDecided);
//! holistic_sim::monitor::check_agreement(&sim).unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adversary;
pub mod fault;
mod lemma7;
mod message;
pub mod monitor;
pub mod plan;
mod process;
pub mod replay;
pub mod shrink;
mod simulation;

pub use adversary::{Adversary, AdversaryView, StrategyKind};
pub use fault::{FaultConfig, FaultLayer, FaultScheduleKind, Partition};
pub use lemma7::run_lemma7;
pub use message::{Envelope, Payload, ProcessId, ValueSet};
pub use plan::{FaultPlan, RunReport, Scenario, ShrunkViolation};
pub use process::{DbftProcess, Decision, Event};
pub use simulation::{
    GoodRoundScheduler, Outcome, RandomScheduler, RetransmitPolicy, ScheduleEvent, Scheduler,
    SimParams, Simulation,
};
