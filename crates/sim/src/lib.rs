//! # holistic-sim — executable DBFT consensus
//!
//! A message-level simulation of the algorithms the paper verifies: the
//! binary value broadcast (Fig. 1) and the DBFT binary Byzantine
//! consensus (Alg. 1, the coordinator-free safe variant), under an
//! asynchronous reliable network whose delivery order is adversarial.
//!
//! * [`DbftProcess`] — a correct process (both protocol layers);
//! * [`Simulation`] — the system: correct + Byzantine processes, the
//!   in-flight message pool, the event trace;
//! * [`Scheduler`]s — [`RandomScheduler`] (optionally with Byzantine
//!   noise), [`GoodRoundScheduler`] (realises the paper's fairness
//!   assumption, Definition 3);
//! * [`run_lemma7`] — the scripted adversary of Lemma 7 / Appendix B
//!   that keeps DBFT undecided forever without fairness;
//! * [`monitor`] — Agreement/Validity/Termination and BV-property
//!   checks over traces.
//!
//! # Examples
//!
//! ```
//! use holistic_sim::{GoodRoundScheduler, Outcome, SimParams, Simulation};
//!
//! let mut sim = Simulation::new(SimParams { n: 4, t: 1, f: 1 }, &[0, 1, 1, 0]);
//! let mut scheduler = GoodRoundScheduler::new();
//! assert_eq!(sim.run(&mut scheduler, 1_000_000), Outcome::AllDecided);
//! holistic_sim::monitor::check_agreement(&sim).unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod lemma7;
mod message;
pub mod monitor;
mod process;
mod simulation;

pub use lemma7::run_lemma7;
pub use message::{Envelope, Payload, ProcessId, ValueSet};
pub use process::{DbftProcess, Decision, Event};
pub use simulation::{
    GoodRoundScheduler, Outcome, RandomScheduler, Scheduler, SimParams, Simulation,
};
