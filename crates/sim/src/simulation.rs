//! The asynchronous system simulation: correct processes, Byzantine
//! processes, and a reliable but arbitrarily-slow network whose delivery
//! order is chosen by a [`Scheduler`].

use rand::seq::SliceRandom;
use rand::Rng;

use crate::message::{Envelope, Payload, ProcessId, ValueSet};
use crate::process::{DbftProcess, Decision, Event};

/// System parameters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SimParams {
    /// Total number of processes.
    pub n: usize,
    /// Fault threshold assumed by the protocol (`t < n/3` for the
    /// standard deployment; the simulator lets you violate this to
    /// reproduce the broken-resilience counterexample).
    pub t: usize,
    /// Actual number of Byzantine processes (`f ≤ t` normally). The
    /// *last* `f` process ids are Byzantine.
    pub f: usize,
}

/// A running simulation of the DBFT consensus.
///
/// Correct processes execute Alg. 1 faithfully; Byzantine processes send
/// whatever the adversary [`inject`](Simulation::inject)s. The network
/// is reliable (nothing is lost) and asynchronous (any in-flight message
/// can be delivered next).
#[derive(Clone, Debug)]
pub struct Simulation {
    params: SimParams,
    processes: Vec<Option<DbftProcess>>,
    pending: Vec<Envelope>,
    trace: Vec<Event>,
    deliveries: u64,
}

impl Simulation {
    /// Creates a simulation: `proposals[i]` is the input of process `i`;
    /// the last `f` processes are Byzantine (their proposals are
    /// ignored; they send nothing until the adversary injects).
    ///
    /// # Panics
    ///
    /// Panics if `proposals.len() != n` or `f > n`.
    pub fn new(params: SimParams, proposals: &[u8]) -> Simulation {
        assert_eq!(proposals.len(), params.n, "one proposal per process");
        assert!(params.f <= params.n);
        let mut processes = Vec::with_capacity(params.n);
        let mut pending = Vec::new();
        let correct = params.n - params.f;
        for (i, &v) in proposals.iter().enumerate() {
            if i < correct {
                let (p, out) = DbftProcess::new(ProcessId(i), params.n, params.t, v);
                processes.push(Some(p));
                pending.extend(out);
            } else {
                processes.push(None); // Byzantine: adversary-driven
            }
        }
        let mut sim = Simulation {
            params,
            processes,
            pending,
            trace: Vec::new(),
            deliveries: 0,
        };
        sim.collect_events();
        sim
    }

    /// The parameters.
    pub fn params(&self) -> SimParams {
        self.params
    }

    /// Whether process `id` is Byzantine.
    pub fn is_byzantine(&self, id: ProcessId) -> bool {
        self.processes[id.0].is_none()
    }

    /// Ids of the correct processes.
    pub fn correct_ids(&self) -> Vec<ProcessId> {
        (0..self.params.n)
            .map(ProcessId)
            .filter(|&p| !self.is_byzantine(p))
            .collect()
    }

    /// The in-flight messages.
    pub fn pending(&self) -> &[Envelope] {
        &self.pending
    }

    /// Total deliveries so far.
    pub fn deliveries(&self) -> u64 {
        self.deliveries
    }

    /// The recorded protocol events (in order).
    pub fn trace(&self) -> &[Event] {
        &self.trace
    }

    /// The correct process with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is Byzantine or out of range.
    pub fn process(&self, id: ProcessId) -> &DbftProcess {
        self.processes[id.0].as_ref().expect("correct process")
    }

    /// Decisions of the correct processes (None = undecided), indexed by
    /// process id (Byzantine slots are `None`).
    pub fn decisions(&self) -> Vec<Option<Decision>> {
        self.processes
            .iter()
            .map(|p| p.as_ref().and_then(DbftProcess::decision))
            .collect()
    }

    /// Whether every correct process has decided.
    pub fn all_decided(&self) -> bool {
        self.processes
            .iter()
            .flatten()
            .all(|p| p.decision().is_some())
    }

    /// Delivers the pending message at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn deliver_index(&mut self, index: usize) {
        let env = self.pending.swap_remove(index);
        self.deliveries += 1;
        if let Some(p) = self.processes[env.to.0].as_mut() {
            let out = p.handle(env.from, env.payload);
            self.pending.extend(out);
        }
        // Messages to Byzantine processes vanish into arbitrary behavior.
        self.collect_events();
    }

    /// Delivers the first pending message matching the predicate, if
    /// any; returns whether one was found.
    pub fn deliver_matching(&mut self, pred: impl Fn(&Envelope) -> bool) -> bool {
        match self.pending.iter().position(pred) {
            Some(i) => {
                self.deliver_index(i);
                true
            }
            None => false,
        }
    }

    /// Injects a message from a Byzantine process.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not Byzantine.
    pub fn inject(&mut self, from: ProcessId, to: ProcessId, payload: Payload) {
        assert!(
            self.is_byzantine(from),
            "only Byzantine processes inject arbitrary messages"
        );
        self.pending.push(Envelope { from, to, payload });
    }

    /// Injects `payload` from a Byzantine sender to every process.
    pub fn inject_broadcast(&mut self, from: ProcessId, payload: Payload) {
        for j in 0..self.params.n {
            self.inject(from, ProcessId(j), payload);
        }
    }

    fn collect_events(&mut self) {
        for p in self.processes.iter_mut().flatten() {
            self.trace.extend(p.take_events());
        }
    }

    /// Runs under a scheduler until all correct processes decide, the
    /// network quiesces, or `max_deliveries` is reached. Returns the
    /// outcome.
    pub fn run(&mut self, scheduler: &mut dyn Scheduler, max_deliveries: u64) -> Outcome {
        while self.deliveries < max_deliveries {
            if self.all_decided() {
                return Outcome::AllDecided;
            }
            if self.pending.is_empty() {
                return Outcome::Quiescent;
            }
            scheduler.step(self);
        }
        if self.all_decided() {
            Outcome::AllDecided
        } else {
            Outcome::Budget
        }
    }
}

/// Why a [`Simulation::run`] stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// Every correct process decided.
    AllDecided,
    /// No message is in flight (everyone is waiting forever).
    Quiescent,
    /// The delivery budget ran out.
    Budget,
}

/// Chooses the next delivery (and possibly injects Byzantine messages).
pub trait Scheduler {
    /// Performs one scheduling step: must deliver at least one pending
    /// message (the network is reliable, so the run stays fair at the
    /// network level).
    fn step(&mut self, sim: &mut Simulation);
}

/// Delivers a uniformly random pending message; optionally makes each
/// Byzantine process echo random noise.
#[derive(Debug)]
pub struct RandomScheduler<R: Rng> {
    rng: R,
    /// Probability (×1000) of a Byzantine noise injection per step.
    noise_per_mille: u32,
}

impl<R: Rng> RandomScheduler<R> {
    /// A scheduler with silent Byzantine processes.
    pub fn new(rng: R) -> RandomScheduler<R> {
        RandomScheduler {
            rng,
            noise_per_mille: 0,
        }
    }

    /// A scheduler where Byzantine processes inject uniformly random
    /// `BV`/`aux` messages with the given per-step probability (in
    /// thousandths).
    pub fn with_noise(rng: R, noise_per_mille: u32) -> RandomScheduler<R> {
        RandomScheduler {
            rng,
            noise_per_mille,
        }
    }
}

impl<R: Rng> Scheduler for RandomScheduler<R> {
    fn step(&mut self, sim: &mut Simulation) {
        if self.noise_per_mille > 0 && self.rng.gen_range(0..1000) < self.noise_per_mille {
            // One Byzantine process sends something random.
            let byz: Vec<ProcessId> = (0..sim.params().n)
                .map(ProcessId)
                .filter(|&p| sim.is_byzantine(p))
                .collect();
            if let Some(&from) = byz.choose(&mut self.rng) {
                let to = ProcessId(self.rng.gen_range(0..sim.params().n));
                // Target a plausible round to maximise interference.
                let round = sim
                    .correct_ids()
                    .iter()
                    .map(|&p| sim.process(p).round())
                    .max()
                    .unwrap_or(1);
                let round = round.saturating_sub(self.rng.gen_range(0..2)).max(1);
                let payload = if self.rng.gen_bool(0.5) {
                    Payload::Bv {
                        round,
                        value: self.rng.gen_range(0..2),
                    }
                } else {
                    let values = match self.rng.gen_range(0..3) {
                        0 => ValueSet::singleton(0),
                        1 => ValueSet::singleton(1),
                        _ => ValueSet::both(),
                    };
                    Payload::Aux { round, values }
                };
                sim.inject(from, to, payload);
            }
        }
        let idx = self.rng.gen_range(0..sim.pending().len());
        sim.deliver_index(idx);
    }
}

/// A scheduler that realises the paper's **fairness assumption**
/// (Definition 3): in every round `r` it delivers `BV` messages carrying
/// the round's parity value first, making the round `(r mod 2)`-good
/// whenever that value is broadcast by `t+1` correct processes. Under it
/// DBFT terminates (Theorem 6); this is the executable counterpart of
/// the fair bv-broadcast.
#[derive(Debug, Default)]
pub struct GoodRoundScheduler;

impl GoodRoundScheduler {
    /// Creates the scheduler.
    pub fn new() -> GoodRoundScheduler {
        GoodRoundScheduler
    }
}

impl Scheduler for GoodRoundScheduler {
    fn step(&mut self, sim: &mut Simulation) {
        // The earliest round any correct process is still in.
        let min_round = sim
            .correct_ids()
            .iter()
            .map(|&p| sim.process(p).round())
            .min()
            .unwrap_or(1);
        let favoured = (min_round % 2) as u8;
        // Priority: (1) BV(min_round, parity), (2) other BV(min_round),
        // (3) aux(min_round), (4) anything else.
        let better = |e: &Envelope| match e.payload {
            Payload::Bv { round, value } if round == min_round && value == favoured => 0,
            Payload::Bv { round, .. } if round == min_round => 1,
            Payload::Aux { round, .. } if round == min_round => 2,
            _ => 3,
        };
        let idx = (0..sim.pending().len())
            .min_by_key(|&i| better(&sim.pending()[i]))
            .expect("run() guarantees pending is non-empty");
        sim.deliver_index(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unanimous_terminates_under_random_scheduling() {
        for seed in 0..10 {
            let mut sim = Simulation::new(SimParams { n: 4, t: 1, f: 1 }, &[1, 1, 1, 0]);
            let mut sched = RandomScheduler::new(StdRng::seed_from_u64(seed));
            let outcome = sim.run(&mut sched, 1_000_000);
            assert_eq!(outcome, Outcome::AllDecided, "seed {seed}");
            for d in sim.decisions().into_iter().flatten() {
                assert_eq!(d.value, 1);
            }
        }
    }

    #[test]
    fn good_round_scheduler_terminates_mixed_inputs() {
        for proposals in [[0, 1, 0, 1], [1, 0, 0, 0], [0, 1, 1, 1]] {
            let mut sim = Simulation::new(SimParams { n: 4, t: 1, f: 1 }, &proposals);
            let mut sched = GoodRoundScheduler::new();
            let outcome = sim.run(&mut sched, 1_000_000);
            assert_eq!(outcome, Outcome::AllDecided, "{proposals:?}");
        }
    }

    #[test]
    fn agreement_under_random_byzantine_noise() {
        for seed in 0..20 {
            let mut sim = Simulation::new(SimParams { n: 4, t: 1, f: 1 }, &[0, 1, 1, 0]);
            let mut sched = RandomScheduler::with_noise(StdRng::seed_from_u64(seed), 200);
            let _ = sim.run(&mut sched, 300_000);
            let decided: Vec<u8> = sim
                .decisions()
                .into_iter()
                .flatten()
                .map(|d| d.value)
                .collect();
            assert!(
                decided.windows(2).all(|w| w[0] == w[1]),
                "disagreement at seed {seed}: {decided:?}"
            );
        }
    }

    #[test]
    fn byzantine_injection_requires_byzantine_sender() {
        let mut sim = Simulation::new(SimParams { n: 4, t: 1, f: 1 }, &[0, 0, 0, 0]);
        sim.inject_broadcast(ProcessId(3), Payload::Bv { round: 1, value: 1 });
        assert_eq!(sim.pending().iter().filter(|e| e.from == ProcessId(3)).count(), 4);
    }

    #[test]
    #[should_panic(expected = "Byzantine")]
    fn correct_process_cannot_inject() {
        let mut sim = Simulation::new(SimParams { n: 4, t: 1, f: 1 }, &[0, 0, 0, 0]);
        sim.inject(ProcessId(0), ProcessId(1), Payload::Bv { round: 1, value: 1 });
    }

    #[test]
    fn validity_with_unanimous_inputs_and_active_byzantine() {
        // All correct propose 0; the Byzantine floods 1s. Nobody may
        // decide 1.
        for seed in 0..10 {
            let mut sim = Simulation::new(SimParams { n: 4, t: 1, f: 1 }, &[0, 0, 0, 1]);
            // Byzantine broadcasts BV(1) and aux{1} for the early rounds.
            for round in 1..=4 {
                sim.inject_broadcast(ProcessId(3), Payload::Bv { round, value: 1 });
                sim.inject_broadcast(
                    ProcessId(3),
                    Payload::Aux {
                        round,
                        values: ValueSet::singleton(1),
                    },
                );
            }
            let mut sched = RandomScheduler::new(StdRng::seed_from_u64(seed));
            let _ = sim.run(&mut sched, 300_000);
            for d in sim.decisions().into_iter().flatten() {
                assert_eq!(d.value, 0, "validity violated at seed {seed}");
            }
        }
    }
}
