//! The asynchronous system simulation: correct processes, Byzantine
//! processes, and a reliable but arbitrarily-slow network whose delivery
//! order is chosen by a [`Scheduler`].

use rand::seq::SliceRandom;
use rand::Rng;

use crate::adversary::{Adversary, AdversaryView};
use crate::fault::{Fate, FaultConfig, FaultLayer};
use crate::message::{Envelope, Payload, ProcessId, ValueSet};
use crate::process::{DbftProcess, Decision, Event};

/// Retransmission-with-backoff policy for correct processes under a
/// lossy network (see [`DbftProcess::retransmit`]).
///
/// Retransmission fires in two situations: periodically, every
/// `interval` deliveries (the interval doubling after each firing up to
/// `max_interval` — classic exponential backoff, so a healthy network
/// is not flooded), and immediately whenever the network would quiesce
/// with undecided processes (the unambiguous signal that messages were
/// lost).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RetransmitPolicy {
    /// Initial retransmission interval, in deliveries.
    pub interval: u64,
    /// Backoff cap.
    pub max_interval: u64,
}

impl Default for RetransmitPolicy {
    fn default() -> RetransmitPolicy {
        RetransmitPolicy {
            interval: 200,
            max_interval: 6_400,
        }
    }
}

#[derive(Clone, Debug)]
struct RetransmitState {
    policy: RetransmitPolicy,
    interval: u64,
    next_at: u64,
    /// Total retransmission rounds fired.
    fired: u64,
}

/// One entry of a recorded delivery schedule: enough to replay a run
/// deterministically without the fault layer or adversary that
/// produced it (see [`crate::shrink`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScheduleEvent {
    /// A Byzantine injection.
    Inject(Envelope),
    /// A network delivery.
    Deliver(Envelope),
    /// A correct process resent its current-round messages.
    Retransmit(ProcessId),
}

/// System parameters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SimParams {
    /// Total number of processes.
    pub n: usize,
    /// Fault threshold assumed by the protocol (`t < n/3` for the
    /// standard deployment; the simulator lets you violate this to
    /// reproduce the broken-resilience counterexample).
    pub t: usize,
    /// Actual number of Byzantine processes (`f ≤ t` normally). The
    /// *last* `f` process ids are Byzantine.
    pub f: usize,
}

/// A running simulation of the DBFT consensus.
///
/// Correct processes execute Alg. 1 faithfully; Byzantine processes send
/// whatever the adversary [`inject`](Simulation::inject)s. The network
/// is reliable (nothing is lost) and asynchronous (any in-flight message
/// can be delivered next).
#[derive(Clone, Debug)]
pub struct Simulation {
    params: SimParams,
    processes: Vec<Option<DbftProcess>>,
    pending: Vec<Envelope>,
    trace: Vec<Event>,
    deliveries: u64,
    /// The faulty-network layer, if any (None = reliable network).
    faults: Option<FaultLayer>,
    /// Messages held back by the fault layer: `(release_at, envelope)`.
    delayed: Vec<(u64, Envelope)>,
    /// Retransmission-with-backoff, if enabled.
    retransmit: Option<RetransmitState>,
    /// Recorded schedule for replay/shrinking, if enabled.
    schedule: Option<Vec<ScheduleEvent>>,
}

impl Simulation {
    /// Creates a simulation: `proposals[i]` is the input of process `i`;
    /// the last `f` processes are Byzantine (their proposals are
    /// ignored; they send nothing until the adversary injects).
    ///
    /// # Panics
    ///
    /// Panics if `proposals.len() != n` or `f > n`.
    pub fn new(params: SimParams, proposals: &[u8]) -> Simulation {
        assert_eq!(proposals.len(), params.n, "one proposal per process");
        assert!(params.f <= params.n);
        let mut processes = Vec::with_capacity(params.n);
        let mut pending = Vec::new();
        let correct = params.n - params.f;
        for (i, &v) in proposals.iter().enumerate() {
            if i < correct {
                let (p, out) = DbftProcess::new(ProcessId(i), params.n, params.t, v);
                processes.push(Some(p));
                pending.extend(out);
            } else {
                processes.push(None); // Byzantine: adversary-driven
            }
        }
        let mut sim = Simulation {
            params,
            processes,
            pending,
            trace: Vec::new(),
            deliveries: 0,
            faults: None,
            delayed: Vec::new(),
            retransmit: None,
            schedule: None,
        };
        sim.collect_events();
        sim
    }

    /// Attaches a faulty-network layer. The initial broadcasts already
    /// in flight are re-routed through it, so faults apply to the whole
    /// run.
    pub fn set_faults(&mut self, config: FaultConfig) {
        self.faults = Some(FaultLayer::new(config));
        let initial = std::mem::take(&mut self.pending);
        self.route_sends(initial);
    }

    /// Enables retransmission-with-backoff for the correct processes.
    pub fn set_retransmit(&mut self, policy: RetransmitPolicy) {
        self.retransmit = Some(RetransmitState {
            policy,
            interval: policy.interval.max(1),
            next_at: policy.interval.max(1),
            fired: 0,
        });
    }

    /// Starts recording the delivery schedule (injections, deliveries,
    /// retransmissions) for later replay/shrinking.
    pub fn record_schedule(&mut self) {
        if self.schedule.is_none() {
            self.schedule = Some(Vec::new());
        }
    }

    /// The recorded schedule, if recording was enabled.
    pub fn schedule(&self) -> Option<&[ScheduleEvent]> {
        self.schedule.as_deref()
    }

    /// Messages dropped by the fault layer so far.
    pub fn dropped(&self) -> u64 {
        self.faults.as_ref().map_or(0, FaultLayer::drops)
    }

    /// Retransmission rounds fired so far.
    pub fn retransmissions(&self) -> u64 {
        self.retransmit.as_ref().map_or(0, |r| r.fired)
    }

    fn record(&mut self, event: ScheduleEvent) {
        if let Some(s) = self.schedule.as_mut() {
            s.push(event);
        }
    }

    /// Passes freshly sent messages through the fault layer (if any)
    /// into `pending`/`delayed`.
    fn route_sends(&mut self, out: Vec<Envelope>) {
        match self.faults.as_mut() {
            None => self.pending.extend(out),
            Some(layer) => {
                let now = self.deliveries;
                for env in out {
                    match layer.route(&env, now) {
                        Fate::Deliver => self.pending.push(env),
                        Fate::Drop => {}
                        Fate::Duplicate => {
                            self.pending.push(env);
                            self.pending.push(env);
                        }
                        Fate::Delay(until) => self.delayed.push((until, env)),
                    }
                }
            }
        }
    }

    /// Releases matured delayed messages and quarantines pending
    /// messages that cross an active partition.
    fn settle_network(&mut self) {
        let now = self.deliveries;
        let mut i = 0;
        while i < self.delayed.len() {
            if self.delayed[i].0 <= now {
                let (_, env) = self.delayed.swap_remove(i);
                self.pending.push(env);
            } else {
                i += 1;
            }
        }
        if let Some(layer) = self.faults.as_ref() {
            let mut quarantined = Vec::new();
            let mut i = 0;
            while i < self.pending.len() {
                if let Some(heal) = layer.quarantine_until(&self.pending[i], now) {
                    let env = self.pending.swap_remove(i);
                    quarantined.push((heal, env));
                } else {
                    i += 1;
                }
            }
            self.delayed.extend(quarantined);
        }
    }

    /// When the deliverable pool is empty but messages are delayed,
    /// jump the delivery clock to the earliest release point.
    fn fast_forward(&mut self) {
        if let Some(&(release, _)) = self.delayed.iter().min_by_key(|&&(r, _)| r) {
            self.deliveries = self.deliveries.max(release);
            self.settle_network();
        }
    }

    /// Fires one retransmission round from every undecided correct
    /// process, with exponential backoff. Returns whether anything was
    /// resent.
    fn fire_retransmit(&mut self) -> bool {
        let Some(state) = self.retransmit.as_mut() else {
            return false;
        };
        state.fired += 1;
        state.interval = (state.interval * 2).min(state.policy.max_interval.max(1));
        state.next_at = self.deliveries + state.interval;
        let ids = self.correct_ids();
        let mut resent = false;
        for id in ids {
            // Decided processes still help: their round state is what
            // laggards are missing.
            let out = self.processes[id.0]
                .as_ref()
                .expect("correct process")
                .retransmit();
            if !out.is_empty() {
                resent = true;
                self.record(ScheduleEvent::Retransmit(id));
                self.route_sends(out);
            }
        }
        resent
    }

    /// The parameters.
    pub fn params(&self) -> SimParams {
        self.params
    }

    /// Whether process `id` is Byzantine.
    pub fn is_byzantine(&self, id: ProcessId) -> bool {
        self.processes[id.0].is_none()
    }

    /// Ids of the correct processes.
    pub fn correct_ids(&self) -> Vec<ProcessId> {
        (0..self.params.n)
            .map(ProcessId)
            .filter(|&p| !self.is_byzantine(p))
            .collect()
    }

    /// The in-flight messages.
    pub fn pending(&self) -> &[Envelope] {
        &self.pending
    }

    /// Total deliveries so far.
    pub fn deliveries(&self) -> u64 {
        self.deliveries
    }

    /// The recorded protocol events (in order).
    pub fn trace(&self) -> &[Event] {
        &self.trace
    }

    /// The correct process with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is Byzantine or out of range.
    pub fn process(&self, id: ProcessId) -> &DbftProcess {
        self.processes[id.0].as_ref().expect("correct process")
    }

    /// Decisions of the correct processes (None = undecided), indexed by
    /// process id (Byzantine slots are `None`).
    pub fn decisions(&self) -> Vec<Option<Decision>> {
        self.processes
            .iter()
            .map(|p| p.as_ref().and_then(DbftProcess::decision))
            .collect()
    }

    /// Whether every correct process has decided.
    pub fn all_decided(&self) -> bool {
        self.processes
            .iter()
            .flatten()
            .all(|p| p.decision().is_some())
    }

    /// Delivers the pending message at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn deliver_index(&mut self, index: usize) {
        let env = self.pending.swap_remove(index);
        self.record(ScheduleEvent::Deliver(env));
        self.deliveries += 1;
        if let Some(p) = self.processes[env.to.0].as_mut() {
            let out = p.handle(env.from, env.payload);
            self.route_sends(out);
        }
        // Messages to Byzantine processes vanish into arbitrary behavior.
        self.collect_events();
    }

    /// Delivers the first pending message matching the predicate, if
    /// any; returns whether one was found.
    pub fn deliver_matching(&mut self, pred: impl Fn(&Envelope) -> bool) -> bool {
        match self.pending.iter().position(pred) {
            Some(i) => {
                self.deliver_index(i);
                true
            }
            None => false,
        }
    }

    /// Injects a message from a Byzantine process.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not Byzantine.
    pub fn inject(&mut self, from: ProcessId, to: ProcessId, payload: Payload) {
        assert!(
            self.is_byzantine(from),
            "only Byzantine processes inject arbitrary messages"
        );
        let env = Envelope { from, to, payload };
        self.record(ScheduleEvent::Inject(env));
        self.pending.push(env);
    }

    /// Injects `payload` from a Byzantine sender to every process.
    pub fn inject_broadcast(&mut self, from: ProcessId, payload: Payload) {
        for j in 0..self.params.n {
            self.inject(from, ProcessId(j), payload);
        }
    }

    /// Replays one recorded [`ScheduleEvent`] (see [`crate::shrink`]):
    /// `Inject` re-injects, `Deliver` delivers the first matching
    /// pending message (skipped if absent — e.g. the schedule was
    /// shrunk past the send that produced it), `Retransmit` re-emits
    /// the process's current-round messages. Returns whether the event
    /// applied.
    pub fn apply_event(&mut self, event: &ScheduleEvent) -> bool {
        match *event {
            ScheduleEvent::Inject(env) => {
                if !self.is_byzantine(env.from) {
                    return false;
                }
                self.inject(env.from, env.to, env.payload);
                true
            }
            ScheduleEvent::Deliver(env) => self.deliver_matching(|e| *e == env),
            ScheduleEvent::Retransmit(id) => match self.processes[id.0].as_ref() {
                Some(p) => {
                    let out = p.retransmit();
                    self.route_sends(out);
                    true
                }
                None => false,
            },
        }
    }

    fn collect_events(&mut self) {
        for p in self.processes.iter_mut().flatten() {
            self.trace.extend(p.take_events());
        }
    }

    /// Runs under a scheduler until all correct processes decide, the
    /// network quiesces, or `max_deliveries` is reached. Returns the
    /// outcome.
    pub fn run(&mut self, scheduler: &mut dyn Scheduler, max_deliveries: u64) -> Outcome {
        self.run_inner(scheduler, None, max_deliveries)
    }

    /// Like [`run`](Simulation::run), but an [`Adversary`] drives the
    /// Byzantine processes: before every scheduling step it observes
    /// the system and may inject messages.
    pub fn run_with_adversary(
        &mut self,
        scheduler: &mut dyn Scheduler,
        adversary: &mut dyn Adversary,
        max_deliveries: u64,
    ) -> Outcome {
        self.run_inner(scheduler, Some(adversary), max_deliveries)
    }

    fn run_inner(
        &mut self,
        scheduler: &mut dyn Scheduler,
        mut adversary: Option<&mut dyn Adversary>,
        max_deliveries: u64,
    ) -> Outcome {
        while self.deliveries < max_deliveries {
            if self.all_decided() {
                return Outcome::AllDecided;
            }
            self.settle_network();
            if let Some(adv) = adversary.as_deref_mut() {
                adv.step(&mut AdversaryView::new(self));
            }
            // Periodic retransmission (with backoff) under lossy nets.
            if let Some(state) = self.retransmit.as_ref() {
                if self.deliveries >= state.next_at {
                    self.fire_retransmit();
                }
            }
            if self.pending.is_empty() {
                if !self.delayed.is_empty() {
                    // Everything deliverable is held back: advance the
                    // delivery clock to the next release.
                    self.fast_forward();
                    continue;
                }
                // Quiescent with undecided processes: either give up
                // (reliable network — nothing was lost, this is a real
                // deadlock) or retransmit (lossy network).
                if self.retransmit.is_some() && self.fire_retransmit() && !self.pending.is_empty() {
                    continue;
                }
                return Outcome::Quiescent;
            }
            scheduler.step(self);
        }
        if self.all_decided() {
            Outcome::AllDecided
        } else {
            Outcome::Budget
        }
    }
}

/// Why a [`Simulation::run`] stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// Every correct process decided.
    AllDecided,
    /// No message is in flight (everyone is waiting forever).
    Quiescent,
    /// The delivery budget ran out.
    Budget,
}

/// Chooses the next delivery (and possibly injects Byzantine messages).
pub trait Scheduler {
    /// Performs one scheduling step: must deliver at least one pending
    /// message (the network is reliable, so the run stays fair at the
    /// network level).
    fn step(&mut self, sim: &mut Simulation);
}

/// Delivers a uniformly random pending message; optionally makes each
/// Byzantine process echo random noise.
#[derive(Debug)]
pub struct RandomScheduler<R: Rng> {
    rng: R,
    /// Probability (×1000) of a Byzantine noise injection per step.
    noise_per_mille: u32,
}

impl<R: Rng> RandomScheduler<R> {
    /// A scheduler with silent Byzantine processes.
    pub fn new(rng: R) -> RandomScheduler<R> {
        RandomScheduler {
            rng,
            noise_per_mille: 0,
        }
    }

    /// A scheduler where Byzantine processes inject uniformly random
    /// `BV`/`aux` messages with the given per-step probability (in
    /// thousandths).
    pub fn with_noise(rng: R, noise_per_mille: u32) -> RandomScheduler<R> {
        RandomScheduler {
            rng,
            noise_per_mille,
        }
    }
}

impl<R: Rng> Scheduler for RandomScheduler<R> {
    fn step(&mut self, sim: &mut Simulation) {
        if self.noise_per_mille > 0 && self.rng.gen_range(0..1000) < self.noise_per_mille {
            // One Byzantine process sends something random.
            let byz: Vec<ProcessId> = (0..sim.params().n)
                .map(ProcessId)
                .filter(|&p| sim.is_byzantine(p))
                .collect();
            if let Some(&from) = byz.choose(&mut self.rng) {
                let to = ProcessId(self.rng.gen_range(0..sim.params().n));
                // Target a plausible round to maximise interference.
                let round = sim
                    .correct_ids()
                    .iter()
                    .map(|&p| sim.process(p).round())
                    .max()
                    .unwrap_or(1);
                let round = round.saturating_sub(self.rng.gen_range(0..2)).max(1);
                let payload = if self.rng.gen_bool(0.5) {
                    Payload::Bv {
                        round,
                        value: self.rng.gen_range(0..2),
                    }
                } else {
                    let values = match self.rng.gen_range(0..3) {
                        0 => ValueSet::singleton(0),
                        1 => ValueSet::singleton(1),
                        _ => ValueSet::both(),
                    };
                    Payload::Aux { round, values }
                };
                sim.inject(from, to, payload);
            }
        }
        let idx = self.rng.gen_range(0..sim.pending().len());
        sim.deliver_index(idx);
    }
}

/// A scheduler that realises the paper's **fairness assumption**
/// (Definition 3): in every round `r` it delivers `BV` messages carrying
/// the round's parity value first, making the round `(r mod 2)`-good
/// whenever that value is broadcast by `t+1` correct processes. Under it
/// DBFT terminates (Theorem 6); this is the executable counterpart of
/// the fair bv-broadcast.
#[derive(Debug, Default)]
pub struct GoodRoundScheduler;

impl GoodRoundScheduler {
    /// Creates the scheduler.
    pub fn new() -> GoodRoundScheduler {
        GoodRoundScheduler
    }
}

impl Scheduler for GoodRoundScheduler {
    fn step(&mut self, sim: &mut Simulation) {
        // The earliest round any correct process is still in.
        let min_round = sim
            .correct_ids()
            .iter()
            .map(|&p| sim.process(p).round())
            .min()
            .unwrap_or(1);
        let favoured = (min_round % 2) as u8;
        // Priority: (1) BV(min_round, parity), (2) other BV(min_round),
        // (3) aux(min_round), (4) anything else.
        let better = |e: &Envelope| match e.payload {
            Payload::Bv { round, value } if round == min_round && value == favoured => 0,
            Payload::Bv { round, .. } if round == min_round => 1,
            Payload::Aux { round, .. } if round == min_round => 2,
            _ => 3,
        };
        let idx = (0..sim.pending().len())
            .min_by_key(|&i| better(&sim.pending()[i]))
            .expect("run() guarantees pending is non-empty");
        sim.deliver_index(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unanimous_terminates_under_random_scheduling() {
        for seed in 0..10 {
            let mut sim = Simulation::new(SimParams { n: 4, t: 1, f: 1 }, &[1, 1, 1, 0]);
            let mut sched = RandomScheduler::new(StdRng::seed_from_u64(seed));
            let outcome = sim.run(&mut sched, 1_000_000);
            assert_eq!(outcome, Outcome::AllDecided, "seed {seed}");
            for d in sim.decisions().into_iter().flatten() {
                assert_eq!(d.value, 1);
            }
        }
    }

    #[test]
    fn good_round_scheduler_terminates_mixed_inputs() {
        for proposals in [[0, 1, 0, 1], [1, 0, 0, 0], [0, 1, 1, 1]] {
            let mut sim = Simulation::new(SimParams { n: 4, t: 1, f: 1 }, &proposals);
            let mut sched = GoodRoundScheduler::new();
            let outcome = sim.run(&mut sched, 1_000_000);
            assert_eq!(outcome, Outcome::AllDecided, "{proposals:?}");
        }
    }

    #[test]
    fn agreement_under_random_byzantine_noise() {
        for seed in 0..20 {
            let mut sim = Simulation::new(SimParams { n: 4, t: 1, f: 1 }, &[0, 1, 1, 0]);
            let mut sched = RandomScheduler::with_noise(StdRng::seed_from_u64(seed), 200);
            let _ = sim.run(&mut sched, 300_000);
            let decided: Vec<u8> = sim
                .decisions()
                .into_iter()
                .flatten()
                .map(|d| d.value)
                .collect();
            assert!(
                decided.windows(2).all(|w| w[0] == w[1]),
                "disagreement at seed {seed}: {decided:?}"
            );
        }
    }

    #[test]
    fn byzantine_injection_requires_byzantine_sender() {
        let mut sim = Simulation::new(SimParams { n: 4, t: 1, f: 1 }, &[0, 0, 0, 0]);
        sim.inject_broadcast(ProcessId(3), Payload::Bv { round: 1, value: 1 });
        assert_eq!(
            sim.pending()
                .iter()
                .filter(|e| e.from == ProcessId(3))
                .count(),
            4
        );
    }

    #[test]
    #[should_panic(expected = "Byzantine")]
    fn correct_process_cannot_inject() {
        let mut sim = Simulation::new(SimParams { n: 4, t: 1, f: 1 }, &[0, 0, 0, 0]);
        sim.inject(
            ProcessId(0),
            ProcessId(1),
            Payload::Bv { round: 1, value: 1 },
        );
    }

    #[test]
    fn validity_with_unanimous_inputs_and_active_byzantine() {
        // All correct propose 0; the Byzantine floods 1s. Nobody may
        // decide 1.
        for seed in 0..10 {
            let mut sim = Simulation::new(SimParams { n: 4, t: 1, f: 1 }, &[0, 0, 0, 1]);
            // Byzantine broadcasts BV(1) and aux{1} for the early rounds.
            for round in 1..=4 {
                sim.inject_broadcast(ProcessId(3), Payload::Bv { round, value: 1 });
                sim.inject_broadcast(
                    ProcessId(3),
                    Payload::Aux {
                        round,
                        values: ValueSet::singleton(1),
                    },
                );
            }
            let mut sched = RandomScheduler::new(StdRng::seed_from_u64(seed));
            let _ = sim.run(&mut sched, 300_000);
            for d in sim.decisions().into_iter().flatten() {
                assert_eq!(d.value, 0, "validity violated at seed {seed}");
            }
        }
    }
}
