//! # holistic-core — the holistic verification pipeline
//!
//! The paper's primary contribution as an API: verify the DBFT / Red
//! Belly Byzantine consensus **holistically** — for every `n` and every
//! `f ≤ t < n/3` — by decomposition:
//!
//! 1. **Inner algorithm**: model-check the four properties of the binary
//!    value broadcast (BV-Justification, BV-Obligation, BV-Uniformity,
//!    BV-Termination) on the automaton of Fig. 2 (§3).
//! 2. **Substitution**: replace the verified broadcast inside the
//!    consensus automaton by a small gadget whose *justice* assumption
//!    is exactly the proven broadcast properties (Fig. 4, Appendix F).
//! 3. **Outer algorithm**: model-check safety (Inv1, Inv2 — which imply
//!    Agreement and Validity) and liveness (SRoundTerm, Dec, Good —
//!    which imply Termination under the fair bv-broadcast, Theorem 6)
//!    on the simplified automaton (§5).
//!
//! [`HolisticVerification`] drives the three phases and
//! [`HolisticReport::theorem6`] assembles the final argument.
//!
//! # Examples
//!
//! ```no_run
//! use holistic_core::HolisticVerification;
//!
//! let pipeline = HolisticVerification::new();
//! let report = pipeline.run()?;
//! assert!(report.all_verified());
//! println!("{}", report.theorem6());
//! # Ok::<(), holistic_checker::CheckError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod json;

use std::time::{Duration, Instant};

use holistic_checker::{CheckError, Checker, CheckerConfig, Verdict};
use holistic_models::{BvBroadcastModel, SimplifiedConsensusModel};

/// The outcome for one named property.
#[derive(Clone, Debug)]
pub struct PropertyResult {
    /// Property name as in the paper (e.g. `BV-Just0`, `Inv1_0`).
    pub name: String,
    /// Verdict (for all admissible parameters).
    pub verdict: Verdict,
    /// Number of schemas checked.
    pub schemas: usize,
    /// Average schema length (segments).
    pub avg_segments: f64,
    /// Wall-clock time.
    pub duration: Duration,
}

/// The report of a full holistic run.
#[derive(Clone, Debug)]
pub struct HolisticReport {
    /// Phase 1: the binary value broadcast properties (§3.2).
    pub inner: Vec<PropertyResult>,
    /// Phase 3: the simplified consensus properties (§5 / Appendix F).
    pub outer: Vec<PropertyResult>,
    /// Total wall-clock time.
    pub duration: Duration,
}

impl HolisticReport {
    /// Whether both phases produced results and every property verified.
    pub fn all_verified(&self) -> bool {
        !self.inner.is_empty()
            && !self.outer.is_empty()
            && self
                .inner
                .iter()
                .chain(self.outer.iter())
                .all(|r| r.verdict.is_verified())
    }

    /// Looks a property result up by name.
    pub fn property(&self, name: &str) -> Option<&PropertyResult> {
        self.inner
            .iter()
            .chain(self.outer.iter())
            .find(|r| r.name == name)
    }

    /// The Theorem 6 argument, assembled from the verdicts: if
    /// SRoundTerm, Dec and Good hold (plus Corollary 5, which follows
    /// from the fairness assumption), every correct process decides.
    ///
    /// Returns a human-readable summary; inspect
    /// [`all_verified`](HolisticReport::all_verified) for the boolean.
    pub fn theorem6(&self) -> String {
        let mut out = String::new();
        let verified = |name: &str| {
            self.property(name)
                .map(|r| r.verdict.is_verified())
                .unwrap_or(false)
        };
        let inner_ok = ["BV-Just0", "BV-Obl0", "BV-Unif0", "BV-Term"]
            .iter()
            .all(|p| verified(p));
        out.push_str(&format!(
            "[{}] inner bv-broadcast: BV-Justification, BV-Obligation, BV-Uniformity, \
             BV-Termination\n",
            if inner_ok { "verified" } else { "FAILED" }
        ));
        let safety_ok = verified("Inv1_0") && verified("Inv2_0");
        out.push_str(&format!(
            "[{}] safety: Inv1 & Inv2 => Agreement & Validity (§5.1)\n",
            if safety_ok { "verified" } else { "FAILED" }
        ));
        let liveness_ok = verified("SRoundTerm") && verified("Dec_0") && verified("Good_0");
        out.push_str(&format!(
            "[{}] liveness: SRoundTerm & Dec & Good => Termination under fair \
             bv-broadcast (Theorem 6)\n",
            if liveness_ok { "verified" } else { "FAILED" }
        ));
        if inner_ok && safety_ok && liveness_ok {
            out.push_str(
                "Theorem 6: the DBFT binary consensus of the Red Belly Blockchain is safe \
                 for all n > 3t >= 3f >= 0, and live under the fairness assumption.\n",
            );
        } else {
            out.push_str("holistic verification INCOMPLETE: see failed properties above.\n");
        }
        out
    }
}

/// The holistic verification pipeline.
#[derive(Clone, Debug, Default)]
pub struct HolisticVerification {
    checker: Checker,
}

impl HolisticVerification {
    /// A pipeline with default checker configuration.
    pub fn new() -> HolisticVerification {
        HolisticVerification::default()
    }

    /// A pipeline with an explicit checker configuration.
    pub fn with_config(config: CheckerConfig) -> HolisticVerification {
        HolisticVerification {
            checker: Checker::with_config(config),
        }
    }

    /// Phase 1: verifies the four bv-broadcast properties (§3.2) on the
    /// automaton of Fig. 2.
    ///
    /// # Errors
    ///
    /// Propagates [`CheckError`] for malformed models (which would be a
    /// bug in `holistic-models`) — budget exhaustion shows up as
    /// [`Verdict::Unknown`] instead.
    pub fn verify_inner(&self) -> Result<Vec<PropertyResult>, CheckError> {
        let model = BvBroadcastModel::new();
        let justice = model.justice();
        let mut out = Vec::new();
        for (name, spec) in model.table2_specs() {
            let report = self.checker.check_ltl(&model.ta, &spec, &justice)?;
            out.push(PropertyResult {
                name: name.to_owned(),
                verdict: report.verdict(),
                schemas: report.total_schemas(),
                avg_segments: report.avg_segments(),
                duration: report.duration,
            });
        }
        Ok(out)
    }

    /// Phase 3: verifies the simplified consensus automaton (Fig. 4)
    /// under the Appendix-F justice assumption — which is *justified* by
    /// phase 1: each justice requirement corresponds to a verified
    /// bv-broadcast property.
    ///
    /// # Errors
    ///
    /// See [`verify_inner`](HolisticVerification::verify_inner).
    pub fn verify_outer(&self) -> Result<Vec<PropertyResult>, CheckError> {
        let model = SimplifiedConsensusModel::new();
        let justice = model.justice();
        let mut out = Vec::new();
        for (name, spec) in model.table2_specs() {
            let report = self.checker.check_ltl(&model.ta, &spec, &justice)?;
            out.push(PropertyResult {
                name: name.to_owned(),
                verdict: report.verdict(),
                schemas: report.total_schemas(),
                avg_segments: report.avg_segments(),
                duration: report.duration,
            });
        }
        Ok(out)
    }

    /// Runs the full pipeline (phases 1–3).
    ///
    /// # Errors
    ///
    /// See [`verify_inner`](HolisticVerification::verify_inner).
    pub fn run(&self) -> Result<HolisticReport, CheckError> {
        let start = Instant::now();
        let inner = self.verify_inner()?;
        let outer = self.verify_outer()?;
        Ok(HolisticReport {
            inner,
            outer,
            duration: start.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inner_phase_verifies() {
        let pipeline = HolisticVerification::new();
        let inner = pipeline.verify_inner().unwrap();
        assert_eq!(inner.len(), 4);
        for r in &inner {
            assert!(r.verdict.is_verified(), "{} failed", r.name);
        }
    }

    #[test]
    fn theorem6_reports_incomplete_without_results() {
        let report = HolisticReport {
            inner: Vec::new(),
            outer: Vec::new(),
            duration: Duration::ZERO,
        };
        assert!(!report.all_verified());
        assert!(report.theorem6().contains("INCOMPLETE"));
    }
}
