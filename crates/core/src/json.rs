//! A minimal JSON value type, parser and emitter helpers.
//!
//! The bench harness emits and compares `BENCH_table2.json` files and
//! the supervisor writes on-disk checkpoints; the toolchain here is
//! offline (no `serde_json`), so this module carries just enough JSON
//! to round-trip those schemas: objects, arrays, strings, numbers,
//! booleans and null, with `f64` numerics.
//!
//! Note on numbers: [`num`] renders non-integral values rounded to
//! three decimals for human-facing bench files. Checkpoints that must
//! round-trip `f64` exactly should format with `{}` (Rust's shortest
//! round-trip `Display`) instead.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; exact for the integer counts
    /// the bench schema uses, which stay far below 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a JSON document (must consume all non-whitespace input).
    pub fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", b as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_owned()),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while let Some(&b) = bytes.get(*pos) {
        if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs never appear in the bench
                        // schema; map them to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&b) => {
                // Multi-byte UTF-8 sequences pass through unchanged.
                let ch_len = utf8_len(b);
                let chunk = bytes
                    .get(*pos..*pos + ch_len)
                    .ok_or("truncated UTF-8 sequence")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos += ch_len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xf0.. => 4,
        0xe0.. => 3,
        0xc0.. => 2,
        _ => 1,
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        fields.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

/// Escapes a string for embedding in a JSON document (without quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` for JSON: integral values without a fraction,
/// everything else with three decimals (milliseconds resolution is
/// what the bench schema stores).
pub fn num(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 9e15 {
        format!("{}", x as i64)
    } else {
        format!("{x:.3}")
    }
}

/// A complete JSON string literal: `s` escaped and double-quoted.
pub fn quote(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// Exact JSON rendering of an `f64`: Rust's shortest round-tripping
/// `Display`, for fields (checkpoints) that must reload bit-identical.
/// Non-finite values — which no pipeline field produces — degrade to 0.
pub fn num_exact(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_owned()
    }
}

/// A streaming JSON writer — the single emitter behind the bench
/// report, the supervisor's checkpoints and the observability traces,
/// so string escaping and number formatting cannot drift between them.
///
/// Two layouts: [`Writer::pretty`] (two-space indent, one field per
/// line — the human-diffable bench report) and [`Writer::compact`]
/// (no whitespace — checkpoint cells, JSONL trace lines). Both parse
/// back with [`Json::parse`].
///
/// The writer is sequence-checked only by construction: callers are
/// expected to call `key` exactly once before each value inside an
/// object, matching `begin_*`/`end_*` pairs. It never panics on
/// misuse; it just emits what it was told.
#[derive(Debug)]
pub struct Writer {
    buf: String,
    pretty: bool,
    /// One entry per open container: whether a separator is due before
    /// the next element.
    needs_comma: Vec<bool>,
    /// The next value follows a key, so it must not emit a separator.
    pending_value: bool,
}

impl Writer {
    /// A writer producing two-space-indented, line-per-field JSON.
    pub fn pretty() -> Writer {
        Writer {
            buf: String::new(),
            pretty: true,
            needs_comma: Vec::new(),
            pending_value: false,
        }
    }

    /// A writer producing whitespace-free JSON.
    pub fn compact() -> Writer {
        Writer {
            buf: String::new(),
            pretty: false,
            needs_comma: Vec::new(),
            pending_value: false,
        }
    }

    /// Separator (comma + newline/indent) before a new element in the
    /// current container, or just the indent for the first element.
    fn sep(&mut self) {
        if let Some(due) = self.needs_comma.last_mut() {
            if *due {
                self.buf.push(',');
            }
            *due = true;
            if self.pretty {
                self.buf.push('\n');
                for _ in 0..self.needs_comma.len() {
                    self.buf.push_str("  ");
                }
            }
        }
    }

    /// Newline + indent before a closing bracket (pretty mode only).
    fn close_pad(&mut self) {
        if self.pretty && self.needs_comma.last() == Some(&true) {
            self.buf.push('\n');
            for _ in 0..self.needs_comma.len().saturating_sub(1) {
                self.buf.push_str("  ");
            }
        }
    }

    /// Writes an object key; the next call must write its value.
    pub fn key(&mut self, k: &str) -> &mut Writer {
        self.sep();
        self.buf.push_str(&quote(k));
        self.buf.push(':');
        if self.pretty {
            self.buf.push(' ');
        }
        // The value directly follows the key: suppress its separator.
        self.pending_value = true;
        self
    }

    /// Writes a pre-rendered JSON value (`raw` must be valid JSON).
    pub fn raw(&mut self, raw: &str) -> &mut Writer {
        self.value_prefix();
        self.buf.push_str(raw);
        self
    }

    fn value_prefix(&mut self) {
        if self.pending_value {
            self.pending_value = false;
        } else {
            self.sep();
        }
    }

    /// Opens an object (as a value or array element).
    pub fn begin_obj(&mut self) -> &mut Writer {
        self.value_prefix();
        self.buf.push('{');
        self.needs_comma.push(false);
        self
    }

    /// Closes the innermost object.
    pub fn end_obj(&mut self) -> &mut Writer {
        self.close_pad();
        self.needs_comma.pop();
        self.buf.push('}');
        self
    }

    /// Opens an array (as a value or array element).
    pub fn begin_arr(&mut self) -> &mut Writer {
        self.value_prefix();
        self.buf.push('[');
        self.needs_comma.push(false);
        self
    }

    /// Closes the innermost array.
    pub fn end_arr(&mut self) -> &mut Writer {
        self.close_pad();
        self.needs_comma.pop();
        self.buf.push(']');
        self
    }

    /// Writes a string value.
    pub fn str_value(&mut self, s: &str) -> &mut Writer {
        let q = quote(s);
        self.value_prefix();
        self.buf.push_str(&q);
        self
    }

    /// Writes an unsigned integer value.
    pub fn u64_value(&mut self, v: u64) -> &mut Writer {
        self.value_prefix();
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Writes a boolean value.
    pub fn bool_value(&mut self, v: bool) -> &mut Writer {
        self.value_prefix();
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Writes `null`.
    pub fn null_value(&mut self) -> &mut Writer {
        self.value_prefix();
        self.buf.push_str("null");
        self
    }

    /// Writes an `f64` value in the bench's 3-decimal [`num`] format.
    pub fn num_value(&mut self, v: f64) -> &mut Writer {
        let n = num(v);
        self.value_prefix();
        self.buf.push_str(&n);
        self
    }

    /// Writes an `f64` value in exact [`num_exact`] format.
    pub fn num_exact_value(&mut self, v: f64) -> &mut Writer {
        let n = num_exact(v);
        self.value_prefix();
        self.buf.push_str(&n);
        self
    }

    /// `key` + string value.
    pub fn field_str(&mut self, k: &str, v: &str) -> &mut Writer {
        self.key(k).str_value(v)
    }

    /// `key` + unsigned integer value.
    pub fn field_u64(&mut self, k: &str, v: u64) -> &mut Writer {
        self.key(k).u64_value(v)
    }

    /// `key` + boolean value.
    pub fn field_bool(&mut self, k: &str, v: bool) -> &mut Writer {
        self.key(k).bool_value(v)
    }

    /// `key` + [`num`]-formatted value.
    pub fn field_num(&mut self, k: &str, v: f64) -> &mut Writer {
        self.key(k).num_value(v)
    }

    /// `key` + [`num_exact`]-formatted value.
    pub fn field_num_exact(&mut self, k: &str, v: f64) -> &mut Writer {
        self.key(k).num_exact_value(v)
    }

    /// `key` + pre-rendered JSON value.
    pub fn field_raw(&mut self, k: &str, raw: &str) -> &mut Writer {
        self.key(k).raw(raw)
    }

    /// `key` + `null`.
    pub fn field_null(&mut self, k: &str) -> &mut Writer {
        self.key(k).null_value()
    }

    /// The finished document (with a trailing newline in pretty mode).
    pub fn finish(mut self) -> String {
        if self.pretty {
            self.buf.push('\n');
        }
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bench_schema_shapes() {
        let doc = r#"{"v": 1, "rows": [{"p": "BV-Just0", "ms": 12.5, "ok": true},
                      {"p": "a\"b", "ms": 3, "ok": false}], "none": null}"#;
        let j = Json::parse(doc).unwrap();
        assert_eq!(j.get("v").unwrap().as_f64(), Some(1.0));
        let rows = j.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("p").unwrap().as_str(), Some("BV-Just0"));
        assert_eq!(rows[0].get("ms").unwrap().as_f64(), Some(12.5));
        assert_eq!(rows[1].get("p").unwrap().as_str(), Some("a\"b"));
        assert_eq!(rows[1].get("ok").unwrap(), &Json::Bool(false));
        assert_eq!(j.get("none").unwrap(), &Json::Null);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f — λ";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        let j = Json::parse(&doc).unwrap();
        assert_eq!(j.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn num_formats_integers_exactly() {
        assert_eq!(num(90.0), "90");
        assert_eq!(num(12.3456), "12.346");
        assert_eq!(Json::parse(&num(1e15)).unwrap().as_f64(), Some(1e15));
    }

    #[test]
    fn num_exact_round_trips() {
        let x = 0.1 + 0.2;
        assert_eq!(num_exact(x).parse::<f64>().unwrap(), x);
        assert_eq!(num_exact(f64::NAN), "0");
        assert_eq!(quote("a\"b"), "\"a\\\"b\"");
    }

    #[test]
    fn writer_compact_round_trips() {
        let mut w = Writer::compact();
        w.begin_obj()
            .field_str("name", "bv\"cast")
            .field_u64("n", 3)
            .field_bool("ok", true)
            .field_null("none")
            .key("xs")
            .begin_arr()
            .u64_value(1)
            .u64_value(2)
            .end_arr()
            .key("nested")
            .begin_obj()
            .field_num("ms", 12.3456)
            .field_num_exact("exact", 0.1 + 0.2)
            .end_obj()
            .end_obj();
        let doc = w.finish();
        assert!(!doc.contains('\n'), "{doc}");
        let j = Json::parse(&doc).unwrap();
        assert_eq!(j.get("name").unwrap().as_str(), Some("bv\"cast"));
        assert_eq!(j.get("xs").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(
            j.get("nested").unwrap().get("exact").unwrap().as_f64(),
            Some(0.1 + 0.2)
        );
    }

    #[test]
    fn writer_pretty_round_trips_and_indents() {
        let mut w = Writer::pretty();
        w.begin_obj()
            .field_u64("schema_version", 1)
            .key("rows")
            .begin_arr()
            .begin_obj()
            .field_str("p", "BV-Just0")
            .end_obj()
            .begin_obj()
            .field_str("p", "BV-Term")
            .end_obj()
            .end_arr()
            .end_obj();
        let doc = w.finish();
        assert!(doc.ends_with("}\n"), "{doc}");
        assert!(doc.contains("\n  \"schema_version\": 1"), "{doc}");
        assert!(doc.contains("\n      \"p\": \"BV-Just0\""), "{doc}");
        let j = Json::parse(&doc).unwrap();
        assert_eq!(j.get("rows").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn writer_empty_containers() {
        let mut w = Writer::pretty();
        w.begin_obj()
            .key("a")
            .begin_arr()
            .end_arr()
            .key("o")
            .begin_obj()
            .end_obj()
            .end_obj();
        let doc = w.finish();
        let j = Json::parse(&doc).unwrap();
        assert_eq!(j.get("a").unwrap().as_array(), Some(&[][..]));
        assert_eq!(j.get("o").unwrap(), &Json::Obj(Vec::new()));
    }
}
