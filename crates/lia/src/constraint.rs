//! Linear constraints over integer variables.

use std::fmt;

use crate::linexpr::LinExpr;
use crate::rat::Rat;

/// The relation of a (normalised) linear constraint: `expr REL 0`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Rel {
    /// `expr <= 0`
    Le,
    /// `expr >= 0`
    Ge,
    /// `expr == 0`
    Eq,
}

impl Rel {
    /// The relation obtained by negating a constraint with this relation
    /// under **integer** semantics: `¬(e <= 0)` is `e >= 1`, i.e. `e - 1 >= 0`.
    /// `Eq` has no single-relation negation and is handled at the formula
    /// level.
    pub(crate) fn negate_with_shift(self) -> Option<(Rel, i128)> {
        match self {
            Rel::Le => Some((Rel::Ge, -1)), // ¬(e<=0) ≡ e>=1 ≡ (e-1)>=0
            Rel::Ge => Some((Rel::Le, 1)),  // ¬(e>=0) ≡ e<=-1 ≡ (e+1)<=0
            Rel::Eq => None,
        }
    }
}

impl fmt::Display for Rel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rel::Le => write!(f, "<="),
            Rel::Ge => write!(f, ">="),
            Rel::Eq => write!(f, "=="),
        }
    }
}

/// A linear constraint `expr REL 0` over integer variables.
///
/// Constraints are normalised on construction: coefficients are scaled to
/// integers and strict inequalities are tightened to non-strict ones
/// (sound and complete because every variable is an integer).
///
/// # Examples
///
/// ```
/// use holistic_lia::{Constraint, LinExpr, Solver};
///
/// let mut solver = Solver::new();
/// let x = solver.new_var("x");
/// // x > 3  is normalised to  x - 4 >= 0.
/// let c = Constraint::gt(LinExpr::var(x), LinExpr::constant(3));
/// assert_eq!(c.to_string(), "x0 - 4 >= 0");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Constraint {
    expr: LinExpr,
    rel: Rel,
}

impl Constraint {
    /// Normalises `expr + strict_shift REL 0`: scales coefficients to
    /// integers, applies the strictness shift, then applies integer
    /// (GCD) tightening: with `g = gcd` of the variable coefficients,
    /// `Σaᵢxᵢ <= c` tightens to `Σ(aᵢ/g)xᵢ <= ⌊c/g⌋` (dually for `>=`),
    /// and an equality whose constant is not divisible by `g` is
    /// replaced by a trivially false constraint. The tightening both
    /// strengthens the rational relaxation and lets branch-and-bound
    /// decide otherwise-unbounded integer-infeasible systems.
    fn normalised(mut expr: LinExpr, rel: Rel, strict_shift: i128) -> Constraint {
        let lcm = expr.denominator_lcm();
        if lcm != 1 {
            expr = expr.scale(Rat::from(lcm));
        }
        expr.add_constant(Rat::from(strict_shift));
        if expr.is_constant() {
            return Constraint { expr, rel };
        }
        let mut g: i128 = 0;
        for (_, c) in expr.iter() {
            let mut a = c
                .to_integer()
                .expect("scaled coefficient is integral")
                .abs();
            let mut b = g;
            while b != 0 {
                let t = a % b;
                a = b;
                b = t;
            }
            g = a;
        }
        if g <= 1 {
            return Constraint { expr, rel };
        }
        let k = expr
            .constant_term()
            .to_integer()
            .expect("scaled constant is integral");
        // expr REL 0 is terms + k REL 0, i.e. terms REL' -k.
        let terms = {
            let mut t = expr.clone();
            t.add_constant(Rat::from(-k));
            t.scale(Rat::new(1, g))
        };
        let rhs = -k;
        let (new_rhs, rel) = match rel {
            // terms/g <= floor(rhs/g)
            Rel::Le => (rhs.div_euclid(g), Rel::Le),
            // terms/g >= ceil(rhs/g)
            Rel::Ge => (-(-rhs).div_euclid(g), Rel::Ge),
            Rel::Eq => {
                if rhs % g != 0 {
                    // No integer solution: g | lhs but g ∤ rhs.
                    return Constraint {
                        expr: LinExpr::constant(1),
                        rel: Rel::Eq,
                    };
                }
                (rhs / g, Rel::Eq)
            }
        };
        let mut expr = terms;
        expr.add_constant(Rat::from(-new_rhs));
        Constraint { expr, rel }
    }

    /// `lhs <= rhs`
    pub fn le(lhs: LinExpr, rhs: LinExpr) -> Constraint {
        Constraint::normalised(lhs - rhs, Rel::Le, 0)
    }

    /// `lhs >= rhs`
    pub fn ge(lhs: LinExpr, rhs: LinExpr) -> Constraint {
        Constraint::normalised(lhs - rhs, Rel::Ge, 0)
    }

    /// `lhs == rhs`
    pub fn eq(lhs: LinExpr, rhs: LinExpr) -> Constraint {
        Constraint::normalised(lhs - rhs, Rel::Eq, 0)
    }

    /// `lhs < rhs` — tightened to `lhs <= rhs - 1` (integer semantics).
    pub fn lt(lhs: LinExpr, rhs: LinExpr) -> Constraint {
        Constraint::normalised(lhs - rhs, Rel::Le, 1) // e < 0 ≡ e + 1 <= 0 over ℤ
    }

    /// `lhs > rhs` — tightened to `lhs >= rhs + 1` (integer semantics).
    pub fn gt(lhs: LinExpr, rhs: LinExpr) -> Constraint {
        Constraint::normalised(lhs - rhs, Rel::Ge, -1) // e > 0 ≡ e - 1 >= 0 over ℤ
    }

    /// The left-hand expression of the normalised form `expr REL 0`.
    pub fn expr(&self) -> &LinExpr {
        &self.expr
    }

    /// The relation of the normalised form.
    pub fn rel(&self) -> Rel {
        self.rel
    }

    /// Evaluates the constraint under an assignment.
    pub fn eval(&self, assignment: impl Fn(crate::Var) -> Rat) -> bool {
        let v = self.expr.eval(assignment);
        match self.rel {
            Rel::Le => v <= Rat::ZERO,
            Rel::Ge => v >= Rat::ZERO,
            Rel::Eq => v.is_zero(),
        }
    }

    /// A constraint that is trivially true or false (constant expression),
    /// if this constraint involves no variables.
    pub fn constant_truth(&self) -> Option<bool> {
        if self.expr.is_constant() {
            Some(self.eval(|_| Rat::ZERO))
        } else {
            None
        }
    }

    /// The negation of this constraint under integer semantics.
    ///
    /// `Eq` negates to a disjunction, hence returns two constraints of
    /// which at least one must hold; inequalities negate to a single
    /// constraint.
    pub fn negate(&self) -> Vec<Constraint> {
        match self.rel.negate_with_shift() {
            Some((rel, shift)) => {
                let mut expr = self.expr.clone();
                expr.add_constant(Rat::from(shift));
                vec![Constraint { expr, rel }]
            }
            None => {
                // ¬(e == 0) ≡ e <= -1 ∨ e >= 1.
                let mut lo = self.expr.clone();
                lo.add_constant(Rat::ONE);
                let mut hi = self.expr.clone();
                hi.add_constant(Rat::from(-1));
                vec![
                    Constraint {
                        expr: lo,
                        rel: Rel::Le,
                    },
                    Constraint {
                        expr: hi,
                        rel: Rel::Ge,
                    },
                ]
            }
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} 0", self.expr, self.rel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linexpr::Var;

    fn x() -> LinExpr {
        LinExpr::var(Var(0))
    }

    #[test]
    fn strict_inequalities_are_tightened() {
        let c = Constraint::gt(x(), LinExpr::constant(3));
        assert_eq!(c.rel(), Rel::Ge);
        assert_eq!(c.expr().constant_term(), Rat::from(-4));

        let c = Constraint::lt(x(), LinExpr::constant(3));
        assert_eq!(c.rel(), Rel::Le);
        assert_eq!(c.expr().constant_term(), Rat::from(-2));
    }

    #[test]
    fn rational_coefficients_are_scaled_to_integers() {
        let e = LinExpr::term(Var(0), Rat::new(1, 2));
        let c = Constraint::ge(e, LinExpr::constant(1));
        assert!(c.expr().iter().all(|(_, k)| k.is_integer()));
        assert!(c.expr().constant_term().is_integer());
    }

    #[test]
    fn negation_of_inequality() {
        let c = Constraint::ge(x(), LinExpr::constant(5)); // x - 5 >= 0
        let neg = c.negate();
        assert_eq!(neg.len(), 1);
        // ¬(x >= 5) ≡ x <= 4 ≡ x - 4 <= 0.
        assert_eq!(neg[0].rel(), Rel::Le);
        assert_eq!(neg[0].expr().constant_term(), Rat::from(-4));
    }

    #[test]
    fn negation_of_equality_is_disjunction() {
        let c = Constraint::eq(x(), LinExpr::constant(0));
        let neg = c.negate();
        assert_eq!(neg.len(), 2);
    }

    #[test]
    fn evaluation() {
        let c = Constraint::le(x(), LinExpr::constant(2));
        assert!(c.eval(|_| Rat::from(2)));
        assert!(!c.eval(|_| Rat::from(3)));
    }

    #[test]
    fn constant_truth() {
        let c = Constraint::le(LinExpr::constant(1), LinExpr::constant(2));
        assert_eq!(c.constant_truth(), Some(true));
        let c = Constraint::ge(LinExpr::constant(1), LinExpr::constant(2));
        assert_eq!(c.constant_truth(), Some(false));
        let c = Constraint::ge(x(), LinExpr::constant(2));
        assert_eq!(c.constant_truth(), None);
    }
}
