//! # holistic-lia — linear integer arithmetic for parameterized model checking
//!
//! A small, self-contained SMT-style solver for quantifier-free **linear
//! integer arithmetic**, built for the `holistic-checker` parameterized
//! model checker. It plays the role Z3 plays for ByMC: deciding the
//! per-schema constraint systems produced by the threshold-automata
//! encoding.
//!
//! The stack, bottom to top:
//!
//! * [`Rat`] — exact rational arithmetic (no floating point anywhere);
//! * [`LinExpr`] / [`Constraint`] — linear expressions and normalised
//!   integer constraints (strict inequalities tightened, coefficients
//!   scaled to integers);
//! * [`Simplex`] — an incremental general simplex (Dutertre–de Moura) for
//!   the rational relaxation, with trail-based push/pop;
//! * [`Formula`] / [`Solver`] — boolean structure by case splitting, and
//!   integrality by branch-and-bound. Budgets make the solver give up with
//!   [`SatResult::Unknown`] instead of looping; the model checker treats
//!   `Unknown` as "no verdict", never as "verified".
//!
//! # Examples
//!
//! ```
//! use holistic_lia::{Constraint, LinExpr, Solver};
//!
//! let mut solver = Solver::new();
//! let n = solver.new_nonneg_var("n");
//! let t = solver.new_nonneg_var("t");
//! // The resilience condition n > 3t with at least one fault tolerated.
//! solver.assert_constraint(Constraint::gt(LinExpr::var(n), LinExpr::term(t, 3)));
//! solver.assert_constraint(Constraint::ge(LinExpr::var(t), LinExpr::constant(1)));
//! let result = solver.check();
//! assert!(result.is_sat());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod constraint;
mod formula;
mod intern;
mod linexpr;
mod model;
mod propagate;
mod rat;
mod simplex;
mod solver;

pub use constraint::{Constraint, Rel};
pub use formula::Formula;
pub use intern::{InternStats, Interner};
pub use linexpr::{LinExpr, Var};
pub use model::{Model, SatResult, UnknownReason};
pub use rat::{Rat, RatOverflow};
pub use simplex::{LpResult, Simplex};
pub use solver::{AssertId, Solver, SolverConfig, SolverStats};
