//! Hash-consed construction of linear constraints.
//!
//! The model checker builds the *same* constraints over and over: the
//! availability constraint of a segment is re-derived every time a
//! schedule prefix is re-pushed, and every property of an automaton
//! re-encodes the same guard atoms at the same boundaries. Constraint
//! construction is not free — normalisation scales coefficients to
//! integers, applies GCD tightening, and rebuilds the term map several
//! times (see [`Constraint`]).
//!
//! An [`Interner`] memoises that work: constraints are keyed by their
//! *un-normalised* difference expression and relation, so a repeated
//! construction is a single hash lookup plus a clone of the already
//! normalised result. Hit/miss counters are exposed so callers (the
//! solver, and transitively the checker's `QueryStats`) can report how
//! much structural sharing a run actually achieved.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use crate::constraint::{Constraint, Rel};
use crate::linexpr::LinExpr;

/// Hit/miss counters for an [`Interner`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Constructions answered from the cache.
    pub hits: u64,
    /// Constructions that had to normalise from scratch.
    pub misses: u64,
}

impl InternStats {
    /// `hits / (hits + misses)`, or 0 if nothing was interned.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The comparison operators an [`Interner`] can memoise. The strict
/// variants exist because strictness is applied *during* normalisation
/// (after denominator scaling), so `lhs < rhs` cannot be keyed as
/// `lhs + 1 <= rhs` in general.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Op {
    Le,
    Ge,
    Eq,
    Lt,
    Gt,
}

/// A structural-sharing arena for normalised [`Constraint`]s.
///
/// # Examples
///
/// ```
/// use holistic_lia::{Interner, LinExpr, Rel, Solver};
///
/// let mut solver = Solver::new();
/// let x = solver.new_var("x");
/// let mut interner = Interner::new();
/// let a = interner.cmp(LinExpr::var(x), Rel::Ge, LinExpr::constant(3));
/// let b = interner.cmp(LinExpr::var(x), Rel::Ge, LinExpr::constant(3));
/// assert_eq!(a, b);
/// assert_eq!(interner.stats().hits, 1);
/// assert_eq!(interner.stats().misses, 1);
/// ```
#[derive(Debug, Default)]
pub struct Interner {
    constraints: HashMap<(LinExpr, Op), Constraint>,
    stats: InternStats,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Cumulative hit/miss counters.
    pub fn stats(&self) -> InternStats {
        self.stats
    }

    /// The number of distinct constraints interned so far.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    fn build(&mut self, lhs: LinExpr, op: Op, rhs: LinExpr) -> Constraint {
        let diff = lhs - rhs;
        match self.constraints.entry((diff, op)) {
            Entry::Occupied(e) => {
                self.stats.hits += 1;
                e.get().clone()
            }
            Entry::Vacant(e) => {
                self.stats.misses += 1;
                let expr = e.key().0.clone();
                let c = match op {
                    Op::Le => Constraint::le(expr, LinExpr::zero()),
                    Op::Ge => Constraint::ge(expr, LinExpr::zero()),
                    Op::Eq => Constraint::eq(expr, LinExpr::zero()),
                    Op::Lt => Constraint::lt(expr, LinExpr::zero()),
                    Op::Gt => Constraint::gt(expr, LinExpr::zero()),
                };
                e.insert(c.clone());
                c
            }
        }
    }

    /// The (normalised) constraint `lhs REL rhs`, memoised by the
    /// un-normalised difference `lhs - rhs`.
    pub fn cmp(&mut self, lhs: LinExpr, rel: Rel, rhs: LinExpr) -> Constraint {
        let op = match rel {
            Rel::Le => Op::Le,
            Rel::Ge => Op::Ge,
            Rel::Eq => Op::Eq,
        };
        self.build(lhs, op, rhs)
    }

    /// Interned `lhs <= rhs`.
    pub fn le(&mut self, lhs: LinExpr, rhs: LinExpr) -> Constraint {
        self.build(lhs, Op::Le, rhs)
    }

    /// Interned `lhs >= rhs`.
    pub fn ge(&mut self, lhs: LinExpr, rhs: LinExpr) -> Constraint {
        self.build(lhs, Op::Ge, rhs)
    }

    /// Interned `lhs == rhs`.
    pub fn eq(&mut self, lhs: LinExpr, rhs: LinExpr) -> Constraint {
        self.build(lhs, Op::Eq, rhs)
    }

    /// Interned `lhs < rhs` (integer-tightened).
    pub fn lt(&mut self, lhs: LinExpr, rhs: LinExpr) -> Constraint {
        self.build(lhs, Op::Lt, rhs)
    }

    /// Interned `lhs > rhs` (integer-tightened).
    pub fn gt(&mut self, lhs: LinExpr, rhs: LinExpr) -> Constraint {
        self.build(lhs, Op::Gt, rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linexpr::Var;
    use crate::rat::Rat;

    #[test]
    fn interned_equals_direct_construction() {
        let mut i = Interner::new();
        let x = Var(0);
        let y = Var(1);
        let lhs = LinExpr::term(x, Rat::new(1, 2)) + LinExpr::var(y);
        let rhs = LinExpr::constant(3);
        let interned = i.ge(lhs.clone(), rhs.clone());
        let direct = Constraint::ge(lhs, rhs);
        assert_eq!(interned, direct);
    }

    #[test]
    fn hits_and_misses_count() {
        let mut i = Interner::new();
        let x = Var(0);
        for _ in 0..3 {
            i.le(LinExpr::var(x), LinExpr::constant(7));
        }
        i.ge(LinExpr::var(x), LinExpr::constant(7));
        assert_eq!(i.stats().misses, 2, "distinct (expr, rel) keys");
        assert_eq!(i.stats().hits, 2);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn different_relations_do_not_collide() {
        let mut i = Interner::new();
        let x = Var(0);
        let le = i.le(LinExpr::var(x), LinExpr::constant(0));
        let ge = i.ge(LinExpr::var(x), LinExpr::constant(0));
        assert_ne!(le, ge);
    }

    #[test]
    fn strict_comparisons_match_direct_construction() {
        let mut i = Interner::new();
        let x = Var(0);
        // Rational coefficients make the scaling order matter.
        let lhs = LinExpr::term(x, Rat::new(1, 2));
        let rhs = LinExpr::constant(3);
        assert_eq!(
            i.lt(lhs.clone(), rhs.clone()),
            Constraint::lt(lhs.clone(), rhs.clone())
        );
        assert_eq!(i.gt(lhs.clone(), rhs.clone()), Constraint::gt(lhs, rhs));
        // Strict and non-strict share a difference key but not an entry.
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn hit_rate() {
        let mut i = Interner::new();
        assert_eq!(i.stats().hit_rate(), 0.0);
        let x = Var(0);
        i.eq(LinExpr::var(x), LinExpr::constant(1));
        i.eq(LinExpr::var(x), LinExpr::constant(1));
        assert_eq!(i.stats().hit_rate(), 0.5);
    }
}
