//! Satisfying assignments.

use std::collections::BTreeMap;
use std::fmt;

use crate::linexpr::{LinExpr, Var};
use crate::rat::Rat;

/// An integer assignment to the solver's user variables, produced by a
/// successful [`Solver::check`](crate::Solver::check).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Model {
    values: BTreeMap<Var, i128>,
    names: BTreeMap<Var, String>,
}

impl Model {
    pub(crate) fn new() -> Model {
        Model::default()
    }

    pub(crate) fn insert(&mut self, v: Var, value: i128, name: String) {
        self.values.insert(v, value);
        self.names.insert(v, name);
    }

    /// The value of a variable, if the model assigns one.
    pub fn get(&self, v: Var) -> Option<i128> {
        self.values.get(&v).copied()
    }

    /// The value of a variable.
    ///
    /// # Panics
    ///
    /// Panics if the variable is not assigned by this model.
    pub fn value(&self, v: Var) -> i128 {
        self.values[&v]
    }

    /// Evaluates a linear expression under this model.
    ///
    /// # Panics
    ///
    /// Panics if the expression mentions an unassigned variable.
    pub fn eval(&self, expr: &LinExpr) -> Rat {
        expr.eval(|v| Rat::from(self.value(v)))
    }

    /// Iterates over `(variable, value)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, i128)> + '_ {
        self.values.iter().map(|(&v, &x)| (v, x))
    }

    /// The number of assigned variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the model assigns no variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, x) in &self.values {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            match self.names.get(v) {
                Some(name) if !name.is_empty() => write!(f, "{name} = {x}")?,
                _ => write!(f, "{v} = {x}")?,
            }
        }
        Ok(())
    }
}

/// The verdict of a satisfiability check.
#[derive(Clone, PartialEq, Debug)]
pub enum SatResult {
    /// Satisfiable, with a witness model.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
    /// The solver gave up (budget exhausted). Never treated as a verdict
    /// by the model checker.
    Unknown(UnknownReason),
}

impl SatResult {
    /// Whether the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// Whether the result is `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SatResult::Unsat)
    }

    /// The model, if `Sat`.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SatResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

/// Why a check returned [`SatResult::Unknown`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnknownReason {
    /// The branch-and-bound node budget was exhausted.
    BranchBudget,
    /// The case-split budget was exhausted.
    SplitBudget,
    /// Rational arithmetic saturated on `i128` overflow during the
    /// check, so any computed verdict would be untrustworthy (see
    /// [`Rat::take_overflow_flag`](crate::Rat::take_overflow_flag)).
    RatOverflow,
    /// The wall-clock deadline expired inside the simplex pivot loop
    /// (see [`SolverConfig::deadline`](crate::SolverConfig)).
    Deadline,
}

impl fmt::Display for UnknownReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnknownReason::BranchBudget => write!(f, "branch-and-bound node budget exhausted"),
            UnknownReason::SplitBudget => write!(f, "case-split budget exhausted"),
            UnknownReason::RatOverflow => write!(f, "rational arithmetic overflowed i128"),
            UnknownReason::Deadline => write!(f, "wall-clock deadline expired mid-check"),
        }
    }
}
