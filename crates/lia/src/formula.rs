//! Boolean combinations of linear constraints.

use std::fmt;

use crate::constraint::Constraint;

/// A quantifier-free formula over linear integer constraints.
///
/// The solver decides satisfiability of these by case-splitting on
/// disjunctions (the formulas produced by the model checker are almost
/// entirely conjunctive, with small disjunctions coming from negated
/// properties).
///
/// # Examples
///
/// ```
/// use holistic_lia::{Constraint, Formula, LinExpr, Solver};
///
/// let mut solver = Solver::new();
/// let x = solver.new_nonneg_var("x");
/// let f = Formula::or(vec![
///     Formula::atom(Constraint::ge(LinExpr::var(x), LinExpr::constant(5))),
///     Formula::atom(Constraint::eq(LinExpr::var(x), LinExpr::constant(1))),
/// ]);
/// solver.assert(f);
/// assert!(solver.check().is_sat());
/// ```
#[derive(Clone, PartialEq, Debug)]
pub enum Formula {
    /// Trivially true.
    True,
    /// Trivially false.
    False,
    /// A single linear constraint.
    Atom(Constraint),
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
    /// Negation. Eliminated by [`Formula::to_nnf`] before solving.
    Not(Box<Formula>),
}

impl Formula {
    /// Wraps a constraint, folding constant truth: a constraint whose
    /// expression has no variables becomes [`Formula::True`] /
    /// [`Formula::False`] immediately, which lets enclosing
    /// conjunctions/disjunctions collapse before the solver ever sees
    /// them.
    pub fn atom(c: Constraint) -> Formula {
        match c.constant_truth() {
            Some(true) => Formula::True,
            Some(false) => Formula::False,
            None => Formula::Atom(c),
        }
    }

    /// Conjunction; flattens nested conjunctions, simplifies trivial
    /// operands and drops duplicates.
    pub fn and(fs: impl IntoIterator<Item = Formula>) -> Formula {
        let mut out: Vec<Formula> = Vec::new();
        for f in fs {
            match f {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(inner) => {
                    for g in inner {
                        if !out.contains(&g) {
                            out.push(g);
                        }
                    }
                }
                other => {
                    if !out.contains(&other) {
                        out.push(other);
                    }
                }
            }
        }
        match out.len() {
            0 => Formula::True,
            1 => out.pop().unwrap(),
            _ => Formula::And(out),
        }
    }

    /// Disjunction; flattens nested disjunctions, simplifies trivial
    /// operands and drops duplicates.
    pub fn or(fs: impl IntoIterator<Item = Formula>) -> Formula {
        let mut out: Vec<Formula> = Vec::new();
        for f in fs {
            match f {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(inner) => {
                    for g in inner {
                        if !out.contains(&g) {
                            out.push(g);
                        }
                    }
                }
                other => {
                    if !out.contains(&other) {
                        out.push(other);
                    }
                }
            }
        }
        match out.len() {
            0 => Formula::False,
            1 => out.pop().unwrap(),
            _ => Formula::Or(out),
        }
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        match f {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => *inner,
            other => Formula::Not(Box::new(other)),
        }
    }

    /// `premise ⇒ conclusion`, i.e. `¬premise ∨ conclusion`.
    pub fn implies(premise: Formula, conclusion: Formula) -> Formula {
        Formula::or([Formula::not(premise), conclusion])
    }

    /// Converts to negation normal form, pushing `Not` down to the atoms
    /// and eliminating it there using integer-exact constraint negation.
    pub fn to_nnf(&self) -> Formula {
        self.nnf(false)
    }

    fn nnf(&self, negated: bool) -> Formula {
        match (self, negated) {
            (Formula::True, false) | (Formula::False, true) => Formula::True,
            (Formula::True, true) | (Formula::False, false) => Formula::False,
            (Formula::Atom(c), false) => Formula::Atom(c.clone()),
            (Formula::Atom(c), true) => Formula::or(c.negate().into_iter().map(Formula::Atom)),
            (Formula::And(fs), false) => Formula::and(fs.iter().map(|f| f.nnf(false))),
            (Formula::And(fs), true) => Formula::or(fs.iter().map(|f| f.nnf(true))),
            (Formula::Or(fs), false) => Formula::or(fs.iter().map(|f| f.nnf(false))),
            (Formula::Or(fs), true) => Formula::and(fs.iter().map(|f| f.nnf(true))),
            (Formula::Not(inner), n) => inner.nnf(!n),
        }
    }

    /// Evaluates the formula under a concrete assignment.
    pub fn eval(&self, assignment: &impl Fn(crate::Var) -> crate::Rat) -> bool {
        match self {
            Formula::True => true,
            Formula::False => false,
            Formula::Atom(c) => c.eval(assignment),
            Formula::And(fs) => fs.iter().all(|f| f.eval(assignment)),
            Formula::Or(fs) => fs.iter().any(|f| f.eval(assignment)),
            Formula::Not(f) => !f.eval(assignment),
        }
    }
}

impl From<Constraint> for Formula {
    fn from(c: Constraint) -> Formula {
        Formula::Atom(c)
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Atom(c) => write!(f, "({c})"),
            Formula::And(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Formula::Not(g) => write!(f, "¬{g}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linexpr::{LinExpr, Var};

    fn atom_ge(v: u32, c: i64) -> Formula {
        Formula::atom(Constraint::ge(LinExpr::var(Var(v)), LinExpr::constant(c)))
    }

    #[test]
    fn and_simplification() {
        assert_eq!(Formula::and([]), Formula::True);
        assert_eq!(Formula::and([Formula::True, Formula::True]), Formula::True);
        assert_eq!(
            Formula::and([Formula::False, atom_ge(0, 1)]),
            Formula::False
        );
        // Flattening.
        let f = Formula::and([Formula::and([atom_ge(0, 1), atom_ge(1, 1)]), atom_ge(2, 1)]);
        match f {
            Formula::And(fs) => assert_eq!(fs.len(), 3),
            other => panic!("expected flattened And, got {other}"),
        }
    }

    #[test]
    fn or_simplification() {
        assert_eq!(Formula::or([]), Formula::False);
        assert_eq!(Formula::or([Formula::True, atom_ge(0, 1)]), Formula::True);
    }

    #[test]
    fn double_negation() {
        let f = atom_ge(0, 3);
        assert_eq!(Formula::not(Formula::not(f.clone())), f);
    }

    #[test]
    fn nnf_pushes_negation_to_atoms() {
        let f = Formula::not(Formula::and([atom_ge(0, 1), atom_ge(1, 2)]));
        let nnf = f.to_nnf();
        // ¬(a ∧ b) = ¬a ∨ ¬b, with ¬(x ≥ c) as an atom.
        match nnf {
            Formula::Or(fs) => {
                assert_eq!(fs.len(), 2);
                assert!(fs.iter().all(|g| matches!(g, Formula::Atom(_))));
            }
            other => panic!("expected Or of atoms, got {other}"),
        }
    }

    #[test]
    fn nnf_of_negated_equality_is_disjunction() {
        let eq = Formula::atom(Constraint::eq(LinExpr::var(Var(0)), LinExpr::constant(0)));
        let nnf = Formula::not(eq).to_nnf();
        assert!(matches!(nnf, Formula::Or(ref fs) if fs.len() == 2));
    }

    #[test]
    fn eval() {
        use crate::rat::Rat;
        let f = Formula::implies(atom_ge(0, 5), atom_ge(1, 1));
        // x0 = 6, x1 = 0: premise true, conclusion false.
        let assignment = |v: Var| if v == Var(0) { Rat::from(6) } else { Rat::ZERO };
        assert!(!f.eval(&assignment));
        // x0 = 0: premise false.
        let assignment = |_: Var| Rat::ZERO;
        assert!(f.eval(&assignment));
    }
}
