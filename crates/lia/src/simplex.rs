//! A general simplex for linear-arithmetic feasibility.
//!
//! This is the solver core in the style of Dutertre & de Moura ("A fast
//! linear-arithmetic solver for DPLL(T)", CAV 2006): every constraint
//! `Σ aᵢxᵢ ⋈ c` is turned into a *slack* variable `s = Σ aᵢxᵢ` plus a
//! bound on `s`; feasibility is restored by pivoting with Bland's rule,
//! which guarantees termination. All arithmetic is exact rational.
//!
//! The tableau only grows (slack rows are permanent); backtracking
//! restores *bounds* from a trail, which keeps push/pop cheap — exactly
//! the access pattern of branch-and-bound and of case splitting in the
//! formula layer.

use std::collections::BTreeMap;
use std::collections::HashMap;

use crate::constraint::{Constraint, Rel};
use crate::linexpr::{LinExpr, Var};
use crate::rat::Rat;

/// The outcome of a feasibility check over the rationals.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LpResult {
    /// The asserted bounds are satisfiable over ℚ.
    Feasible,
    /// The asserted bounds are unsatisfiable over ℚ (hence also over ℤ).
    Infeasible,
}

#[derive(Clone, Debug)]
struct VarState {
    lower: Option<Rat>,
    upper: Option<Rat>,
    value: Rat,
    name: String,
}

#[derive(Clone, Debug)]
struct Row {
    basic: Var,
    /// `basic = Σ coeffs[v]·v` over non-basic variables.
    coeffs: BTreeMap<Var, Rat>,
}

#[derive(Clone, Copy, Debug)]
enum TrailEntry {
    Lower(Var, Option<Rat>),
    Upper(Var, Option<Rat>),
}

/// The incremental simplex tableau.
///
/// This type is deliberately low-level; most users want
/// [`Solver`](crate::Solver), which adds integer reasoning and boolean
/// structure on top.
#[derive(Clone, Debug, Default)]
pub struct Simplex {
    vars: Vec<VarState>,
    rows: Vec<Row>,
    /// Basic var -> row index.
    row_of: HashMap<Var, usize>,
    /// Reuse slack variables for syntactically equal linear forms.
    slack_cache: HashMap<Vec<(Var, Rat)>, Var>,
    trail: Vec<TrailEntry>,
    levels: Vec<usize>,
    /// Pivot counter (statistics).
    pivots: u64,
}

impl Simplex {
    /// Creates an empty tableau.
    pub fn new() -> Simplex {
        Simplex::default()
    }

    /// Allocates a fresh, unbounded variable.
    pub fn new_var(&mut self, name: impl Into<String>) -> Var {
        let v = Var(self.vars.len() as u32);
        self.vars.push(VarState {
            lower: None,
            upper: None,
            value: Rat::ZERO,
            name: name.into(),
        });
        v
    }

    /// The number of variables (including slacks).
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// The number of tableau rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Total pivots performed so far (statistic).
    pub fn pivot_count(&self) -> u64 {
        self.pivots
    }

    /// The name a variable was created with.
    pub fn var_name(&self, v: Var) -> &str {
        &self.vars[v.index()].name
    }

    /// The current (rational) value of a variable. Only meaningful right
    /// after a [`check`](Simplex::check) that returned
    /// [`LpResult::Feasible`].
    pub fn value(&self, v: Var) -> Rat {
        self.vars[v.index()].value
    }

    /// Current lower bound of a variable.
    pub fn lower(&self, v: Var) -> Option<Rat> {
        self.vars[v.index()].lower
    }

    /// Current upper bound of a variable.
    pub fn upper(&self, v: Var) -> Option<Rat> {
        self.vars[v.index()].upper
    }

    /// Opens a backtracking level.
    pub fn push(&mut self) {
        self.levels.push(self.trail.len());
    }

    /// Restores the bounds recorded since the matching [`push`](Simplex::push).
    ///
    /// # Panics
    ///
    /// Panics if there is no open level.
    pub fn pop(&mut self) {
        let mark = self.levels.pop().expect("pop without matching push");
        while self.trail.len() > mark {
            match self.trail.pop().unwrap() {
                TrailEntry::Lower(v, old) => self.vars[v.index()].lower = old,
                TrailEntry::Upper(v, old) => self.vars[v.index()].upper = old,
            }
        }
    }

    fn is_basic(&self, v: Var) -> bool {
        self.row_of.contains_key(&v)
    }

    /// Asserts `v >= bound`, tightening only. Returns `Infeasible` if the
    /// new bound contradicts the current upper bound.
    pub fn assert_lower(&mut self, v: Var, bound: Rat) -> LpResult {
        let st = &self.vars[v.index()];
        if st.lower.is_some_and(|l| l >= bound) {
            return LpResult::Feasible;
        }
        if st.upper.is_some_and(|u| u < bound) {
            // Record the tightening anyway so that pop() restores it; the
            // state is conflicting until then.
            self.trail.push(TrailEntry::Lower(v, st.lower));
            self.vars[v.index()].lower = Some(bound);
            return LpResult::Infeasible;
        }
        self.trail.push(TrailEntry::Lower(v, st.lower));
        self.vars[v.index()].lower = Some(bound);
        if !self.is_basic(v) && self.vars[v.index()].value < bound {
            self.update(v, bound);
        }
        LpResult::Feasible
    }

    /// Asserts `v <= bound`, tightening only. Returns `Infeasible` if the
    /// new bound contradicts the current lower bound.
    pub fn assert_upper(&mut self, v: Var, bound: Rat) -> LpResult {
        let st = &self.vars[v.index()];
        if st.upper.is_some_and(|u| u <= bound) {
            return LpResult::Feasible;
        }
        if st.lower.is_some_and(|l| l > bound) {
            self.trail.push(TrailEntry::Upper(v, st.upper));
            self.vars[v.index()].upper = Some(bound);
            return LpResult::Infeasible;
        }
        self.trail.push(TrailEntry::Upper(v, st.upper));
        self.vars[v.index()].upper = Some(bound);
        if !self.is_basic(v) && self.vars[v.index()].value > bound {
            self.update(v, bound);
        }
        LpResult::Feasible
    }

    /// Asserts a normalised [`Constraint`]. Single-variable constraints
    /// become direct bounds; general linear forms get a (cached) slack
    /// variable.
    pub fn assert_constraint(&mut self, c: &Constraint) -> LpResult {
        if let Some(truth) = c.constant_truth() {
            return if truth {
                LpResult::Feasible
            } else {
                // Encode falsity as an impossible pair of bounds on a
                // throwaway variable, so that the conflict persists until
                // the enclosing level is popped.
                let f = self.new_var("false");
                let _ = self.assert_lower(f, Rat::ONE);
                let _ = self.assert_upper(f, Rat::ZERO);
                LpResult::Infeasible
            };
        }
        let expr = c.expr();
        let constant = expr.constant_term();
        // expr REL 0  ⇔  (expr - constant) REL -constant.
        if expr.num_terms() == 1 {
            let (v, k) = expr.iter().next().unwrap();
            // k·v REL -constant  ⇒  v REL' -constant/k (flip if k < 0).
            let bound = -constant / k;
            return match (c.rel(), k.is_positive()) {
                (Rel::Le, true) | (Rel::Ge, false) => self.assert_upper(v, bound),
                (Rel::Ge, true) | (Rel::Le, false) => self.assert_lower(v, bound),
                (Rel::Eq, _) => match self.assert_lower(v, bound) {
                    LpResult::Infeasible => LpResult::Infeasible,
                    LpResult::Feasible => self.assert_upper(v, bound),
                },
            };
        }
        let slack = self.slack_for(expr);
        let bound = -constant;
        match c.rel() {
            Rel::Le => self.assert_upper(slack, bound),
            Rel::Ge => self.assert_lower(slack, bound),
            Rel::Eq => match self.assert_lower(slack, bound) {
                LpResult::Infeasible => LpResult::Infeasible,
                LpResult::Feasible => self.assert_upper(slack, bound),
            },
        }
    }

    /// Returns the slack variable representing the variable part of `expr`
    /// (ignoring its constant term), creating a tableau row if needed.
    fn slack_for(&mut self, expr: &LinExpr) -> Var {
        let key: Vec<(Var, Rat)> = expr.iter().collect();
        if let Some(&s) = self.slack_cache.get(&key) {
            return s;
        }
        let s = self.new_var(format!("s{}", self.rows.len()));
        // Rewrite the defining equation over the current non-basic vars.
        let mut coeffs: BTreeMap<Var, Rat> = BTreeMap::new();
        let mut value = Rat::ZERO;
        for (v, k) in expr.iter() {
            if let Some(&r) = self.row_of.get(&v) {
                let row_coeffs = self.rows[r].coeffs.clone();
                for (w, kw) in row_coeffs {
                    let e = coeffs.entry(w).or_default();
                    *e += k * kw;
                    if e.is_zero() {
                        coeffs.remove(&w);
                    }
                }
            } else {
                let e = coeffs.entry(v).or_default();
                *e += k;
                if e.is_zero() {
                    coeffs.remove(&v);
                }
            }
        }
        for (&w, &kw) in &coeffs {
            value += kw * self.vars[w.index()].value;
        }
        self.vars[s.index()].value = value;
        self.row_of.insert(s, self.rows.len());
        self.rows.push(Row { basic: s, coeffs });
        self.slack_cache.insert(key, s);
        s
    }

    /// Sets the value of a non-basic variable, propagating through the
    /// tableau.
    fn update(&mut self, v: Var, value: Rat) {
        let delta = value - self.vars[v.index()].value;
        if delta.is_zero() {
            return;
        }
        for row in &self.rows {
            if let Some(&k) = row.coeffs.get(&v) {
                self.vars[row.basic.index()].value += k * delta;
            }
        }
        self.vars[v.index()].value = value;
    }

    /// Pivots basic `xi` (row `r`) with non-basic `xj`, then sets
    /// `xi := target` and adjusts `xj` accordingly.
    fn pivot_and_update(&mut self, r: usize, xj: Var, target: Rat) {
        self.pivots += 1;
        let xi = self.rows[r].basic;
        let a_ij = self.rows[r].coeffs[&xj];
        let theta = (target - self.vars[xi.index()].value) / a_ij;

        // Value updates.
        self.vars[xi.index()].value = target;
        self.vars[xj.index()].value += theta;
        for (idx, row) in self.rows.iter().enumerate() {
            if idx == r {
                continue;
            }
            if let Some(&k) = row.coeffs.get(&xj) {
                self.vars[row.basic.index()].value += k * theta;
            }
        }

        // Tableau pivot: solve row r for xj.
        //   xi = a_ij·xj + Σ_k a_ik·xk
        //   xj = (1/a_ij)·xi − Σ_k (a_ik/a_ij)·xk
        let old_coeffs = std::mem::take(&mut self.rows[r].coeffs);
        let inv = a_ij.recip();
        let mut new_coeffs: BTreeMap<Var, Rat> = BTreeMap::new();
        new_coeffs.insert(xi, inv);
        for (v, k) in old_coeffs {
            if v != xj {
                let c = -(k * inv);
                if !c.is_zero() {
                    new_coeffs.insert(v, c);
                }
            }
        }
        // Substitute xj's new definition into every other row.
        for (idx, row) in self.rows.iter_mut().enumerate() {
            if idx == r {
                continue;
            }
            if let Some(k) = row.coeffs.remove(&xj) {
                for (&w, &kw) in &new_coeffs {
                    let e = row.coeffs.entry(w).or_default();
                    *e += k * kw;
                    if e.is_zero() {
                        row.coeffs.remove(&w);
                    }
                }
            }
        }
        self.rows[r].basic = xj;
        self.rows[r].coeffs = new_coeffs;
        self.row_of.remove(&xi);
        self.row_of.insert(xj, r);
    }

    /// Restores feasibility of basic variables by pivoting (Bland's rule:
    /// always the smallest-index violated basic variable and the
    /// smallest-index eligible non-basic variable, which precludes
    /// cycling).
    pub fn check(&mut self) -> LpResult {
        // Bounds asserted while conflicting (assert_* returned Infeasible)
        // leave lower > upper somewhere; detect that first.
        for st in &self.vars {
            if let (Some(l), Some(u)) = (st.lower, st.upper) {
                if l > u {
                    return LpResult::Infeasible;
                }
            }
        }
        loop {
            // Smallest violated basic variable.
            let mut violated: Option<(usize, Var, Rat, bool)> = None;
            for (idx, row) in self.rows.iter().enumerate() {
                let b = row.basic;
                let st = &self.vars[b.index()];
                if let Some(l) = st.lower {
                    if st.value < l {
                        if violated.is_none_or(|(_, v, _, _)| b < v) {
                            violated = Some((idx, b, l, true));
                        }
                        continue;
                    }
                }
                if let Some(u) = st.upper {
                    if st.value > u && violated.is_none_or(|(_, v, _, _)| b < v) {
                        violated = Some((idx, b, u, false));
                    }
                }
            }
            let Some((r, _, target, need_increase)) = violated else {
                return LpResult::Feasible;
            };
            // Smallest eligible non-basic variable in row r.
            let mut entering: Option<Var> = None;
            for (&xj, &a) in &self.rows[r].coeffs {
                let st = &self.vars[xj.index()];
                let eligible = if need_increase {
                    // xi must increase: xj can move in the direction that
                    // increases xi.
                    (a.is_positive() && st.upper.is_none_or(|u| st.value < u))
                        || (a.is_negative() && st.lower.is_none_or(|l| st.value > l))
                } else {
                    (a.is_positive() && st.lower.is_none_or(|l| st.value > l))
                        || (a.is_negative() && st.upper.is_none_or(|u| st.value < u))
                };
                if eligible {
                    entering = Some(xj);
                    break; // BTreeMap iterates in ascending Var order.
                }
            }
            match entering {
                Some(xj) => self.pivot_and_update(r, xj, target),
                None => return LpResult::Infeasible,
            }
        }
    }

    /// Verifies the internal invariant that every basic variable's value
    /// equals its row evaluated at the non-basic values. Used by tests.
    #[doc(hidden)]
    pub fn debug_check_invariants(&self) -> bool {
        for row in &self.rows {
            let mut acc = Rat::ZERO;
            for (&v, &k) in &row.coeffs {
                if self.is_basic(v) {
                    return false; // rows must mention only non-basic vars
                }
                acc += k * self.vars[v.index()].value;
            }
            if acc != self.vars[row.basic.index()].value {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr(terms: &[(Var, i64)], c: i64) -> LinExpr {
        let mut e = LinExpr::constant(c);
        for &(v, k) in terms {
            e.add_term(v, Rat::from(k));
        }
        e
    }

    #[test]
    fn trivially_feasible() {
        let mut s = Simplex::new();
        let x = s.new_var("x");
        assert_eq!(s.assert_lower(x, Rat::ZERO), LpResult::Feasible);
        assert_eq!(s.check(), LpResult::Feasible);
        assert!(s.value(x) >= Rat::ZERO);
    }

    #[test]
    fn conflicting_bounds() {
        let mut s = Simplex::new();
        let x = s.new_var("x");
        assert_eq!(s.assert_lower(x, Rat::from(5)), LpResult::Feasible);
        assert_eq!(s.assert_upper(x, Rat::from(3)), LpResult::Infeasible);
        assert_eq!(s.check(), LpResult::Infeasible);
    }

    #[test]
    fn two_variable_system() {
        // x + y >= 10, x <= 3, y <= 4  is infeasible.
        let mut s = Simplex::new();
        let x = s.new_var("x");
        let y = s.new_var("y");
        let c = Constraint::ge(expr(&[(x, 1), (y, 1)], 0), LinExpr::constant(10));
        s.assert_constraint(&c);
        s.assert_upper(x, Rat::from(3));
        s.assert_upper(y, Rat::from(4));
        assert_eq!(s.check(), LpResult::Infeasible);
    }

    #[test]
    fn feasible_system_produces_model() {
        // x + y >= 10, x <= 7, y <= 6.
        let mut s = Simplex::new();
        let x = s.new_var("x");
        let y = s.new_var("y");
        s.assert_constraint(&Constraint::ge(
            expr(&[(x, 1), (y, 1)], 0),
            LinExpr::constant(10),
        ));
        s.assert_upper(x, Rat::from(7));
        s.assert_upper(y, Rat::from(6));
        assert_eq!(s.check(), LpResult::Feasible);
        assert!(s.value(x) + s.value(y) >= Rat::from(10));
        assert!(s.value(x) <= Rat::from(7));
        assert!(s.value(y) <= Rat::from(6));
        assert!(s.debug_check_invariants());
    }

    #[test]
    fn equality_constraints() {
        // 2x + 3y == 12, x == 3  =>  y == 2.
        let mut s = Simplex::new();
        let x = s.new_var("x");
        let y = s.new_var("y");
        s.assert_constraint(&Constraint::eq(
            expr(&[(x, 2), (y, 3)], 0),
            LinExpr::constant(12),
        ));
        s.assert_constraint(&Constraint::eq(LinExpr::var(x), LinExpr::constant(3)));
        assert_eq!(s.check(), LpResult::Feasible);
        assert_eq!(s.value(y), Rat::from(2));
    }

    #[test]
    fn push_pop_restores_feasibility() {
        let mut s = Simplex::new();
        let x = s.new_var("x");
        s.assert_lower(x, Rat::ZERO);
        assert_eq!(s.check(), LpResult::Feasible);
        s.push();
        s.assert_upper(x, Rat::from(-1));
        assert_eq!(s.check(), LpResult::Infeasible);
        s.pop();
        assert_eq!(s.check(), LpResult::Feasible);
    }

    #[test]
    fn slack_reuse() {
        let mut s = Simplex::new();
        let x = s.new_var("x");
        let y = s.new_var("y");
        let e = expr(&[(x, 1), (y, 1)], 0);
        s.assert_constraint(&Constraint::ge(e.clone(), LinExpr::constant(1)));
        let rows_before = s.num_rows();
        s.assert_constraint(&Constraint::le(e, LinExpr::constant(5)));
        assert_eq!(s.num_rows(), rows_before, "same form must reuse slack");
        assert_eq!(s.check(), LpResult::Feasible);
    }

    #[test]
    fn chained_slacks_through_basic_substitution() {
        // Force a pivot, then add a constraint whose expression mentions a
        // variable that is now basic.
        let mut s = Simplex::new();
        let x = s.new_var("x");
        let y = s.new_var("y");
        let z = s.new_var("z");
        s.assert_constraint(&Constraint::ge(
            expr(&[(x, 1), (y, 1)], 0),
            LinExpr::constant(4),
        ));
        assert_eq!(s.check(), LpResult::Feasible);
        s.assert_constraint(&Constraint::ge(
            expr(&[(x, 1), (z, 2)], 0),
            LinExpr::constant(3),
        ));
        s.assert_constraint(&Constraint::le(LinExpr::var(x), LinExpr::constant(0)));
        assert_eq!(s.check(), LpResult::Feasible);
        assert!(s.debug_check_invariants());
        assert!(s.value(x) + s.value(y) >= Rat::from(4));
        assert!(s.value(x) + s.value(z) * Rat::from(2) >= Rat::from(3));
    }

    #[test]
    fn unbounded_directions_are_fine() {
        // No upper bounds anywhere; feasibility must still be decided.
        let mut s = Simplex::new();
        let x = s.new_var("x");
        let y = s.new_var("y");
        s.assert_constraint(&Constraint::ge(
            expr(&[(x, 1), (y, -1)], 0),
            LinExpr::constant(100),
        ));
        assert_eq!(s.check(), LpResult::Feasible);
        assert!(s.value(x) - s.value(y) >= Rat::from(100));
    }
}
