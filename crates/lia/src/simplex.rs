//! A general simplex for linear-arithmetic feasibility.
//!
//! This is the solver core in the style of Dutertre & de Moura ("A fast
//! linear-arithmetic solver for DPLL(T)", CAV 2006): every constraint
//! `Σ aᵢxᵢ ⋈ c` is turned into a *slack* variable `s = Σ aᵢxᵢ` plus a
//! bound on `s`; feasibility is restored by pivoting with Bland's rule,
//! which guarantees termination. All arithmetic is exact rational.
//!
//! The tableau only grows (slack rows are permanent); backtracking
//! restores *bounds* from a trail, which keeps push/pop cheap — exactly
//! the access pattern of branch-and-bound, of case splitting in the
//! formula layer, and of the model checker's schedule DFS.
//!
//! Two sparse data structures keep long incremental sessions fast even
//! when the tableau has accumulated thousands of rows from explored and
//! abandoned schedule prefixes:
//!
//! * a **column index** (`cols`) mapping each non-basic variable to the
//!   rows it occurs in, so bound updates and pivots touch only the rows
//!   that actually mention the variable instead of scanning the whole
//!   tableau;
//! * a **suspect set** of basic variables whose value or bounds changed
//!   since they were last verified, so the Bland violated-variable scan
//!   is proportional to recent activity, not to tableau size. The
//!   invariant is `violated ⊆ suspect` (non-basic variables always
//!   satisfy their bounds).
//!
//! A **conflict counter** tracks variables whose lower bound exceeds
//! their upper bound, replacing the former all-variables scan at the
//! start of every check.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::collections::HashMap;

use crate::constraint::{Constraint, Rel};
use crate::linexpr::{LinExpr, Var};
use crate::rat::Rat;

/// The outcome of a feasibility check over the rationals.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LpResult {
    /// The asserted bounds are satisfiable over ℚ.
    Feasible,
    /// The asserted bounds are unsatisfiable over ℚ (hence also over ℤ).
    Infeasible,
    /// The deadline expired mid-pivot; neither verdict is trustworthy.
    /// Only produced when a deadline is set (see
    /// [`Simplex::set_deadline`]).
    TimedOut,
}

#[derive(Clone, Debug)]
struct VarState {
    lower: Option<Rat>,
    upper: Option<Rat>,
    /// Provenance tag of the assertion that produced the current lower
    /// bound; `None` for background bounds (variable non-negativity).
    lower_tag: Option<u32>,
    upper_tag: Option<u32>,
    value: Rat,
    name: String,
}

impl VarState {
    fn conflicting(&self) -> bool {
        matches!((self.lower, self.upper), (Some(l), Some(u)) if l > u)
    }
}

#[derive(Clone, Debug)]
struct Row {
    basic: Var,
    /// `basic = Σ k·v` over non-basic variables; sorted by `Var`, no
    /// zero coefficients. A sorted vector beats a `BTreeMap` here
    /// because the pivot substitution is a linear merge of two sorted
    /// coefficient lists — the single hottest loop in the solver — and
    /// iteration in ascending `Var` order (Bland's rule) is free.
    coeffs: Vec<(Var, Rat)>,
}

impl Row {
    /// The coefficient of `v`, if present (binary search).
    fn coeff(&self, v: Var) -> Option<Rat> {
        self.coeffs
            .binary_search_by_key(&v, |&(w, _)| w)
            .ok()
            .map(|i| self.coeffs[i].1)
    }
}

/// Merges `k·delta` into a sorted coefficient list: `acc += k·delta`,
/// dropping entries that cancel to zero. Both inputs are sorted by
/// `Var`; the result is too. Calls `on_change(v, true)` for vars that
/// appear in `acc` and `on_change(v, false)` for vars that disappear,
/// so the caller can maintain its column index incrementally.
fn merge_scaled(
    acc: &[(Var, Rat)],
    delta: &[(Var, Rat)],
    k: Rat,
    mut on_change: impl FnMut(Var, bool),
) -> Vec<(Var, Rat)> {
    let mut out = Vec::with_capacity(acc.len() + delta.len());
    let (mut i, mut j) = (0, 0);
    while i < acc.len() && j < delta.len() {
        let (va, ka) = acc[i];
        let (vd, kd) = delta[j];
        match va.cmp(&vd) {
            std::cmp::Ordering::Less => {
                out.push((va, ka));
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                let c = k * kd;
                if !c.is_zero() {
                    on_change(vd, true);
                    out.push((vd, c));
                }
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                let c = ka + k * kd;
                if c.is_zero() {
                    on_change(va, false);
                } else {
                    out.push((va, c));
                }
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&acc[i..]);
    for &(vd, kd) in &delta[j..] {
        let c = k * kd;
        if !c.is_zero() {
            on_change(vd, true);
            out.push((vd, c));
        }
    }
    out
}

#[derive(Clone, Copy, Debug)]
enum TrailEntry {
    Lower(Var, Option<Rat>, Option<u32>),
    Upper(Var, Option<Rat>, Option<u32>),
}

/// The incremental simplex tableau.
///
/// This type is deliberately low-level; most users want
/// [`Solver`](crate::Solver), which adds integer reasoning and boolean
/// structure on top.
#[derive(Clone, Debug, Default)]
pub struct Simplex {
    vars: Vec<VarState>,
    rows: Vec<Row>,
    /// Basic var -> row index.
    row_of: HashMap<Var, usize>,
    /// Non-basic var -> indices of rows whose coefficients mention it.
    cols: HashMap<Var, BTreeSet<usize>>,
    /// Reuse slack variables for syntactically equal linear forms.
    slack_cache: HashMap<Vec<(Var, Rat)>, Var>,
    /// Basic variables that may violate a bound (superset of the actual
    /// violated set; lazily shrunk during [`check`](Simplex::check)).
    suspect: BTreeSet<Var>,
    /// Variables with `lower > upper`, in order of appearance. Bounds
    /// only tighten within a level and relax in reverse trail order on
    /// pop, so conflicts appear and disappear LIFO — a stack is exact.
    conflict_stack: Vec<Var>,
    /// Provenance tags of bounds that participated in an infeasibility
    /// since the last [`clear_conflict_tags`](Simplex::clear_conflict_tags):
    /// both sides of every bound conflict, plus the blocking bounds of
    /// every terminal (no entering variable) pivot row. The union over a
    /// whole solver search seeds UNSAT-core extraction.
    conflict_tags: Vec<u32>,
    trail: Vec<TrailEntry>,
    levels: Vec<usize>,
    /// Pivot counter (statistics).
    pivots: u64,
    /// Hard wall-clock deadline for [`check`](Simplex::check); polled
    /// every [`DEADLINE_STRIDE`] pivots so a single pathological tableau
    /// cannot overshoot the caller's time budget by orders of magnitude.
    deadline: Option<std::time::Instant>,
}

/// How many pivots pass between deadline polls. `Instant::now` costs a
/// vdso call — cheap, but not free against a sub-microsecond pivot.
const DEADLINE_STRIDE: u64 = 64;

impl Simplex {
    /// Creates an empty tableau.
    pub fn new() -> Simplex {
        Simplex::default()
    }

    /// Allocates a fresh, unbounded variable.
    pub fn new_var(&mut self, name: impl Into<String>) -> Var {
        let v = Var(self.vars.len() as u32);
        self.vars.push(VarState {
            lower: None,
            upper: None,
            lower_tag: None,
            upper_tag: None,
            value: Rat::ZERO,
            name: name.into(),
        });
        v
    }

    /// The number of variables (including slacks).
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// The number of tableau rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Total pivots performed so far (statistic).
    pub fn pivot_count(&self) -> u64 {
        self.pivots
    }

    /// Sets (or clears) the wall-clock deadline enforced inside
    /// [`check`](Simplex::check)'s pivot loop.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.deadline = deadline;
    }

    /// The name a variable was created with.
    pub fn var_name(&self, v: Var) -> &str {
        &self.vars[v.index()].name
    }

    /// The current (rational) value of a variable. Only meaningful right
    /// after a [`check`](Simplex::check) that returned
    /// [`LpResult::Feasible`].
    pub fn value(&self, v: Var) -> Rat {
        self.vars[v.index()].value
    }

    /// Current lower bound of a variable.
    pub fn lower(&self, v: Var) -> Option<Rat> {
        self.vars[v.index()].lower
    }

    /// Current upper bound of a variable.
    pub fn upper(&self, v: Var) -> Option<Rat> {
        self.vars[v.index()].upper
    }

    /// Provenance tag of the current lower bound, if tagged.
    pub fn lower_tag(&self, v: Var) -> Option<u32> {
        self.vars[v.index()].lower_tag
    }

    /// Provenance tag of the current upper bound, if tagged.
    pub fn upper_tag(&self, v: Var) -> Option<u32> {
        self.vars[v.index()].upper_tag
    }

    /// Provenance tags of bounds that participated in any infeasibility
    /// observed since the last
    /// [`clear_conflict_tags`](Simplex::clear_conflict_tags). May contain
    /// duplicates; background (untagged) bounds are never listed.
    pub fn conflict_tags(&self) -> &[u32] {
        &self.conflict_tags
    }

    /// Clears the accumulated conflict-tag set.
    pub fn clear_conflict_tags(&mut self) {
        self.conflict_tags.clear();
    }

    /// Opens a backtracking level.
    pub fn push(&mut self) {
        self.levels.push(self.trail.len());
    }

    /// Restores the bounds recorded since the matching [`push`](Simplex::push).
    ///
    /// # Panics
    ///
    /// Panics if there is no open level.
    pub fn pop(&mut self) {
        let mark = self.levels.pop().expect("pop without matching push");
        while self.trail.len() > mark {
            let (v, entry_is_lower, old, old_tag) = match self.trail.pop().unwrap() {
                TrailEntry::Lower(v, old, tag) => (v, true, old, tag),
                TrailEntry::Upper(v, old, tag) => (v, false, old, tag),
            };
            let st = &mut self.vars[v.index()];
            let was_conflict = st.conflicting();
            if entry_is_lower {
                st.lower = old;
                st.lower_tag = old_tag;
            } else {
                st.upper = old;
                st.upper_tag = old_tag;
            }
            // Bounds only tighten within a level, so restoring relaxes:
            // conflicts can disappear but never appear here — in reverse
            // order of appearance, matching the stack.
            if was_conflict && !st.conflicting() {
                let top = self.conflict_stack.pop();
                debug_assert_eq!(top, Some(v), "conflicts must resolve LIFO");
            }
        }
    }

    fn is_basic(&self, v: Var) -> bool {
        self.row_of.contains_key(&v)
    }

    /// Asserts `v >= bound`, tightening only. Returns `Infeasible` if the
    /// new bound contradicts the current upper bound.
    pub fn assert_lower(&mut self, v: Var, bound: Rat) -> LpResult {
        self.assert_lower_tagged(v, bound, None)
    }

    /// [`assert_lower`](Simplex::assert_lower) with a provenance tag
    /// recorded against the bound for UNSAT-core extraction.
    pub fn assert_lower_tagged(&mut self, v: Var, bound: Rat, tag: Option<u32>) -> LpResult {
        let st = &self.vars[v.index()];
        if st.lower.is_some_and(|l| l >= bound) {
            return LpResult::Feasible;
        }
        let was_conflict = st.conflicting();
        self.trail
            .push(TrailEntry::Lower(v, st.lower, st.lower_tag));
        let conflict_now = st.upper.is_some_and(|u| u < bound);
        let upper_tag = st.upper_tag;
        let st = &mut self.vars[v.index()];
        st.lower = Some(bound);
        st.lower_tag = tag;
        if conflict_now {
            // Record the tightening anyway so that pop() restores it; the
            // state is conflicting until then.
            if !was_conflict {
                self.conflict_stack.push(v);
            }
            self.conflict_tags.extend(tag);
            self.conflict_tags.extend(upper_tag);
            return LpResult::Infeasible;
        }
        if self.is_basic(v) {
            if self.vars[v.index()].value < bound {
                self.suspect.insert(v);
            }
        } else if self.vars[v.index()].value < bound {
            self.update(v, bound);
        }
        LpResult::Feasible
    }

    /// Asserts `v <= bound`, tightening only. Returns `Infeasible` if the
    /// new bound contradicts the current lower bound.
    pub fn assert_upper(&mut self, v: Var, bound: Rat) -> LpResult {
        self.assert_upper_tagged(v, bound, None)
    }

    /// [`assert_upper`](Simplex::assert_upper) with a provenance tag
    /// recorded against the bound for UNSAT-core extraction.
    pub fn assert_upper_tagged(&mut self, v: Var, bound: Rat, tag: Option<u32>) -> LpResult {
        let st = &self.vars[v.index()];
        if st.upper.is_some_and(|u| u <= bound) {
            return LpResult::Feasible;
        }
        let was_conflict = st.conflicting();
        self.trail
            .push(TrailEntry::Upper(v, st.upper, st.upper_tag));
        let conflict_now = st.lower.is_some_and(|l| l > bound);
        let lower_tag = st.lower_tag;
        let st = &mut self.vars[v.index()];
        st.upper = Some(bound);
        st.upper_tag = tag;
        if conflict_now {
            if !was_conflict {
                self.conflict_stack.push(v);
            }
            self.conflict_tags.extend(tag);
            self.conflict_tags.extend(lower_tag);
            return LpResult::Infeasible;
        }
        if self.is_basic(v) {
            if self.vars[v.index()].value > bound {
                self.suspect.insert(v);
            }
        } else if self.vars[v.index()].value > bound {
            self.update(v, bound);
        }
        LpResult::Feasible
    }

    /// If `v` is non-basic with a fractional value, snaps it to a nearby
    /// integer consistent with its bounds. Used when a variable is
    /// *reactivated* after its constraints were popped: its value is
    /// stale junk from an abandoned search branch, and leaving it
    /// fractional would force pointless integrality branching on every
    /// subsequent check.
    pub fn snap_to_integer(&mut self, v: Var) {
        if self.is_basic(v) {
            return;
        }
        let val = self.vars[v.index()].value;
        if val.is_integer() {
            return;
        }
        let mut target = Rat::from(val.floor());
        let st = &self.vars[v.index()];
        if st.lower.is_some_and(|l| target < l) {
            target = Rat::from(val.ceil());
        }
        if st.upper.is_some_and(|u| target > u) || st.lower.is_some_and(|l| target < l) {
            return; // no integer point between the bounds' fractional gap
        }
        self.update(v, target);
    }

    /// Asserts a normalised [`Constraint`]. Single-variable constraints
    /// become direct bounds; general linear forms get a (cached) slack
    /// variable.
    pub fn assert_constraint(&mut self, c: &Constraint) -> LpResult {
        self.assert_constraint_tagged(c, None)
    }

    /// [`assert_constraint`](Simplex::assert_constraint) with a
    /// provenance tag recorded against every bound it produces.
    pub fn assert_constraint_tagged(&mut self, c: &Constraint, tag: Option<u32>) -> LpResult {
        if let Some(truth) = c.constant_truth() {
            return if truth {
                LpResult::Feasible
            } else {
                // Encode falsity as an impossible pair of bounds on a
                // throwaway variable, so that the conflict persists until
                // the enclosing level is popped.
                let f = self.new_var("false");
                let _ = self.assert_lower_tagged(f, Rat::ONE, tag);
                let _ = self.assert_upper_tagged(f, Rat::ZERO, tag);
                LpResult::Infeasible
            };
        }
        let expr = c.expr();
        let constant = expr.constant_term();
        // expr REL 0  ⇔  (expr - constant) REL -constant.
        if expr.num_terms() == 1 {
            let (v, k) = expr.iter().next().unwrap();
            // k·v REL -constant  ⇒  v REL' -constant/k (flip if k < 0).
            let bound = -constant / k;
            return match (c.rel(), k.is_positive()) {
                (Rel::Le, true) | (Rel::Ge, false) => self.assert_upper_tagged(v, bound, tag),
                (Rel::Ge, true) | (Rel::Le, false) => self.assert_lower_tagged(v, bound, tag),
                (Rel::Eq, _) => match self.assert_lower_tagged(v, bound, tag) {
                    LpResult::Infeasible => LpResult::Infeasible,
                    // assert_lower never times out (no pivoting).
                    _ => self.assert_upper_tagged(v, bound, tag),
                },
            };
        }
        let slack = self.slack_for(expr);
        let bound = -constant;
        match c.rel() {
            Rel::Le => self.assert_upper_tagged(slack, bound, tag),
            Rel::Ge => self.assert_lower_tagged(slack, bound, tag),
            Rel::Eq => match self.assert_lower_tagged(slack, bound, tag) {
                LpResult::Infeasible => LpResult::Infeasible,
                // assert_lower never times out (no pivoting).
                _ => self.assert_upper_tagged(slack, bound, tag),
            },
        }
    }

    /// Returns the slack variable representing the variable part of `expr`
    /// (ignoring its constant term), creating a tableau row if needed.
    fn slack_for(&mut self, expr: &LinExpr) -> Var {
        let key: Vec<(Var, Rat)> = expr.iter().collect();
        if let Some(&s) = self.slack_cache.get(&key) {
            return s;
        }
        let s = self.new_var(format!("s{}", self.rows.len()));
        // Rewrite the defining equation over the current non-basic vars.
        // (Cold path: rows are built once and pivoted many times, so a
        // BTreeMap accumulator is fine here.)
        let mut acc: BTreeMap<Var, Rat> = BTreeMap::new();
        for (v, k) in expr.iter() {
            if let Some(&r) = self.row_of.get(&v) {
                for &(w, kw) in &self.rows[r].coeffs {
                    let e = acc.entry(w).or_default();
                    *e += k * kw;
                    if e.is_zero() {
                        acc.remove(&w);
                    }
                }
            } else {
                let e = acc.entry(v).or_default();
                *e += k;
                if e.is_zero() {
                    acc.remove(&v);
                }
            }
        }
        let coeffs: Vec<(Var, Rat)> = acc.into_iter().collect();
        let idx = self.rows.len();
        let mut value = Rat::ZERO;
        for &(w, kw) in &coeffs {
            value += kw * self.vars[w.index()].value;
            self.cols.entry(w).or_default().insert(idx);
        }
        self.vars[s.index()].value = value;
        self.row_of.insert(s, idx);
        self.rows.push(Row { basic: s, coeffs });
        self.slack_cache.insert(key, s);
        s
    }

    /// Sets the value of a non-basic variable, propagating through the
    /// rows that mention it (via the column index).
    fn update(&mut self, v: Var, value: Rat) {
        let delta = value - self.vars[v.index()].value;
        if delta.is_zero() {
            return;
        }
        if let Some(rows) = self.cols.get(&v) {
            for &idx in rows.iter() {
                let k = self.rows[idx]
                    .coeff(v)
                    .expect("column index row mentions v");
                let basic = self.rows[idx].basic;
                self.vars[basic.index()].value += k * delta;
                self.suspect.insert(basic);
            }
        }
        self.vars[v.index()].value = value;
    }

    /// Pivots basic `xi` (row `r`) with non-basic `xj`, then sets
    /// `xi := target` and adjusts `xj` accordingly.
    fn pivot_and_update(&mut self, r: usize, xj: Var, target: Rat) {
        self.pivots += 1;
        let xi = self.rows[r].basic;
        let a_ij = self.rows[r].coeff(xj).expect("pivot column in row");
        let theta = (target - self.vars[xi.index()].value) / a_ij;

        // Value updates: only rows that mention xj change.
        self.vars[xi.index()].value = target;
        self.vars[xj.index()].value += theta;
        let xj_rows: Vec<usize> = self.cols.get(&xj).into_iter().flatten().copied().collect();
        for &idx in &xj_rows {
            if idx == r {
                continue;
            }
            let k = self.rows[idx]
                .coeff(xj)
                .expect("column index row mentions xj");
            let basic = self.rows[idx].basic;
            self.vars[basic.index()].value += k * theta;
            self.suspect.insert(basic);
        }
        // xj enters the basis and may now violate its own bounds.
        self.suspect.insert(xj);

        // Tableau pivot: solve row r for xj.
        //   xi = a_ij·xj + Σ_k a_ik·xk
        //   xj = (1/a_ij)·xi − Σ_k (a_ik/a_ij)·xk
        let old_coeffs = std::mem::take(&mut self.rows[r].coeffs);
        for &(v, _) in &old_coeffs {
            if let Some(set) = self.cols.get_mut(&v) {
                set.remove(&r);
            }
        }
        let inv = a_ij.recip();
        let mut new_coeffs: Vec<(Var, Rat)> = Vec::with_capacity(old_coeffs.len());
        let mut xi_inserted = false;
        for &(v, k) in &old_coeffs {
            if !xi_inserted && xi < v {
                new_coeffs.push((xi, inv));
                xi_inserted = true;
            }
            if v != xj {
                let c = -(k * inv);
                if !c.is_zero() {
                    new_coeffs.push((v, c));
                }
            }
        }
        if !xi_inserted {
            new_coeffs.push((xi, inv));
        }
        // Substitute xj's new definition into every row that mentions it:
        // row := row_without_xj + k · new_coeffs, a linear merge of two
        // sorted coefficient lists.
        for &idx in &xj_rows {
            if idx == r {
                continue;
            }
            let row = std::mem::take(&mut self.rows[idx].coeffs);
            let pos = row
                .binary_search_by_key(&xj, |&(w, _)| w)
                .expect("column index row mentions xj");
            let k = row[pos].1;
            let mut without_xj = row;
            without_xj.remove(pos);
            let cols = &mut self.cols;
            self.rows[idx].coeffs = merge_scaled(&without_xj, &new_coeffs, k, |w, appeared| {
                let set = cols.entry(w).or_default();
                if appeared {
                    set.insert(idx);
                } else {
                    set.remove(&idx);
                }
            });
        }
        if let Some(set) = self.cols.get_mut(&xj) {
            set.clear();
        }
        for &(w, _) in &new_coeffs {
            self.cols.entry(w).or_default().insert(r);
        }
        self.rows[r].basic = xj;
        self.rows[r].coeffs = new_coeffs;
        self.row_of.remove(&xi);
        self.row_of.insert(xj, r);
    }

    /// Whether a basic variable currently violates one of its bounds,
    /// and if so which bound it must be driven to.
    fn violation(&self, b: Var) -> Option<(Rat, bool)> {
        let st = &self.vars[b.index()];
        if let Some(l) = st.lower {
            if st.value < l {
                return Some((l, true));
            }
        }
        if let Some(u) = st.upper {
            if st.value > u {
                return Some((u, false));
            }
        }
        None
    }

    /// Restores feasibility of basic variables by pivoting (Bland's rule:
    /// always the smallest-index violated basic variable and the
    /// smallest-index eligible non-basic variable, which precludes
    /// cycling).
    pub fn check(&mut self) -> LpResult {
        // Bounds asserted while conflicting (assert_* returned Infeasible)
        // leave lower > upper somewhere; the stack tracks exactly which.
        if !self.conflict_stack.is_empty() {
            // Harvest both sides of every live bound conflict: the tags
            // recorded at assert time may predate the caller's last
            // clear_conflict_tags.
            for i in 0..self.conflict_stack.len() {
                let st = &self.vars[self.conflict_stack[i].index()];
                let (lt, ut) = (st.lower_tag, st.upper_tag);
                self.conflict_tags.extend(lt);
                self.conflict_tags.extend(ut);
            }
            return LpResult::Infeasible;
        }
        let mut next_poll = self.pivots + DEADLINE_STRIDE;
        loop {
            if let Some(deadline) = self.deadline {
                if self.pivots >= next_poll {
                    if std::time::Instant::now() >= deadline {
                        return LpResult::TimedOut;
                    }
                    next_poll = self.pivots + DEADLINE_STRIDE;
                }
            }
            // Smallest violated basic variable. Every violated basic var
            // is in `suspect` (only value changes and bound tightenings
            // create violations, and both insert), so scanning the
            // suspect set in ascending order implements Bland's rule.
            let mut violated: Option<(usize, Rat, bool)> = None;
            let mut cleared: Vec<Var> = Vec::new();
            for &b in self.suspect.iter() {
                match self.row_of.get(&b) {
                    Some(&idx) => match self.violation(b) {
                        Some((target, need_increase)) => {
                            violated = Some((idx, target, need_increase));
                            break;
                        }
                        None => cleared.push(b),
                    },
                    // Non-basic variables always satisfy their bounds.
                    None => cleared.push(b),
                }
            }
            for b in cleared {
                self.suspect.remove(&b);
            }
            let Some((r, target, need_increase)) = violated else {
                return LpResult::Feasible;
            };
            // Smallest eligible non-basic variable in row r.
            let mut entering: Option<Var> = None;
            for &(xj, a) in &self.rows[r].coeffs {
                let st = &self.vars[xj.index()];
                let eligible = if need_increase {
                    // xi must increase: xj can move in the direction that
                    // increases xi.
                    (a.is_positive() && st.upper.is_none_or(|u| st.value < u))
                        || (a.is_negative() && st.lower.is_none_or(|l| st.value > l))
                } else {
                    (a.is_positive() && st.lower.is_none_or(|l| st.value > l))
                        || (a.is_negative() && st.upper.is_none_or(|u| st.value < u))
                };
                if eligible {
                    entering = Some(xj);
                    break; // coeffs are sorted in ascending Var order.
                }
            }
            match entering {
                Some(xj) => {
                    let xi = self.rows[r].basic;
                    self.pivot_and_update(r, xj, target);
                    // xi left the basis at exactly its violated bound.
                    self.suspect.remove(&xi);
                }
                None => {
                    // The terminal row is a Farkas certificate: the
                    // violated bound of the basic variable plus, for each
                    // non-basic variable in the row, the bound blocking
                    // movement in the helpful direction. Record their
                    // provenance tags for UNSAT-core extraction.
                    let xi = self.rows[r].basic;
                    let xi_tag = if need_increase {
                        self.vars[xi.index()].lower_tag
                    } else {
                        self.vars[xi.index()].upper_tag
                    };
                    self.conflict_tags.extend(xi_tag);
                    let row_tags: Vec<u32> = self.rows[r]
                        .coeffs
                        .iter()
                        .filter_map(|&(xj, a)| {
                            let st = &self.vars[xj.index()];
                            let blocks_at_upper = a.is_positive() == need_increase;
                            if blocks_at_upper {
                                st.upper_tag
                            } else {
                                st.lower_tag
                            }
                        })
                        .collect();
                    self.conflict_tags.extend(row_tags);
                    return LpResult::Infeasible;
                }
            }
        }
    }

    /// Verifies the internal invariants: every basic variable's value
    /// equals its row evaluated at the non-basic values, and the column
    /// index matches the rows. Used by tests.
    #[doc(hidden)]
    pub fn debug_check_invariants(&self) -> bool {
        for (idx, row) in self.rows.iter().enumerate() {
            let mut acc = Rat::ZERO;
            if !row.coeffs.is_sorted_by_key(|&(v, _)| v) {
                return false; // rows must stay sorted for the merges
            }
            for &(v, k) in &row.coeffs {
                if k.is_zero() {
                    return false; // no explicit zero coefficients
                }
                if self.is_basic(v) {
                    return false; // rows must mention only non-basic vars
                }
                if !self.cols.get(&v).is_some_and(|set| set.contains(&idx)) {
                    return false; // column index must cover every coeff
                }
                acc += k * self.vars[v.index()].value;
            }
            if acc != self.vars[row.basic.index()].value {
                return false;
            }
        }
        for (v, set) in &self.cols {
            for &idx in set {
                if self.rows[idx].coeff(*v).is_none() {
                    return false; // no stale column entries
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr(terms: &[(Var, i64)], c: i64) -> LinExpr {
        let mut e = LinExpr::constant(c);
        for &(v, k) in terms {
            e.add_term(v, Rat::from(k));
        }
        e
    }

    #[test]
    fn trivially_feasible() {
        let mut s = Simplex::new();
        let x = s.new_var("x");
        assert_eq!(s.assert_lower(x, Rat::ZERO), LpResult::Feasible);
        assert_eq!(s.check(), LpResult::Feasible);
        assert!(s.value(x) >= Rat::ZERO);
    }

    #[test]
    fn conflicting_bounds() {
        let mut s = Simplex::new();
        let x = s.new_var("x");
        assert_eq!(s.assert_lower(x, Rat::from(5)), LpResult::Feasible);
        assert_eq!(s.assert_upper(x, Rat::from(3)), LpResult::Infeasible);
        assert_eq!(s.check(), LpResult::Infeasible);
    }

    #[test]
    fn conflict_counter_pops_back() {
        let mut s = Simplex::new();
        let x = s.new_var("x");
        s.assert_lower(x, Rat::from(5));
        s.push();
        assert_eq!(s.assert_upper(x, Rat::from(3)), LpResult::Infeasible);
        assert_eq!(s.check(), LpResult::Infeasible);
        s.pop();
        assert_eq!(s.check(), LpResult::Feasible);
        s.push();
        assert_eq!(s.assert_upper(x, Rat::from(4)), LpResult::Infeasible);
        s.push();
        s.assert_upper(x, Rat::from(2));
        s.pop();
        assert_eq!(s.check(), LpResult::Infeasible);
        s.pop();
        assert_eq!(s.check(), LpResult::Feasible);
    }

    #[test]
    fn two_variable_system() {
        // x + y >= 10, x <= 3, y <= 4  is infeasible.
        let mut s = Simplex::new();
        let x = s.new_var("x");
        let y = s.new_var("y");
        let c = Constraint::ge(expr(&[(x, 1), (y, 1)], 0), LinExpr::constant(10));
        s.assert_constraint(&c);
        s.assert_upper(x, Rat::from(3));
        s.assert_upper(y, Rat::from(4));
        assert_eq!(s.check(), LpResult::Infeasible);
    }

    #[test]
    fn feasible_system_produces_model() {
        // x + y >= 10, x <= 7, y <= 6.
        let mut s = Simplex::new();
        let x = s.new_var("x");
        let y = s.new_var("y");
        s.assert_constraint(&Constraint::ge(
            expr(&[(x, 1), (y, 1)], 0),
            LinExpr::constant(10),
        ));
        s.assert_upper(x, Rat::from(7));
        s.assert_upper(y, Rat::from(6));
        assert_eq!(s.check(), LpResult::Feasible);
        assert!(s.value(x) + s.value(y) >= Rat::from(10));
        assert!(s.value(x) <= Rat::from(7));
        assert!(s.value(y) <= Rat::from(6));
        assert!(s.debug_check_invariants());
    }

    #[test]
    fn equality_constraints() {
        // 2x + 3y == 12, x == 3  =>  y == 2.
        let mut s = Simplex::new();
        let x = s.new_var("x");
        let y = s.new_var("y");
        s.assert_constraint(&Constraint::eq(
            expr(&[(x, 2), (y, 3)], 0),
            LinExpr::constant(12),
        ));
        s.assert_constraint(&Constraint::eq(LinExpr::var(x), LinExpr::constant(3)));
        assert_eq!(s.check(), LpResult::Feasible);
        assert_eq!(s.value(y), Rat::from(2));
    }

    #[test]
    fn push_pop_restores_feasibility() {
        let mut s = Simplex::new();
        let x = s.new_var("x");
        s.assert_lower(x, Rat::ZERO);
        assert_eq!(s.check(), LpResult::Feasible);
        s.push();
        s.assert_upper(x, Rat::from(-1));
        assert_eq!(s.check(), LpResult::Infeasible);
        s.pop();
        assert_eq!(s.check(), LpResult::Feasible);
    }

    #[test]
    fn slack_reuse() {
        let mut s = Simplex::new();
        let x = s.new_var("x");
        let y = s.new_var("y");
        let e = expr(&[(x, 1), (y, 1)], 0);
        s.assert_constraint(&Constraint::ge(e.clone(), LinExpr::constant(1)));
        let rows_before = s.num_rows();
        s.assert_constraint(&Constraint::le(e, LinExpr::constant(5)));
        assert_eq!(s.num_rows(), rows_before, "same form must reuse slack");
        assert_eq!(s.check(), LpResult::Feasible);
    }

    #[test]
    fn chained_slacks_through_basic_substitution() {
        // Force a pivot, then add a constraint whose expression mentions a
        // variable that is now basic.
        let mut s = Simplex::new();
        let x = s.new_var("x");
        let y = s.new_var("y");
        let z = s.new_var("z");
        s.assert_constraint(&Constraint::ge(
            expr(&[(x, 1), (y, 1)], 0),
            LinExpr::constant(4),
        ));
        assert_eq!(s.check(), LpResult::Feasible);
        s.assert_constraint(&Constraint::ge(
            expr(&[(x, 1), (z, 2)], 0),
            LinExpr::constant(3),
        ));
        s.assert_constraint(&Constraint::le(LinExpr::var(x), LinExpr::constant(0)));
        assert_eq!(s.check(), LpResult::Feasible);
        assert!(s.debug_check_invariants());
        assert!(s.value(x) + s.value(y) >= Rat::from(4));
        assert!(s.value(x) + s.value(z) * Rat::from(2) >= Rat::from(3));
    }

    #[test]
    fn unbounded_directions_are_fine() {
        // No upper bounds anywhere; feasibility must still be decided.
        let mut s = Simplex::new();
        let x = s.new_var("x");
        let y = s.new_var("y");
        s.assert_constraint(&Constraint::ge(
            expr(&[(x, 1), (y, -1)], 0),
            LinExpr::constant(100),
        ));
        assert_eq!(s.check(), LpResult::Feasible);
        assert!(s.value(x) - s.value(y) >= Rat::from(100));
    }

    #[test]
    fn repeated_incremental_checks_stay_consistent() {
        // A long push/assert/check/pop session exercising the column
        // index and the suspect set across backtracking.
        let mut s = Simplex::new();
        let vars: Vec<Var> = (0..6).map(|i| s.new_var(format!("v{i}"))).collect();
        for &v in &vars {
            s.assert_lower(v, Rat::ZERO);
        }
        s.assert_constraint(&Constraint::ge(
            expr(&[(vars[0], 1), (vars[1], 1), (vars[2], 1)], 0),
            LinExpr::constant(10),
        ));
        assert_eq!(s.check(), LpResult::Feasible);
        for round in 0..20 {
            s.push();
            s.assert_constraint(&Constraint::ge(
                expr(&[(vars[3], 1), (vars[round % 3], 2)], 0),
                LinExpr::constant(round as i64),
            ));
            s.assert_constraint(&Constraint::le(LinExpr::var(vars[3]), LinExpr::constant(5)));
            let r = s.check();
            assert_eq!(r, LpResult::Feasible, "round {round}");
            assert!(s.debug_check_invariants(), "round {round}");
            s.pop();
        }
        assert_eq!(s.check(), LpResult::Feasible);
        assert!(s.debug_check_invariants());
    }
}
