//! Exact rational arithmetic with a machine-word fast path.
//!
//! The solver never touches floating point: simplex pivots, bounds and
//! models are all exact. A rational is stored in one of two
//! representations, both kept reduced with a positive denominator:
//!
//! * `Small(i64, i64)` — the machine-word fast path. The constraint
//!   systems produced by the checker have small integer coefficients, so
//!   in practice virtually every value the simplex touches lives here.
//!   Addition and multiplication widen to `i128` intermediates, which
//!   *cannot* overflow (|a·d| ≤ 2^126), reduce, and demote back.
//! * `Big(i128, i128)` — the wide path, entered only when a value no
//!   longer fits an `i64` pair. Arithmetic here is overflow-checked.
//!
//! The representation is canonical: a value whose reduced form fits the
//! small representation is always stored small, so structural equality
//! and hashing remain valid (`derive`d).
//!
//! # Overflow
//!
//! Wide-path arithmetic that would exceed `i128` does **not** panic.
//! The operators saturate to a poison value ([`Rat::ZERO`]) and latch a
//! thread-local overflow flag; the solver observes the flag via
//! [`Rat::take_overflow_flag`] and turns the whole check into a sound
//! `Unknown` verdict instead of aborting mid-verification. Callers that
//! want an explicit error can use the fallible API ([`Rat::try_add`],
//! [`Rat::try_sub`], [`Rat::try_mul`], [`Rat::try_div`]), which returns
//! [`RatOverflow`] and leaves the flag untouched.

use std::cell::Cell;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// Arithmetic on [`Rat`] exceeded the `i128` wide representation.
///
/// Returned by the `try_*` operations; the infix operators instead
/// latch the thread-local flag read by [`Rat::take_overflow_flag`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RatOverflow;

impl fmt::Display for RatOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rational arithmetic overflowed i128")
    }
}

impl std::error::Error for RatOverflow {}

thread_local! {
    /// Latched by saturating operator overflow; drained by
    /// [`Rat::take_overflow_flag`].
    static OVERFLOWED: Cell<bool> = const { Cell::new(false) };
}

/// An exact rational number `num / den` with `den > 0` and
/// `gcd(num, den) == 1`.
///
/// # Examples
///
/// ```
/// use holistic_lia::Rat;
///
/// let a = Rat::new(1, 3);
/// let b = Rat::new(1, 6);
/// assert_eq!(a + b, Rat::new(1, 2));
/// assert!(Rat::from(2) > a);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat(Repr);

/// Canonical two-tier representation: values that fit an `i64` pair are
/// *always* stored `Small`, so derived equality/hashing are structural.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Repr {
    Small(i64, i64),
    Big(i128, i128),
}

use Repr::{Big, Small};

const fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    if a < 0 {
        -a
    } else {
        a
    }
}

/// Full 128×128 → 256-bit unsigned multiply: `(hi, lo)`.
fn umul256(x: u128, y: u128) -> (u128, u128) {
    const M: u128 = (1u128 << 64) - 1;
    let (x0, x1) = (x & M, x >> 64);
    let (y0, y1) = (y & M, y >> 64);
    let p00 = x0 * y0;
    let p01 = x0 * y1;
    let p10 = x1 * y0;
    let mid = (p00 >> 64) + (p01 & M) + (p10 & M);
    let lo = (p00 & M) | (mid << 64);
    let hi = x1 * y1 + (p01 >> 64) + (p10 >> 64) + (mid >> 64);
    (hi, lo)
}

impl Rat {
    /// Zero.
    pub const ZERO: Rat = Rat(Small(0, 1));
    /// One.
    pub const ONE: Rat = Rat(Small(1, 1));

    /// Creates a rational `num / den`, reduced to lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "rational with zero denominator");
        let g = gcd(num, den);
        let (n, d) = (num / g, den / g);
        if d < 0 {
            // `-n` overflows only for `i128::MIN`, which cannot be
            // reduced away; saturate rather than wrap.
            match (n.checked_neg(), d.checked_neg()) {
                (Some(n), Some(d)) => Rat::make(n, d),
                _ => Rat::saturate(),
            }
        } else {
            Rat::make(n, d)
        }
    }

    /// Wraps an already-reduced pair (`den > 0`, `gcd == 1`), demoting
    /// to the small representation when it fits.
    #[inline]
    fn make(num: i128, den: i128) -> Rat {
        if let (Ok(n), Ok(d)) = (i64::try_from(num), i64::try_from(den)) {
            Rat(Small(n, d))
        } else {
            Rat(Big(num, den))
        }
    }

    /// Latches the thread-local overflow flag and returns the poison
    /// value the saturating operators produce.
    #[cold]
    fn saturate() -> Rat {
        OVERFLOWED.with(|f| f.set(true));
        Rat::ZERO
    }

    /// Reads **and clears** the thread-local overflow flag latched by
    /// saturating operator overflow. The solver drains this around each
    /// satisfiability check and demotes the verdict to `Unknown` if any
    /// arithmetic saturated — a wrong *value* can only misdirect the
    /// search, never produce a wrong verdict, as long as the flag is
    /// honoured.
    pub fn take_overflow_flag() -> bool {
        OVERFLOWED.with(|f| f.replace(false))
    }

    /// The numerator (sign-carrying).
    #[inline]
    pub fn numer(&self) -> i128 {
        match self.0 {
            Small(n, _) => n as i128,
            Big(n, _) => n,
        }
    }

    /// The denominator (always positive).
    #[inline]
    pub fn denom(&self) -> i128 {
        match self.0 {
            Small(_, d) => d as i128,
            Big(_, d) => d,
        }
    }

    /// Whether this rational is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        matches!(self.0, Small(0, _))
    }

    /// Whether this rational is an integer.
    #[inline]
    pub fn is_integer(&self) -> bool {
        match self.0 {
            Small(_, d) => d == 1,
            Big(_, d) => d == 1,
        }
    }

    /// Whether this rational is strictly positive.
    #[inline]
    pub fn is_positive(&self) -> bool {
        match self.0 {
            Small(n, _) => n > 0,
            Big(n, _) => n > 0,
        }
    }

    /// Whether this rational is strictly negative.
    #[inline]
    pub fn is_negative(&self) -> bool {
        match self.0 {
            Small(n, _) => n < 0,
            Big(n, _) => n < 0,
        }
    }

    /// The largest integer `k` with `k <= self`.
    #[inline]
    pub fn floor(&self) -> i128 {
        match self.0 {
            Small(n, d) => n.div_euclid(d) as i128,
            Big(n, d) => n.div_euclid(d),
        }
    }

    /// The smallest integer `k` with `k >= self`.
    #[inline]
    pub fn ceil(&self) -> i128 {
        match self.0 {
            Small(n, d) => -(-(n as i128)).div_euclid(d as i128),
            Big(n, d) => match n.checked_neg() {
                Some(m) => -m.div_euclid(d),
                // n == i128::MIN: the value is a huge negative non-integer
                // (d > 1, since MIN/1 reduced stays integral and integral
                // ceil never negates); ceil = floor + 1.
                None => n.div_euclid(d) + 1,
            },
        }
    }

    /// The multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    pub fn recip(&self) -> Rat {
        assert!(!self.is_zero(), "reciprocal of zero");
        match self.0 {
            Small(n, d) => {
                if n > 0 {
                    Rat(Small(d, n))
                } else if n == i64::MIN {
                    Rat::make(-(d as i128), -(n as i128))
                } else {
                    Rat(Small(-d, -n))
                }
            }
            Big(n, d) => {
                if n > 0 {
                    Rat::make(d, n)
                } else {
                    match (d.checked_neg(), n.checked_neg()) {
                        (Some(d), Some(n)) => Rat::make(d, n),
                        _ => Rat::saturate(), // n == i128::MIN
                    }
                }
            }
        }
    }

    /// Converts to `i128` if the value is an integer.
    #[inline]
    pub fn to_integer(&self) -> Option<i128> {
        match self.0 {
            Small(n, 1) => Some(n as i128),
            Big(n, 1) => Some(n),
            _ => None,
        }
    }

    /// The reduced `(numerator, denominator)` pair, widened.
    #[inline]
    fn parts(self) -> (i128, i128) {
        match self.0 {
            Small(n, d) => (n as i128, d as i128),
            Big(n, d) => (n, d),
        }
    }

    /// Fallible addition; `Err` on `i128` overflow (flag untouched).
    pub fn try_add(self, rhs: Rat) -> Result<Rat, RatOverflow> {
        if let (Small(a, b), Small(c, d)) = (self.0, rhs.0) {
            // Integer fast path: the overwhelmingly common case in the
            // simplex (bounds and pivot targets are mostly integers).
            if b == 1 && d == 1 {
                return Ok(match a.checked_add(c) {
                    Some(s) => Rat(Small(s, 1)),
                    None => Rat::make(a as i128 + c as i128, 1),
                });
            }
            // Widened intermediates cannot overflow:
            // |a·d + c·b| ≤ 2^127 − 2^64 and b·d < 2^126.
            let (a, b, c, d) = (a as i128, b as i128, c as i128, d as i128);
            return Ok(Rat::new(a * d + c * b, b * d));
        }
        let (a, b) = self.parts();
        let (c, d) = rhs.parts();
        // a/b + c/d = (a·(l/b) + c·(l/d)) / l  with l = lcm(b, d).
        let g = gcd(b, d);
        let l = b.checked_mul(d / g).ok_or(RatOverflow)?;
        let x = a.checked_mul(l / b).ok_or(RatOverflow)?;
        let y = c.checked_mul(l / d).ok_or(RatOverflow)?;
        Ok(Rat::new(x.checked_add(y).ok_or(RatOverflow)?, l))
    }

    /// Fallible subtraction; `Err` on `i128` overflow (flag untouched).
    pub fn try_sub(self, rhs: Rat) -> Result<Rat, RatOverflow> {
        match rhs.checked_neg() {
            Some(m) => self.try_add(m),
            None => Err(RatOverflow),
        }
    }

    /// Fallible multiplication; `Err` on `i128` overflow (flag untouched).
    pub fn try_mul(self, rhs: Rat) -> Result<Rat, RatOverflow> {
        if let (Small(a, b), Small(c, d)) = (self.0, rhs.0) {
            if b == 1 && d == 1 {
                return Ok(match a.checked_mul(c) {
                    Some(p) => Rat(Small(p, 1)),
                    None => Rat::make(a as i128 * c as i128, 1),
                });
            }
            // |a·c| < 2^126 and 0 < b·d < 2^126: no overflow possible.
            return Ok(Rat::new(a as i128 * c as i128, b as i128 * d as i128));
        }
        let (a, b) = self.parts();
        let (c, d) = rhs.parts();
        // Cross-reduce before multiplying to keep magnitudes small.
        let g1 = gcd(a, d);
        let g2 = gcd(c, b);
        let num = (a / g1).checked_mul(c / g2).ok_or(RatOverflow)?;
        let den = (b / g2).checked_mul(d / g1).ok_or(RatOverflow)?;
        Ok(Rat::new(num, den))
    }

    /// Fallible division; `Err` on `i128` overflow (flag untouched).
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn try_div(self, rhs: Rat) -> Result<Rat, RatOverflow> {
        assert!(!rhs.is_zero(), "reciprocal of zero");
        let (c, d) = rhs.parts();
        // Invert without going through `recip` so that `i128::MIN`
        // numerators surface as `Err` instead of latching the flag.
        let inv = if c > 0 {
            Rat::make(d, c)
        } else {
            match (d.checked_neg(), c.checked_neg()) {
                (Some(d), Some(c)) => Rat::make(d, c),
                _ => return Err(RatOverflow),
            }
        };
        self.try_mul(inv)
    }

    /// `-self`, or `None` if the numerator is `i128::MIN`.
    fn checked_neg(self) -> Option<Rat> {
        match self.0 {
            Small(n, d) => Some(match n.checked_neg() {
                Some(m) => Rat(Small(m, d)),
                None => Rat::make(-(n as i128), d as i128),
            }),
            Big(n, d) => n.checked_neg().map(|m| Rat::make(m, d)),
        }
    }
}

impl From<i128> for Rat {
    fn from(v: i128) -> Rat {
        Rat::make(v, 1)
    }
}

impl From<i64> for Rat {
    fn from(v: i64) -> Rat {
        Rat(Small(v, 1))
    }
}

impl From<i32> for Rat {
    fn from(v: i32) -> Rat {
        Rat(Small(v as i64, 1))
    }
}

impl Default for Rat {
    fn default() -> Rat {
        Rat::ZERO
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        self.try_add(rhs).unwrap_or_else(|_| Rat::saturate())
    }
}

impl AddAssign for Rat {
    fn add_assign(&mut self, rhs: Rat) {
        *self = *self + rhs;
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        self.try_sub(rhs).unwrap_or_else(|_| Rat::saturate())
    }
}

impl SubAssign for Rat {
    fn sub_assign(&mut self, rhs: Rat) {
        *self = *self - rhs;
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        self.try_mul(rhs).unwrap_or_else(|_| Rat::saturate())
    }
}

impl MulAssign for Rat {
    fn mul_assign(&mut self, rhs: Rat) {
        *self = *self * rhs;
    }
}

impl Div for Rat {
    type Output = Rat;
    fn div(self, rhs: Rat) -> Rat {
        self.try_div(rhs).unwrap_or_else(|_| Rat::saturate())
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        self.checked_neg().unwrap_or_else(Rat::saturate)
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        // a/b ? c/d  ⇔  a·d ? c·b  (b, d > 0).
        if let (Small(a, b), Small(c, d)) = (self.0, other.0) {
            if b == d {
                return a.cmp(&c);
            }
            return (a as i128 * d as i128).cmp(&(c as i128 * b as i128));
        }
        let (a, b) = self.parts();
        let (c, d) = other.parts();
        match (a.checked_mul(d), c.checked_mul(b)) {
            (Some(l), Some(r)) => l.cmp(&r),
            // 256-bit exact comparison; signs decide first (b, d > 0).
            _ => match (a.signum()).cmp(&c.signum()) {
                Ordering::Equal => {
                    let l = umul256(a.unsigned_abs(), d.unsigned_abs());
                    let r = umul256(c.unsigned_abs(), b.unsigned_abs());
                    if a >= 0 {
                        l.cmp(&r)
                    } else {
                        r.cmp(&l)
                    }
                }
                sign => sign,
            },
        }
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (n, d) = self.parts();
        if d == 1 {
            write!(f, "{n}")
        } else {
            write!(f, "{n}/{d}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reduced parts, plus whether the small representation is used.
    fn is_small(r: Rat) -> bool {
        matches!(r.0, Small(..))
    }

    #[test]
    fn reduces_to_lowest_terms() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, 4), Rat::new(1, -2));
        assert_eq!(Rat::new(0, 5), Rat::ZERO);
        assert_eq!(Rat::new(6, -3), Rat::from(-2));
    }

    #[test]
    fn denominator_is_positive() {
        assert!(Rat::new(1, -2).denom() > 0);
        assert_eq!(Rat::new(1, -2).numer(), -1);
    }

    #[test]
    fn arithmetic() {
        let a = Rat::new(1, 3);
        let b = Rat::new(1, 6);
        assert_eq!(a + b, Rat::new(1, 2));
        assert_eq!(a - b, Rat::new(1, 6));
        assert_eq!(a * b, Rat::new(1, 18));
        assert_eq!(a / b, Rat::from(2));
        assert_eq!(-a, Rat::new(-1, 3));
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 3) > Rat::new(-1, 2));
        assert!(Rat::from(0) < Rat::new(1, 1000));
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(Rat::new(7, 2).floor(), 3);
        assert_eq!(Rat::new(7, 2).ceil(), 4);
        assert_eq!(Rat::new(-7, 2).floor(), -4);
        assert_eq!(Rat::new(-7, 2).ceil(), -3);
        assert_eq!(Rat::from(5).floor(), 5);
        assert_eq!(Rat::from(5).ceil(), 5);
    }

    #[test]
    fn integer_detection() {
        assert!(Rat::new(4, 2).is_integer());
        assert!(!Rat::new(1, 2).is_integer());
        assert_eq!(Rat::new(4, 2).to_integer(), Some(2));
        assert_eq!(Rat::new(1, 2).to_integer(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Rat::new(1, 2).to_string(), "1/2");
        assert_eq!(Rat::from(-3).to_string(), "-3");
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_of_zero_panics() {
        let _ = Rat::ZERO.recip();
    }

    #[test]
    fn representation_is_canonical() {
        // Values that fit i64 pairs are always Small, however produced.
        assert!(is_small(Rat::new(i64::MAX as i128, 1)));
        assert!(is_small(Rat::new(i64::MIN as i128, 1)));
        let big = Rat::new(i64::MAX as i128 + 1, 1);
        assert!(!is_small(big));
        // Arithmetic that shrinks a Big back into range demotes it.
        let back = big - Rat::from(1i64);
        assert!(is_small(back));
        assert_eq!(back, Rat::new(i64::MAX as i128, 1));
    }

    #[test]
    fn promotion_roundtrip_preserves_value() {
        let a = Rat::from(i64::MAX);
        let b = a + Rat::ONE; // promotes
        assert_eq!(b.numer(), i64::MAX as i128 + 1);
        let c = b - Rat::ONE; // demotes
        assert_eq!(c, a);
        assert!(is_small(c));
    }

    #[test]
    fn cross_representation_equality_and_order() {
        let small = Rat::new(7, 3);
        let via_big = (Rat::new(7, 3) + Rat::from(i64::MAX)) - Rat::from(i64::MAX);
        assert_eq!(small, via_big);
        assert!(Rat::from(i64::MAX) < Rat::from(i64::MAX as i128 + 1));
        assert!(Rat::from(i64::MIN as i128 - 1) < Rat::from(i64::MIN));
    }

    #[test]
    fn wide_ordering_is_exact() {
        // Products overflow i128, forcing the 256-bit comparison.
        let a = Rat::new(i128::MAX / 2, i128::MAX / 4);
        let b = Rat::new(i128::MAX / 2 + 1, i128::MAX / 4);
        assert!(a < b);
        let na = Rat::new(-(i128::MAX / 2), i128::MAX / 4);
        let nb = Rat::new(-(i128::MAX / 2) - 1, i128::MAX / 4);
        assert!(nb < na);
        assert!(na < b);
    }

    #[test]
    fn operator_overflow_saturates_and_latches_flag() {
        let _ = Rat::take_overflow_flag(); // clear
        let huge = Rat::new(i128::MAX, 1);
        let r = huge + huge;
        assert_eq!(r, Rat::ZERO, "saturates to the poison value");
        assert!(Rat::take_overflow_flag(), "flag latched");
        assert!(!Rat::take_overflow_flag(), "flag cleared by take");
    }

    #[test]
    fn try_api_reports_overflow_without_latching() {
        let _ = Rat::take_overflow_flag();
        let huge = Rat::new(i128::MAX, 1);
        assert_eq!(huge.try_add(huge), Err(RatOverflow));
        assert_eq!(huge.try_mul(huge), Err(RatOverflow));
        assert!(!Rat::take_overflow_flag(), "try_* must not latch");
        assert_eq!(Rat::ONE.try_add(Rat::ONE), Ok(Rat::from(2)));
    }

    #[test]
    fn small_path_never_overflows_at_i64_extremes() {
        let _ = Rat::take_overflow_flag();
        let cases = [
            (i64::MAX, 1),
            (i64::MIN, 1),
            (i64::MAX, i64::MAX - 1),
            (i64::MIN, i64::MAX),
            (1, i64::MAX),
            (-1, i64::MAX),
        ];
        for &(an, ad) in &cases {
            for &(bn, bd) in &cases {
                let a = Rat::new(an as i128, ad as i128);
                let b = Rat::new(bn as i128, bd as i128);
                let _ = a + b;
                let _ = a - b;
                let _ = a * b;
                if !b.is_zero() {
                    let _ = a / b;
                }
                let _ = a.cmp(&b);
            }
        }
        assert!(
            !Rat::take_overflow_flag(),
            "i64-extreme small-path arithmetic must stay exact"
        );
    }

    #[test]
    fn negation_of_i64_min_promotes() {
        let a = Rat::from(i64::MIN);
        let b = -a;
        assert_eq!(b.numer(), -(i64::MIN as i128));
        assert_eq!(-b, a);
    }

    #[test]
    fn recip_at_extremes() {
        let a = Rat::from(i64::MIN);
        let r = a.recip();
        assert_eq!(r.numer(), -1);
        assert_eq!(r.denom(), -(i64::MIN as i128));
        assert_eq!(r.recip(), a);
    }

    #[test]
    fn ceil_of_extreme_negative() {
        let r = Rat::new(i128::MIN, 3);
        assert_eq!(r.ceil(), r.floor() + 1);
        assert!(Rat::from(r.ceil()) >= r);
    }
}
