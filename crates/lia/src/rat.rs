//! Exact rational arithmetic on `i128`.
//!
//! The solver never touches floating point: simplex pivots, bounds and
//! models are all exact. Numerator/denominator are kept reduced with a
//! positive denominator, so equality is structural. Arithmetic panics on
//! `i128` overflow (checked operations), which for the constraint systems
//! produced by the checker — small integer coefficients, short pivot
//! chains — does not occur in practice; a panic is preferable to a wrong
//! verdict.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number `num / den` with `den > 0` and
/// `gcd(num, den) == 1`.
///
/// # Examples
///
/// ```
/// use holistic_lia::Rat;
///
/// let a = Rat::new(1, 3);
/// let b = Rat::new(1, 6);
/// assert_eq!(a + b, Rat::new(1, 2));
/// assert!(Rat::from(2) > a);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128,
}

const fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    if a < 0 {
        -a
    } else {
        a
    }
}

impl Rat {
    /// Zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// One.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Creates a rational `num / den`, reduced to lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "rational with zero denominator");
        let g = gcd(num, den);
        let (mut num, mut den) = (num / g, den / g);
        if den < 0 {
            num = -num;
            den = -den;
        }
        Rat { num, den }
    }

    /// The numerator (sign-carrying).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// The denominator (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Whether this rational is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Whether this rational is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Whether this rational is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// Whether this rational is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// The largest integer `k` with `k <= self`.
    pub fn floor(&self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// The smallest integer `k` with `k >= self`.
    pub fn ceil(&self) -> i128 {
        -(-self.num).div_euclid(self.den)
    }

    /// The multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    pub fn recip(&self) -> Rat {
        assert!(self.num != 0, "reciprocal of zero");
        Rat::new(self.den, self.num)
    }

    /// Converts to `i128` if the value is an integer.
    pub fn to_integer(&self) -> Option<i128> {
        if self.den == 1 {
            Some(self.num)
        } else {
            None
        }
    }

    fn checked_add(self, rhs: Rat) -> Rat {
        // a/b + c/d = (a*(l/b) + c*(l/d)) / l  with l = lcm(b, d).
        let g = gcd(self.den, rhs.den);
        let l = self
            .den
            .checked_mul(rhs.den / g)
            .expect("rational overflow in add (lcm)");
        let a = self
            .num
            .checked_mul(l / self.den)
            .expect("rational overflow in add (lhs)");
        let b = rhs
            .num
            .checked_mul(l / rhs.den)
            .expect("rational overflow in add (rhs)");
        Rat::new(a.checked_add(b).expect("rational overflow in add"), l)
    }

    fn checked_mul(self, rhs: Rat) -> Rat {
        // Cross-reduce before multiplying to keep magnitudes small.
        let g1 = gcd(self.num, rhs.den);
        let g2 = gcd(rhs.num, self.den);
        let num = (self.num / g1)
            .checked_mul(rhs.num / g2)
            .expect("rational overflow in mul (num)");
        let den = (self.den / g2)
            .checked_mul(rhs.den / g1)
            .expect("rational overflow in mul (den)");
        Rat::new(num, den)
    }
}

impl From<i128> for Rat {
    fn from(v: i128) -> Rat {
        Rat { num: v, den: 1 }
    }
}

impl From<i64> for Rat {
    fn from(v: i64) -> Rat {
        Rat::from(v as i128)
    }
}

impl From<i32> for Rat {
    fn from(v: i32) -> Rat {
        Rat::from(v as i128)
    }
}

impl Default for Rat {
    fn default() -> Rat {
        Rat::ZERO
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        self.checked_add(rhs)
    }
}

impl AddAssign for Rat {
    fn add_assign(&mut self, rhs: Rat) {
        *self = *self + rhs;
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        self.checked_add(-rhs)
    }
}

impl SubAssign for Rat {
    fn sub_assign(&mut self, rhs: Rat) {
        *self = *self - rhs;
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        self.checked_mul(rhs)
    }
}

impl MulAssign for Rat {
    fn mul_assign(&mut self, rhs: Rat) {
        *self = *self * rhs;
    }
}

impl Div for Rat {
    type Output = Rat;
    fn div(self, rhs: Rat) -> Rat {
        self.checked_mul(rhs.recip())
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b  (b, d > 0).
        let lhs = self
            .num
            .checked_mul(other.den)
            .expect("rational overflow in cmp");
        let rhs = other
            .num
            .checked_mul(self.den)
            .expect("rational overflow in cmp");
        lhs.cmp(&rhs)
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_to_lowest_terms() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, 4), Rat::new(1, -2));
        assert_eq!(Rat::new(0, 5), Rat::ZERO);
        assert_eq!(Rat::new(6, -3), Rat::from(-2));
    }

    #[test]
    fn denominator_is_positive() {
        assert!(Rat::new(1, -2).denom() > 0);
        assert_eq!(Rat::new(1, -2).numer(), -1);
    }

    #[test]
    fn arithmetic() {
        let a = Rat::new(1, 3);
        let b = Rat::new(1, 6);
        assert_eq!(a + b, Rat::new(1, 2));
        assert_eq!(a - b, Rat::new(1, 6));
        assert_eq!(a * b, Rat::new(1, 18));
        assert_eq!(a / b, Rat::from(2));
        assert_eq!(-a, Rat::new(-1, 3));
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 3) > Rat::new(-1, 2));
        assert!(Rat::from(0) < Rat::new(1, 1000));
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(Rat::new(7, 2).floor(), 3);
        assert_eq!(Rat::new(7, 2).ceil(), 4);
        assert_eq!(Rat::new(-7, 2).floor(), -4);
        assert_eq!(Rat::new(-7, 2).ceil(), -3);
        assert_eq!(Rat::from(5).floor(), 5);
        assert_eq!(Rat::from(5).ceil(), 5);
    }

    #[test]
    fn integer_detection() {
        assert!(Rat::new(4, 2).is_integer());
        assert!(!Rat::new(1, 2).is_integer());
        assert_eq!(Rat::new(4, 2).to_integer(), Some(2));
        assert_eq!(Rat::new(1, 2).to_integer(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Rat::new(1, 2).to_string(), "1/2");
        assert_eq!(Rat::from(-3).to_string(), "-3");
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_of_zero_panics() {
        let _ = Rat::ZERO.recip();
    }
}
