//! Linear expressions over solver variables.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

use crate::rat::Rat;

/// A solver variable.
///
/// Variables are allocated by [`Solver::new_var`](crate::Solver::new_var)
/// and are plain indices; they are only meaningful for the solver that
/// created them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// The raw index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A linear expression `Σ cᵢ·xᵢ + c₀` with exact rational coefficients.
///
/// Zero coefficients are never stored, so two expressions are equal iff
/// they denote the same linear function.
///
/// # Examples
///
/// ```
/// use holistic_lia::{LinExpr, Solver};
///
/// let mut solver = Solver::new();
/// let x = solver.new_var("x");
/// let y = solver.new_var("y");
/// let e = LinExpr::var(x) * 2 + LinExpr::var(y) - LinExpr::constant(3);
/// assert_eq!(e.coeff(x), 2.into());
/// assert_eq!(e.constant_term(), (-3).into());
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct LinExpr {
    terms: BTreeMap<Var, Rat>,
    constant: Rat,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> LinExpr {
        LinExpr::default()
    }

    /// A constant expression.
    pub fn constant(c: impl Into<Rat>) -> LinExpr {
        LinExpr {
            terms: BTreeMap::new(),
            constant: c.into(),
        }
    }

    /// The expression `1·v`.
    pub fn var(v: Var) -> LinExpr {
        LinExpr::term(v, Rat::ONE)
    }

    /// The expression `c·v`.
    pub fn term(v: Var, c: impl Into<Rat>) -> LinExpr {
        let c = c.into();
        let mut terms = BTreeMap::new();
        if !c.is_zero() {
            terms.insert(v, c);
        }
        LinExpr {
            terms,
            constant: Rat::ZERO,
        }
    }

    /// Adds `c·v` to this expression.
    pub fn add_term(&mut self, v: Var, c: impl Into<Rat>) {
        let c = c.into();
        if c.is_zero() {
            return;
        }
        let entry = self.terms.entry(v).or_default();
        *entry += c;
        if entry.is_zero() {
            self.terms.remove(&v);
        }
    }

    /// Adds a constant to this expression.
    pub fn add_constant(&mut self, c: impl Into<Rat>) {
        self.constant += c.into();
    }

    /// The coefficient of `v` (zero if absent).
    pub fn coeff(&self, v: Var) -> Rat {
        self.terms.get(&v).copied().unwrap_or(Rat::ZERO)
    }

    /// The constant term.
    pub fn constant_term(&self) -> Rat {
        self.constant
    }

    /// Iterates over `(variable, coefficient)` pairs with non-zero
    /// coefficients, in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, Rat)> + '_ {
        self.terms.iter().map(|(&v, &c)| (v, c))
    }

    /// The number of variables with non-zero coefficient.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Whether the expression is a constant (possibly zero).
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluates the expression under an assignment.
    pub fn eval(&self, assignment: impl Fn(Var) -> Rat) -> Rat {
        let mut acc = self.constant;
        for (&v, &c) in &self.terms {
            acc += c * assignment(v);
        }
        acc
    }

    /// Multiplies every coefficient and the constant by `c`.
    pub fn scale(&self, c: impl Into<Rat>) -> LinExpr {
        let c = c.into();
        if c.is_zero() {
            return LinExpr::zero();
        }
        LinExpr {
            terms: self.terms.iter().map(|(&v, &k)| (v, k * c)).collect(),
            constant: self.constant * c,
        }
    }

    /// The least common multiple of all coefficient denominators.
    ///
    /// Scaling by this value yields an expression with integer
    /// coefficients and an integer constant.
    pub fn denominator_lcm(&self) -> i128 {
        fn lcm(a: i128, b: i128) -> i128 {
            fn gcd(mut a: i128, mut b: i128) -> i128 {
                while b != 0 {
                    let t = a % b;
                    a = b;
                    b = t;
                }
                a.abs()
            }
            a / gcd(a, b) * b
        }
        let mut l = self.constant.denom();
        for c in self.terms.values() {
            l = lcm(l, c.denom());
        }
        l
    }
}

impl From<Var> for LinExpr {
    fn from(v: Var) -> LinExpr {
        LinExpr::var(v)
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        self += rhs;
        self
    }
}

impl AddAssign for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        for (v, c) in rhs.terms {
            self.add_term(v, c);
        }
        self.constant += rhs.constant;
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: LinExpr) -> LinExpr {
        self -= rhs;
        self
    }
}

impl SubAssign for LinExpr {
    fn sub_assign(&mut self, rhs: LinExpr) {
        for (v, c) in rhs.terms {
            self.add_term(v, -c);
        }
        self.constant -= rhs.constant;
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        self.scale(Rat::from(-1))
    }
}

impl Mul<i64> for LinExpr {
    type Output = LinExpr;
    fn mul(self, rhs: i64) -> LinExpr {
        self.scale(Rat::from(rhs))
    }
}

impl Mul<Rat> for LinExpr {
    type Output = LinExpr;
    fn mul(self, rhs: Rat) -> LinExpr {
        self.scale(rhs)
    }
}

impl fmt::Debug for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (&v, &c) in &self.terms {
            if first {
                if c == Rat::ONE {
                    write!(f, "{v}")?;
                } else {
                    write!(f, "{c}*{v}")?;
                }
                first = false;
            } else if c.is_negative() {
                if c == Rat::from(-1) {
                    write!(f, " - {v}")?;
                } else {
                    write!(f, " - {}*{v}", -c)?;
                }
            } else if c == Rat::ONE {
                write!(f, " + {v}")?;
            } else {
                write!(f, " + {c}*{v}")?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant.is_positive() {
            write!(f, " + {}", self.constant)?;
        } else if self.constant.is_negative() {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Var {
        Var(i)
    }

    #[test]
    fn zero_coefficients_are_dropped() {
        let mut e = LinExpr::var(v(0));
        e.add_term(v(0), Rat::from(-1));
        assert_eq!(e, LinExpr::zero());
        assert!(e.is_constant());
    }

    #[test]
    fn addition_merges_terms() {
        let e = LinExpr::var(v(0)) + LinExpr::term(v(0), 2) + LinExpr::var(v(1));
        assert_eq!(e.coeff(v(0)), Rat::from(3));
        assert_eq!(e.coeff(v(1)), Rat::ONE);
        assert_eq!(e.num_terms(), 2);
    }

    #[test]
    fn subtraction_and_negation() {
        let e = LinExpr::var(v(0)) - LinExpr::var(v(1));
        assert_eq!(e.coeff(v(1)), Rat::from(-1));
        let n = -e.clone();
        assert_eq!(n.coeff(v(0)), Rat::from(-1));
        assert_eq!(n.coeff(v(1)), Rat::ONE);
    }

    #[test]
    fn evaluation() {
        let e = LinExpr::term(v(0), 2) + LinExpr::term(v(1), -3) + LinExpr::constant(5);
        let val = e.eval(|var| {
            if var == v(0) {
                Rat::from(4)
            } else {
                Rat::from(1)
            }
        });
        assert_eq!(val, Rat::from(10));
    }

    #[test]
    fn denominator_lcm() {
        let e = LinExpr::term(v(0), Rat::new(1, 2)) + LinExpr::term(v(1), Rat::new(1, 3));
        assert_eq!(e.denominator_lcm(), 6);
        let scaled = e.scale(Rat::from(6));
        assert!(scaled.iter().all(|(_, c)| c.is_integer()));
    }

    #[test]
    fn display_is_readable() {
        let e = LinExpr::term(v(0), 2) - LinExpr::var(v(1)) + LinExpr::constant(-3);
        assert_eq!(e.to_string(), "2*x0 - x1 - 3");
        assert_eq!(LinExpr::zero().to_string(), "0");
    }
}
