//! Interval (bound) propagation presolve.
//!
//! A [`Propagator`] mirrors the solver's assertion stack and maintains,
//! for every variable, the tightest *interval* `[lo, hi]` derivable from
//! the asserted constraints by repeated one-variable projection: in
//! `Σ aᵢxᵢ + c ≥ 0`, once every variable but `xⱼ` has a finite bound on
//! the relevant side, the constraint projects to a bound on `xⱼ` alone.
//! Because all solver variables range over ℤ, projected bounds are
//! rounded to the integer grid (`ceil` for lower, `floor` for upper),
//! which is strictly stronger than the ℚ relaxation the simplex works
//! in — and still sound for the solver's ℤ semantics.
//!
//! The payoff is twofold. First, a constraint whose left-hand side has a
//! finite supremum below the requirement is *refuted* without a single
//! pivot — [`Solver::check`](crate::Solver::check) returns `Unsat`
//! before touching the simplex. Second, a disjunct of a deferred
//! disjunction that is interval-refutable under the current bounds can
//! be dropped without a case split, which is where the bulk of the
//! search-tree reduction comes from.
//!
//! Every derived bound carries a **reason**: the set of tracked
//! assertion tags its derivation chain passed through, and the highest
//! assertion level it depends on. Reasons serve the two consumers of a
//! refutation: [`Solver::unsat_core`](crate::Solver::unsat_core) seeds
//! its candidate core from the conflict's tag set, and
//! `Solver::branch` uses the conflict *level* to recognize
//! **pervasive conflicts** — refutations that never mention the current
//! branch's own assertions and therefore refute every sibling branch
//! without re-checking.
//!
//! The propagator never feeds derived bounds back into the simplex:
//! the tableau's trajectory (and hence every model the solver returns)
//! is identical whether propagation is on or off; propagation can only
//! short-circuit work whose outcome it has already decided.

use crate::constraint::{Constraint, Rel};
use crate::formula::Formula;
use crate::linexpr::Var;
use crate::rat::Rat;

/// Bound tightenings per `propagate` fixpoint before giving up. The
/// checker's encodings converge in a handful of rounds; the cap only
/// guards against adversarial slow-convergence chains (propagation is a
/// presolve — stopping early is always sound).
const FIXPOINT_BUDGET: u32 = 50_000;

/// A derivation chain longer than this stops carrying tags; the
/// refutation still holds, it just no longer certifies a core.
const MAX_REASON_TAGS: usize = 48;

/// Derived bounds beyond this magnitude are treated as unbounded.
/// Mutually-recursive constraints (two equalities over shared
/// variables, say) can tighten a bound geometrically forever without
/// ever meeting; the cap stops the spiral long before rational
/// arithmetic would saturate — and with it poison the whole solver —
/// while leaving every bound the checker's small-coefficient systems
/// actually produce untouched.
const MAGNITUDE_CAP: i128 = 1 << 48;

/// Why a bound (or conflict) holds.
#[derive(Clone, Debug)]
struct Reason {
    /// Highest assertion level the derivation depends on.
    level: u32,
    /// Tracked-assertion tags along the derivation chain, or `None`
    /// when the chain passed through an untracked multi-variable
    /// constraint (the conclusion is sound but uncertifiable).
    tags: Option<Vec<u32>>,
}

impl Reason {
    const BACKGROUND: Reason = Reason {
        level: 0,
        tags: Some(Vec::new()),
    };
}

/// An interval endpoint with its derivation.
#[derive(Clone, Debug)]
struct Bound {
    val: Rat,
    reason: Reason,
}

#[derive(Clone, Debug, Default)]
struct VarState {
    lo: Option<Bound>,
    hi: Option<Bound>,
    /// Background `>= 0` floor (declared non-negativity). Survives
    /// `pop` — mirroring the solver's treatment of declared bounds as
    /// background facts rather than assertions.
    nonneg: bool,
}

/// An asserted constraint, normalized to `Σ terms + constant REL 0`.
#[derive(Debug)]
struct PropConstraint {
    terms: Vec<(Var, Rat)>,
    constant: Rat,
    rel: Rel,
    tag: Option<u32>,
    level: u32,
}

/// An infeasibility discovered by propagation. Persists until the
/// assertion stack pops below [`Conflict::level`] — the same lifetime
/// discipline as the simplex conflict stack.
#[derive(Clone, Debug)]
pub(crate) struct Conflict {
    /// Highest assertion level the refutation depends on.
    pub level: u32,
    /// Tracked-assertion tags of the refutation, if certifiable.
    pub tags: Option<Vec<u32>>,
}

struct Mark {
    trail: usize,
    cons: usize,
}

enum Undo {
    Lo(u32, Option<Bound>),
    Hi(u32, Option<Bound>),
}

/// Incremental interval propagation over a push/pop assertion stack.
pub(crate) struct Propagator {
    vars: Vec<VarState>,
    cons: Vec<PropConstraint>,
    /// `occurs[v]` = indices into `cons` mentioning `v`, ascending.
    occurs: Vec<Vec<u32>>,
    trail: Vec<Undo>,
    marks: Vec<Mark>,
    conflicts: Vec<Conflict>,
    /// Worklist of constraint indices to (re)propagate.
    queue: Vec<u32>,
    /// Dedup flag per constraint: already in `queue`.
    queued: Vec<bool>,
    /// Total bound tightenings performed (a `SolverStats` feed).
    pub propagations: u64,
}

impl Propagator {
    pub fn new() -> Propagator {
        Propagator {
            vars: Vec::new(),
            cons: Vec::new(),
            occurs: Vec::new(),
            trail: Vec::new(),
            marks: Vec::new(),
            conflicts: Vec::new(),
            queue: Vec::new(),
            queued: Vec::new(),
            propagations: 0,
        }
    }

    /// Current assertion level (number of open pushes).
    pub fn level(&self) -> u32 {
        self.marks.len() as u32
    }

    pub fn push(&mut self) {
        self.marks.push(Mark {
            trail: self.trail.len(),
            cons: self.cons.len(),
        });
    }

    pub fn pop(&mut self) {
        let mark = self.marks.pop().expect("propagator pop without push");
        while self.trail.len() > mark.trail {
            match self.trail.pop().unwrap() {
                Undo::Lo(v, old) => self.vars[v as usize].lo = old,
                Undo::Hi(v, old) => self.vars[v as usize].hi = old,
            }
        }
        for c in self.cons.drain(mark.cons..) {
            for (v, _) in c.terms {
                let occ = &mut self.occurs[v.index()];
                while occ.last().is_some_and(|&i| i as usize >= mark.cons) {
                    occ.pop();
                }
            }
        }
        self.queued.truncate(self.cons.len());
        self.queue.retain(|&i| (i as usize) < self.cons.len());
        // A conflict outlives the pop iff its derivation never relied
        // on the popped levels — the propagation analogue of the
        // simplex conflict stack.
        let live = self.level();
        self.conflicts.retain(|c| c.level <= live);
    }

    /// Declares `v >= 0` as a background fact (not popped, not part of
    /// any core).
    pub fn note_nonneg(&mut self, v: Var) {
        self.ensure_var(v);
        self.vars[v.index()].nonneg = true;
    }

    fn ensure_var(&mut self, v: Var) {
        if self.vars.len() <= v.index() {
            self.vars.resize_with(v.index() + 1, VarState::default);
            self.occurs.resize_with(v.index() + 1, Vec::new);
        }
    }

    /// The current derived lower bound of `v`, if any (including the
    /// background non-negativity floor).
    pub fn lower(&self, v: Var) -> Option<Rat> {
        let st = self.vars.get(v.index())?;
        match (&st.lo, st.nonneg) {
            (Some(b), true) => Some(if b.val > Rat::ZERO { b.val } else { Rat::ZERO }),
            (Some(b), false) => Some(b.val),
            (None, true) => Some(Rat::ZERO),
            (None, false) => None,
        }
    }

    /// The current derived upper bound of `v`, if any.
    pub fn upper(&self, v: Var) -> Option<Rat> {
        Some(self.vars.get(v.index())?.hi.as_ref()?.val)
    }

    fn lo_bound(&self, v: Var) -> Option<(Rat, Reason)> {
        let st = self.vars.get(v.index())?;
        match &st.lo {
            Some(b) if !st.nonneg || b.val > Rat::ZERO => Some((b.val, b.reason.clone())),
            _ if st.nonneg => Some((Rat::ZERO, Reason::BACKGROUND)),
            Some(b) => Some((b.val, b.reason.clone())),
            None => None,
        }
    }

    fn hi_bound(&self, v: Var) -> Option<(Rat, Reason)> {
        let b = self.vars.get(v.index())?.hi.as_ref()?;
        Some((b.val, b.reason.clone()))
    }

    /// Records an asserted constraint and queues it for propagation.
    /// Trivially-constant constraints are ignored (the solver handles
    /// them before they get here).
    pub fn assert(&mut self, c: &Constraint, tag: Option<u32>) {
        if c.expr().num_terms() == 0 {
            return;
        }
        let terms: Vec<(Var, Rat)> = c.expr().iter().collect();
        for &(v, _) in &terms {
            self.ensure_var(v);
        }
        let idx = self.cons.len() as u32;
        for &(v, _) in &terms {
            self.occurs[v.index()].push(idx);
        }
        self.cons.push(PropConstraint {
            terms,
            constant: c.expr().constant_term(),
            rel: c.rel(),
            tag,
            level: self.level(),
        });
        self.queued.push(false);
        self.enqueue(idx);
    }

    fn enqueue(&mut self, idx: u32) {
        if !self.queued[idx as usize] {
            self.queued[idx as usize] = true;
            self.queue.push(idx);
        }
    }

    /// Whether a conflict is currently live.
    pub fn conflict(&self) -> Option<&Conflict> {
        self.conflicts.last()
    }

    /// Runs propagation to fixpoint (or budget exhaustion). Returns
    /// `true` if a conflict is live afterwards.
    pub fn propagate(&mut self) -> bool {
        if self.conflict().is_some() {
            self.queue.clear();
            self.queued.iter_mut().for_each(|q| *q = false);
            return true;
        }
        let mut budget = FIXPOINT_BUDGET;
        while let Some(idx) = self.queue.pop() {
            self.queued[idx as usize] = false;
            if budget == 0 {
                // Out of budget: drop the rest of the worklist. Sound —
                // propagation is advisory; the simplex decides.
                self.queue.clear();
                self.queued.iter_mut().for_each(|q| *q = false);
                return false;
            }
            if self.step(idx, &mut budget) {
                self.queue.clear();
                self.queued.iter_mut().for_each(|q| *q = false);
                return true;
            }
        }
        false
    }

    /// Propagates one constraint; returns `true` on conflict.
    fn step(&mut self, idx: u32, budget: &mut u32) -> bool {
        let rel = self.cons[idx as usize].rel;
        match rel {
            Rel::Ge => self.step_ge(idx, budget),
            Rel::Le => self.step_le(idx, budget),
            Rel::Eq => self.step_ge(idx, budget) || self.step_le(idx, budget),
        }
    }

    /// Propagates `Σ aᵢxᵢ + c ≥ 0`: refutes when the supremum of the
    /// left-hand side is negative, otherwise projects a bound onto any
    /// variable whose co-terms all have finite sup contributions.
    fn step_ge(&mut self, idx: u32, budget: &mut u32) -> bool {
        // sup contribution of term (v, a): a*hi(v) if a > 0, a*lo(v) if
        // a < 0; infinite when the needed endpoint is absent.
        let (sum, inf_count, inf_at) = self.side_sum(idx, true);
        if inf_count == 0 {
            let total = sum + self.cons[idx as usize].constant;
            if total.is_negative() {
                let conflict = self.conflict_reason(idx, true, usize::MAX);
                self.conflicts.push(conflict);
                return true;
            }
        }
        if inf_count >= 2 {
            return false;
        }
        let nterms = self.cons[idx as usize].terms.len();
        for j in 0..nterms {
            if inf_count == 1 && inf_at != j {
                continue;
            }
            let (v, a) = self.cons[idx as usize].terms[j];
            // residual = sup of the other terms; with one infinite term
            // the only candidate j is that term, so the residual is the
            // full finite sum either way.
            let residual = if inf_count == 1 {
                sum
            } else {
                let contrib = self.side_contrib(v, a, true).expect("finite by inf_count");
                sum - contrib
            };
            // a*x >= -constant - residual
            let rhs = Rat::ZERO - self.cons[idx as usize].constant - residual;
            let bound = rhs / a;
            if a.is_positive() {
                let bound = Rat::from(bound.ceil());
                if self.tighten_lo(v, bound, idx, j, true) {
                    return true;
                }
            } else {
                let bound = Rat::from(bound.floor());
                if self.tighten_hi(v, bound, idx, j, true) {
                    return true;
                }
            }
            *budget = budget.saturating_sub(1);
            if *budget == 0 {
                return false;
            }
        }
        false
    }

    /// Propagates `Σ aᵢxᵢ + c ≤ 0` (mirror of [`step_ge`] with the
    /// infimum).
    fn step_le(&mut self, idx: u32, budget: &mut u32) -> bool {
        let (sum, inf_count, inf_at) = self.side_sum(idx, false);
        if inf_count == 0 {
            let total = sum + self.cons[idx as usize].constant;
            if total.is_positive() {
                let conflict = self.conflict_reason(idx, false, usize::MAX);
                self.conflicts.push(conflict);
                return true;
            }
        }
        if inf_count >= 2 {
            return false;
        }
        let nterms = self.cons[idx as usize].terms.len();
        for j in 0..nterms {
            if inf_count == 1 && inf_at != j {
                continue;
            }
            let (v, a) = self.cons[idx as usize].terms[j];
            let residual = if inf_count == 1 {
                sum
            } else {
                let contrib = self.side_contrib(v, a, false).expect("finite by inf_count");
                sum - contrib
            };
            // a*x <= -constant - residual
            let rhs = Rat::ZERO - self.cons[idx as usize].constant - residual;
            let bound = rhs / a;
            if a.is_positive() {
                let bound = Rat::from(bound.floor());
                if self.tighten_hi(v, bound, idx, j, false) {
                    return true;
                }
            } else {
                let bound = Rat::from(bound.ceil());
                if self.tighten_lo(v, bound, idx, j, false) {
                    return true;
                }
            }
            *budget = budget.saturating_sub(1);
            if *budget == 0 {
                return false;
            }
        }
        false
    }

    /// `(finite_sum, infinite_count, index_of_sole_infinite_term)` of
    /// the sup (`upper = true`) or inf of the constraint's terms.
    fn side_sum(&self, idx: u32, upper: bool) -> (Rat, usize, usize) {
        let mut sum = Rat::ZERO;
        let mut inf_count = 0usize;
        let mut inf_at = usize::MAX;
        for (j, &(v, a)) in self.cons[idx as usize].terms.iter().enumerate() {
            match self.side_contrib(v, a, upper) {
                Some(x) => sum += x,
                None => {
                    inf_count += 1;
                    inf_at = j;
                }
            }
        }
        (sum, inf_count, inf_at)
    }

    /// The sup (or inf) contribution `a * bound(v)`, `None` if the
    /// needed endpoint is unbounded.
    fn side_contrib(&self, v: Var, a: Rat, upper: bool) -> Option<Rat> {
        let want_hi = a.is_positive() == upper;
        let b = if want_hi {
            self.upper(v)?
        } else {
            self.lower(v)?
        };
        Some(a * b)
    }

    /// The reason endpoint of `v`'s contribution to the sup/inf side.
    fn side_reason(&self, v: Var, a: Rat, upper: bool) -> Option<(Rat, Reason)> {
        let want_hi = a.is_positive() == upper;
        if want_hi {
            self.hi_bound(v)
        } else {
            self.lo_bound(v)
        }
    }

    /// Assembles the reason for a projection onto term `skip` (or a
    /// refutation when `skip == usize::MAX`) of constraint `idx`.
    fn conflict_reason(&self, idx: u32, upper: bool, skip: usize) -> Conflict {
        let c = &self.cons[idx as usize];
        let mut level = c.level;
        let mut tags: Option<Vec<u32>> = match c.tag {
            Some(t) => Some(vec![t]),
            // An untracked multi-variable constraint in the chain makes
            // the conclusion uncertifiable; an untracked *unit*
            // constraint is a plain bound the core verifier replays as
            // background.
            None if c.terms.len() > 1 => None,
            None => Some(Vec::new()),
        };
        for (j, &(v, a)) in c.terms.iter().enumerate() {
            if j == skip {
                continue;
            }
            let Some((_, reason)) = self.side_reason(v, a, upper) else {
                continue;
            };
            if reason.level > level {
                level = reason.level;
            }
            match (&mut tags, &reason.tags) {
                (Some(acc), Some(more)) => {
                    acc.extend_from_slice(more);
                    if acc.len() > MAX_REASON_TAGS {
                        tags = None;
                    }
                }
                _ => tags = None,
            }
        }
        if let Some(acc) = &mut tags {
            acc.sort_unstable();
            acc.dedup();
        }
        Conflict { level, tags }
    }

    /// Installs `v >= bound` if strictly tighter; returns `true` when
    /// the interval becomes empty (conflict). `upper` names the side of
    /// the co-terms' bounds the projection consumed (sup for `step_ge`,
    /// inf for `step_le`) — NOT the side being tightened — so the
    /// recorded reason cites the bounds actually used.
    fn tighten_lo(&mut self, v: Var, bound: Rat, idx: u32, term: usize, upper: bool) -> bool {
        let cur = self.lower(v);
        if cur.is_some_and(|c| c >= bound) {
            return false;
        }
        if bound.floor().abs() > MAGNITUDE_CAP {
            return false;
        }
        let Conflict { level, tags } = self.conflict_reason(idx, upper, term);
        // Empty interval: the new lower bound exceeds the upper bound.
        if let Some((hi, hr)) = self.hi_bound(v) {
            if bound > hi {
                let level = level.max(hr.level);
                let tags = merge_tags(tags, hr.tags);
                self.conflicts.push(Conflict { level, tags });
                return true;
            }
        }
        self.propagations += 1;
        let old = self.vars[v.index()].lo.take();
        self.trail.push(Undo::Lo(v.index() as u32, old));
        self.vars[v.index()].lo = Some(Bound {
            val: bound,
            reason: Reason { level, tags },
        });
        let occ = self.occurs[v.index()].clone();
        for c in occ {
            if c != idx {
                self.enqueue(c);
            }
        }
        false
    }

    /// Installs `v <= bound` if strictly tighter; returns `true` when
    /// the interval becomes empty. `upper` as in [`Self::tighten_lo`].
    fn tighten_hi(&mut self, v: Var, bound: Rat, idx: u32, term: usize, upper: bool) -> bool {
        if self.upper(v).is_some_and(|c| c <= bound) {
            return false;
        }
        if bound.floor().abs() > MAGNITUDE_CAP {
            return false;
        }
        let Conflict { level, tags } = self.conflict_reason(idx, upper, term);
        if let Some((lo, lr)) = self.lo_bound(v) {
            if bound < lo {
                let level = level.max(lr.level);
                let tags = merge_tags(tags, lr.tags);
                self.conflicts.push(Conflict { level, tags });
                return true;
            }
        }
        self.propagations += 1;
        let old = self.vars[v.index()].hi.take();
        self.trail.push(Undo::Hi(v.index() as u32, old));
        self.vars[v.index()].hi = Some(Bound {
            val: bound,
            reason: Reason { level, tags },
        });
        let occ = self.occurs[v.index()].clone();
        for c in occ {
            if c != idx {
                self.enqueue(c);
            }
        }
        false
    }

    /// Whether the constraint is violated by *every* assignment inside
    /// the current intervals — a stateless test used for disjunct
    /// filtering. Integer rounding is applied to the projected totals,
    /// so the test is exact for the solver's ℤ semantics.
    pub fn refutes(&self, c: &Constraint) -> bool {
        let constant = c.expr().constant_term();
        match c.rel() {
            Rel::Ge => self
                .expr_side(c, true)
                .is_some_and(|sup| (sup + constant).is_negative()),
            Rel::Le => self
                .expr_side(c, false)
                .is_some_and(|inf| (inf + constant).is_positive()),
            Rel::Eq => {
                self.expr_side(c, true)
                    .is_some_and(|sup| (sup + constant).is_negative())
                    || self
                        .expr_side(c, false)
                        .is_some_and(|inf| (inf + constant).is_positive())
            }
        }
    }

    /// Finite sup/inf of the constraint's term sum, `None` if unbounded
    /// on that side.
    fn expr_side(&self, c: &Constraint, upper: bool) -> Option<Rat> {
        let mut sum = Rat::ZERO;
        for (v, a) in c.expr().iter() {
            sum += self.side_contrib(v, a, upper)?;
        }
        Some(sum)
    }

    /// Whether an NNF formula is interval-refuted: an atom by
    /// [`refutes`](Propagator::refutes), a conjunction when any
    /// conjunct is, a disjunction when all disjuncts are.
    pub fn refutes_formula(&self, f: &Formula) -> bool {
        match f {
            Formula::True => false,
            Formula::False => true,
            Formula::Atom(c) => self.refutes(c),
            Formula::And(fs) => fs.iter().any(|g| self.refutes_formula(g)),
            Formula::Or(fs) => fs.iter().all(|g| self.refutes_formula(g)),
            Formula::Not(_) => false,
        }
    }
}

fn merge_tags(a: Option<Vec<u32>>, b: Option<Vec<u32>>) -> Option<Vec<u32>> {
    let (Some(mut a), Some(b)) = (a, b) else {
        return None;
    };
    a.extend(b);
    if a.len() > MAX_REASON_TAGS {
        return None;
    }
    a.sort_unstable();
    a.dedup();
    Some(a)
}
