//! The public satisfiability interface.

use crate::constraint::Constraint;
use crate::formula::Formula;
use crate::intern::{InternStats, Interner};
use crate::linexpr::{LinExpr, Var};
use crate::model::{Model, SatResult, UnknownReason};
use crate::propagate::Propagator;
use crate::rat::Rat;
use crate::simplex::{LpResult, Simplex};

/// Resource limits for a single [`Solver::check`] call.
#[derive(Clone, Copy, Debug)]
pub struct SolverConfig {
    /// Maximum branch-and-bound nodes across the whole check.
    pub max_branch_nodes: u64,
    /// Maximum disjunction case splits across the whole check.
    pub max_case_splits: u64,
    /// Hard wall-clock deadline polled inside the simplex pivot loop.
    /// `None` (the default) disables the check entirely. Expiry yields
    /// [`SatResult::Unknown`] with [`UnknownReason::Deadline`] — never a
    /// wrong Sat/Unsat verdict.
    pub deadline: Option<std::time::Instant>,
    /// Enables the propagation-first layer: interval presolve before
    /// any pivoting, interval-based disjunct filtering, pervasive
    /// conflict learning, and activity-ordered case splits. Off, the
    /// solver behaves exactly as the plain simplex + DFS pipeline —
    /// same verdicts, same models, same pivot trajectory (the toggle
    /// exists so tests can pin that equivalence).
    pub propagation: bool,
}

impl Default for SolverConfig {
    fn default() -> SolverConfig {
        SolverConfig {
            max_branch_nodes: 200_000,
            max_case_splits: 200_000,
            deadline: None,
            propagation: true,
        }
    }
}

/// Cumulative solver statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SolverStats {
    /// Number of `check` calls.
    pub checks: u64,
    /// Branch-and-bound nodes explored.
    pub branch_nodes: u64,
    /// Disjunction case splits explored.
    pub case_splits: u64,
    /// Simplex pivots performed.
    pub pivots: u64,
    /// Constraint-interner cache hits (see [`Interner`]).
    pub intern_hits: u64,
    /// Constraint-interner cache misses.
    pub intern_misses: u64,
    /// Verified minimal UNSAT cores extracted (see [`Solver::unsat_core`]).
    pub cores_extracted: u64,
    /// Total members across all extracted cores (divide by
    /// `cores_extracted` for the average core size).
    pub core_members: u64,
    /// Wall-clock microseconds spent in core extraction (verification
    /// plus deletion minimization).
    pub core_micros: u64,
    /// Interval bounds derived by the propagation presolve.
    pub propagations: u64,
    /// Checks (and search nodes) refuted by interval propagation alone,
    /// before any pivoting.
    pub propagation_refutations: u64,
    /// Pervasive conflicts learned: a disjunct's refutation that never
    /// mentioned the disjunct's own assertions, refuting all remaining
    /// siblings without re-checking.
    pub learned_conflicts: u64,
    /// Disjuncts dropped without a case split — interval-refuted during
    /// filtering, or skipped under a learned pervasive conflict.
    pub disjuncts_skipped: u64,
}

impl SolverStats {
    /// Merges another stats record into this one (component-wise sum).
    pub fn merge(&mut self, other: &SolverStats) {
        self.checks += other.checks;
        self.branch_nodes += other.branch_nodes;
        self.case_splits += other.case_splits;
        self.pivots += other.pivots;
        self.intern_hits += other.intern_hits;
        self.intern_misses += other.intern_misses;
        self.cores_extracted += other.cores_extracted;
        self.core_members += other.core_members;
        self.core_micros += other.core_micros;
        self.propagations += other.propagations;
        self.propagation_refutations += other.propagation_refutations;
        self.learned_conflicts += other.learned_conflicts;
        self.disjuncts_skipped += other.disjuncts_skipped;
    }

    /// Publishes every field to the global [`holistic_obs`] metrics
    /// registry under the `lia.*` counter names. A no-op unless tracing
    /// is enabled; callers flush once per worker (not per check) so the
    /// registry sums match a per-worker [`merge`](Self::merge) exactly.
    pub fn publish(&self) {
        holistic_obs::add("lia.checks", self.checks);
        holistic_obs::add("lia.branch_nodes", self.branch_nodes);
        holistic_obs::add("lia.case_splits", self.case_splits);
        holistic_obs::add("lia.pivots", self.pivots);
        holistic_obs::add("lia.intern_hits", self.intern_hits);
        holistic_obs::add("lia.intern_misses", self.intern_misses);
        holistic_obs::add("lia.cores_extracted", self.cores_extracted);
        holistic_obs::add("lia.core_members", self.core_members);
        holistic_obs::add("lia.core_micros", self.core_micros);
        holistic_obs::add("lia.propagations", self.propagations);
        holistic_obs::add("lia.propagation_refutations", self.propagation_refutations);
        holistic_obs::add("lia.learned_conflicts", self.learned_conflicts);
        holistic_obs::add("lia.disjuncts_skipped", self.disjuncts_skipped);
    }
}

/// Identifier of a tracked assertion (see [`Solver::assert_tracked`]),
/// referenced by the cores [`Solver::unsat_core`] returns.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AssertId(pub u32);

struct Budget {
    branch_nodes: u64,
    case_splits: u64,
}

/// Assertions recorded at one backtracking level.
///
/// Conjunctive content (atoms, `And`s) is asserted into the simplex
/// *eagerly*, at assertion time; only disjunctions are deferred to
/// [`Solver::check`], which case-splits over them. This keeps the cost
/// of a check proportional to the disjunctive content of the current
/// stack rather than to the total number of assertions — the decisive
/// difference for the model checker, whose schedule DFS re-checks a
/// slowly-changing conjunction thousands of times.
#[derive(Default)]
struct Level {
    /// Deferred disjunctions (already in NNF).
    pending: Vec<Formula>,
    /// Tracked assertions (NNF), kept for UNSAT-core extraction; popped
    /// with the level.
    tracked: Vec<(u32, Formula)>,
    /// A trivially false formula was asserted at this level.
    unsat: bool,
}

/// A satisfiability solver for quantifier-free linear **integer**
/// arithmetic.
///
/// All variables range over ℤ (helpers create ℕ-constrained ones).
/// Internally: eager incremental assertion of conjunctive content into
/// an exact-rational simplex, case splitting over disjunctions, and
/// branch-and-bound for integrality. Resource budgets turn runaway
/// searches into [`SatResult::Unknown`] rather than wrong verdicts.
///
/// # Examples
///
/// ```
/// use holistic_lia::{Constraint, LinExpr, Solver};
///
/// let mut solver = Solver::new();
/// let x = solver.new_nonneg_var("x");
/// let y = solver.new_nonneg_var("y");
/// // 2x + 2y == 5 has no integer solution.
/// solver.assert_constraint(Constraint::eq(
///     LinExpr::term(x, 2) + LinExpr::term(y, 2),
///     LinExpr::constant(5),
/// ));
/// assert!(solver.check().is_unsat());
/// ```
pub struct Solver {
    simplex: Simplex,
    user_vars: Vec<Var>,
    /// One entry per backtracking level; `levels[0]` is the base level.
    levels: Vec<Level>,
    interner: Interner,
    config: SolverConfig,
    stats: SolverStats,
    /// Next tracked-assertion identifier (monotone over the solver's
    /// lifetime, so popped ids never get reused).
    next_assert_id: u32,
    /// Variables declared non-negative at construction
    /// ([`Solver::new_nonneg_var`] / [`Solver::assert_nonneg`]). Their
    /// `>= 0` bound is *background*: part of every UNSAT-core subset
    /// check even when a tracked assertion has since tightened (and so
    /// re-tagged) the live lower bound.
    nonneg: std::collections::HashSet<Var>,
    /// Rational arithmetic saturated at some point in this solver's
    /// lifetime. Bounds computed from poisoned values may linger in the
    /// tableau across pops, so every subsequent check conservatively
    /// reports `Unknown` — always sound, and in practice unreachable for
    /// the small-coefficient systems the checker emits.
    poisoned: bool,
    /// The interval-propagation presolve (see [`crate::propagate`]).
    /// Mirrors the assertion stack; inactive unless
    /// [`SolverConfig::propagation`] is set.
    propagator: Propagator,
    /// VSIDS-style per-literal activity: atoms bumped each time they
    /// appear in a conflict (simplex Farkas tags, propagation reasons,
    /// extracted cores), with geometric decay via `activity_inc`.
    /// Drives disjunct ordering in [`Solver::branch`] and is exposed to
    /// the checker's case-split planner through
    /// [`Solver::formula_activity`].
    activity: std::collections::HashMap<Constraint, f64>,
    activity_inc: f64,
}

impl Default for Solver {
    fn default() -> Solver {
        Solver::new()
    }
}

impl Solver {
    /// Creates a solver with default budgets.
    pub fn new() -> Solver {
        Solver::with_config(SolverConfig::default())
    }

    /// Creates a solver with explicit budgets.
    pub fn with_config(config: SolverConfig) -> Solver {
        let mut simplex = Simplex::new();
        simplex.set_deadline(config.deadline);
        Solver {
            simplex,
            user_vars: Vec::new(),
            levels: vec![Level::default()],
            interner: Interner::new(),
            config,
            stats: SolverStats::default(),
            next_assert_id: 0,
            nonneg: std::collections::HashSet::new(),
            poisoned: false,
            propagator: Propagator::new(),
            activity: std::collections::HashMap::new(),
            activity_inc: 1.0,
        }
    }

    /// Allocates an unbounded integer variable.
    pub fn new_var(&mut self, name: impl Into<String>) -> Var {
        let v = self.simplex.new_var(name);
        self.user_vars.push(v);
        v
    }

    /// Allocates an integer variable constrained to be `>= 0`.
    ///
    /// Non-negativity is *declared*, not asserted: although the live
    /// simplex bound is recorded at the current level (and so vanishes
    /// when that level is popped), any later assertion mentioning the
    /// variable transparently re-asserts the bound first (see
    /// [`Solver::pop`]) — popping past the creation level can no longer
    /// silently discard declared bounds of reused variables.
    pub fn new_nonneg_var(&mut self, name: impl Into<String>) -> Var {
        let v = self.new_var(name);
        let r = self.simplex.assert_lower(v, Rat::ZERO);
        debug_assert_eq!(r, LpResult::Feasible);
        self.nonneg.insert(v);
        self.propagator.note_nonneg(v);
        v
    }

    /// Re-asserts `v >= 0` at the current level and snaps a stale
    /// fractional value back onto the integer grid. This is the
    /// reactivation hook for pooled variables whose original constraints
    /// were popped: without the snap, junk values left by abandoned
    /// search branches would trigger integrality branching on every
    /// later check.
    pub fn assert_nonneg(&mut self, v: Var) {
        let _ = self.simplex.assert_lower(v, Rat::ZERO);
        self.simplex.snap_to_integer(v);
        self.nonneg.insert(v);
        self.propagator.note_nonneg(v);
    }

    /// Restores the declared `>= 0` bound of any variable of `c` whose
    /// live bound was discarded by popping past its creation level.
    /// Declared non-negativity is background (like in
    /// [`Solver::subset_unsat`]); reusing a variable must never
    /// silently run without it.
    fn reactivate_nonneg(&mut self, c: &Constraint) {
        for (v, _) in c.expr().iter() {
            if self.simplex.lower(v).is_none() && self.nonneg.contains(&v) {
                let _ = self.simplex.assert_lower(v, Rat::ZERO);
                self.simplex.snap_to_integer(v);
            }
        }
    }

    /// The name a variable was created with.
    pub fn var_name(&self, v: Var) -> &str {
        self.simplex.var_name(v)
    }

    /// Sets (or clears) the wall-clock deadline for subsequent checks.
    /// Lets long-lived incremental sessions tighten the deadline per
    /// query without rebuilding the tableau.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.config.deadline = deadline;
        self.simplex.set_deadline(deadline);
    }

    /// A handle to the constraint interner, for callers that construct
    /// the same constraints repeatedly. Its hit/miss counters are
    /// reported through [`Solver::stats`].
    pub fn interner(&mut self) -> &mut Interner {
        &mut self.interner
    }

    /// Asserts a formula at the current level.
    ///
    /// Conjunctive content reaches the simplex immediately; disjunctions
    /// are deferred to [`Solver::check`].
    pub fn assert(&mut self, f: Formula) {
        let nnf = f.to_nnf();
        self.assert_nnf(nnf, None);
    }

    /// Asserts a formula at the current level and returns an [`AssertId`]
    /// by which [`Solver::unsat_core`] can refer back to it.
    ///
    /// The formula is retained (in NNF) until its level is popped.
    /// Conjunctive content is tagged through to the simplex bounds it
    /// produces, so bound-level conflicts can name the assertions that
    /// caused them; disjunctions participate in search untagged and a
    /// core involving them is simply not reported.
    pub fn assert_tracked(&mut self, f: Formula) -> AssertId {
        let id = self.next_assert_id;
        self.next_assert_id += 1;
        let nnf = f.to_nnf();
        self.levels
            .last_mut()
            .unwrap()
            .tracked
            .push((id, nnf.clone()));
        self.assert_nnf(nnf, Some(id));
        AssertId(id)
    }

    fn assert_nnf(&mut self, f: Formula, tag: Option<u32>) {
        match f {
            Formula::True => {}
            Formula::False => self.levels.last_mut().unwrap().unsat = true,
            Formula::Atom(c) => {
                self.reactivate_nonneg(&c);
                // An infeasible result here is not an error: the simplex
                // records the conflicting bound on its trail and the
                // conflict persists (and is reported by check) until the
                // enclosing level is popped.
                let _ = self.simplex.assert_constraint_tagged(&c, tag);
                if self.config.propagation {
                    self.propagator.assert(&c, tag);
                }
            }
            Formula::And(fs) => {
                for g in fs {
                    self.assert_nnf(g, tag);
                }
            }
            f @ Formula::Or(_) => self.levels.last_mut().unwrap().pending.push(f),
            Formula::Not(_) => unreachable!("to_nnf eliminates negation"),
        }
    }

    /// Asserts a single constraint at the current level.
    pub fn assert_constraint(&mut self, c: Constraint) {
        self.assert(Formula::atom(c));
    }

    /// Asserts a single constraint at the current level, tracked for
    /// UNSAT-core extraction like [`Solver::assert_tracked`].
    pub fn assert_constraint_tracked(&mut self, c: Constraint) -> AssertId {
        self.assert_tracked(Formula::atom(c))
    }

    /// Opens a backtracking level.
    pub fn push(&mut self) {
        self.levels.push(Level::default());
        self.simplex.push();
        self.propagator.push();
    }

    /// Discards all assertions made since the matching [`push`](Solver::push).
    ///
    /// Declared non-negativity ([`Solver::new_nonneg_var`]) survives:
    /// a variable created inside the popped level loses its live simplex
    /// bound here, but the bound is re-asserted the moment any later
    /// assertion mentions the variable again.
    ///
    /// # Panics
    ///
    /// Panics if there is no open level.
    pub fn pop(&mut self) {
        assert!(self.levels.len() > 1, "pop without matching push");
        self.levels.pop();
        self.simplex.pop();
        self.propagator.pop();
    }

    /// `(rows, vars)` of the simplex tableau (a size statistic).
    pub fn tableau_size(&self) -> (usize, usize) {
        (self.simplex.num_rows(), self.simplex.num_vars())
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> SolverStats {
        let mut s = self.stats;
        s.pivots = self.simplex.pivot_count();
        s.propagations = self.propagator.propagations;
        let InternStats { hits, misses } = self.interner.stats();
        s.intern_hits = hits;
        s.intern_misses = misses;
        s
    }

    /// The activity score of the hottest atom of `f` (0.0 for formulas
    /// whose atoms never appeared in a conflict). The checker's
    /// case-split planner uses this to order disjunctions it is about to
    /// assert so the solver meets the historically-refutable cases
    /// first.
    pub fn formula_activity(&self, f: &Formula) -> f64 {
        match f {
            Formula::True | Formula::False => 0.0,
            Formula::Atom(c) => self.activity.get(c).copied().unwrap_or(0.0),
            Formula::And(fs) | Formula::Or(fs) => fs
                .iter()
                .map(|g| self.formula_activity(g))
                .fold(0.0, f64::max),
            Formula::Not(inner) => self.formula_activity(inner),
        }
    }

    /// Bumps the activity of every atom of the tracked assertions named
    /// by `tags`, then decays (by growing the increment — standard
    /// VSIDS).
    fn bump_activity_of_tags(&mut self, tags: &[u32]) {
        if tags.is_empty() {
            return;
        }
        let mut atoms: Vec<Constraint> = Vec::new();
        for level in &self.levels {
            for (id, f) in &level.tracked {
                if tags.binary_search(id).is_ok() {
                    Self::collect_atoms(f, &mut atoms);
                }
            }
        }
        let inc = self.activity_inc;
        for c in atoms {
            *self.activity.entry(c).or_insert(0.0) += inc;
        }
        self.activity_inc *= 1.05;
        if self.activity_inc > 1e100 {
            for v in self.activity.values_mut() {
                *v *= 1e-100;
            }
            self.activity_inc *= 1e-100;
        }
    }

    /// Collects the current conflict's tags (simplex Farkas tags plus
    /// any live propagation conflict) and bumps their atoms.
    fn bump_conflict_activity(&mut self) {
        if !self.config.propagation {
            return;
        }
        let mut tags: Vec<u32> = self.simplex.conflict_tags().to_vec();
        if let Some(cf) = self.propagator.conflict() {
            if let Some(ts) = &cf.tags {
                tags.extend_from_slice(ts);
            }
        }
        tags.sort_unstable();
        tags.dedup();
        self.bump_activity_of_tags(&tags);
    }

    fn collect_atoms(f: &Formula, out: &mut Vec<Constraint>) {
        match f {
            Formula::True | Formula::False => {}
            Formula::Atom(c) => out.push(c.clone()),
            Formula::And(fs) | Formula::Or(fs) => {
                for g in fs {
                    Self::collect_atoms(g, out);
                }
            }
            Formula::Not(inner) => Self::collect_atoms(inner, out),
        }
    }

    /// Decides satisfiability of the conjunction of all asserted formulas
    /// over the integers.
    ///
    /// The conjunctive content is already in the simplex, so the work
    /// here is proportional to the number of *deferred disjunctions*
    /// plus branch-and-bound, not to the total assertion count.
    pub fn check(&mut self) -> SatResult {
        let _span = holistic_obs::span("lia.check");
        self.stats.checks += 1;
        // Conflict tags accumulate across every infeasibility the search
        // encounters below; start the union fresh so unsat_core() after
        // this check sees only the relevant conflicts.
        self.simplex.clear_conflict_tags();
        if self.levels.iter().any(|l| l.unsat) {
            return SatResult::Unsat;
        }
        // Interval presolve: propagate the asserted conjunction to a
        // fixpoint at the *current* level, so derived bounds persist
        // incrementally across checks. A conflict here refutes the check
        // without a single pivot.
        if self.config.propagation {
            let refuted = {
                let _span = holistic_obs::span("lia.presolve");
                self.propagator.propagate()
            };
            if refuted {
                if Rat::take_overflow_flag() {
                    self.poisoned = true;
                }
                if self.poisoned {
                    return SatResult::Unknown(UnknownReason::RatOverflow);
                }
                self.stats.propagation_refutations += 1;
                self.bump_conflict_activity();
                return SatResult::Unsat;
            }
        }
        let goals: Vec<Formula> = self
            .levels
            .iter()
            .flat_map(|level| level.pending.iter().cloned())
            .collect();
        let mut budget = Budget {
            branch_nodes: self.config.max_branch_nodes,
            case_splits: self.config.max_case_splits,
        };
        self.simplex.push();
        self.propagator.push();
        let result = {
            let _span = holistic_obs::span("lia.search");
            self.search(goals, &mut budget)
        };
        self.propagator.pop();
        self.simplex.pop();
        // Saturated rational arithmetic (anywhere since the last check:
        // asserts included) poisons the verdict — sound `Unknown` beats
        // a wrong answer computed from wrapped values.
        if Rat::take_overflow_flag() {
            self.poisoned = true;
        }
        if self.poisoned {
            return SatResult::Unknown(UnknownReason::RatOverflow);
        }
        if matches!(result, SatResult::Unsat) {
            self.bump_conflict_activity();
        }
        result
    }

    /// DFS over disjunctions. Precondition: formulas in `pending` are in
    /// NNF, and the caller opened a simplex level that this call may
    /// populate; the caller pops it.
    fn search(&mut self, pending: Vec<Formula>, budget: &mut Budget) -> SatResult {
        let mut queue = pending;
        let mut disjunctions: Vec<Vec<Formula>> = Vec::new();
        while let Some(f) = queue.pop() {
            match f {
                Formula::True => {}
                Formula::False => return SatResult::Unsat,
                Formula::Atom(c) => {
                    if self.simplex.assert_constraint(&c) == LpResult::Infeasible {
                        return SatResult::Unsat;
                    }
                    if self.config.propagation {
                        self.propagator.assert(&c, None);
                    }
                }
                Formula::And(fs) => queue.extend(fs),
                Formula::Or(fs) => disjunctions.push(fs),
                Formula::Not(_) => unreachable!("search runs on NNF formulas"),
            }
        }
        // Interval presolve of this node's conjunction: a propagation
        // conflict refutes the node before any pivoting — and, when its
        // reasons predate the current branch, refutes the siblings too
        // (see `branch`).
        if self.config.propagation && self.propagator.propagate() {
            self.stats.propagation_refutations += 1;
            return SatResult::Unsat;
        }
        // Prune before splitting: if the relaxation of the conjunctive
        // part is already infeasible, no disjunct can rescue it.
        match self.simplex.check() {
            LpResult::Infeasible => return SatResult::Unsat,
            LpResult::TimedOut => return SatResult::Unknown(UnknownReason::Deadline),
            LpResult::Feasible => {}
        }
        if disjunctions.is_empty() {
            return self.branch_and_bound(budget, 0);
        }

        // Interval-based disjunct filtering: a disjunct violated by
        // every assignment inside the current variable intervals can
        // never be chosen, whatever the other disjunctions decide —
        // drop it without a case split. An emptied disjunction refutes
        // the node; a disjunction reduced to one disjunct is forced.
        if self.config.propagation {
            let mut units: Vec<Formula> = Vec::new();
            let mut kept_disjunctions: Vec<Vec<Formula>> = Vec::with_capacity(disjunctions.len());
            for d in disjunctions {
                let before = d.len();
                let mut kept: Vec<Formula> = d
                    .into_iter()
                    .filter(|f| !self.propagator.refutes_formula(f))
                    .collect();
                self.stats.disjuncts_skipped += (before - kept.len()) as u64;
                match kept.len() {
                    0 => return SatResult::Unsat,
                    1 => units.push(kept.pop().unwrap()),
                    _ => kept_disjunctions.push(kept),
                }
            }
            if !units.is_empty() {
                units.extend(kept_disjunctions.into_iter().map(Formula::Or));
                return self.search(units, budget);
            }
            disjunctions = kept_disjunctions;
        }

        // Disjunct filtering and unit propagation: a disjunct whose
        // conjunctive content is LP-infeasible against the current state
        // can never be chosen (sound: LP-infeasible ⟹ ℤ-infeasible);
        // a disjunction reduced to one disjunct is forced. Each such
        // simplification restarts this level, which in practice resolves
        // most guard-conditional disjunctions without any branching.
        //
        // Filtering costs two simplex probes per disjunct, which only
        // pays off when branching would otherwise explode; with few
        // disjunctions, plain DFS with its per-branch prune is cheaper.
        const FILTER_THRESHOLD: usize = 16;
        if disjunctions.len() < FILTER_THRESHOLD {
            disjunctions.sort_by_key(|d| d.len());
            let first = disjunctions.remove(0);
            let rest: Vec<Formula> = disjunctions.into_iter().map(Formula::Or).collect();
            return self.branch(first, rest, budget);
        }
        let mut units: Vec<Formula> = Vec::new();
        let mut remaining: Vec<Vec<Formula>> = Vec::new();
        for d in disjunctions {
            let mut kept = Vec::with_capacity(d.len());
            for disj in d {
                if Self::is_conjunctive(&disj) {
                    self.simplex.push();
                    // A timed-out probe keeps the disjunct: dropping it
                    // could turn a genuine Sat into Unsat, whereas
                    // keeping it only costs branching work.
                    let feasible = self.assert_conjunctive(&disj)
                        && self.simplex.check() != LpResult::Infeasible;
                    self.simplex.pop();
                    if feasible {
                        kept.push(disj);
                    }
                } else {
                    kept.push(disj); // nested Or: opaque to the filter
                }
            }
            match kept.len() {
                0 => return SatResult::Unsat,
                1 => units.push(kept.pop().unwrap()),
                _ => remaining.push(kept),
            }
        }
        if !units.is_empty() {
            units.extend(remaining.into_iter().map(Formula::Or));
            return self.search(units, budget);
        }
        let mut disjunctions = remaining;

        // Split on the smallest disjunction first.
        disjunctions.sort_by_key(|d| d.len());
        let first = disjunctions.remove(0);
        let rest: Vec<Formula> = disjunctions.into_iter().map(Formula::Or).collect();
        self.branch(first, rest, budget)
    }

    /// Case-splits on `first`, carrying `rest` into each branch.
    ///
    /// With propagation enabled, two conflict-driven refinements apply.
    /// Disjuncts are visited in descending *activity* order, so the
    /// historically conflict-involved (cheap-to-refute) cases go first.
    /// And after a refuted disjunct, if the propagation conflict's
    /// reasons all predate this split (its level is at most the level
    /// this call was entered at), the conflict never mentioned the
    /// disjunct's own assertions: the *base* conjunction is infeasible,
    /// so every remaining sibling is refuted by the same conflict and is
    /// skipped without a check.
    fn branch(
        &mut self,
        mut first: Vec<Formula>,
        rest: Vec<Formula>,
        budget: &mut Budget,
    ) -> SatResult {
        let base_level = self.propagator.level();
        if self.config.propagation && first.len() > 1 {
            let mut scored: Vec<(usize, f64, Formula)> = first
                .into_iter()
                .enumerate()
                .map(|(i, f)| {
                    let a = self.formula_activity(&f);
                    (i, a, f)
                })
                .collect();
            // Stable under ties (original order) for determinism.
            scored.sort_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
            first = scored.into_iter().map(|(_, _, f)| f).collect();
        }
        let total = first.len();
        let mut saw_unknown = None;
        for (i, disjunct) in first.into_iter().enumerate() {
            if budget.case_splits == 0 {
                return SatResult::Unknown(UnknownReason::SplitBudget);
            }
            budget.case_splits -= 1;
            self.stats.case_splits += 1;
            let mut goals = rest.clone();
            goals.push(disjunct);
            self.simplex.push();
            self.propagator.push();
            let r = self.search(goals, budget);
            self.propagator.pop();
            self.simplex.pop();
            match r {
                SatResult::Sat(m) => return SatResult::Sat(m),
                SatResult::Unsat => {
                    if self.config.propagation {
                        if let Some(cf) = self.propagator.conflict() {
                            if cf.level <= base_level {
                                // Pervasive conflict: sound even past an
                                // earlier Unknown — the base conjunction
                                // itself is infeasible.
                                self.stats.learned_conflicts += 1;
                                self.stats.disjuncts_skipped += (total - i - 1) as u64;
                                return SatResult::Unsat;
                            }
                        }
                    }
                }
                SatResult::Unknown(reason) => saw_unknown = Some(reason),
            }
        }
        match saw_unknown {
            Some(reason) => SatResult::Unknown(reason),
            None => SatResult::Unsat,
        }
    }

    /// Whether the formula is free of disjunctions (atoms and
    /// conjunctions only).
    fn is_conjunctive(f: &Formula) -> bool {
        match f {
            Formula::True | Formula::False | Formula::Atom(_) => true,
            Formula::And(fs) => fs.iter().all(Self::is_conjunctive),
            Formula::Or(_) | Formula::Not(_) => false,
        }
    }

    /// Asserts a conjunctive formula into the simplex; returns `false`
    /// on an immediate conflict.
    fn assert_conjunctive(&mut self, f: &Formula) -> bool {
        match f {
            Formula::True => true,
            Formula::False => false,
            Formula::Atom(c) => self.simplex.assert_constraint(c) == LpResult::Feasible,
            Formula::And(fs) => fs.iter().all(|g| {
                // Evaluation order matters for short-circuiting only.
                self.assert_conjunctive(g)
            }),
            Formula::Or(_) | Formula::Not(_) => unreachable!("caller checked is_conjunctive"),
        }
    }

    fn branch_and_bound(&mut self, budget: &mut Budget, depth: u32) -> SatResult {
        /// Recursion guard: GCD-tightened systems virtually never branch
        /// this deep; an adversarial unbounded system must not overflow
        /// the stack, so past this depth we give up with `Unknown`.
        const MAX_DEPTH: u32 = 1_000;
        match self.simplex.check() {
            LpResult::Infeasible => return SatResult::Unsat,
            LpResult::TimedOut => return SatResult::Unknown(UnknownReason::Deadline),
            LpResult::Feasible => {}
        }
        let fractional = self
            .user_vars
            .iter()
            .copied()
            .find(|&v| !self.simplex.value(v).is_integer());
        let Some(v) = fractional else {
            return SatResult::Sat(self.extract_model());
        };
        if budget.branch_nodes == 0 || depth >= MAX_DEPTH {
            return SatResult::Unknown(UnknownReason::BranchBudget);
        }
        budget.branch_nodes -= 1;
        self.stats.branch_nodes += 1;
        let val = self.simplex.value(v);

        self.simplex.push();
        let lo_feasible = self.simplex.assert_upper(v, Rat::from(val.floor()));
        let lo = if lo_feasible == LpResult::Infeasible {
            SatResult::Unsat
        } else {
            self.branch_and_bound(budget, depth + 1)
        };
        self.simplex.pop();
        if lo.is_sat() {
            return lo;
        }

        self.simplex.push();
        let hi_feasible = self.simplex.assert_lower(v, Rat::from(val.ceil()));
        let hi = if hi_feasible == LpResult::Infeasible {
            SatResult::Unsat
        } else {
            self.branch_and_bound(budget, depth + 1)
        };
        self.simplex.pop();
        if hi.is_sat() {
            return hi;
        }

        match (lo, hi) {
            (SatResult::Unknown(r), _) | (_, SatResult::Unknown(r)) => SatResult::Unknown(r),
            _ => SatResult::Unsat,
        }
    }

    /// Extracts a minimal UNSAT core over the *tracked* assertions after
    /// a [`check`](Solver::check) that returned [`SatResult::Unsat`].
    ///
    /// The candidate subset is seeded from the Farkas conflict of the
    /// terminal simplex state: the provenance tags of every bound that
    /// participated in an infeasibility during the last check (both sides
    /// of bound conflicts, plus the blocking bounds of terminal pivot
    /// rows — the dual ray's support). The candidate is then **verified**
    /// to be genuinely infeasible by replaying it (together with the
    /// untagged background bounds of its variables) into a fresh scratch
    /// solver, and shrunk by deletion-based minimization into an
    /// irreducible infeasible subset: dropping any single member makes
    /// the remainder feasible.
    ///
    /// Returns `None` when no verified core exists — e.g. the conflict
    /// involves untracked search-time assertions (disjunction branches,
    /// integrality cuts) or the scratch solve is inconclusive. `None`
    /// never indicates the problem is satisfiable; it only means no
    /// certificate could be isolated.
    pub fn unsat_core(&mut self) -> Option<Vec<AssertId>> {
        let _span = holistic_obs::span("lia.core");
        let t0 = std::time::Instant::now();
        let mut tags: Vec<u32> = self.simplex.conflict_tags().to_vec();
        // A refutation found by the interval presolve never reaches the
        // simplex; its derivation chain's tags seed the core instead.
        if let Some(cf) = self.propagator.conflict() {
            if let Some(ts) = &cf.tags {
                tags.extend_from_slice(ts);
            }
        }
        tags.sort_unstable();
        tags.dedup();
        if tags.is_empty() {
            return None;
        }
        // Only tags of live tracked assertions qualify (a popped
        // assertion cannot appear in a conflict of the current state).
        let tracked: std::collections::HashMap<u32, &Formula> = self
            .levels
            .iter()
            .flat_map(|l| l.tracked.iter().map(|(id, f)| (*id, f)))
            .collect();
        if tags.iter().any(|t| !tracked.contains_key(t)) {
            return None;
        }
        let mut core = tags;
        if !(self.subset_unsat(&core, &tracked)?) {
            // The tagged conflict participants alone are satisfiable: the
            // infeasibility leaned on untracked state. No certificate.
            self.stats.core_micros += t0.elapsed().as_micros() as u64;
            return None;
        }
        // Deletion-based minimization: try dropping each member once.
        let mut i = 0;
        while i < core.len() && core.len() > 1 {
            let mut cand = core.clone();
            cand.remove(i);
            match self.subset_unsat(&cand, &tracked) {
                Some(true) => core = cand, // still unsat without member i
                _ => i += 1,               // member i is necessary (or unknown)
            }
        }
        self.stats.cores_extracted += 1;
        self.stats.core_members += core.len() as u64;
        self.stats.core_micros += t0.elapsed().as_micros() as u64;
        holistic_obs::observe("lia.core_size", core.len() as u64);
        // Seed the activity scores from the minimized core: its members
        // are the proven troublemakers, exactly what disjunct ordering
        // should meet first.
        if self.config.propagation {
            self.bump_activity_of_tags(&core);
        }
        Some(core.into_iter().map(AssertId).collect())
    }

    /// Whether the conjunction of the given tracked assertions (plus the
    /// untagged background bounds of their variables) is infeasible,
    /// decided on a fresh scratch solver with remapped variables.
    /// `None` = inconclusive.
    fn subset_unsat(
        &self,
        ids: &[u32],
        tracked: &std::collections::HashMap<u32, &Formula>,
    ) -> Option<bool> {
        let mut vars: Vec<Var> = Vec::new();
        for id in ids {
            Self::collect_vars(tracked[id], &mut vars);
        }
        vars.sort_unstable();
        vars.dedup();
        let mut scratch = Solver::with_config(SolverConfig {
            // The subsets are tiny; small budgets keep a pathological
            // scratch solve from dominating the caller's own search.
            max_branch_nodes: 10_000,
            max_case_splits: 10_000,
            deadline: self.config.deadline,
            propagation: self.config.propagation,
        });
        let mut map: std::collections::HashMap<Var, Var> = std::collections::HashMap::new();
        for &v in &vars {
            let sv = scratch.new_var(self.simplex.var_name(v).to_owned());
            // Background (untagged) bounds are part of every subset: they
            // came from variable construction, not from any assertion.
            // Declared non-negativity survives even when a tracked
            // assertion has tightened (and re-tagged) the live bound.
            if self.nonneg.contains(&v) {
                let _ = scratch.simplex.assert_lower(sv, Rat::ZERO);
            }
            if self.simplex.lower_tag(v).is_none() {
                if let Some(l) = self.simplex.lower(v) {
                    let _ = scratch.simplex.assert_lower(sv, l);
                }
            }
            if self.simplex.upper_tag(v).is_none() {
                if let Some(u) = self.simplex.upper(v) {
                    let _ = scratch.simplex.assert_upper(sv, u);
                }
            }
            map.insert(v, sv);
        }
        for id in ids {
            let f = Self::remap_formula(tracked[id], &map);
            scratch.assert(f);
        }
        match scratch.check() {
            SatResult::Unsat => Some(true),
            SatResult::Sat(_) => Some(false),
            SatResult::Unknown(_) => None,
        }
    }

    fn collect_vars(f: &Formula, out: &mut Vec<Var>) {
        match f {
            Formula::True | Formula::False => {}
            Formula::Atom(c) => out.extend(c.expr().iter().map(|(v, _)| v)),
            Formula::And(fs) | Formula::Or(fs) => {
                for g in fs {
                    Self::collect_vars(g, out);
                }
            }
            Formula::Not(inner) => Self::collect_vars(inner, out),
        }
    }

    fn remap_formula(f: &Formula, map: &std::collections::HashMap<Var, Var>) -> Formula {
        match f {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Atom(c) => {
                let mut expr = LinExpr::constant(c.expr().constant_term());
                for (v, k) in c.expr().iter() {
                    expr.add_term(map[&v], k);
                }
                let zero = LinExpr::zero();
                Formula::atom(match c.rel() {
                    crate::constraint::Rel::Le => Constraint::le(expr, zero),
                    crate::constraint::Rel::Ge => Constraint::ge(expr, zero),
                    crate::constraint::Rel::Eq => Constraint::eq(expr, zero),
                })
            }
            Formula::And(fs) => {
                Formula::And(fs.iter().map(|g| Self::remap_formula(g, map)).collect())
            }
            Formula::Or(fs) => {
                Formula::Or(fs.iter().map(|g| Self::remap_formula(g, map)).collect())
            }
            Formula::Not(inner) => Formula::Not(Box::new(Self::remap_formula(inner, map))),
        }
    }

    fn extract_model(&self) -> Model {
        let mut m = Model::new();
        for &v in &self.user_vars {
            let value = self
                .simplex
                .value(v)
                .to_integer()
                .expect("model extraction requires integral values");
            m.insert(v, value, self.simplex.var_name(v).to_owned());
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linexpr::LinExpr;

    fn e(terms: &[(Var, i64)], c: i64) -> LinExpr {
        let mut out = LinExpr::constant(c);
        for &(v, k) in terms {
            out.add_term(v, Rat::from(k));
        }
        out
    }

    #[test]
    fn simple_sat() {
        let mut s = Solver::new();
        let x = s.new_nonneg_var("x");
        s.assert_constraint(Constraint::ge(LinExpr::var(x), LinExpr::constant(3)));
        let r = s.check();
        let m = r.model().expect("sat");
        assert!(m.value(x) >= 3);
    }

    #[test]
    fn simple_unsat() {
        let mut s = Solver::new();
        let x = s.new_nonneg_var("x");
        s.assert_constraint(Constraint::le(LinExpr::var(x), LinExpr::constant(-1)));
        assert!(s.check().is_unsat());
    }

    #[test]
    fn integrality_cuts_rational_solutions() {
        // 2x == 1: feasible over ℚ, infeasible over ℤ.
        let mut s = Solver::new();
        let x = s.new_var("x");
        s.assert_constraint(Constraint::eq(e(&[(x, 2)], 0), LinExpr::constant(1)));
        assert!(s.check().is_unsat());
    }

    #[test]
    fn integrality_multi_var() {
        // 2x + 4y == 7 has no integer solutions.
        let mut s = Solver::new();
        let x = s.new_var("x");
        let y = s.new_var("y");
        s.assert_constraint(Constraint::eq(
            e(&[(x, 2), (y, 4)], 0),
            LinExpr::constant(7),
        ));
        assert!(s.check().is_unsat());
        // 2x + 4y == 6 does.
        let mut s = Solver::new();
        let x = s.new_var("x");
        let y = s.new_var("y");
        s.assert_constraint(Constraint::eq(
            e(&[(x, 2), (y, 4)], 0),
            LinExpr::constant(6),
        ));
        assert!(s.check().is_sat());
    }

    #[test]
    fn branching_finds_integer_point() {
        // 3x + 3y >= 5, x + y <= 2, x,y >= 0: rational optimum is
        // fractional but (1,1) works.
        let mut s = Solver::new();
        let x = s.new_nonneg_var("x");
        let y = s.new_nonneg_var("y");
        s.assert_constraint(Constraint::ge(
            e(&[(x, 3), (y, 3)], 0),
            LinExpr::constant(5),
        ));
        s.assert_constraint(Constraint::le(
            e(&[(x, 1), (y, 1)], 0),
            LinExpr::constant(2),
        ));
        let r = s.check();
        let m = r.model().expect("sat");
        let (xv, yv) = (m.value(x), m.value(y));
        assert!(3 * xv + 3 * yv >= 5 && xv + yv <= 2 && xv >= 0 && yv >= 0);
    }

    #[test]
    fn disjunction_case_split() {
        let mut s = Solver::new();
        let x = s.new_nonneg_var("x");
        // (x >= 10 ∨ x <= 2) ∧ x >= 3 ∧ x <= 9  is unsat.
        s.assert(Formula::or([
            Constraint::ge(LinExpr::var(x), LinExpr::constant(10)).into(),
            Constraint::le(LinExpr::var(x), LinExpr::constant(2)).into(),
        ]));
        s.assert_constraint(Constraint::ge(LinExpr::var(x), LinExpr::constant(3)));
        s.assert_constraint(Constraint::le(LinExpr::var(x), LinExpr::constant(9)));
        assert!(s.check().is_unsat());
    }

    #[test]
    fn negated_equality() {
        let mut s = Solver::new();
        let x = s.new_nonneg_var("x");
        s.assert(Formula::not(Formula::atom(Constraint::eq(
            LinExpr::var(x),
            LinExpr::constant(0),
        ))));
        s.assert_constraint(Constraint::le(LinExpr::var(x), LinExpr::constant(0)));
        assert!(s.check().is_unsat());
    }

    #[test]
    fn push_pop() {
        let mut s = Solver::new();
        let x = s.new_nonneg_var("x");
        s.assert_constraint(Constraint::le(LinExpr::var(x), LinExpr::constant(5)));
        assert!(s.check().is_sat());
        s.push();
        s.assert_constraint(Constraint::ge(LinExpr::var(x), LinExpr::constant(6)));
        assert!(s.check().is_unsat());
        s.pop();
        assert!(s.check().is_sat());
    }

    #[test]
    fn push_pop_with_disjunctions() {
        let mut s = Solver::new();
        let x = s.new_nonneg_var("x");
        s.push();
        s.assert(Formula::or([
            Constraint::ge(LinExpr::var(x), LinExpr::constant(10)).into(),
            Constraint::le(LinExpr::var(x), LinExpr::constant(2)).into(),
        ]));
        s.assert_constraint(Constraint::ge(LinExpr::var(x), LinExpr::constant(3)));
        s.assert_constraint(Constraint::le(LinExpr::var(x), LinExpr::constant(9)));
        assert!(s.check().is_unsat());
        s.pop();
        // The popped disjunction and bounds must be gone.
        assert!(s.check().is_sat());
    }

    #[test]
    fn asserted_false_is_scoped_to_its_level() {
        let mut s = Solver::new();
        let _x = s.new_nonneg_var("x");
        s.push();
        s.assert(Formula::False);
        assert!(s.check().is_unsat());
        assert!(s.check().is_unsat(), "unsat flag persists across checks");
        s.pop();
        assert!(s.check().is_sat());
    }

    #[test]
    fn implication() {
        let mut s = Solver::new();
        let x = s.new_nonneg_var("x");
        let y = s.new_nonneg_var("y");
        // (x >= 5 ⇒ y >= 5) ∧ x == 7 ∧ y <= 3  is unsat.
        s.assert(Formula::implies(
            Constraint::ge(LinExpr::var(x), LinExpr::constant(5)).into(),
            Constraint::ge(LinExpr::var(y), LinExpr::constant(5)).into(),
        ));
        s.assert_constraint(Constraint::eq(LinExpr::var(x), LinExpr::constant(7)));
        s.assert_constraint(Constraint::le(LinExpr::var(y), LinExpr::constant(3)));
        assert!(s.check().is_unsat());
    }

    #[test]
    fn model_satisfies_all_assertions() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..5).map(|i| s.new_nonneg_var(format!("v{i}"))).collect();
        let mut sum = LinExpr::zero();
        for &v in &vars {
            sum += LinExpr::var(v);
        }
        s.assert_constraint(Constraint::eq(sum.clone(), LinExpr::constant(17)));
        s.assert_constraint(Constraint::ge(LinExpr::var(vars[0]), LinExpr::var(vars[1])));
        let r = s.check();
        let m = r.model().expect("sat");
        assert_eq!(m.eval(&sum), Rat::from(17));
        assert!(m.value(vars[0]) >= m.value(vars[1]));
    }

    #[test]
    fn resilience_condition_shape() {
        // The shape used throughout the checker: n > 3t, t >= f >= 0,
        // plus counters summing to n - f.
        let mut s = Solver::new();
        let n = s.new_nonneg_var("n");
        let t = s.new_nonneg_var("t");
        let f = s.new_nonneg_var("f");
        s.assert_constraint(Constraint::gt(LinExpr::var(n), LinExpr::term(t, 3)));
        s.assert_constraint(Constraint::ge(LinExpr::var(t), LinExpr::var(f)));
        s.assert_constraint(Constraint::ge(LinExpr::var(t), LinExpr::constant(1)));
        let r = s.check();
        let m = r.model().expect("sat");
        assert!(m.value(n) > 3 * m.value(t));
        assert!(m.value(t) >= m.value(f));
    }

    #[test]
    fn stats_accumulate() {
        let mut s = Solver::new();
        let x = s.new_nonneg_var("x");
        s.assert_constraint(Constraint::ge(LinExpr::var(x), LinExpr::constant(1)));
        let _ = s.check();
        let _ = s.check();
        assert_eq!(s.stats().checks, 2);
    }

    #[test]
    fn interner_stats_flow_through_solver_stats() {
        let mut s = Solver::new();
        let x = s.new_var("x");
        let a = s.interner().ge(LinExpr::var(x), LinExpr::constant(1));
        let b = s.interner().ge(LinExpr::var(x), LinExpr::constant(1));
        assert_eq!(a, b);
        s.assert_constraint(a);
        assert!(s.check().is_sat());
        let stats = s.stats();
        assert_eq!(stats.intern_hits, 1);
        assert_eq!(stats.intern_misses, 1);
    }

    #[test]
    fn stats_merge_is_componentwise() {
        let mut a = SolverStats {
            checks: 1,
            branch_nodes: 2,
            case_splits: 3,
            pivots: 4,
            intern_hits: 5,
            intern_misses: 6,
            cores_extracted: 7,
            core_members: 8,
            core_micros: 9,
            propagations: 10,
            propagation_refutations: 11,
            learned_conflicts: 12,
            disjuncts_skipped: 13,
        };
        let b = SolverStats {
            checks: 10,
            branch_nodes: 20,
            case_splits: 30,
            pivots: 40,
            intern_hits: 50,
            intern_misses: 60,
            cores_extracted: 70,
            core_members: 80,
            core_micros: 90,
            propagations: 100,
            propagation_refutations: 110,
            learned_conflicts: 120,
            disjuncts_skipped: 130,
        };
        a.merge(&b);
        assert_eq!(a.checks, 11);
        assert_eq!(a.pivots, 44);
        assert_eq!(a.intern_misses, 66);
        assert_eq!(a.cores_extracted, 77);
        assert_eq!(a.core_members, 88);
        assert_eq!(a.core_micros, 99);
        assert_eq!(a.propagations, 110);
        assert_eq!(a.propagation_refutations, 121);
        assert_eq!(a.learned_conflicts, 132);
        assert_eq!(a.disjuncts_skipped, 143);
    }

    #[test]
    fn unsat_core_isolates_conflicting_pair() {
        let mut s = Solver::new();
        let x = s.new_nonneg_var("x");
        let y = s.new_nonneg_var("y");
        let a = s.assert_constraint_tracked(Constraint::ge(LinExpr::var(x), LinExpr::constant(5)));
        let _b = s.assert_constraint_tracked(Constraint::ge(LinExpr::var(y), LinExpr::constant(1)));
        let c = s.assert_constraint_tracked(Constraint::le(LinExpr::var(x), LinExpr::constant(3)));
        assert!(s.check().is_unsat());
        let core = s.unsat_core().expect("bound conflict must yield a core");
        assert_eq!(
            core,
            vec![a, c],
            "core must name exactly the conflicting pair"
        );
        assert_eq!(s.stats().cores_extracted, 1);
        assert_eq!(s.stats().core_members, 2);
    }

    #[test]
    fn unsat_core_from_terminal_pivot_row() {
        // x + y >= 10, x <= 3, y <= 4: infeasible only via the row, not
        // via any single-variable bound conflict.
        let mut s = Solver::new();
        let x = s.new_nonneg_var("x");
        let y = s.new_nonneg_var("y");
        let a = s.assert_constraint_tracked(Constraint::ge(
            e(&[(x, 1), (y, 1)], 0),
            LinExpr::constant(10),
        ));
        let b = s.assert_constraint_tracked(Constraint::le(LinExpr::var(x), LinExpr::constant(3)));
        let c = s.assert_constraint_tracked(Constraint::le(LinExpr::var(y), LinExpr::constant(4)));
        let _d = s.assert_constraint_tracked(Constraint::ge(LinExpr::var(x), LinExpr::constant(1)));
        assert!(s.check().is_unsat());
        let core = s.unsat_core().expect("row conflict must yield a core");
        assert_eq!(core, vec![a, b, c]);
    }

    #[test]
    fn unsat_core_scoped_to_level() {
        let mut s = Solver::new();
        let x = s.new_nonneg_var("x");
        let a = s.assert_constraint_tracked(Constraint::ge(LinExpr::var(x), LinExpr::constant(5)));
        s.push();
        let b = s.assert_constraint_tracked(Constraint::le(LinExpr::var(x), LinExpr::constant(2)));
        assert!(s.check().is_unsat());
        assert_eq!(s.unsat_core().unwrap(), vec![a, b]);
        s.pop();
        assert!(s.check().is_sat());
    }
}
