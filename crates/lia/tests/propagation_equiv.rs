//! Equivalence and core-soundness properties of the propagation-first
//! layer.
//!
//! The interval presolve, disjunct filtering, and pervasive-conflict
//! learning are pure accelerators: with `SolverConfig::propagation` on
//! or off the solver must reach the same verdict on every input (and
//! both must agree with brute-force enumeration over a bounded domain).
//! When propagation itself refutes a system before any pivoting, the
//! reported `unsat_core` must still be a real core: infeasible on its
//! own and irreducible.

use holistic_lia::{
    AssertId, Constraint, Formula, LinExpr, Rat, SatResult, Solver, SolverConfig, Var,
};
use proptest::prelude::*;
use std::collections::HashMap;

const DOMAIN: i64 = 4;
const NUM_VARS: usize = 3;

#[derive(Clone, Debug)]
struct RawConstraint {
    coeffs: [i64; NUM_VARS],
    constant: i64,
    rel: u8, // 0 <=, 1 >=, 2 ==
}

impl RawConstraint {
    fn holds(&self, assignment: &[i64; NUM_VARS]) -> bool {
        let lhs: i64 = self
            .coeffs
            .iter()
            .zip(assignment)
            .map(|(c, v)| c * v)
            .sum::<i64>()
            + self.constant;
        match self.rel {
            0 => lhs <= 0,
            1 => lhs >= 0,
            _ => lhs == 0,
        }
    }

    fn build(&self, vars: &[Var]) -> Constraint {
        let mut e = LinExpr::constant(self.constant as i128);
        for (i, &c) in self.coeffs.iter().enumerate() {
            e.add_term(vars[i], Rat::from(c));
        }
        match self.rel {
            0 => Constraint::le(e, LinExpr::zero()),
            1 => Constraint::ge(e, LinExpr::zero()),
            _ => Constraint::eq(e, LinExpr::zero()),
        }
    }
}

fn raw_constraint() -> impl Strategy<Value = RawConstraint> {
    (prop::array::uniform3(-3i64..=3), -8i64..=8, 0u8..=2).prop_map(|(coeffs, constant, rel)| {
        RawConstraint {
            coeffs,
            constant,
            rel,
        }
    })
}

fn solver_with(propagation: bool) -> Solver {
    Solver::with_config(SolverConfig {
        propagation,
        ..SolverConfig::default()
    })
}

/// Builds the standard bounded-domain session: `NUM_VARS` non-negative
/// variables capped at `DOMAIN`.
fn session(s: &mut Solver) -> Vec<Var> {
    let vars: Vec<Var> = (0..NUM_VARS)
        .map(|i| s.new_nonneg_var(format!("v{i}")))
        .collect();
    for &v in &vars {
        s.assert_constraint(Constraint::le(
            LinExpr::var(v),
            LinExpr::constant(DOMAIN as i128),
        ));
    }
    vars
}

fn brute_force_sat(conj: &[RawConstraint], disj: &[(RawConstraint, RawConstraint)]) -> bool {
    for x in 0..=DOMAIN {
        for y in 0..=DOMAIN {
            for z in 0..=DOMAIN {
                let a = [x, y, z];
                if conj.iter().all(|c| c.holds(&a))
                    && disj.iter().all(|(p, q)| p.holds(&a) || q.holds(&a))
                {
                    return true;
                }
            }
        }
    }
    false
}

fn run(
    propagation: bool,
    conj: &[RawConstraint],
    disj: &[(RawConstraint, RawConstraint)],
) -> SatResult {
    let mut s = solver_with(propagation);
    let vars = session(&mut s);
    for c in conj {
        s.assert_constraint(c.build(&vars));
    }
    for (p, q) in disj {
        s.assert(Formula::or([
            Formula::atom(p.build(&vars)),
            Formula::atom(q.build(&vars)),
        ]));
    }
    s.check()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Propagation on and off reach the same verdict, and both match
    /// brute force — including through disjunctions, where the interval
    /// layer filters and reorders branches.
    #[test]
    fn propagation_on_off_agree_with_brute_force(
        conj in prop::collection::vec(raw_constraint(), 0..4),
        disj in prop::collection::vec((raw_constraint(), raw_constraint()), 0..3),
    ) {
        let on = run(true, &conj, &disj);
        let off = run(false, &conj, &disj);
        prop_assert!(!matches!(on, SatResult::Unknown(_)));
        prop_assert!(!matches!(off, SatResult::Unknown(_)));
        prop_assert_eq!(on.is_sat(), off.is_sat());
        let expected = brute_force_sat(&conj, &disj);
        prop_assert_eq!(on.is_sat(), expected);
    }

    /// When the propagation-enabled solver refutes a *conjunctive*
    /// system (the presolve's home turf: every such refutation is
    /// interval-derivable or simplex-derivable, and the test does not
    /// care which fired), the reported core is infeasible on its own
    /// and irreducible — even when re-checked by the propagation-OFF
    /// pipeline, so the core cannot lean on propagation-only facts.
    #[test]
    fn propagation_unsat_cores_are_sound_and_minimal(
        raws in prop::collection::vec(raw_constraint(), 2..=8),
    ) {
        // No domain caps here: untracked background constraints could
        // be essential to the conflict, making the core unreportable —
        // non-negativity (which cores treat as background) suffices to
        // keep the solver definite on these generators.
        let mut s = solver_with(true);
        let vars: Vec<Var> = (0..NUM_VARS)
            .map(|i| s.new_nonneg_var(format!("v{i}")))
            .collect();
        let mut by_id: HashMap<AssertId, &RawConstraint> = HashMap::new();
        for raw in &raws {
            let id = s.assert_constraint_tracked(raw.build(&vars));
            by_id.insert(id, raw);
        }
        let before = s.stats();
        if !s.check().is_unsat() {
            return Ok(());
        }
        let after = s.stats();
        // A *presolve* refutation: propagation refuted the asserted
        // conjunction before the search ran a single pivot or branch.
        // Its conflict reasons are all tagged (the asserts were
        // tracked), so a core is guaranteed. Refutations found deeper
        // in the search (untagged re-asserts, branch-and-bound integer
        // gaps) may legitimately lack a certificate.
        let presolve_refutation = after.propagation_refutations
            > before.propagation_refutations
            && after.pivots == before.pivots
            && after.branch_nodes == before.branch_nodes;
        let Some(core) = s.unsat_core() else {
            prop_assert!(
                !presolve_refutation,
                "presolve propagation refutation must yield a core"
            );
            return Ok(());
        };
        let members: Vec<&RawConstraint> =
            core.iter().map(|id| by_id[id]).collect();
        prop_assert_eq!(
            subset_verdict(&members, false),
            Some(false),
            "core is not infeasible on its own"
        );
        for drop in 0..members.len() {
            let reduced: Vec<&RawConstraint> = members
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != drop)
                .map(|(_, c)| *c)
                .collect();
            prop_assert_eq!(
                subset_verdict(&reduced, false),
                Some(true),
                "core member {} is removable",
                drop
            );
        }
    }
}

/// Asserts the given subset (over fresh non-negative variables,
/// mirroring the core test's session) in a fresh solver with
/// propagation as requested.
fn subset_verdict(subset: &[&RawConstraint], propagation: bool) -> Option<bool> {
    let mut s = solver_with(propagation);
    let vars: Vec<Var> = (0..NUM_VARS)
        .map(|i| s.new_nonneg_var(format!("v{i}")))
        .collect();
    for c in subset {
        s.assert_constraint(c.build(&vars));
    }
    let r = s.check();
    if r.is_unsat() {
        Some(false)
    } else if r.is_sat() {
        Some(true)
    } else {
        None
    }
}

/// Regression for the `assert_nonneg`-after-`pop` footgun: a variable
/// whose `>= 0` bound was recorded inside a later-popped level must not
/// silently lose the bound when reused. Reuse goes through
/// `reactivate_nonneg`, which re-asserts the declared bound at the
/// current level.
#[test]
fn nonneg_bound_survives_pop_past_creation_level() {
    let mut s = Solver::new();
    s.push();
    let x = s.new_nonneg_var("x");
    // Sanity: the bound is live inside the level.
    s.push();
    s.assert_constraint(Constraint::le(LinExpr::var(x), LinExpr::constant(-1)));
    assert!(s.check().is_unsat(), "x >= 0 ∧ x <= -1 must be unsat");
    s.pop();
    s.pop();
    // The creation level is gone; the declared non-negativity must be
    // restored the moment the variable is used again.
    s.assert_constraint(Constraint::le(LinExpr::var(x), LinExpr::constant(-1)));
    assert!(
        s.check().is_unsat(),
        "declared non-negativity silently vanished after pop"
    );
}

/// The same footgun through the propagation layer: an interval-derived
/// refutation must not resurrect stale bounds either direction — after
/// the pop, `x <= 3` alone is satisfiable.
#[test]
fn popped_constraints_do_not_linger_in_propagation() {
    let mut s = Solver::new();
    let x = s.new_nonneg_var("x");
    s.push();
    s.assert_constraint(Constraint::ge(LinExpr::var(x), LinExpr::constant(10)));
    s.assert_constraint(Constraint::le(LinExpr::var(x), LinExpr::constant(3)));
    assert!(s.check().is_unsat());
    s.pop();
    s.assert_constraint(Constraint::le(LinExpr::var(x), LinExpr::constant(3)));
    assert!(s.check().is_sat(), "popped conflict must not persist");
}
