//! Property-based validation of `Rat`'s machine-word fast path against
//! a pure-`i128` reference implementation.
//!
//! `Rat` keeps an `i64`-pair small representation with overflow-checked
//! promotion to `i128`; these tests pin the algebraic laws across the
//! promotion boundary: results must be identical to naive reduced
//! `i128` arithmetic whenever the latter doesn't overflow, ordering
//! must match cross-multiplication, and every result must stay
//! canonical (coprime, positive denominator) — the invariant the
//! derived `Eq`/`Hash` rely on.

use holistic_lia::Rat;
use proptest::prelude::*;

/// Euclidean gcd on magnitudes (inputs here never reach `i128::MIN`).
fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// The reference: reduced `i128` rationals with checked arithmetic and
/// no machine-word fast path. `None` = the naive computation overflows
/// (the fast path may still succeed there, so such cases are skipped
/// rather than asserted).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct RefRat {
    n: i128,
    d: i128,
}

impl RefRat {
    fn new(n: i128, d: i128) -> Option<RefRat> {
        if d == 0 {
            return None;
        }
        let g = gcd(n, d);
        let (mut n, mut d) = if g == 0 { (0, 1) } else { (n / g, d / g) };
        if d < 0 {
            n = n.checked_neg()?;
            d = d.checked_neg()?;
        }
        Some(RefRat { n, d })
    }

    fn add(self, o: RefRat) -> Option<RefRat> {
        let n = self
            .n
            .checked_mul(o.d)?
            .checked_add(o.n.checked_mul(self.d)?)?;
        RefRat::new(n, self.d.checked_mul(o.d)?)
    }

    fn mul(self, o: RefRat) -> Option<RefRat> {
        RefRat::new(self.n.checked_mul(o.n)?, self.d.checked_mul(o.d)?)
    }

    fn cmp(self, o: RefRat) -> Option<std::cmp::Ordering> {
        // Denominators are positive, so cross-multiplication preserves
        // order.
        Some(self.n.checked_mul(o.d)?.cmp(&o.n.checked_mul(self.d)?))
    }
}

/// Integers that exercise every representation regime: tiny values that
/// stay machine-word, values straddling the `i64::MAX` promotion
/// boundary, and genuinely wide products of word-sized factors.
fn interesting() -> impl Strategy<Value = i128> {
    (0u8..=3, -6i64..=6, 1i64..=7).prop_map(|(kind, off, scale)| match kind {
        0 => off as i128,
        1 => i64::MAX as i128 + off as i128,
        2 => (i64::MAX as i128 - off.unsigned_abs() as i128) * scale as i128,
        _ => off as i128 * 1_000_003 * scale as i128,
    })
}

/// A `(Rat, RefRat)` pair built from the same fraction; denominators
/// are kept nonzero by construction.
fn pair() -> impl Strategy<Value = (Rat, RefRat)> {
    (interesting(), interesting()).prop_map(|(n, d)| {
        let d = if d == 0 { 1 } else { d };
        (Rat::new(n, d), RefRat::new(n, d).expect("nonzero den"))
    })
}

/// `Rat` results must be canonical: coprime, positive denominator.
fn assert_canonical(x: Rat) {
    assert!(x.denom() > 0, "denominator not positive: {x:?}");
    assert!(
        gcd(x.numer(), x.denom()) == 1,
        "not reduced: {}/{}",
        x.numer(),
        x.denom()
    );
}

fn assert_agrees(x: Rat, r: RefRat) {
    assert_eq!((x.numer(), x.denom()), (r.n, r.d), "fast path diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Construction reduces identically to the reference.
    #[test]
    fn construction_matches_reference(p in pair()) {
        let (x, r) = p;
        assert_canonical(x);
        assert_agrees(x, r);
    }

    /// Addition agrees with the reference whenever the naive `i128`
    /// computation doesn't overflow; the fast path must never be
    /// *wrong*, only more capable.
    #[test]
    fn add_matches_reference(pa in pair(), pb in pair()) {
        let ((a, ra), (b, rb)) = (pa, pb);
        if let Some(rc) = ra.add(rb) {
            let c = a.try_add(b).expect("reference succeeded");
            assert_canonical(c);
            assert_agrees(c, rc);
        }
    }

    /// Multiplication agrees with the reference (same proviso).
    #[test]
    fn mul_matches_reference(pa in pair(), pb in pair()) {
        let ((a, ra), (b, rb)) = (pa, pb);
        if let Some(rc) = ra.mul(rb) {
            let c = a.try_mul(b).expect("reference succeeded");
            assert_canonical(c);
            assert_agrees(c, rc);
        }
    }

    /// Addition is commutative, and associative whenever every
    /// intermediate succeeds.
    #[test]
    fn add_commutative_associative(pa in pair(), pb in pair(), pc in pair()) {
        let ((a, _), (b, _), (c, _)) = (pa, pb, pc);
        prop_assert_eq!(a.try_add(b).ok(), b.try_add(a).ok());
        if let (Ok(ab), Ok(bc)) = (a.try_add(b), b.try_add(c)) {
            if let (Ok(l), Ok(r)) = (ab.try_add(c), a.try_add(bc)) {
                prop_assert_eq!(l, r);
            }
        }
    }

    /// Multiplication is commutative and associative (same proviso).
    #[test]
    fn mul_commutative_associative(pa in pair(), pb in pair(), pc in pair()) {
        let ((a, _), (b, _), (c, _)) = (pa, pb, pc);
        prop_assert_eq!(a.try_mul(b).ok(), b.try_mul(a).ok());
        if let (Ok(ab), Ok(bc)) = (a.try_mul(b), b.try_mul(c)) {
            if let (Ok(l), Ok(r)) = (ab.try_mul(c), a.try_mul(bc)) {
                prop_assert_eq!(l, r);
            }
        }
    }

    /// Multiplication distributes over addition when everything fits.
    #[test]
    fn mul_distributes_over_add(pa in pair(), pb in pair(), pc in pair()) {
        let ((a, _), (b, _), (c, _)) = (pa, pb, pc);
        let lhs = b.try_add(c).and_then(|s| a.try_mul(s));
        let rhs = a
            .try_mul(b)
            .and_then(|ab| a.try_mul(c).and_then(|ac| ab.try_add(ac)));
        if let (Ok(l), Ok(r)) = (lhs, rhs) {
            prop_assert_eq!(l, r);
        }
    }

    /// Subtraction is addition of the negation.
    #[test]
    fn sub_is_add_neg(pa in pair(), pb in pair()) {
        let ((a, _), (b, _)) = (pa, pb);
        if let (Ok(neg_b), Ok(d)) = (Rat::ZERO.try_sub(b), a.try_sub(b)) {
            if let Ok(s) = a.try_add(neg_b) {
                prop_assert_eq!(d, s);
            }
        }
    }

    /// Ordering agrees with cross-multiplication and with equality.
    #[test]
    fn ordering_matches_reference(pa in pair(), pb in pair()) {
        let ((a, ra), (b, rb)) = (pa, pb);
        if let Some(ord) = ra.cmp(rb) {
            prop_assert_eq!(a.cmp(&b), ord);
            prop_assert_eq!(a == b, ord == std::cmp::Ordering::Equal);
        }
        // Total-order sanity regardless of reference overflow.
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        prop_assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    /// Values near the promotion boundary roundtrip through arithmetic:
    /// `(x + 1) - 1 == x` even at `i64::MAX`.
    #[test]
    fn promotion_boundary_roundtrip(off in -4i64..=4, d in 1i64..=9) {
        let x = Rat::new(i64::MAX as i128 + off as i128, d as i128);
        let one = Rat::ONE;
        let y = x.try_add(one).and_then(|v| v.try_sub(one)).expect("within i128");
        prop_assert_eq!(x, y);
        assert_canonical(y);
    }
}
