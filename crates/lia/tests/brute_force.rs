//! Property-based validation of the LIA solver against brute-force
//! enumeration over small bounded domains.

use holistic_lia::{Constraint, Formula, LinExpr, Rat, Solver, Var};
use proptest::prelude::*;

const DOMAIN: i64 = 4;
const NUM_VARS: usize = 3;

#[derive(Clone, Debug)]
struct RawConstraint {
    coeffs: [i64; NUM_VARS],
    constant: i64,
    rel: u8, // 0 <=, 1 >=, 2 ==
}

impl RawConstraint {
    fn holds(&self, assignment: &[i64; NUM_VARS]) -> bool {
        let lhs: i64 = self
            .coeffs
            .iter()
            .zip(assignment)
            .map(|(c, v)| c * v)
            .sum::<i64>()
            + self.constant;
        match self.rel {
            0 => lhs <= 0,
            1 => lhs >= 0,
            _ => lhs == 0,
        }
    }

    fn build(&self, vars: &[Var]) -> Constraint {
        let mut e = LinExpr::constant(self.constant as i128);
        for (i, &c) in self.coeffs.iter().enumerate() {
            e.add_term(vars[i], Rat::from(c));
        }
        match self.rel {
            0 => Constraint::le(e, LinExpr::zero()),
            1 => Constraint::ge(e, LinExpr::zero()),
            _ => Constraint::eq(e, LinExpr::zero()),
        }
    }
}

fn raw_constraint() -> impl Strategy<Value = RawConstraint> {
    (prop::array::uniform3(-3i64..=3), -8i64..=8, 0u8..=2).prop_map(|(coeffs, constant, rel)| {
        RawConstraint {
            coeffs,
            constant,
            rel,
        }
    })
}

/// Brute-force satisfiability over the bounded domain.
fn brute_force_sat(cs: &[RawConstraint]) -> bool {
    let mut a = [0i64; NUM_VARS];
    for x in 0..=DOMAIN {
        for y in 0..=DOMAIN {
            for z in 0..=DOMAIN {
                a = [x, y, z];
                if cs.iter().all(|c| c.holds(&a)) {
                    return true;
                }
            }
        }
    }
    let _ = a;
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// With explicit domain bounds asserted, solver and brute force
    /// agree exactly.
    #[test]
    fn conjunctions_agree_with_brute_force(cs in prop::collection::vec(raw_constraint(), 1..5)) {
        let mut solver = Solver::new();
        let vars: Vec<Var> = (0..NUM_VARS)
            .map(|i| solver.new_nonneg_var(format!("v{i}")))
            .collect();
        for &v in &vars {
            solver.assert_constraint(Constraint::le(
                LinExpr::var(v),
                LinExpr::constant(DOMAIN as i128),
            ));
        }
        for c in &cs {
            solver.assert_constraint(c.build(&vars));
        }
        let result = solver.check();
        prop_assert!(!matches!(result, holistic_lia::SatResult::Unknown(_)));
        prop_assert_eq!(result.is_sat(), brute_force_sat(&cs));
        // Models must actually satisfy everything.
        if let Some(m) = result.model() {
            let a = [m.value(vars[0]) as i64, m.value(vars[1]) as i64, m.value(vars[2]) as i64];
            for c in &cs {
                prop_assert!(c.holds(&a), "model {:?} violates {:?}", a, c);
            }
        }
    }

    /// Disjunctions: (A ∨ B) ∧ rest agrees with brute force.
    #[test]
    fn disjunctions_agree_with_brute_force(
        a in raw_constraint(),
        b in raw_constraint(),
        rest in prop::collection::vec(raw_constraint(), 0..3),
    ) {
        let mut solver = Solver::new();
        let vars: Vec<Var> = (0..NUM_VARS)
            .map(|i| solver.new_nonneg_var(format!("v{i}")))
            .collect();
        for &v in &vars {
            solver.assert_constraint(Constraint::le(
                LinExpr::var(v),
                LinExpr::constant(DOMAIN as i128),
            ));
        }
        solver.assert(Formula::or([
            Formula::atom(a.build(&vars)),
            Formula::atom(b.build(&vars)),
        ]));
        for c in &rest {
            solver.assert_constraint(c.build(&vars));
        }
        let expected = {
            let mut found = false;
            for x in 0..=DOMAIN {
                for y in 0..=DOMAIN {
                    for z in 0..=DOMAIN {
                        let asg = [x, y, z];
                        if (a.holds(&asg) || b.holds(&asg)) && rest.iter().all(|c| c.holds(&asg)) {
                            found = true;
                        }
                    }
                }
            }
            found
        };
        prop_assert_eq!(solver.check().is_sat(), expected);
    }

    /// Negation round-trips: c and ¬c partition every assignment.
    #[test]
    fn negation_partitions(c in raw_constraint()) {
        let mut solver = Solver::new();
        let vars: Vec<Var> = (0..NUM_VARS)
            .map(|i| solver.new_nonneg_var(format!("v{i}")))
            .collect();
        let built = c.build(&vars);
        for x in 0..=2 {
            for y in 0..=2 {
                for z in 0..=2 {
                    let asg = [x, y, z];
                    let direct = c.holds(&asg);
                    let via_negate = !built
                        .negate()
                        .iter()
                        .any(|n| n.eval(|v| Rat::from(asg[v.index()] as i128)));
                    prop_assert_eq!(direct, via_negate, "at {:?}", asg);
                }
            }
        }
    }
}
