//! Property-based validation of UNSAT-core extraction.
//!
//! For randomly generated small constraint systems that come out
//! `Unsat`, every core returned by `Solver::unsat_core` must be
//!
//! 1. **infeasible on its own**: re-asserting exactly the core members
//!    (over the same non-negative variables) in a fresh solver yields
//!    `Unsat`, and
//! 2. **irreducible**: dropping any single member makes the remaining
//!    subset feasible — deletion-based minimization left nothing
//!    removable.
//!
//! Coefficients and bounds are kept small so the solver always reaches
//! a definite verdict; an `Unknown` from a reference solve (never
//! observed in practice) skips the case rather than failing it.

use std::collections::HashMap;

use holistic_lia::{AssertId, Constraint, LinExpr, Rat, Solver, Var};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct RawConstraint {
    /// `(var_index, coeff)` pairs; indices into the test's variable set.
    terms: Vec<(usize, i64)>,
    rhs: i64,
    /// 0 = Le, 1 = Ge, 2 = Eq.
    rel: u8,
}

fn raw_constraint(num_vars: usize) -> impl Strategy<Value = RawConstraint> {
    let term = (0..num_vars, -4i64..=4);
    (proptest::collection::vec(term, 1..=3), -10i64..=10, 0u8..3).prop_map(|(terms, rhs, rel)| {
        RawConstraint {
            // Zero coefficients would make a term vanish; snap them to 1.
            terms: terms
                .into_iter()
                .map(|(i, k)| (i, if k == 0 { 1 } else { k }))
                .collect(),
            rhs,
            rel,
        }
    })
}

fn build(c: &RawConstraint, vars: &[Var]) -> Constraint {
    let mut lhs = LinExpr::zero();
    for &(i, k) in &c.terms {
        lhs.add_term(vars[i], Rat::from(k));
    }
    let rhs = LinExpr::constant(c.rhs);
    match c.rel {
        0 => Constraint::le(lhs, rhs),
        1 => Constraint::ge(lhs, rhs),
        _ => Constraint::eq(lhs, rhs),
    }
}

/// Asserts the given subset of constraints in a fresh solver (all
/// variables non-negative, mirroring the original session) and checks
/// it. Returns `None` on an indefinite verdict.
fn subset_verdict(subset: &[&RawConstraint], num_vars: usize) -> Option<bool> {
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..num_vars)
        .map(|i| s.new_nonneg_var(format!("x{i}")))
        .collect();
    for c in subset {
        s.assert_constraint(build(c, &vars));
    }
    let r = s.check();
    if r.is_unsat() {
        Some(false)
    } else if r.is_sat() {
        Some(true)
    } else {
        None
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cores_are_infeasible_and_irreducible(
        raws in proptest::collection::vec(raw_constraint(4), 2..=9),
    ) {
        const NUM_VARS: usize = 4;
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..NUM_VARS)
            .map(|i| s.new_nonneg_var(format!("x{i}")))
            .collect();
        let mut by_id: HashMap<AssertId, &RawConstraint> = HashMap::new();
        for raw in &raws {
            let id = s.assert_constraint_tracked(build(raw, &vars));
            by_id.insert(id, raw);
        }
        if !s.check().is_unsat() {
            return Ok(());
        }
        let Some(core) = s.unsat_core() else {
            // No certificate isolated (e.g. integrality-driven unsat);
            // that is a permitted outcome, not a soundness violation.
            return Ok(());
        };
        prop_assert!(!core.is_empty(), "a core for an unsat system cannot be empty");
        let members: Vec<&RawConstraint> = core.iter().map(|id| by_id[id]).collect();

        // (1) The core alone must be infeasible.
        prop_assert_eq!(
            subset_verdict(&members, NUM_VARS),
            Some(false),
            "core must be infeasible on its own: {:?}",
            members
        );

        // (2) Every member must be necessary.
        for drop in 0..members.len() {
            let without: Vec<&RawConstraint> = members
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != drop)
                .map(|(_, c)| *c)
                .collect();
            if let Some(verdict) = subset_verdict(&without, NUM_VARS) {
                prop_assert!(
                    verdict,
                    "dropping member {} must make the subset feasible: {:?}",
                    drop,
                    members
                );
            }
        }
    }

    #[test]
    fn core_extraction_never_changes_the_verdict(
        raws in proptest::collection::vec(raw_constraint(3), 1..=6),
    ) {
        const NUM_VARS: usize = 3;
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..NUM_VARS)
            .map(|i| s.new_nonneg_var(format!("x{i}")))
            .collect();
        for raw in &raws {
            s.assert_constraint_tracked(build(raw, &vars));
        }
        let before = s.check().is_unsat();
        if before {
            let _ = s.unsat_core();
        }
        // Core extraction works on scratch solvers; the main session's
        // verdict must be bit-for-bit reproducible afterwards.
        prop_assert_eq!(s.check().is_unsat(), before);
    }
}
