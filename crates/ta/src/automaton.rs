//! Threshold automata.

use std::collections::{HashMap, HashSet};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::expr::{AtomicGuard, Guard, LocationId, ParamConstraint, ParamExpr, RuleId, VarId};

/// A location (local state of a process).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Location {
    /// Human-readable name (e.g. `V0`, `CB1`).
    pub name: String,
    /// Whether processes may start here.
    pub initial: bool,
    /// Whether this is a final location (used by liveness specifications
    /// and by round-switch construction).
    pub is_final: bool,
}

/// A guarded rule `from → to` with shared-variable increments.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Rule {
    /// Rule name (e.g. `r3`).
    pub name: String,
    /// Source location.
    pub from: LocationId,
    /// Destination location.
    pub to: LocationId,
    /// Threshold guard (conjunction; empty = `true`).
    pub guard: Guard,
    /// Increments `(variable, amount)` applied when the rule fires;
    /// amounts are strictly positive.
    pub update: Vec<(VarId, u64)>,
    /// Whether this is a round-switch rule (connects one round's final
    /// locations to the next round's initial locations in an unrolled
    /// multi-round automaton).
    pub round_switch: bool,
}

impl Rule {
    /// Whether the rule is a self-loop (`from == to`).
    pub fn is_self_loop(&self) -> bool {
        self.from == self.to
    }
}

/// Errors produced by [`ThresholdAutomaton::validate`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ValidationError {
    /// No location is marked initial.
    NoInitialLocation,
    /// A rule references a location out of range.
    BadLocation(RuleId),
    /// A rule updates a variable out of range.
    BadVariable(RuleId),
    /// A rule's update increment is zero.
    ZeroIncrement(RuleId),
    /// A self-loop carries an update, which would let a single process
    /// pump a shared variable unboundedly and break the monotone-context
    /// argument.
    SelfLoopWithUpdate(RuleId),
    /// A guard has a negative coefficient on a shared variable, breaking
    /// rise/fall monotonicity.
    NonMonotoneGuard(RuleId),
    /// Two locations share a name.
    DuplicateLocationName(String),
    /// Two shared variables share a name.
    DuplicateVariableName(String),
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::NoInitialLocation => write!(f, "no initial location"),
            ValidationError::BadLocation(r) => write!(f, "rule {} uses unknown location", r.0),
            ValidationError::BadVariable(r) => write!(f, "rule {} uses unknown variable", r.0),
            ValidationError::ZeroIncrement(r) => write!(f, "rule {} has a zero increment", r.0),
            ValidationError::SelfLoopWithUpdate(r) => {
                write!(f, "rule {} is a self-loop with an update", r.0)
            }
            ValidationError::NonMonotoneGuard(r) => write!(
                f,
                "rule {} has a guard with a negative shared-variable coefficient",
                r.0
            ),
            ValidationError::DuplicateLocationName(n) => {
                write!(f, "duplicate location name {n:?}")
            }
            ValidationError::DuplicateVariableName(n) => {
                write!(f, "duplicate shared-variable name {n:?}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// A threshold automaton `⟨L, I, Γ, Π, R, RC⟩` in the sense of Konnov,
/// Veith & Widder, restricted to increment-only updates (the class used
/// throughout the paper).
///
/// Build one with [`TaBuilder`](crate::TaBuilder) or parse the text
/// format with [`parse_ta`](crate::parse_ta).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct ThresholdAutomaton {
    /// Automaton name.
    pub name: String,
    /// Locations, indexed by [`LocationId`].
    pub locations: Vec<Location>,
    /// Shared-variable names, indexed by [`VarId`].
    pub variables: Vec<String>,
    /// Parameter names, indexed by `ParamId`.
    pub params: Vec<String>,
    /// Rules, indexed by [`RuleId`].
    pub rules: Vec<Rule>,
    /// The resilience condition, a conjunction of parameter constraints
    /// (e.g. `n > 3t ∧ t ≥ f ∧ f ≥ 0`).
    pub resilience: Vec<ParamConstraint>,
    /// The number of modelled processes as a parameter expression
    /// (typically `n − f`: only correct processes are modelled
    /// explicitly; Byzantine influence is folded into the guards).
    pub size_expr: ParamExpr,
}

impl ThresholdAutomaton {
    /// Locations marked initial.
    pub fn initial_locations(&self) -> Vec<LocationId> {
        self.locations
            .iter()
            .enumerate()
            .filter(|(_, l)| l.initial)
            .map(|(i, _)| LocationId(i))
            .collect()
    }

    /// Locations marked final.
    pub fn final_locations(&self) -> Vec<LocationId> {
        self.locations
            .iter()
            .enumerate()
            .filter(|(_, l)| l.is_final)
            .map(|(i, _)| LocationId(i))
            .collect()
    }

    /// Looks a location up by name.
    pub fn location_by_name(&self, name: &str) -> Option<LocationId> {
        self.locations
            .iter()
            .position(|l| l.name == name)
            .map(LocationId)
    }

    /// Looks a shared variable up by name.
    pub fn variable_by_name(&self, name: &str) -> Option<VarId> {
        self.variables.iter().position(|v| v == name).map(VarId)
    }

    /// Looks a parameter up by name.
    pub fn param_by_name(&self, name: &str) -> Option<crate::ParamId> {
        self.params
            .iter()
            .position(|p| p == name)
            .map(crate::ParamId)
    }

    /// Looks a rule up by name.
    pub fn rule_by_name(&self, name: &str) -> Option<RuleId> {
        self.rules.iter().position(|r| r.name == name).map(RuleId)
    }

    /// The name of a location.
    pub fn location_name(&self, l: LocationId) -> &str {
        &self.locations[l.0].name
    }

    /// Checks structural well-formedness. All constructors in this crate
    /// produce valid automata; this is the safety net for hand-rolled or
    /// parsed ones.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidationError`] found.
    pub fn validate(&self) -> Result<(), ValidationError> {
        if !self.locations.iter().any(|l| l.initial) {
            return Err(ValidationError::NoInitialLocation);
        }
        let mut names = HashSet::new();
        for l in &self.locations {
            if !names.insert(l.name.as_str()) {
                return Err(ValidationError::DuplicateLocationName(l.name.clone()));
            }
        }
        let mut vnames = HashSet::new();
        for v in &self.variables {
            if !vnames.insert(v.as_str()) {
                return Err(ValidationError::DuplicateVariableName(v.clone()));
            }
        }
        for (i, r) in self.rules.iter().enumerate() {
            let id = RuleId(i);
            if r.from.0 >= self.locations.len() || r.to.0 >= self.locations.len() {
                return Err(ValidationError::BadLocation(id));
            }
            for &(v, amount) in &r.update {
                if v.0 >= self.variables.len() {
                    return Err(ValidationError::BadVariable(id));
                }
                if amount == 0 {
                    return Err(ValidationError::ZeroIncrement(id));
                }
            }
            if r.is_self_loop() && !r.update.is_empty() {
                return Err(ValidationError::SelfLoopWithUpdate(id));
            }
            for atom in r.guard.atoms() {
                if !atom.lhs.is_nonneg() {
                    return Err(ValidationError::NonMonotoneGuard(id));
                }
                for (v, _) in atom.lhs.iter() {
                    if v.0 >= self.variables.len() {
                        return Err(ValidationError::BadVariable(id));
                    }
                }
            }
        }
        Ok(())
    }

    /// Whether the automaton, ignoring self-loops, is a directed acyclic
    /// graph over locations. All automata in the paper are (§3.1); the
    /// checker requires it.
    pub fn is_dag(&self) -> bool {
        self.topological_locations().is_some()
    }

    /// A topological order of locations w.r.t. non-self-loop rules, if
    /// the automaton is a DAG.
    pub fn topological_locations(&self) -> Option<Vec<LocationId>> {
        let n = self.locations.len();
        let mut indegree = vec![0usize; n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for r in &self.rules {
            if r.is_self_loop() {
                continue;
            }
            succs[r.from.0].push(r.to.0);
            indegree[r.to.0] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            order.push(LocationId(i));
            for &j in &succs[i] {
                indegree[j] -= 1;
                if indegree[j] == 0 {
                    queue.push(j);
                }
            }
        }
        if order.len() == n {
            Some(order)
        } else {
            None
        }
    }

    /// Rules sorted so that a rule whose source location comes earlier in
    /// the topological order appears earlier; self-loops are excluded.
    /// This is the firing order used by the schema encoding.
    ///
    /// Returns `None` if the automaton is not a DAG.
    pub fn topological_rules(&self) -> Option<Vec<RuleId>> {
        let order = self.topological_locations()?;
        let mut position = vec![0usize; self.locations.len()];
        for (idx, l) in order.iter().enumerate() {
            position[l.0] = idx;
        }
        let mut rules: Vec<RuleId> = (0..self.rules.len())
            .map(RuleId)
            .filter(|&r| !self.rules[r.0].is_self_loop())
            .collect();
        rules.sort_by_key(|&r| (position[self.rules[r.0].from.0], r.0));
        Some(rules)
    }

    /// The distinct atomic guards appearing in rules, in first-occurrence
    /// order. This is the "unique guards" count of the paper's Table 2.
    pub fn unique_guards(&self) -> Vec<AtomicGuard> {
        let mut seen: HashMap<AtomicGuard, ()> = HashMap::new();
        let mut out = Vec::new();
        for r in &self.rules {
            for atom in r.guard.atoms() {
                if seen.insert(atom.clone(), ()).is_none() {
                    out.push(atom.clone());
                }
            }
        }
        out
    }

    /// Rules (by id) that are not self-loops.
    pub fn proper_rules(&self) -> Vec<RuleId> {
        (0..self.rules.len())
            .map(RuleId)
            .filter(|&r| !self.rules[r.0].is_self_loop())
            .collect()
    }

    /// Non-self-loop rules entering `loc`.
    pub fn rules_into(&self, loc: LocationId) -> Vec<RuleId> {
        (0..self.rules.len())
            .map(RuleId)
            .filter(|&r| {
                let rule = &self.rules[r.0];
                rule.to == loc && !rule.is_self_loop()
            })
            .collect()
    }

    /// Non-self-loop rules leaving `loc`.
    pub fn rules_from(&self, loc: LocationId) -> Vec<RuleId> {
        (0..self.rules.len())
            .map(RuleId)
            .filter(|&r| {
                let rule = &self.rules[r.0];
                rule.from == loc && !rule.is_self_loop()
            })
            .collect()
    }

    /// The concrete process count at a parameter valuation
    /// (`size_expr` evaluated).
    pub fn process_count(&self, params: &[i64]) -> i64 {
        self.size_expr.eval(params)
    }

    /// Whether a concrete parameter valuation is admissible: right
    /// arity, every resilience constraint satisfied, and a positive
    /// process count.
    pub fn admits(&self, params: &[i64]) -> bool {
        params.len() == self.params.len()
            && self.resilience.iter().all(|c| c.eval(params))
            && self.process_count(params) > 0
    }

    /// All admissible parameter valuations with every entry in
    /// `0..=bound`, smallest first (ordered by process count, then
    /// lexicographically). This is how explicit-state tools pick the
    /// "small instantiations" they cross-check the parameterized
    /// verdicts on.
    pub fn admissible_valuations(&self, bound: i64) -> Vec<Vec<i64>> {
        let mut out = Vec::new();
        let mut current = vec![0i64; self.params.len()];
        self.enumerate_valuations(0, bound, &mut current, &mut out);
        out.sort_by_key(|v| (self.process_count(v), v.clone()));
        out
    }

    fn enumerate_valuations(
        &self,
        idx: usize,
        bound: i64,
        current: &mut Vec<i64>,
        out: &mut Vec<Vec<i64>>,
    ) {
        if idx == self.params.len() {
            if self.admits(current) {
                out.push(current.clone());
            }
            return;
        }
        for v in 0..=bound {
            current[idx] = v;
            self.enumerate_valuations(idx + 1, bound, current, out);
        }
        current[idx] = 0;
    }

    /// Size summary `(unique guards, locations, rules)` as reported in
    /// the paper's Table 2.
    pub fn size_summary(&self) -> (usize, usize, usize) {
        (
            self.unique_guards().len(),
            self.locations.len(),
            self.rules.len(),
        )
    }
}

/// A fluent builder for [`ThresholdAutomaton`].
///
/// # Examples
///
/// ```
/// use holistic_ta::{AtomicGuard, Guard, ParamCmp, TaBuilder};
///
/// let mut b = TaBuilder::new("echo");
/// let n = b.param("n");
/// let t = b.param("t");
/// let f = b.param("f");
/// let sent = b.shared("sent");
/// let v0 = b.initial_location("V0");
/// let done = b.final_location("DONE");
/// b.resilience_gt(n, t, 3);
/// b.size_n_minus_f(n, f);
/// b.rule("r1", v0, done, Guard::always()).inc(sent, 1);
/// let ta = b.build().unwrap();
/// assert_eq!(ta.size_summary(), (0, 2, 1));
/// # let _ = (t, AtomicGuard::ge as fn(_, _) -> _, ParamCmp::Gt);
/// ```
#[derive(Debug)]
pub struct TaBuilder {
    ta: ThresholdAutomaton,
}

impl TaBuilder {
    /// Starts a new automaton.
    pub fn new(name: impl Into<String>) -> TaBuilder {
        TaBuilder {
            ta: ThresholdAutomaton {
                name: name.into(),
                locations: Vec::new(),
                variables: Vec::new(),
                params: Vec::new(),
                rules: Vec::new(),
                resilience: Vec::new(),
                size_expr: ParamExpr::constant(0),
            },
        }
    }

    /// Declares a parameter.
    pub fn param(&mut self, name: impl Into<String>) -> crate::ParamId {
        self.ta.params.push(name.into());
        crate::ParamId(self.ta.params.len() - 1)
    }

    /// Declares a shared variable.
    pub fn shared(&mut self, name: impl Into<String>) -> VarId {
        self.ta.variables.push(name.into());
        VarId(self.ta.variables.len() - 1)
    }

    /// Declares a non-initial, non-final location.
    pub fn location(&mut self, name: impl Into<String>) -> LocationId {
        self.add_location(name, false, false)
    }

    /// Declares an initial location.
    pub fn initial_location(&mut self, name: impl Into<String>) -> LocationId {
        self.add_location(name, true, false)
    }

    /// Declares a final location.
    pub fn final_location(&mut self, name: impl Into<String>) -> LocationId {
        self.add_location(name, false, true)
    }

    fn add_location(
        &mut self,
        name: impl Into<String>,
        initial: bool,
        is_final: bool,
    ) -> LocationId {
        self.ta.locations.push(Location {
            name: name.into(),
            initial,
            is_final,
        });
        LocationId(self.ta.locations.len() - 1)
    }

    /// Looks up an already-declared location by name.
    pub fn peek_location(&self, name: &str) -> Option<LocationId> {
        self.ta
            .locations
            .iter()
            .position(|l| l.name == name)
            .map(LocationId)
    }

    /// Adds a rule and returns a handle for attaching updates.
    pub fn rule(
        &mut self,
        name: impl Into<String>,
        from: LocationId,
        to: LocationId,
        guard: Guard,
    ) -> RuleHandle<'_> {
        self.ta.rules.push(Rule {
            name: name.into(),
            from,
            to,
            guard,
            update: Vec::new(),
            round_switch: false,
        });
        let idx = self.ta.rules.len() - 1;
        RuleHandle { builder: self, idx }
    }

    /// Adds a guard-true self-loop on `loc` (stuttering), named
    /// `sl_<location>`.
    pub fn self_loop(&mut self, loc: LocationId) {
        let name = format!("sl_{}", self.ta.locations[loc.0].name);
        self.rule(name, loc, loc, Guard::always());
    }

    /// Adds an arbitrary resilience constraint.
    pub fn resilience(&mut self, c: ParamConstraint) -> &mut Self {
        self.ta.resilience.push(c);
        self
    }

    /// Convenience: `p > k·q`.
    pub fn resilience_gt(&mut self, p: crate::ParamId, q: crate::ParamId, k: i64) -> &mut Self {
        self.resilience(ParamConstraint::new(
            ParamExpr::param(p),
            crate::ParamCmp::Gt,
            ParamExpr::term(q, k),
        ))
    }

    /// Convenience: `p >= q`.
    pub fn resilience_ge(&mut self, p: crate::ParamId, q: crate::ParamId) -> &mut Self {
        self.resilience(ParamConstraint::new(
            ParamExpr::param(p),
            crate::ParamCmp::Ge,
            ParamExpr::param(q),
        ))
    }

    /// Convenience: `p >= k`.
    pub fn resilience_ge_const(&mut self, p: crate::ParamId, k: i64) -> &mut Self {
        self.resilience(ParamConstraint::new(
            ParamExpr::param(p),
            crate::ParamCmp::Ge,
            ParamExpr::constant(k),
        ))
    }

    /// Sets the process-count expression.
    pub fn size(&mut self, e: ParamExpr) -> &mut Self {
        self.ta.size_expr = e;
        self
    }

    /// Convenience for the ubiquitous `n − f` process count.
    pub fn size_n_minus_f(&mut self, n: crate::ParamId, f: crate::ParamId) -> &mut Self {
        let mut e = ParamExpr::param(n);
        e.add_term(f, -1);
        self.size(e)
    }

    /// Finishes and validates the automaton.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] if the automaton is malformed.
    pub fn build(self) -> Result<ThresholdAutomaton, ValidationError> {
        self.ta.validate()?;
        Ok(self.ta)
    }
}

/// Handle returned by [`TaBuilder::rule`] for attaching updates.
#[derive(Debug)]
pub struct RuleHandle<'a> {
    builder: &'a mut TaBuilder,
    idx: usize,
}

impl RuleHandle<'_> {
    /// Adds an increment `var += amount` to the rule.
    pub fn inc(self, var: VarId, amount: u64) -> Self {
        let builder = self.builder;
        let idx = self.idx;
        builder.ta.rules[idx].update.push((var, amount));
        RuleHandle { builder, idx }
    }

    /// Marks the rule as a round switch.
    pub fn round_switch(self) -> Self {
        let builder = self.builder;
        let idx = self.idx;
        builder.ta.rules[idx].round_switch = true;
        RuleHandle { builder, idx }
    }

    /// The rule's id.
    pub fn id(&self) -> RuleId {
        RuleId(self.idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::VarExpr;

    fn diamond() -> ThresholdAutomaton {
        // V -> A -> D, V -> B -> D with simple guards.
        let mut b = TaBuilder::new("diamond");
        let n = b.param("n");
        let f = b.param("f");
        let x = b.shared("x");
        let v = b.initial_location("V");
        let a = b.location("A");
        let bb = b.location("B");
        let d = b.final_location("D");
        b.size_n_minus_f(n, f);
        b.rule("r1", v, a, Guard::always()).inc(x, 1);
        b.rule("r2", v, bb, Guard::always());
        b.rule(
            "r3",
            a,
            d,
            Guard::atom(AtomicGuard::ge(VarExpr::var(x), ParamExpr::constant(1))),
        );
        b.rule(
            "r4",
            bb,
            d,
            Guard::atom(AtomicGuard::ge(VarExpr::var(x), ParamExpr::constant(1))),
        );
        b.self_loop(d);
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_valid_automaton() {
        let ta = diamond();
        assert_eq!(ta.locations.len(), 4);
        assert_eq!(ta.rules.len(), 5);
        assert_eq!(ta.initial_locations(), vec![LocationId(0)]);
        assert_eq!(ta.final_locations(), vec![LocationId(3)]);
    }

    #[test]
    fn lookup_by_name() {
        let ta = diamond();
        assert_eq!(ta.location_by_name("A"), Some(LocationId(1)));
        assert_eq!(ta.location_by_name("nope"), None);
        assert_eq!(ta.variable_by_name("x"), Some(VarId(0)));
        assert_eq!(ta.rule_by_name("r3"), Some(RuleId(2)));
    }

    #[test]
    fn dag_detection() {
        let ta = diamond();
        assert!(ta.is_dag());
        let order = ta.topological_locations().unwrap();
        let pos = |name: &str| {
            order
                .iter()
                .position(|&l| ta.location_name(l) == name)
                .unwrap()
        };
        assert!(pos("V") < pos("A"));
        assert!(pos("V") < pos("B"));
        assert!(pos("A") < pos("D"));
        assert!(pos("B") < pos("D"));
    }

    #[test]
    fn self_loops_do_not_break_dag() {
        let ta = diamond();
        assert!(ta.is_dag());
    }

    #[test]
    fn cycle_is_rejected_as_dag() {
        let mut b = TaBuilder::new("cycle");
        let n = b.param("n");
        let f = b.param("f");
        b.size_n_minus_f(n, f);
        let a = b.initial_location("A");
        let c = b.location("C");
        b.rule("r1", a, c, Guard::always());
        b.rule("r2", c, a, Guard::always());
        let ta = b.build().unwrap();
        assert!(!ta.is_dag());
        assert!(ta.topological_rules().is_none());
    }

    #[test]
    fn topological_rules_respect_source_order() {
        let ta = diamond();
        let rules = ta.topological_rules().unwrap();
        assert_eq!(rules.len(), 4); // self-loop excluded
        let pos = |name: &str| {
            rules
                .iter()
                .position(|&r| ta.rules[r.0].name == name)
                .unwrap()
        };
        assert!(pos("r1") < pos("r3"));
        assert!(pos("r2") < pos("r4"));
    }

    #[test]
    fn unique_guards_deduplicate() {
        let ta = diamond();
        assert_eq!(ta.unique_guards().len(), 1); // r3 and r4 share a guard
        assert_eq!(ta.size_summary(), (1, 4, 5));
    }

    #[test]
    fn validation_rejects_self_loop_with_update() {
        let mut b = TaBuilder::new("bad");
        let n = b.param("n");
        let f = b.param("f");
        b.size_n_minus_f(n, f);
        let x = b.shared("x");
        let v = b.initial_location("V");
        b.rule("r1", v, v, Guard::always()).inc(x, 1);
        assert_eq!(
            b.build().unwrap_err(),
            ValidationError::SelfLoopWithUpdate(RuleId(0))
        );
    }

    #[test]
    fn validation_rejects_non_monotone_guard() {
        let mut b = TaBuilder::new("bad");
        let n = b.param("n");
        let f = b.param("f");
        b.size_n_minus_f(n, f);
        let x = b.shared("x");
        let v = b.initial_location("V");
        let d = b.location("D");
        b.rule(
            "r1",
            v,
            d,
            Guard::atom(AtomicGuard::ge(
                VarExpr::term(x, -1),
                ParamExpr::constant(0),
            )),
        );
        assert_eq!(
            b.build().unwrap_err(),
            ValidationError::NonMonotoneGuard(RuleId(0))
        );
    }

    #[test]
    fn validation_rejects_duplicate_names() {
        let mut b = TaBuilder::new("bad");
        let n = b.param("n");
        let f = b.param("f");
        b.size_n_minus_f(n, f);
        b.initial_location("V");
        b.location("V");
        assert_eq!(
            b.build().unwrap_err(),
            ValidationError::DuplicateLocationName("V".to_owned())
        );
    }

    #[test]
    fn validation_requires_initial_location() {
        let mut b = TaBuilder::new("bad");
        b.location("A");
        assert_eq!(b.build().unwrap_err(), ValidationError::NoInitialLocation);
    }

    #[test]
    fn rules_into_and_from() {
        let ta = diamond();
        let d = ta.location_by_name("D").unwrap();
        assert_eq!(ta.rules_into(d).len(), 2);
        assert_eq!(ta.rules_from(d).len(), 0); // self-loop excluded
        let v = ta.location_by_name("V").unwrap();
        assert_eq!(ta.rules_from(v).len(), 2);
    }
}
