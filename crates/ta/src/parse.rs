//! A text format for threshold automata.
//!
//! The format is inspired by ByMC's input language but trimmed to the
//! increment-only class this crate supports. Example:
//!
//! ```text
//! // Binary value broadcast (paper Fig. 2), excerpt.
//! automaton bv_broadcast {
//!     params n, t, f;
//!     shared b0, b1;
//!     resilience n > 3 * t, t >= f, f >= 0;
//!     processes n - f;
//!
//!     initial V0, V1;
//!     locations B0, B1, B01;
//!     final C0, C1, C01, CB0, CB1;
//!
//!     rule r1: V0 -> B0 when true do b0 += 1;
//!     rule r3: B0 -> C0 when b0 >= 2 * t + 1 - f;
//!     rule r4: B0 -> B01 when b1 >= t + 1 - f do b1 += 1;
//!     selfloop C0, C1, C01, CB0, CB1;
//! }
//! ```
//!
//! * `params` / `shared` declare names; coefficients may be written
//!   `3 * t` or `3t`.
//! * Guards are conjunctions `a && b` of atoms `vars >= params` (rise)
//!   or `vars < params` (fall); `true` is the empty guard.
//! * `rule NAME: FROM -> TO when GUARD [do var += k, …];` — `switch`
//!   instead of `rule` marks a round-switch rule;
//! * `selfloop L, …;` adds guard-true stuttering self-loops.

use std::fmt;

use crate::automaton::{TaBuilder, ThresholdAutomaton, ValidationError};
use crate::expr::{AtomicGuard, Guard, GuardCmp, ParamCmp, ParamConstraint, ParamExpr, VarExpr};

/// A parse failure, with a 1-based line number.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<ValidationError> for ParseError {
    fn from(e: ValidationError) -> ParseError {
        ParseError {
            line: 0,
            message: format!("invalid automaton: {e}"),
        }
    }
}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Ident(String),
    Num(i64),
    LBrace,
    RBrace,
    Colon,
    Semi,
    Comma,
    Arrow,
    Ge,
    Le,
    Lt,
    Gt,
    EqEq,
    Plus,
    Minus,
    Star,
    PlusEq,
    AndAnd,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Num(n) => write!(f, "{n}"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::Colon => write!(f, ":"),
            Tok::Semi => write!(f, ";"),
            Tok::Comma => write!(f, ","),
            Tok::Arrow => write!(f, "->"),
            Tok::Ge => write!(f, ">="),
            Tok::Le => write!(f, "<="),
            Tok::Lt => write!(f, "<"),
            Tok::Gt => write!(f, ">"),
            Tok::EqEq => write!(f, "=="),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::PlusEq => write!(f, "+="),
            Tok::AndAnd => write!(f, "&&"),
        }
    }
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&'/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '{' => {
                out.push((Tok::LBrace, line));
                i += 1;
            }
            '}' => {
                out.push((Tok::RBrace, line));
                i += 1;
            }
            ':' => {
                out.push((Tok::Colon, line));
                i += 1;
            }
            ';' => {
                out.push((Tok::Semi, line));
                i += 1;
            }
            ',' => {
                out.push((Tok::Comma, line));
                i += 1;
            }
            '*' => {
                out.push((Tok::Star, line));
                i += 1;
            }
            '&' if bytes.get(i + 1) == Some(&'&') => {
                out.push((Tok::AndAnd, line));
                i += 2;
            }
            '-' if bytes.get(i + 1) == Some(&'>') => {
                out.push((Tok::Arrow, line));
                i += 2;
            }
            '-' => {
                out.push((Tok::Minus, line));
                i += 1;
            }
            '+' if bytes.get(i + 1) == Some(&'=') => {
                out.push((Tok::PlusEq, line));
                i += 2;
            }
            '+' => {
                out.push((Tok::Plus, line));
                i += 1;
            }
            '>' if bytes.get(i + 1) == Some(&'=') => {
                out.push((Tok::Ge, line));
                i += 2;
            }
            '>' => {
                out.push((Tok::Gt, line));
                i += 1;
            }
            '<' if bytes.get(i + 1) == Some(&'=') => {
                out.push((Tok::Le, line));
                i += 2;
            }
            '<' => {
                out.push((Tok::Lt, line));
                i += 1;
            }
            '=' if bytes.get(i + 1) == Some(&'=') => {
                out.push((Tok::EqEq, line));
                i += 2;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let n = text.parse().map_err(|_| ParseError {
                    line,
                    message: format!("number {text} out of range"),
                })?;
                out.push((Tok::Num(n), line));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_alphanumeric() || bytes[i] == '_' || bytes[i] == '\'')
                {
                    i += 1;
                }
                out.push((Tok::Ident(bytes[start..i].iter().collect()), line));
            }
            other => {
                return Err(ParseError {
                    line,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

/// A parsed linear expression over mixed names, later split into the
/// shared-variable and parameter sides.
#[derive(Default, Debug)]
struct RawExpr {
    terms: Vec<(String, i64)>,
    constant: i64,
}

struct Parser<'a> {
    toks: &'a [(Tok, usize)],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|&(_, l)| l)
            .unwrap_or(0)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn next(&mut self) -> Result<Tok, ParseError> {
        let t = self
            .toks
            .get(self.pos)
            .map(|(t, _)| t.clone())
            .ok_or_else(|| self.error("unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, tok: Tok) -> Result<(), ParseError> {
        let got = self.next()?;
        if got == tok {
            Ok(())
        } else {
            self.pos -= 1;
            Err(self.error(format!("expected `{tok}`, found `{got}`")))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => {
                self.pos -= 1;
                Err(self.error(format!("expected identifier, found `{other}`")))
            }
        }
    }

    fn ident_list(&mut self) -> Result<Vec<String>, ParseError> {
        let mut out = vec![self.ident()?];
        while self.peek() == Some(&Tok::Comma) {
            self.next()?;
            out.push(self.ident()?);
        }
        Ok(out)
    }

    /// Parses `term (('+'|'-') term)*` where
    /// `term := NUM ['*'] IDENT | NUM | IDENT`. Coefficient
    /// juxtaposition (`3t`) only fires when the following identifier is
    /// a *declared* name, so keywords like `do` terminate the
    /// expression.
    fn linear_expr(&mut self, is_name: &dyn Fn(&str) -> bool) -> Result<RawExpr, ParseError> {
        let mut e = RawExpr::default();
        let mut sign = 1i64;
        if self.peek() == Some(&Tok::Minus) {
            self.next()?;
            sign = -1;
        }
        loop {
            match self.next()? {
                Tok::Num(k) => {
                    // Optional `*` then identifier, or juxtaposition with
                    // a declared name.
                    let mut coeff_applied = false;
                    if self.peek() == Some(&Tok::Star) {
                        self.next()?;
                        let name = self.ident()?;
                        e.terms.push((name, sign * k));
                        coeff_applied = true;
                    } else if let Some(Tok::Ident(name)) = self.peek() {
                        if is_name(name) {
                            let name = self.ident()?;
                            e.terms.push((name, sign * k));
                            coeff_applied = true;
                        }
                    }
                    if !coeff_applied {
                        e.constant += sign * k;
                    }
                }
                Tok::Ident(name) => e.terms.push((name, sign)),
                other => {
                    self.pos -= 1;
                    return Err(self.error(format!("expected expression term, found `{other}`")));
                }
            }
            match self.peek() {
                Some(Tok::Plus) => {
                    self.next()?;
                    sign = 1;
                }
                Some(Tok::Minus) => {
                    self.next()?;
                    sign = -1;
                }
                _ => break,
            }
        }
        Ok(e)
    }
}

struct Names {
    params: Vec<String>,
    shared: Vec<String>,
}

impl Names {
    fn split_params(&self, raw: RawExpr, line: usize) -> Result<ParamExpr, ParseError> {
        let mut e = ParamExpr::constant(raw.constant);
        for (name, c) in raw.terms {
            match self.params.iter().position(|p| *p == name) {
                Some(i) => e.add_term(crate::ParamId(i), c),
                None => {
                    return Err(ParseError {
                        line,
                        message: format!("`{name}` is not a parameter"),
                    })
                }
            }
        }
        Ok(e)
    }

    fn split_vars(&self, raw: RawExpr, line: usize) -> Result<VarExpr, ParseError> {
        if raw.constant != 0 {
            return Err(ParseError {
                line,
                message: "shared-variable side of a guard must have no constant".to_owned(),
            });
        }
        let mut e = VarExpr::default();
        for (name, c) in raw.terms {
            match self.shared.iter().position(|v| *v == name) {
                Some(i) => e.add_term(crate::VarId(i), c),
                None => {
                    return Err(ParseError {
                        line,
                        message: format!("`{name}` is not a shared variable"),
                    })
                }
            }
        }
        Ok(e)
    }
}

/// Parses the text format into a validated [`ThresholdAutomaton`].
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax, name-resolution
/// or validation problem, with its line number.
pub fn parse_ta(src: &str) -> Result<ThresholdAutomaton, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks: &toks,
        pos: 0,
    };

    let kw = p.ident()?;
    if kw != "automaton" {
        return Err(p.error("expected `automaton`"));
    }
    let name = p.ident()?;
    p.expect(Tok::LBrace)?;

    let mut builder = TaBuilder::new(name);
    let mut names = Names {
        params: Vec::new(),
        shared: Vec::new(),
    };

    loop {
        match p.peek() {
            Some(Tok::RBrace) => {
                p.next()?;
                break;
            }
            Some(Tok::Ident(_)) => {}
            _ => return Err(p.error("expected a section keyword or `}`")),
        }
        let section = p.ident()?;
        match section.as_str() {
            "params" => {
                for n in p.ident_list()? {
                    names.params.push(n.clone());
                    builder.param(n);
                }
                p.expect(Tok::Semi)?;
            }
            "shared" => {
                for n in p.ident_list()? {
                    names.shared.push(n.clone());
                    builder.shared(n);
                }
                p.expect(Tok::Semi)?;
            }
            "resilience" => loop {
                let line = p.line();
                let is_param = |n: &str| names.params.iter().any(|q| q == n);
                let lhs = names.split_params(p.linear_expr(&is_param)?, line)?;
                let cmp = match p.next()? {
                    Tok::Gt => ParamCmp::Gt,
                    Tok::Ge => ParamCmp::Ge,
                    Tok::EqEq => ParamCmp::Eq,
                    Tok::Le => ParamCmp::Le,
                    Tok::Lt => ParamCmp::Lt,
                    other => {
                        p.pos -= 1;
                        return Err(p.error(format!("expected comparison, found `{other}`")));
                    }
                };
                let line = p.line();
                let rhs = names.split_params(p.linear_expr(&is_param)?, line)?;
                builder.resilience(ParamConstraint::new(lhs, cmp, rhs));
                match p.next()? {
                    Tok::Comma => continue,
                    Tok::Semi => break,
                    other => {
                        p.pos -= 1;
                        return Err(p.error(format!("expected `,` or `;`, found `{other}`")));
                    }
                }
            },
            "processes" => {
                let line = p.line();
                let is_param = |n: &str| names.params.iter().any(|q| q == n);
                let e = names.split_params(p.linear_expr(&is_param)?, line)?;
                builder.size(e);
                p.expect(Tok::Semi)?;
            }
            "initial" => {
                for n in p.ident_list()? {
                    builder.initial_location(n);
                }
                p.expect(Tok::Semi)?;
            }
            "locations" => {
                for n in p.ident_list()? {
                    builder.location(n);
                }
                p.expect(Tok::Semi)?;
            }
            "final" => {
                for n in p.ident_list()? {
                    builder.final_location(n);
                }
                p.expect(Tok::Semi)?;
            }
            "rule" => {
                parse_rule(&mut p, &mut builder, &names, false)?;
            }
            "switch" => {
                parse_rule(&mut p, &mut builder, &names, true)?;
            }
            "selfloop" => {
                let locs = p.ident_list()?;
                p.expect(Tok::Semi)?;
                for l in &locs {
                    let id = builder_location(&builder, l).ok_or_else(|| ParseError {
                        line: p.line(),
                        message: format!("unknown location `{l}`"),
                    })?;
                    builder.self_loop(id);
                }
            }
            other => {
                return Err(p.error(format!("unknown section `{other}`")));
            }
        }
    }
    Ok(builder.build()?)
}

fn builder_location(builder: &TaBuilder, name: &str) -> Option<crate::LocationId> {
    // TaBuilder has no lookup; peek through a temporary clone-free path.
    builder.peek_location(name)
}

fn parse_rule(
    p: &mut Parser<'_>,
    builder: &mut TaBuilder,
    names: &Names,
    round_switch: bool,
) -> Result<(), ParseError> {
    let rule_name = p.ident()?;
    p.expect(Tok::Colon)?;
    let from_name = p.ident()?;
    p.expect(Tok::Arrow)?;
    let to_name = p.ident()?;
    let from = builder
        .peek_location(&from_name)
        .ok_or_else(|| ParseError {
            line: p.line(),
            message: format!("unknown location `{from_name}`"),
        })?;
    let to = builder.peek_location(&to_name).ok_or_else(|| ParseError {
        line: p.line(),
        message: format!("unknown location `{to_name}`"),
    })?;

    let when = p.ident()?;
    if when != "when" {
        return Err(p.error("expected `when`"));
    }
    let guard = if p.peek() == Some(&Tok::Ident("true".to_owned())) {
        p.next()?;
        Guard::always()
    } else {
        let mut atoms = Vec::new();
        let is_shared = |n: &str| names.shared.iter().any(|q| q == n);
        let is_param = |n: &str| names.params.iter().any(|q| q == n);
        loop {
            let line = p.line();
            let lhs = names.split_vars(p.linear_expr(&is_shared)?, line)?;
            let cmp = match p.next()? {
                Tok::Ge => GuardCmp::Ge,
                Tok::Lt => GuardCmp::Lt,
                other => {
                    p.pos -= 1;
                    return Err(p.error(format!("expected `>=` or `<` in guard, found `{other}`")));
                }
            };
            let line = p.line();
            let rhs = names.split_params(p.linear_expr(&is_param)?, line)?;
            atoms.push(AtomicGuard { lhs, cmp, rhs });
            if p.peek() == Some(&Tok::AndAnd) {
                p.next()?;
            } else {
                break;
            }
        }
        Guard::all(atoms)
    };

    let mut updates = Vec::new();
    if p.peek() == Some(&Tok::Ident("do".to_owned())) {
        p.next()?;
        loop {
            let var_name = p.ident()?;
            let var = names
                .shared
                .iter()
                .position(|v| *v == var_name)
                .map(crate::VarId)
                .ok_or_else(|| ParseError {
                    line: p.line(),
                    message: format!("`{var_name}` is not a shared variable"),
                })?;
            p.expect(Tok::PlusEq)?;
            let amount = match p.next()? {
                Tok::Num(k) if k > 0 => k as u64,
                other => {
                    p.pos -= 1;
                    return Err(p.error(format!("expected positive increment, found `{other}`")));
                }
            };
            updates.push((var, amount));
            if p.peek() == Some(&Tok::Comma) {
                p.next()?;
            } else {
                break;
            }
        }
    }
    p.expect(Tok::Semi)?;

    let mut handle = builder.rule(rule_name, from, to, guard);
    if round_switch {
        handle = handle.round_switch();
    }
    for (var, amount) in updates {
        handle = handle.inc(var, amount);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
        // sample automaton
        automaton sample {
            params n, t, f;
            shared b0, b1;
            resilience n > 3 * t, t >= f, f >= 0;
            processes n - f;

            initial V0, V1;
            locations B0;
            final C0;

            rule r1: V0 -> B0 when true do b0 += 1;
            rule r2: V1 -> B0 when b1 >= t + 1 - f do b1 += 1;
            rule r3: B0 -> C0 when b0 >= 2t + 1 - f && b1 >= 1;
            selfloop C0;
        }
    "#;

    #[test]
    fn parses_sample() {
        let ta = parse_ta(SAMPLE).expect("parse");
        assert_eq!(ta.name, "sample");
        assert_eq!(ta.params, vec!["n", "t", "f"]);
        assert_eq!(ta.variables, vec!["b0", "b1"]);
        assert_eq!(ta.locations.len(), 4);
        assert_eq!(ta.rules.len(), 4); // 3 rules + 1 self-loop
        assert_eq!(ta.resilience.len(), 3);
        let r3 = &ta.rules[ta.rule_by_name("r3").unwrap().0];
        assert_eq!(r3.guard.atoms().len(), 2);
        // `2t` juxtaposition parses as coefficient 2.
        let b0 = ta.variable_by_name("b0").unwrap();
        assert_eq!(r3.guard.atoms()[0].lhs.coeff(b0), 1);
        let t = ta.param_by_name("t").unwrap();
        assert_eq!(r3.guard.atoms()[0].rhs.coeff(t), 2);
        assert_eq!(r3.guard.atoms()[0].rhs.constant_term(), 1);
    }

    #[test]
    fn roundtrip_semantics() {
        // The parsed automaton runs in the counter system.
        let ta = parse_ta(SAMPLE).unwrap();
        let sys = crate::CounterSystem::new(&ta, &[4, 1, 1]).unwrap();
        let ex = sys.explore(50_000);
        assert!(ex.complete());
    }

    #[test]
    fn error_reports_line() {
        let src = "automaton x {\n  params n;\n  oops;\n}";
        let err = parse_ta(src).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("oops"));
    }

    #[test]
    fn unknown_name_in_guard() {
        let src = r#"
            automaton x {
                params n; shared b;
                processes n;
                initial V; final C;
                rule r: V -> C when q >= 1;
            }
        "#;
        let err = parse_ta(src).unwrap_err();
        assert!(err.message.contains("not a shared variable"), "{err}");
    }

    #[test]
    fn guard_with_constant_on_var_side_rejected() {
        let src = r#"
            automaton x {
                params n; shared b;
                processes n;
                initial V; final C;
                rule r: V -> C when b + 1 >= n;
            }
        "#;
        let err = parse_ta(src).unwrap_err();
        assert!(err.message.contains("no constant"), "{err}");
    }

    #[test]
    fn missing_semi_is_an_error() {
        let src = "automaton x {\n  params n\n  shared b;\n}";
        assert!(parse_ta(src).is_err());
    }

    #[test]
    fn primes_in_identifiers() {
        let src = r#"
            automaton x {
                params n; shared b0';
                processes n;
                initial V0'; final C0';
                rule r': V0' -> C0' when b0' >= 1;
            }
        "#;
        let ta = parse_ta(src).expect("parse primes");
        assert!(ta.location_by_name("V0'").is_some());
        assert!(ta.variable_by_name("b0'").is_some());
    }
}
