//! # holistic-ta — threshold automata
//!
//! The modelling substrate of the holistic-verification workspace: the
//! threshold-automaton (TA) formalism of Konnov, Veith & Widder, in the
//! increment-only, DAG-shaped class used by the paper's models.
//!
//! * [`ThresholdAutomaton`] / [`TaBuilder`] — locations, shared
//!   variables, parameters, threshold-guarded rules, resilience
//!   conditions;
//! * [`CounterSystem`] — explicit-state semantics for fixed parameters
//!   (exploration, random runs), used to cross-validate the symbolic
//!   checker;
//! * [`unroll`] — multi-round composition with round-switch rules (the
//!   "superround" construction of the paper's Figures 3 and 4);
//! * [`parse_ta`] — a ByMC-inspired text format;
//! * [`to_dot`] — Graphviz rendering, regenerating the paper's figures.
//!
//! # Examples
//!
//! ```
//! use holistic_ta::{parse_ta, CounterSystem};
//!
//! let ta = parse_ta(
//!     "automaton demo {
//!          params n, t, f;
//!          shared echo;
//!          resilience n > 3t, t >= f, f >= 0;
//!          processes n - f;
//!          initial V;
//!          final D;
//!          rule send: V -> D when true do echo += 1;
//!      }",
//! )?;
//! let sys = CounterSystem::new(&ta, &[4, 1, 1])?;
//! assert!(sys.explore(1_000).complete());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod automaton;
mod counter_system;
mod dot;
mod expr;
mod multiround;
mod parse;
mod print;
mod surgery;

pub use automaton::{Location, Rule, RuleHandle, TaBuilder, ThresholdAutomaton, ValidationError};
pub use counter_system::{Config, CounterSystem, Exploration, SemanticsError};
pub use dot::to_dot;
pub use expr::{
    AtomicGuard, Guard, GuardCmp, LocationId, ParamCmp, ParamConstraint, ParamExpr, ParamId,
    RuleId, VarExpr, VarId,
};
pub use multiround::unroll;
pub use parse::{parse_ta, ParseError};
pub use print::to_ta_source;
