//! Pretty-printing threshold automata back to the text format of
//! [`parse_ta`](crate::parse_ta).
//!
//! `parse_ta(&to_ta_source(&ta))` reproduces the automaton up to
//! declaration order of locations (the printer groups initial /
//! intermediate / final declarations), which the round-trip tests rely
//! on.

use std::fmt::Write as _;

use crate::automaton::ThresholdAutomaton;
use crate::expr::{GuardCmp, ParamCmp};

/// Renders the automaton in the `.ta` text format.
pub fn to_ta_source(ta: &ThresholdAutomaton) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "automaton {} {{", sanitize(&ta.name));
    let _ = writeln!(out, "    params {};", ta.params.join(", "));
    if !ta.variables.is_empty() {
        let _ = writeln!(out, "    shared {};", ta.variables.join(", "));
    }
    if !ta.resilience.is_empty() {
        let clauses: Vec<String> = ta
            .resilience
            .iter()
            .map(|c| {
                format!(
                    "{} {} {}",
                    c.lhs.display(&ta.params),
                    cmp_str(c.cmp),
                    c.rhs.display(&ta.params)
                )
            })
            .collect();
        let _ = writeln!(out, "    resilience {};", clauses.join(", "));
    }
    let _ = writeln!(out, "    processes {};", ta.size_expr.display(&ta.params));
    let _ = writeln!(out);

    let group = |pred: &dyn Fn(&crate::Location) -> bool| -> Vec<String> {
        ta.locations
            .iter()
            .filter(|l| pred(l))
            .map(|l| l.name.clone())
            .collect()
    };
    let initial = group(&|l| l.initial);
    let middle = group(&|l| !l.initial && !l.is_final);
    let finals = group(&|l| !l.initial && l.is_final);
    if !initial.is_empty() {
        let _ = writeln!(out, "    initial {};", initial.join(", "));
    }
    if !middle.is_empty() {
        let _ = writeln!(out, "    locations {};", middle.join(", "));
    }
    if !finals.is_empty() {
        let _ = writeln!(out, "    final {};", finals.join(", "));
    }
    let _ = writeln!(out);

    let mut self_loops = Vec::new();
    for r in &ta.rules {
        if r.is_self_loop() && r.guard.is_true() && r.update.is_empty() {
            self_loops.push(ta.locations[r.from.0].name.clone());
            continue;
        }
        let guard = if r.guard.is_true() {
            "true".to_owned()
        } else {
            r.guard
                .atoms()
                .iter()
                .map(|a| {
                    format!(
                        "{} {} {}",
                        a.lhs.display(&ta.variables),
                        match a.cmp {
                            GuardCmp::Ge => ">=",
                            GuardCmp::Lt => "<",
                        },
                        a.rhs.display(&ta.params)
                    )
                })
                .collect::<Vec<_>>()
                .join(" && ")
        };
        let keyword = if r.round_switch { "switch" } else { "rule" };
        let _ = write!(
            out,
            "    {} {}: {} -> {} when {}",
            keyword, r.name, ta.locations[r.from.0].name, ta.locations[r.to.0].name, guard
        );
        if !r.update.is_empty() {
            let updates: Vec<String> = r
                .update
                .iter()
                .map(|&(v, k)| format!("{} += {}", ta.variables[v.0], k))
                .collect();
            let _ = write!(out, " do {}", updates.join(", "));
        }
        let _ = writeln!(out, ";");
    }
    if !self_loops.is_empty() {
        let _ = writeln!(out, "    selfloop {};", self_loops.join(", "));
    }
    let _ = writeln!(out, "}}");
    out
}

fn cmp_str(c: ParamCmp) -> &'static str {
    match c {
        ParamCmp::Gt => ">",
        ParamCmp::Ge => ">=",
        ParamCmp::Eq => "==",
        ParamCmp::Le => "<=",
        ParamCmp::Lt => "<",
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_ta;

    #[test]
    fn roundtrip_simple_automaton() {
        let src = r#"
            automaton demo {
                params n, t, f;
                shared b0, b1;
                resilience n > 3t, t >= f, f >= 0;
                processes n - f;
                initial V0, V1;
                locations B0;
                final C0;
                rule r1: V0 -> B0 when true do b0 += 1;
                rule r2: B0 -> C0 when b0 >= 2t + 1 - f && b1 >= 1;
                selfloop C0;
            }
        "#;
        let ta = parse_ta(src).unwrap();
        let printed = to_ta_source(&ta);
        let reparsed = parse_ta(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
        assert_eq!(ta, reparsed, "round-trip must be exact:\n{printed}");
    }

    #[test]
    fn printer_handles_negative_threshold_terms() {
        let src = r#"
            automaton neg {
                params n, t, f;
                shared x;
                processes n - f;
                initial V;
                final C;
                rule r: V -> C when x >= n - t - f;
            }
        "#;
        let ta = parse_ta(src).unwrap();
        let printed = to_ta_source(&ta);
        assert!(printed.contains("x >= n - t - f"), "{printed}");
        assert_eq!(parse_ta(&printed).unwrap(), ta);
    }
}
