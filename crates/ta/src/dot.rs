//! Graphviz (DOT) rendering of threshold automata.
//!
//! This regenerates the paper's automaton figures (Fig. 2, 3, 4) from
//! the model definitions: `dot -Tpdf` on the output reproduces the
//! diagrams' content (layout aside).

use std::fmt::Write as _;

use crate::automaton::ThresholdAutomaton;

/// Renders the automaton as a DOT digraph.
///
/// Conventions: initial locations are drawn as double circles, final
/// locations as bold circles, round-switch rules as dotted edges (as in
/// the paper), and self-loops as grey loops. Edge labels carry the rule
/// name, its guard and its updates.
pub fn to_dot(ta: &ThresholdAutomaton) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", ta.name);
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=circle, fontsize=11];");
    for (i, l) in ta.locations.iter().enumerate() {
        let mut attrs = vec![format!("label=\"{}\"", l.name)];
        if l.initial {
            attrs.push("shape=doublecircle".to_owned());
        }
        if l.is_final {
            attrs.push("style=bold".to_owned());
        }
        let _ = writeln!(out, "  L{} [{}];", i, attrs.join(", "));
    }
    for r in &ta.rules {
        let mut label = r.name.clone();
        if !r.guard.is_true() {
            let parts: Vec<String> = r
                .guard
                .atoms()
                .iter()
                .map(|a| {
                    format!(
                        "{} {} {}",
                        a.lhs.display(&ta.variables),
                        a.cmp,
                        a.rhs.display(&ta.params)
                    )
                })
                .collect();
            let _ = write!(label, ": {}", parts.join(" && "));
        }
        if !r.update.is_empty() {
            let parts: Vec<String> = r
                .update
                .iter()
                .map(|&(v, amount)| {
                    if amount == 1 {
                        format!("{}++", ta.variables[v.0])
                    } else {
                        format!("{} += {}", ta.variables[v.0], amount)
                    }
                })
                .collect();
            let _ = write!(label, " / {}", parts.join(", "));
        }
        let mut attrs = vec![format!("label=\"{}\"", label)];
        if r.round_switch {
            attrs.push("style=dotted".to_owned());
        }
        if r.is_self_loop() {
            attrs.push("color=grey".to_owned());
        }
        let _ = writeln!(
            out,
            "  L{} -> L{} [{}];",
            r.from.0,
            r.to.0,
            attrs.join(", ")
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::TaBuilder;
    use crate::expr::{AtomicGuard, Guard, ParamExpr, VarExpr};

    #[test]
    fn dot_output_contains_structure() {
        let mut b = TaBuilder::new("demo");
        let n = b.param("n");
        let t = b.param("t");
        let f = b.param("f");
        let b0 = b.shared("b0");
        let v0 = b.initial_location("V0");
        let c0 = b.final_location("C0");
        b.size_n_minus_f(n, f);
        let mut thresh = ParamExpr::term(t, 2);
        thresh.add_constant(1);
        thresh.add_term(f, -1);
        b.rule(
            "r3",
            v0,
            c0,
            Guard::atom(AtomicGuard::ge(VarExpr::var(b0), thresh)),
        )
        .inc(b0, 1);
        b.self_loop(c0);
        let ta = b.build().unwrap();
        let dot = to_dot(&ta);
        assert!(dot.contains("digraph \"demo\""));
        assert!(dot.contains("doublecircle"), "initial marking missing");
        assert!(dot.contains("style=bold"), "final marking missing");
        assert!(
            dot.contains("b0 >= 2t - f + 1"),
            "guard label missing: {dot}"
        );
        assert!(dot.contains("b0++"), "update label missing");
        assert!(dot.contains("color=grey"), "self-loop styling missing");
    }
}
