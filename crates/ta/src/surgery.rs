//! Automaton surgery: clone-and-edit operations for mutation testing.
//!
//! Each operation returns a *syntactically edited* copy of the
//! automaton and deliberately does **not** revalidate it: mutation
//! testing wants to seed exactly the kinds of breakage that
//! [`ThresholdAutomaton::validate`] and the checker's guard analysis
//! are supposed to reject (fall guards, self-loops with updates), so
//! the caller decides whether an invalid result is a bug or the point.
//! Use [`ThresholdAutomaton::validate`] on the result to classify.

use crate::automaton::{Rule, ThresholdAutomaton};
use crate::expr::{Guard, LocationId, ParamConstraint, RuleId, VarId};

impl ThresholdAutomaton {
    /// A copy with a different name (mutant corpora name each variant
    /// so reports and cache keys stay distinguishable for humans).
    pub fn renamed(&self, name: impl Into<String>) -> ThresholdAutomaton {
        let mut ta = self.clone();
        ta.name = name.into();
        ta
    }

    /// A copy with rule `r` removed.
    ///
    /// # Panics
    ///
    /// If `r` is out of range.
    pub fn with_rule_removed(&self, r: RuleId) -> ThresholdAutomaton {
        let mut ta = self.clone();
        ta.rules.remove(r.0);
        ta
    }

    /// A copy with rule `r` duplicated under `new_name` (same source,
    /// target, guard and update — a semantically inert "equivalent
    /// mutant" in counter-system semantics).
    ///
    /// # Panics
    ///
    /// If `r` is out of range.
    pub fn with_rule_duplicated(
        &self,
        r: RuleId,
        new_name: impl Into<String>,
    ) -> ThresholdAutomaton {
        let mut ta = self.clone();
        let mut copy = ta.rules[r.0].clone();
        copy.name = new_name.into();
        ta.rules.push(copy);
        ta
    }

    /// A copy with rule `r`'s guard replaced.
    ///
    /// # Panics
    ///
    /// If `r` is out of range.
    pub fn with_guard(&self, r: RuleId, guard: Guard) -> ThresholdAutomaton {
        let mut ta = self.clone();
        ta.rules[r.0].guard = guard;
        ta
    }

    /// A copy with rule `r`'s target location replaced (the process
    /// takes the transition but ends up in the wrong state).
    ///
    /// # Panics
    ///
    /// If `r` is out of range.
    pub fn with_target(&self, r: RuleId, to: LocationId) -> ThresholdAutomaton {
        let mut ta = self.clone();
        ta.rules[r.0].to = to;
        ta
    }

    /// A copy with rule `r`'s update vector replaced.
    ///
    /// # Panics
    ///
    /// If `r` is out of range.
    pub fn with_update(&self, r: RuleId, update: Vec<(VarId, u64)>) -> ThresholdAutomaton {
        let mut ta = self.clone();
        ta.rules[r.0].update = update;
        ta
    }

    /// A copy with the whole resilience condition replaced.
    pub fn with_resilience(&self, resilience: Vec<ParamConstraint>) -> ThresholdAutomaton {
        let mut ta = self.clone();
        ta.resilience = resilience;
        ta
    }

    /// A copy with an extra rule `loc -> loc` appended (a self-loop;
    /// with a non-empty `update` the result is *invalid* by
    /// construction — validation rejects unbounded increment loops).
    pub fn with_self_loop(
        &self,
        loc: LocationId,
        name: impl Into<String>,
        guard: Guard,
        update: Vec<(VarId, u64)>,
    ) -> ThresholdAutomaton {
        let mut ta = self.clone();
        ta.rules.push(Rule {
            name: name.into(),
            from: loc,
            to: loc,
            guard,
            update,
            round_switch: false,
        });
        ta
    }
}

#[cfg(test)]
mod tests {
    use crate::automaton::{TaBuilder, ValidationError};
    use crate::expr::{Guard, RuleId, VarId};

    fn demo() -> crate::ThresholdAutomaton {
        let mut b = TaBuilder::new("demo");
        let n = b.param("n");
        let f = b.param("f");
        b.resilience_gt(n, f, 1);
        b.size_n_minus_f(n, f);
        let x = b.shared("x");
        let v = b.initial_location("V");
        let d = b.final_location("D");
        b.rule("r1", v, d, Guard::always()).inc(x, 1);
        b.build().unwrap()
    }

    #[test]
    fn removal_and_duplication_edit_the_rule_list() {
        let ta = demo();
        assert_eq!(ta.with_rule_removed(RuleId(0)).rules.len(), 0);
        let dup = ta.with_rule_duplicated(RuleId(0), "r1'");
        assert_eq!(dup.rules.len(), 2);
        assert_eq!(dup.rules[1].name, "r1'");
        assert_eq!(dup.rules[1].guard, dup.rules[0].guard);
        assert!(dup.validate().is_ok());
    }

    #[test]
    fn self_loop_with_update_is_invalid_by_design() {
        let ta = demo();
        let d = ta.location_by_name("D").unwrap();
        let looped = ta.with_self_loop(d, "loop", Guard::always(), vec![(VarId(0), 1)]);
        assert!(matches!(
            looped.validate(),
            Err(ValidationError::SelfLoopWithUpdate(_))
        ));
        // Without an update the loop is inert and valid.
        let inert = ta.with_self_loop(d, "loop", Guard::always(), vec![]);
        assert!(inert.validate().is_ok());
    }

    #[test]
    fn renames_and_resilience_swaps_apply() {
        let ta = demo();
        assert_eq!(ta.renamed("other").name, "other");
        assert!(ta.with_resilience(vec![]).resilience.is_empty());
    }
}
