//! Identifiers and arithmetic at the threshold-automaton level.
//!
//! Threshold automata talk about two separate vocabularies:
//!
//! * **parameters** (`n`, `t`, `f`): fixed for an execution, constrained
//!   by the resilience condition;
//! * **shared variables** (`b0`, `b1`, …): counters of sent messages,
//!   only ever *incremented* by rules.
//!
//! Threshold guards compare a linear combination of shared variables with
//! a linear combination of parameters, e.g. `b0 ≥ 2t + 1 − f`.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Index of a location within its automaton.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct LocationId(pub usize);

/// Index of a rule within its automaton.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct RuleId(pub usize);

/// Index of a shared variable within its automaton.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct VarId(pub usize);

/// Index of a parameter within its automaton.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ParamId(pub usize);

/// A linear expression over **parameters**: `Σ cᵢ·pᵢ + c₀`.
///
/// Coefficients are `i64`; thresholds in the paper's automata are tiny
/// (`2t + 1 − f`), so no arbitrary precision is needed here.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub struct ParamExpr {
    /// `(parameter, coefficient)` pairs, sorted by parameter, no zeros.
    coeffs: Vec<(ParamId, i64)>,
    constant: i64,
}

impl ParamExpr {
    /// A constant expression.
    pub fn constant(c: i64) -> ParamExpr {
        ParamExpr {
            coeffs: Vec::new(),
            constant: c,
        }
    }

    /// The expression `1·p`.
    pub fn param(p: ParamId) -> ParamExpr {
        ParamExpr::term(p, 1)
    }

    /// The expression `c·p`.
    pub fn term(p: ParamId, c: i64) -> ParamExpr {
        let mut e = ParamExpr::default();
        e.add_term(p, c);
        e
    }

    /// Adds `c·p` in place.
    pub fn add_term(&mut self, p: ParamId, c: i64) {
        if c == 0 {
            return;
        }
        match self.coeffs.binary_search_by_key(&p, |&(q, _)| q) {
            Ok(i) => {
                self.coeffs[i].1 += c;
                if self.coeffs[i].1 == 0 {
                    self.coeffs.remove(i);
                }
            }
            Err(i) => self.coeffs.insert(i, (p, c)),
        }
    }

    /// Adds a constant in place.
    pub fn add_constant(&mut self, c: i64) {
        self.constant += c;
    }

    /// Adds another expression in place.
    pub fn add(&mut self, other: &ParamExpr) {
        for &(p, c) in &other.coeffs {
            self.add_term(p, c);
        }
        self.constant += other.constant;
    }

    /// Returns `self - other`.
    pub fn sub(&self, other: &ParamExpr) -> ParamExpr {
        let mut out = self.clone();
        for &(p, c) in &other.coeffs {
            out.add_term(p, -c);
        }
        out.constant -= other.constant;
        out
    }

    /// The coefficient of a parameter.
    pub fn coeff(&self, p: ParamId) -> i64 {
        self.coeffs
            .binary_search_by_key(&p, |&(q, _)| q)
            .map(|i| self.coeffs[i].1)
            .unwrap_or(0)
    }

    /// The constant term.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// `(parameter, coefficient)` pairs in parameter order.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, i64)> + '_ {
        self.coeffs.iter().copied()
    }

    /// Evaluates the expression under concrete parameter values.
    pub fn eval(&self, values: &[i64]) -> i64 {
        let mut acc = self.constant;
        for &(p, c) in &self.coeffs {
            acc += c * values[p.0];
        }
        acc
    }

    /// Renders with the given parameter names.
    pub fn display<'a>(&'a self, names: &'a [String]) -> impl fmt::Display + 'a {
        DisplayParamExpr { expr: self, names }
    }
}

struct DisplayParamExpr<'a> {
    expr: &'a ParamExpr,
    names: &'a [String],
}

impl fmt::Display for DisplayParamExpr<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (p, c) in self.expr.iter() {
            let name = &self.names[p.0];
            if first {
                match c {
                    1 => write!(f, "{name}")?,
                    -1 => write!(f, "-{name}")?,
                    _ => write!(f, "{c}{name}")?,
                }
                first = false;
            } else if c < 0 {
                if c == -1 {
                    write!(f, " - {name}")?;
                } else {
                    write!(f, " - {}{name}", -c)?;
                }
            } else if c == 1 {
                write!(f, " + {name}")?;
            } else {
                write!(f, " + {c}{name}")?;
            }
        }
        let k = self.expr.constant_term();
        if first {
            write!(f, "{k}")?;
        } else if k > 0 {
            write!(f, " + {k}")?;
        } else if k < 0 {
            write!(f, " - {}", -k)?;
        }
        Ok(())
    }
}

/// A linear expression over **shared variables**: `Σ cᵢ·xᵢ` (no constant;
/// shared-variable sums in guards are homogeneous).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub struct VarExpr {
    coeffs: Vec<(VarId, i64)>,
}

impl VarExpr {
    /// The expression `1·x`.
    pub fn var(x: VarId) -> VarExpr {
        VarExpr::term(x, 1)
    }

    /// The expression `c·x`.
    pub fn term(x: VarId, c: i64) -> VarExpr {
        let mut e = VarExpr::default();
        e.add_term(x, c);
        e
    }

    /// Adds `c·x` in place.
    pub fn add_term(&mut self, x: VarId, c: i64) {
        if c == 0 {
            return;
        }
        match self.coeffs.binary_search_by_key(&x, |&(y, _)| y) {
            Ok(i) => {
                self.coeffs[i].1 += c;
                if self.coeffs[i].1 == 0 {
                    self.coeffs.remove(i);
                }
            }
            Err(i) => self.coeffs.insert(i, (x, c)),
        }
    }

    /// The coefficient of a variable.
    pub fn coeff(&self, x: VarId) -> i64 {
        self.coeffs
            .binary_search_by_key(&x, |&(y, _)| y)
            .map(|i| self.coeffs[i].1)
            .unwrap_or(0)
    }

    /// `(variable, coefficient)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, i64)> + '_ {
        self.coeffs.iter().copied()
    }

    /// Whether every coefficient is non-negative (required for the
    /// monotonicity argument behind schema enumeration).
    pub fn is_nonneg(&self) -> bool {
        self.coeffs.iter().all(|&(_, c)| c >= 0)
    }

    /// Whether the expression has no terms.
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Evaluates under concrete shared-variable values.
    pub fn eval(&self, values: &[i64]) -> i64 {
        let mut acc = 0;
        for &(x, c) in &self.coeffs {
            acc += c * values[x.0];
        }
        acc
    }

    /// Renders with the given variable names.
    pub fn display<'a>(&'a self, names: &'a [String]) -> impl fmt::Display + 'a {
        DisplayVarExpr { expr: self, names }
    }
}

struct DisplayVarExpr<'a> {
    expr: &'a VarExpr,
    names: &'a [String],
}

impl fmt::Display for DisplayVarExpr<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (x, c) in self.expr.iter() {
            let name = &self.names[x.0];
            if first {
                match c {
                    1 => write!(f, "{name}")?,
                    -1 => write!(f, "-{name}")?,
                    _ => write!(f, "{c}{name}")?,
                }
                first = false;
            } else if c < 0 {
                if c == -1 {
                    write!(f, " - {name}")?;
                } else {
                    write!(f, " - {}{name}", -c)?;
                }
            } else if c == 1 {
                write!(f, " + {name}")?;
            } else {
                write!(f, " + {c}{name}")?;
            }
        }
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

/// The comparison of a threshold guard.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum GuardCmp {
    /// `vars >= threshold` — a *rise* guard: with increment-only updates
    /// it can only flip false → true.
    Ge,
    /// `vars < threshold` — a *fall* guard: it can only flip true → false.
    Lt,
}

impl fmt::Display for GuardCmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardCmp::Ge => write!(f, ">="),
            GuardCmp::Lt => write!(f, "<"),
        }
    }
}

/// An atomic threshold guard `vars CMP threshold`, e.g. `b0 ≥ 2t+1−f`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct AtomicGuard {
    /// The shared-variable side.
    pub lhs: VarExpr,
    /// The comparison.
    pub cmp: GuardCmp,
    /// The parameter side (threshold).
    pub rhs: ParamExpr,
}

impl AtomicGuard {
    /// `vars >= threshold`.
    pub fn ge(lhs: VarExpr, rhs: ParamExpr) -> AtomicGuard {
        AtomicGuard {
            lhs,
            cmp: GuardCmp::Ge,
            rhs,
        }
    }

    /// `vars < threshold`.
    pub fn lt(lhs: VarExpr, rhs: ParamExpr) -> AtomicGuard {
        AtomicGuard {
            lhs,
            cmp: GuardCmp::Lt,
            rhs,
        }
    }

    /// Whether this is a rise guard (monotone false → true).
    pub fn is_rise(&self) -> bool {
        self.cmp == GuardCmp::Ge
    }

    /// Evaluates under concrete shared and parameter values.
    pub fn eval(&self, shared: &[i64], params: &[i64]) -> bool {
        let l = self.lhs.eval(shared);
        let r = self.rhs.eval(params);
        match self.cmp {
            GuardCmp::Ge => l >= r,
            GuardCmp::Lt => l < r,
        }
    }
}

/// A conjunction of atomic guards; the empty conjunction is `true`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub struct Guard {
    atoms: Vec<AtomicGuard>,
}

impl Guard {
    /// The trivially true guard.
    pub fn always() -> Guard {
        Guard::default()
    }

    /// A single-atom guard.
    pub fn atom(a: AtomicGuard) -> Guard {
        Guard { atoms: vec![a] }
    }

    /// A conjunction of atoms.
    pub fn all(atoms: impl IntoIterator<Item = AtomicGuard>) -> Guard {
        Guard {
            atoms: atoms.into_iter().collect(),
        }
    }

    /// The atoms of the conjunction.
    pub fn atoms(&self) -> &[AtomicGuard] {
        &self.atoms
    }

    /// Whether this is the trivially true guard.
    pub fn is_true(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Evaluates under concrete shared and parameter values.
    pub fn eval(&self, shared: &[i64], params: &[i64]) -> bool {
        self.atoms.iter().all(|a| a.eval(shared, params))
    }
}

/// The comparison of a resilience-condition constraint.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ParamCmp {
    /// `lhs > rhs`
    Gt,
    /// `lhs >= rhs`
    Ge,
    /// `lhs == rhs`
    Eq,
    /// `lhs <= rhs`
    Le,
    /// `lhs < rhs`
    Lt,
}

impl fmt::Display for ParamCmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamCmp::Gt => write!(f, ">"),
            ParamCmp::Ge => write!(f, ">="),
            ParamCmp::Eq => write!(f, "=="),
            ParamCmp::Le => write!(f, "<="),
            ParamCmp::Lt => write!(f, "<"),
        }
    }
}

/// A constraint between two parameter expressions, used in resilience
/// conditions such as `n > 3t` or `t >= f`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct ParamConstraint {
    /// Left-hand side.
    pub lhs: ParamExpr,
    /// Comparison.
    pub cmp: ParamCmp,
    /// Right-hand side.
    pub rhs: ParamExpr,
}

impl ParamConstraint {
    /// Creates a constraint.
    pub fn new(lhs: ParamExpr, cmp: ParamCmp, rhs: ParamExpr) -> ParamConstraint {
        ParamConstraint { lhs, cmp, rhs }
    }

    /// Evaluates under concrete parameter values.
    pub fn eval(&self, params: &[i64]) -> bool {
        let l = self.lhs.eval(params);
        let r = self.rhs.eval(params);
        match self.cmp {
            ParamCmp::Gt => l > r,
            ParamCmp::Ge => l >= r,
            ParamCmp::Eq => l == r,
            ParamCmp::Le => l <= r,
            ParamCmp::Lt => l < r,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_expr_arithmetic() {
        let t = ParamId(1);
        let f = ParamId(2);
        // 2t + 1 - f
        let mut e = ParamExpr::term(t, 2);
        e.add_constant(1);
        e.add_term(f, -1);
        assert_eq!(e.coeff(t), 2);
        assert_eq!(e.coeff(f), -1);
        assert_eq!(e.constant_term(), 1);
        // n=4, t=1, f=1 -> 2*1 + 1 - 1 = 2.
        assert_eq!(e.eval(&[4, 1, 1]), 2);
    }

    #[test]
    fn param_expr_cancellation() {
        let t = ParamId(0);
        let mut e = ParamExpr::term(t, 2);
        e.add_term(t, -2);
        assert_eq!(e, ParamExpr::constant(0));
    }

    #[test]
    fn param_expr_display() {
        let names = vec!["n".to_owned(), "t".to_owned(), "f".to_owned()];
        let mut e = ParamExpr::term(ParamId(1), 2);
        e.add_constant(1);
        e.add_term(ParamId(2), -1);
        assert_eq!(e.display(&names).to_string(), "2t - f + 1");
    }

    #[test]
    fn var_expr_and_guard_eval() {
        let b0 = VarId(0);
        let b1 = VarId(1);
        let sum = {
            let mut e = VarExpr::var(b0);
            e.add_term(b1, 1);
            e
        };
        // b0 + b1 >= n - t - f with n=4, t=1, f=0 -> threshold 3.
        let mut rhs = ParamExpr::param(ParamId(0));
        rhs.add_term(ParamId(1), -1);
        rhs.add_term(ParamId(2), -1);
        let g = AtomicGuard::ge(sum, rhs);
        assert!(g.is_rise());
        assert!(g.eval(&[2, 1], &[4, 1, 0]));
        assert!(!g.eval(&[1, 1], &[4, 1, 0]));
    }

    #[test]
    fn fall_guard() {
        let g = AtomicGuard::lt(VarExpr::var(VarId(0)), ParamExpr::constant(3));
        assert!(!g.is_rise());
        assert!(g.eval(&[2], &[]));
        assert!(!g.eval(&[3], &[]));
    }

    #[test]
    fn guard_conjunction() {
        let g = Guard::all([
            AtomicGuard::ge(VarExpr::var(VarId(0)), ParamExpr::constant(1)),
            AtomicGuard::ge(VarExpr::var(VarId(1)), ParamExpr::constant(2)),
        ]);
        assert!(g.eval(&[1, 2], &[]));
        assert!(!g.eval(&[1, 1], &[]));
        assert!(Guard::always().eval(&[0, 0], &[]));
    }

    #[test]
    fn param_constraint_eval() {
        // n > 3t.
        let c = ParamConstraint::new(
            ParamExpr::param(ParamId(0)),
            ParamCmp::Gt,
            ParamExpr::term(ParamId(1), 3),
        );
        assert!(c.eval(&[4, 1]));
        assert!(!c.eval(&[3, 1]));
    }
}
