//! Multi-round threshold automata by unrolling.
//!
//! A multi-round TA is a one-round TA plus *round-switch* rules that
//! connect final locations of round `k` with initial locations of round
//! `k+1` (the dotted arrows of the paper's Figures 3 and 4). The paper's
//! consensus automata are two-round unrollings ("superrounds"): DBFT
//! favours different values depending on round parity, so one superround
//! concatenates an odd and an even round.
//!
//! Checking `∀R. φ[R]` for a multi-round automaton reduces to checking
//! `φ` on the one-round automaton over **all** initial distributions
//! (CONCUR'19, Theorem 6; Appendix A of the paper): communication
//! closure lets any asynchronous run be reordered into a round-rigid
//! one, and every round starts with arbitrary counters on the initial
//! locations and fresh (zero) shared variables. The checker therefore
//! takes the unrolled superround automaton produced here and quantifies
//! over its initial distributions, which is exactly that enlarged set.

use crate::automaton::{Location, Rule, ThresholdAutomaton};
use crate::expr::{AtomicGuard, Guard, LocationId, VarExpr, VarId};

/// Unrolls `ta` into `rounds` consecutive copies.
///
/// * Locations and shared variables of round `k ≥ 2` are suffixed with
///   `k−1` primes (`V0`, `V0'`, `V0''`, …), matching the paper's
///   notation.
/// * `switches` maps a final location of one round to an initial
///   location of the next (given as ids of the base automaton); a
///   guard-true rule marked [`round_switch`](Rule::round_switch) is
///   inserted for each pair and each round boundary.
/// * Only round 1's initial locations stay initial, and only the last
///   round's final locations stay final.
///
/// # Panics
///
/// Panics if a switch pair does not connect a final location to an
/// initial location of the base automaton, or if `rounds == 0`.
pub fn unroll(
    ta: &ThresholdAutomaton,
    rounds: usize,
    switches: &[(LocationId, LocationId)],
    name: impl Into<String>,
) -> ThresholdAutomaton {
    assert!(rounds >= 1, "unroll needs at least one round");
    for &(from, to) in switches {
        assert!(
            ta.locations[from.0].is_final,
            "round switch must leave a final location"
        );
        assert!(
            ta.locations[to.0].initial,
            "round switch must enter an initial location"
        );
    }

    let n_locs = ta.locations.len();
    let n_vars = ta.variables.len();
    let mut out = ThresholdAutomaton {
        name: name.into(),
        locations: Vec::with_capacity(n_locs * rounds),
        variables: Vec::with_capacity(n_vars * rounds),
        params: ta.params.clone(),
        rules: Vec::new(),
        resilience: ta.resilience.clone(),
        size_expr: ta.size_expr.clone(),
    };

    let suffix = |round: usize| "'".repeat(round);
    for round in 0..rounds {
        for l in &ta.locations {
            out.locations.push(Location {
                name: format!("{}{}", l.name, suffix(round)),
                initial: l.initial && round == 0,
                is_final: l.is_final && round == rounds - 1,
            });
        }
        for v in &ta.variables {
            out.variables.push(format!("{}{}", v, suffix(round)));
        }
    }

    let loc_in = |round: usize, l: LocationId| LocationId(round * n_locs + l.0);
    let var_in = |round: usize, v: VarId| VarId(round * n_vars + v.0);

    for round in 0..rounds {
        for rule in &ta.rules {
            let guard = Guard::all(rule.guard.atoms().iter().map(|a| {
                let mut lhs = VarExpr::default();
                for (v, c) in a.lhs.iter() {
                    lhs.add_term(var_in(round, v), c);
                }
                AtomicGuard {
                    lhs,
                    cmp: a.cmp,
                    rhs: a.rhs.clone(),
                }
            }));
            out.rules.push(Rule {
                name: format!("{}{}", rule.name, suffix(round)),
                from: loc_in(round, rule.from),
                to: loc_in(round, rule.to),
                guard,
                update: rule
                    .update
                    .iter()
                    .map(|&(v, amount)| (var_in(round, v), amount))
                    .collect(),
                round_switch: false,
            });
        }
        if round + 1 < rounds {
            for (i, &(from, to)) in switches.iter().enumerate() {
                out.rules.push(Rule {
                    name: format!("sw{}_{}", round + 1, i + 1),
                    from: loc_in(round, from),
                    to: loc_in(round + 1, to),
                    guard: Guard::always(),
                    update: Vec::new(),
                    round_switch: true,
                });
            }
        }
    }
    debug_assert!(out.validate().is_ok());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::TaBuilder;
    use crate::expr::ParamExpr;

    fn one_round() -> ThresholdAutomaton {
        let mut b = TaBuilder::new("r");
        let n = b.param("n");
        let f = b.param("f");
        let x = b.shared("x");
        let v0 = b.initial_location("V0");
        let v1 = b.initial_location("V1");
        let d0 = b.final_location("D0");
        let d1 = b.final_location("D1");
        b.size_n_minus_f(n, f);
        b.rule(
            "r1",
            v0,
            d0,
            Guard::atom(AtomicGuard::ge(VarExpr::var(x), ParamExpr::constant(0))),
        )
        .inc(x, 1);
        b.rule("r2", v1, d1, Guard::always()).inc(x, 1);
        b.build().unwrap()
    }

    #[test]
    fn two_round_unrolling_shapes() {
        let ta = one_round();
        let d0 = ta.location_by_name("D0").unwrap();
        let d1 = ta.location_by_name("D1").unwrap();
        let v0 = ta.location_by_name("V0").unwrap();
        let v1 = ta.location_by_name("V1").unwrap();
        let two = unroll(&ta, 2, &[(d0, v0), (d1, v1)], "superround");
        assert_eq!(two.locations.len(), 8);
        assert_eq!(two.variables.len(), 2);
        assert_eq!(two.variables[1], "x'");
        // 2 rules per round + 2 switches.
        assert_eq!(two.rules.len(), 6);
        assert_eq!(two.rules.iter().filter(|r| r.round_switch).count(), 2);
        // Initial: only round 1's V0, V1. Final: only round 2's D0', D1'.
        assert_eq!(two.initial_locations().len(), 2);
        assert!(two.location_by_name("V0").is_some());
        assert!(two.location_by_name("V0'").is_some());
        let finals = two.final_locations();
        assert_eq!(finals.len(), 2);
        assert!(finals.iter().all(|&l| two.location_name(l).ends_with('\'')));
    }

    #[test]
    fn guards_are_retargeted_to_round_variables() {
        let ta = one_round();
        let d0 = ta.location_by_name("D0").unwrap();
        let v0 = ta.location_by_name("V0").unwrap();
        let two = unroll(&ta, 2, &[(d0, v0)], "sr");
        let r1p = two.rule_by_name("r1'").unwrap();
        let guard = &two.rules[r1p.0].guard;
        let x_prime = two.variable_by_name("x'").unwrap();
        assert_eq!(guard.atoms()[0].lhs.coeff(x_prime), 1);
    }

    #[test]
    fn unrolled_automaton_is_still_a_dag() {
        let ta = one_round();
        let d0 = ta.location_by_name("D0").unwrap();
        let d1 = ta.location_by_name("D1").unwrap();
        let v0 = ta.location_by_name("V0").unwrap();
        let v1 = ta.location_by_name("V1").unwrap();
        let three = unroll(&ta, 3, &[(d0, v0), (d1, v1)], "three");
        assert!(three.is_dag());
        assert!(three.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "final location")]
    fn switch_from_non_final_panics() {
        let ta = one_round();
        let v0 = ta.location_by_name("V0").unwrap();
        let _ = unroll(&ta, 2, &[(v0, v0)], "bad");
    }
}
