//! Explicit-state counter-system semantics for *fixed* parameters.
//!
//! The parameterized checker (`holistic-checker`) proves properties for
//! **all** parameter values; this module executes a threshold automaton
//! for one concrete valuation, by explicit-state exploration. It serves
//! two purposes:
//!
//! * cross-validation — every verdict of the symbolic checker can be
//!   spot-checked against exhaustive exploration at small `n`;
//! * simulation — random runs of the counter system for testing.

use std::collections::HashMap;
use std::fmt;

use crate::automaton::ThresholdAutomaton;
use crate::expr::{LocationId, RuleId};

/// A configuration of the counter system: per-location process counters
/// plus shared-variable values.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Config {
    /// `counters[l]` = number of (correct) processes in location `l`.
    pub counters: Vec<i64>,
    /// Shared-variable values.
    pub shared: Vec<i64>,
}

impl Config {
    /// Number of processes in `l`.
    pub fn count(&self, l: LocationId) -> i64 {
        self.counters[l.0]
    }

    /// Whether location `l` is empty.
    pub fn is_empty_loc(&self, l: LocationId) -> bool {
        self.counters[l.0] == 0
    }
}

/// Errors from [`CounterSystem::new`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SemanticsError {
    /// Wrong number of parameter values.
    ParamArity {
        /// Parameters declared by the automaton.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// The parameter valuation violates the resilience condition.
    ResilienceViolated,
    /// The size expression evaluates to a negative process count.
    NegativeSize(i64),
}

impl fmt::Display for SemanticsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemanticsError::ParamArity { expected, got } => {
                write!(f, "expected {expected} parameter values, got {got}")
            }
            SemanticsError::ResilienceViolated => {
                write!(f, "parameter valuation violates the resilience condition")
            }
            SemanticsError::NegativeSize(s) => write!(f, "negative process count {s}"),
        }
    }
}

impl std::error::Error for SemanticsError {}

/// The counter system `Sys(TA)` of a threshold automaton for a fixed
/// parameter valuation.
///
/// # Examples
///
/// ```
/// use holistic_ta::{CounterSystem, Guard, TaBuilder};
///
/// let mut b = TaBuilder::new("tiny");
/// let n = b.param("n");
/// let f = b.param("f");
/// let v = b.initial_location("V");
/// let d = b.final_location("D");
/// b.size_n_minus_f(n, f);
/// b.rule("r", v, d, Guard::always());
/// let ta = b.build().unwrap();
///
/// let sys = CounterSystem::new(&ta, &[3, 0]).unwrap();
/// let exploration = sys.explore(10_000);
/// assert!(exploration.complete());
/// // Some reachable configuration has everyone in D.
/// assert!(exploration
///     .find(|c| c.counters[1] == 3)
///     .is_some());
/// ```
#[derive(Debug)]
pub struct CounterSystem<'a> {
    ta: &'a ThresholdAutomaton,
    params: Vec<i64>,
    size: i64,
}

impl<'a> CounterSystem<'a> {
    /// Instantiates the automaton with concrete parameter values.
    ///
    /// # Errors
    ///
    /// Fails when the arity is wrong, the resilience condition does not
    /// hold, or the size expression is negative.
    pub fn new(ta: &'a ThresholdAutomaton, params: &[i64]) -> Result<Self, SemanticsError> {
        if params.len() != ta.params.len() {
            return Err(SemanticsError::ParamArity {
                expected: ta.params.len(),
                got: params.len(),
            });
        }
        if !ta.resilience.iter().all(|c| c.eval(params)) {
            return Err(SemanticsError::ResilienceViolated);
        }
        let size = ta.size_expr.eval(params);
        if size < 0 {
            return Err(SemanticsError::NegativeSize(size));
        }
        Ok(CounterSystem {
            ta,
            params: params.to_vec(),
            size,
        })
    }

    /// The automaton being executed.
    pub fn automaton(&self) -> &ThresholdAutomaton {
        self.ta
    }

    /// The number of modelled processes.
    pub fn size(&self) -> i64 {
        self.size
    }

    /// The parameter valuation.
    pub fn params(&self) -> &[i64] {
        &self.params
    }

    /// All initial configurations: every distribution of the processes
    /// over the initial locations, shared variables zero.
    pub fn initial_configs(&self) -> Vec<Config> {
        let initial = self.ta.initial_locations();
        let mut out = Vec::new();
        let mut counts = vec![0i64; initial.len()];
        self.distribute(self.size, 0, &initial, &mut counts, &mut out);
        out
    }

    fn distribute(
        &self,
        remaining: i64,
        idx: usize,
        initial: &[LocationId],
        counts: &mut [i64],
        out: &mut Vec<Config>,
    ) {
        if idx == initial.len() {
            if remaining == 0 {
                let mut counters = vec![0i64; self.ta.locations.len()];
                for (i, &l) in initial.iter().enumerate() {
                    counters[l.0] = counts[i];
                }
                out.push(Config {
                    counters,
                    shared: vec![0; self.ta.variables.len()],
                });
            }
            return;
        }
        if idx == initial.len() - 1 {
            counts[idx] = remaining;
            self.distribute(0, idx + 1, initial, counts, out);
            counts[idx] = 0;
            return;
        }
        for k in 0..=remaining {
            counts[idx] = k;
            self.distribute(remaining - k, idx + 1, initial, counts, out);
            counts[idx] = 0;
        }
    }

    /// Whether `rule` is enabled in `config` (guard true, source
    /// non-empty). Self-loops report as never enabled: they do not change
    /// the configuration.
    pub fn is_enabled(&self, config: &Config, rule: RuleId) -> bool {
        let r = &self.ta.rules[rule.0];
        if r.is_self_loop() {
            return false;
        }
        config.counters[r.from.0] >= 1 && r.guard.eval(&config.shared, &self.params)
    }

    /// All enabled (proper) rules.
    pub fn enabled_rules(&self, config: &Config) -> Vec<RuleId> {
        (0..self.ta.rules.len())
            .map(RuleId)
            .filter(|&r| self.is_enabled(config, r))
            .collect()
    }

    /// Fires `rule` on `config`.
    ///
    /// # Panics
    ///
    /// Panics if the rule is not enabled.
    pub fn apply(&self, config: &Config, rule: RuleId) -> Config {
        assert!(self.is_enabled(config, rule), "rule not enabled");
        let r = &self.ta.rules[rule.0];
        let mut next = config.clone();
        next.counters[r.from.0] -= 1;
        next.counters[r.to.0] += 1;
        for &(v, amount) in &r.update {
            next.shared[v.0] += amount as i64;
        }
        next
    }

    /// Whether the configuration is *justice-stuck*: no proper rule is
    /// enabled, i.e. every rule whose guard holds has an empty source.
    /// Under the paper's reliable-communication assumption, the stable
    /// tail of every fair infinite run is such a configuration.
    pub fn is_stuck(&self, config: &Config) -> bool {
        self.enabled_rules(config).is_empty()
    }

    /// Breadth-first exploration of the reachable state space from all
    /// initial configurations, up to `max_configs` states.
    pub fn explore(&self, max_configs: usize) -> Exploration {
        self.explore_from(self.initial_configs(), max_configs)
    }

    /// Breadth-first exploration from the given configurations.
    pub fn explore_from(&self, roots: Vec<Config>, max_configs: usize) -> Exploration {
        let mut configs: Vec<Config> = Vec::new();
        let mut parent: Vec<Option<(usize, RuleId)>> = Vec::new();
        let mut index: HashMap<Config, usize> = HashMap::new();
        let mut complete = true;
        for root in roots {
            if index.contains_key(&root) {
                continue;
            }
            index.insert(root.clone(), configs.len());
            configs.push(root);
            parent.push(None);
        }
        let mut head = 0;
        while head < configs.len() {
            if configs.len() >= max_configs {
                complete = false;
                break;
            }
            let current = configs[head].clone();
            for rule in self.enabled_rules(&current) {
                let next = self.apply(&current, rule);
                if !index.contains_key(&next) {
                    index.insert(next.clone(), configs.len());
                    configs.push(next);
                    parent.push(Some((head, rule)));
                }
            }
            head += 1;
        }
        Exploration {
            configs,
            parent,
            index,
            complete,
        }
    }

    /// A random maximal run: repeatedly fires a uniformly chosen enabled
    /// rule until the configuration is stuck or `max_steps` is reached.
    /// Returns the visited configurations (first is the start).
    pub fn random_run(
        &self,
        start: Config,
        max_steps: usize,
        rng: &mut impl rand::Rng,
    ) -> Vec<(Option<RuleId>, Config)> {
        let mut trace = vec![(None, start)];
        for _ in 0..max_steps {
            let current = &trace.last().unwrap().1;
            let enabled = self.enabled_rules(current);
            if enabled.is_empty() {
                break;
            }
            let rule = enabled[rng.gen_range(0..enabled.len())];
            let next = self.apply(current, rule);
            trace.push((Some(rule), next));
        }
        trace
    }
}

/// The result of a breadth-first exploration.
#[derive(Debug)]
pub struct Exploration {
    configs: Vec<Config>,
    parent: Vec<Option<(usize, RuleId)>>,
    index: HashMap<Config, usize>,
    complete: bool,
}

impl Exploration {
    /// Whether the whole reachable state space was explored (the budget
    /// was not hit).
    pub fn complete(&self) -> bool {
        self.complete
    }

    /// Number of distinct configurations found.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Whether nothing was explored.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// The configurations, in BFS order.
    pub fn configs(&self) -> &[Config] {
        &self.configs
    }

    /// Finds the first configuration satisfying a predicate.
    pub fn find(&self, pred: impl FnMut(&Config) -> bool) -> Option<usize> {
        self.configs.iter().position(pred)
    }

    /// Whether every explored configuration satisfies the predicate.
    /// Only a proof if [`complete`](Exploration::complete) is true.
    pub fn all(&self, pred: impl FnMut(&Config) -> bool) -> bool {
        self.configs.iter().all(pred)
    }

    /// The index of a configuration, if explored.
    pub fn index_of(&self, c: &Config) -> Option<usize> {
        self.index.get(c).copied()
    }

    /// The rule-labelled path from an initial configuration to the
    /// configuration at `idx`.
    pub fn path_to(&self, idx: usize) -> Vec<(Option<RuleId>, Config)> {
        let mut path = Vec::new();
        let mut current = idx;
        loop {
            match self.parent[current] {
                Some((p, rule)) => {
                    path.push((Some(rule), self.configs[current].clone()));
                    current = p;
                }
                None => {
                    path.push((None, self.configs[current].clone()));
                    break;
                }
            }
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::TaBuilder;
    use crate::expr::{AtomicGuard, Guard, ParamExpr, VarExpr};

    /// A tiny echo automaton: V0/V1 broadcast, D after seeing n-f msgs.
    fn echo() -> ThresholdAutomaton {
        let mut b = TaBuilder::new("echo");
        let n = b.param("n");
        let _t = b.param("t");
        let f = b.param("f");
        let sent = b.shared("sent");
        let v0 = b.initial_location("V0");
        let v1 = b.initial_location("V1");
        let s = b.location("S");
        let d = b.final_location("D");
        b.size_n_minus_f(n, f);
        b.rule("send0", v0, s, Guard::always()).inc(sent, 1);
        b.rule("send1", v1, s, Guard::always()).inc(sent, 1);
        let mut thresh = ParamExpr::param(n);
        thresh.add_term(f, -1);
        b.rule(
            "deliver",
            s,
            d,
            Guard::atom(AtomicGuard::ge(VarExpr::var(sent), thresh)),
        );
        b.build().unwrap()
    }

    #[test]
    fn rejects_bad_params() {
        let ta = echo();
        assert!(matches!(
            CounterSystem::new(&ta, &[4, 1]),
            Err(SemanticsError::ParamArity { .. })
        ));
    }

    #[test]
    fn initial_configs_enumerate_distributions() {
        let ta = echo();
        let sys = CounterSystem::new(&ta, &[4, 1, 1]).unwrap();
        assert_eq!(sys.size(), 3);
        // 3 processes over 2 initial locations: 4 distributions.
        assert_eq!(sys.initial_configs().len(), 4);
        for c in sys.initial_configs() {
            assert_eq!(c.counters.iter().sum::<i64>(), 3);
            assert!(c.shared.iter().all(|&v| v == 0));
        }
    }

    #[test]
    fn exploration_reaches_decisions() {
        let ta = echo();
        let sys = CounterSystem::new(&ta, &[4, 1, 1]).unwrap();
        let ex = sys.explore(100_000);
        assert!(ex.complete());
        let d = ta.location_by_name("D").unwrap();
        // All three processes can deliver.
        let goal = ex
            .find(|c| c.count(d) == 3)
            .expect("full delivery reachable");
        let path = ex.path_to(goal);
        assert_eq!(path.len(), 7); // 3 sends + 3 delivers + initial
        assert!(path[0].0.is_none());
    }

    #[test]
    fn guard_blocks_until_threshold() {
        let ta = echo();
        let sys = CounterSystem::new(&ta, &[4, 1, 1]).unwrap();
        // One process in S, sent = 1 < n - f = 3: deliver disabled.
        let mut counters = vec![0i64; ta.locations.len()];
        counters[ta.location_by_name("S").unwrap().0] = 1;
        counters[ta.location_by_name("V0").unwrap().0] = 2;
        let cfg = Config {
            counters,
            shared: vec![1],
        };
        let deliver = ta.rule_by_name("deliver").unwrap();
        assert!(!sys.is_enabled(&cfg, deliver));
        let send0 = ta.rule_by_name("send0").unwrap();
        assert!(sys.is_enabled(&cfg, send0));
    }

    #[test]
    fn stuck_detection() {
        let ta = echo();
        let sys = CounterSystem::new(&ta, &[4, 1, 1]).unwrap();
        let ex = sys.explore(100_000);
        let d = ta.location_by_name("D").unwrap();
        // The all-delivered configuration is stuck; initial ones are not.
        let goal = ex.find(|c| c.count(d) == 3).unwrap();
        assert!(sys.is_stuck(&ex.configs()[goal]));
        assert!(!sys.is_stuck(&ex.configs()[0]));
    }

    #[test]
    fn random_runs_terminate_at_stuck_configs() {
        use rand::SeedableRng;
        let ta = echo();
        let sys = CounterSystem::new(&ta, &[4, 1, 1]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for start in sys.initial_configs() {
            let trace = sys.random_run(start, 1_000, &mut rng);
            let last = &trace.last().unwrap().1;
            assert!(sys.is_stuck(last), "run should end stuck");
            // Process count is invariant.
            assert_eq!(last.counters.iter().sum::<i64>(), 3);
        }
    }

    #[test]
    fn process_count_is_invariant_across_exploration() {
        let ta = echo();
        let sys = CounterSystem::new(&ta, &[7, 2, 2]).unwrap();
        let ex = sys.explore(100_000);
        assert!(ex.complete());
        assert!(ex.all(|c| c.counters.iter().sum::<i64>() == 5));
    }
}
