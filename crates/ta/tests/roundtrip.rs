//! Property test: every automaton the builder can produce survives a
//! print → parse round trip exactly.

use holistic_ta::{
    parse_ta, to_ta_source, AtomicGuard, Guard, ParamExpr, TaBuilder, ThresholdAutomaton, VarExpr,
};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct TaSpec {
    num_locs: usize,
    second_initial: bool,
    edges: Vec<(usize, usize, u8, bool)>, // from<to encoded, guard kind, has update
    self_loops: Vec<bool>,
}

fn ta_spec() -> impl Strategy<Value = TaSpec> {
    (3usize..=6).prop_flat_map(|num_locs| {
        (
            Just(num_locs),
            any::<bool>(),
            prop::collection::vec(
                (
                    0usize..num_locs - 1,
                    1usize..num_locs,
                    0u8..=3,
                    any::<bool>(),
                ),
                1..=7,
            ),
            prop::collection::vec(any::<bool>(), num_locs),
        )
            .prop_map(|(num_locs, second_initial, raw_edges, self_loops)| TaSpec {
                num_locs,
                second_initial,
                edges: raw_edges
                    .into_iter()
                    .map(|(a, b, g, u)| {
                        let from = a.min(b.saturating_sub(1)).min(num_locs - 2);
                        let to = (from + 1).max(b).min(num_locs - 1);
                        (from, to, g, u)
                    })
                    .collect(),
                self_loops,
            })
    })
}

fn build(spec: &TaSpec) -> ThresholdAutomaton {
    let mut b = TaBuilder::new("prop_ta");
    let n = b.param("n");
    let t = b.param("t");
    let f = b.param("f");
    b.resilience_gt(n, t, 3);
    b.resilience_ge(t, f);
    b.resilience_ge_const(f, 0);
    b.size_n_minus_f(n, f);
    let x = b.shared("x");
    let y = b.shared("y");
    let mut locs = Vec::new();
    for i in 0..spec.num_locs {
        locs.push(if i == 0 || (i == 1 && spec.second_initial) {
            b.initial_location(format!("L{i}"))
        } else if i == spec.num_locs - 1 {
            b.final_location(format!("L{i}"))
        } else {
            b.location(format!("L{i}"))
        });
    }
    for (i, &(from, to, g, upd)) in spec.edges.iter().enumerate() {
        let guard = match g {
            0 => Guard::always(),
            1 => Guard::atom(AtomicGuard::ge(VarExpr::var(x), ParamExpr::constant(1))),
            2 => {
                let mut rhs = ParamExpr::term(t, 2);
                rhs.add_constant(1);
                rhs.add_term(f, -1);
                Guard::atom(AtomicGuard::ge(VarExpr::var(y), rhs))
            }
            _ => {
                let mut lhs = VarExpr::var(x);
                lhs.add_term(y, 1);
                let mut rhs = ParamExpr::param(n);
                rhs.add_term(f, -1);
                Guard::all([
                    AtomicGuard::ge(lhs, rhs),
                    AtomicGuard::ge(VarExpr::var(x), ParamExpr::constant(1)),
                ])
            }
        };
        let handle = b.rule(format!("r{i}"), locs[from], locs[to], guard);
        if upd {
            handle.inc(if g % 2 == 0 { x } else { y }, 1 + (g as u64 % 2));
        }
    }
    for (i, &sl) in spec.self_loops.iter().enumerate() {
        if sl {
            b.self_loop(locs[i]);
        }
    }
    b.build().expect("spec produces a valid automaton")
}

/// Characters the parser's grammar actually traffics in, plus a few
/// alien ones — random soup over these hits keywords, numbers and
/// near-miss punctuation far more often than uniform Unicode would.
const GRAMMAR_SOUP: [char; 40] = [
    'a', 'b', 'l', 'o', 'c', 'r', 'u', 'e', 's', 'i', 'z', 'n', 't', 'f', 'x', 'y', '0', '1', '2',
    '9', ':', ';', ',', '.', '<', '>', '=', '+', '-', '*', '(', ')', '[', ']', '{', '}', ' ', '\n',
    '\t', '\u{3bb}',
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn print_parse_roundtrip(spec in ta_spec()) {
        let ta = build(&spec);
        let printed = to_ta_source(&ta);
        let reparsed = parse_ta(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        prop_assert_eq!(&ta, &reparsed, "\n{}", printed);
    }

    #[test]
    fn malformed_input_errors_never_panic(
        chars in prop::collection::vec(
            prop::sample::select(GRAMMAR_SOUP.to_vec()),
            0..200,
        ),
    ) {
        // Arbitrary soup of grammar-adjacent characters: the parser
        // must return Err (or, for the rare accidentally-valid text,
        // Ok) — never panic.
        let src: String = chars.into_iter().collect();
        let _ = parse_ta(&src);
    }

    #[test]
    fn mangled_valid_source_never_panics(
        spec in ta_spec(),
        cut in 0usize..10_000,
        insert in prop::collection::vec(
            prop::sample::select(GRAMMAR_SOUP.to_vec()),
            0..12,
        ),
    ) {
        // Take a genuinely valid printed automaton and damage it:
        // truncate at an arbitrary position and splice in grammar
        // fragments. The parser sees near-miss inputs (the hard case
        // for panics) and must still fail gracefully.
        let ta = build(&spec);
        let printed = to_ta_source(&ta);
        let pos = cut % (printed.len() + 1); // printed is ASCII
        let truncated = &printed[..pos];
        let _ = parse_ta(truncated);
        let middle: String = insert.into_iter().collect();
        let spliced = format!("{}{}{}", truncated, middle, &printed[pos..]);
        let _ = parse_ta(&spliced);
    }

    #[test]
    fn counter_system_conserves_processes(spec in ta_spec(), steps in 0usize..200) {
        use holistic_ta::CounterSystem;
        use rand::SeedableRng;
        let ta = build(&spec);
        let sys = CounterSystem::new(&ta, &[4, 1, 1]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(steps as u64);
        for start in sys.initial_configs().into_iter().take(3) {
            let trace = sys.random_run(start, steps, &mut rng);
            for (_, config) in &trace {
                prop_assert_eq!(config.counters.iter().sum::<i64>(), sys.size());
                prop_assert!(config.counters.iter().all(|&c| c >= 0));
                prop_assert!(config.shared.iter().all(|&v| v >= 0));
            }
            // Shared variables are monotone along the run.
            for w in trace.windows(2) {
                for (a, b) in w[0].1.shared.iter().zip(&w[1].1.shared) {
                    prop_assert!(a <= b);
                }
            }
        }
    }
}
