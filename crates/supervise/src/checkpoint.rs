//! Versioned on-disk checkpoints for matrix runs.
//!
//! Layout of a checkpoint directory:
//!
//! ```text
//! <dir>/manifest.json   — version, label, master seed, cell ids
//! <dir>/cells/<id>.json — one file per *completed* cell (atomic)
//! <dir>/cache.json      — exploration-cache snapshot (atomic)
//! ```
//!
//! Every file is written to a `.tmp` sibling and renamed into place, so
//! a checkpoint directory is consistent at all times: killing the
//! process mid-write loses at most the cell being written, never a
//! completed one. Cell files round-trip the *full* [`CheckReport`] —
//! verdicts, replay-validated counterexamples, and every
//! [`QueryStats`] field — so a resumed run reports completed cells
//! byte-identically to the uninterrupted run.
//!
//! Numbers that may exceed 2^53 (the automaton fingerprint, the master
//! seed) are stored as decimal strings; `f64` fields use Rust's
//! shortest round-tripping `Display`, never the bench emitter's
//! 3-decimal rounding.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

use holistic_checker::{
    CeStep, CheckReport, Counterexample, ExplorationSnapshot, QueryReport, QueryStats, Strategy,
    Verdict,
};
use holistic_core::json::{num_exact, quote, Json, Writer};
use holistic_lia::SolverStats;
use holistic_ta::{Config, RuleId};

use crate::failure::{FailureKind, Rung};

/// The on-disk format version; bumped on any incompatible change.
/// Version 2 added learned core patterns to exploration snapshots and
/// the core-extraction counters to solver/query statistics.
pub const CHECKPOINT_VERSION: u64 = 2;

/// Errors from opening or reading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(io::Error),
    /// A file failed to parse or had an unexpected shape.
    Malformed(String),
    /// The manifest's version or cell list does not match this run.
    Incompatible(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Malformed(m) => write!(f, "malformed checkpoint: {m}"),
            CheckpointError::Incompatible(m) => write!(f, "incompatible checkpoint: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> CheckpointError {
        CheckpointError::Io(e)
    }
}

/// The checkpoint manifest: what run this directory belongs to.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Manifest {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u64,
    /// Human label of the run (e.g. `table2`).
    pub label: String,
    /// The run's master seed (retries and the simulation rung derive
    /// their RNG streams from it, so a resumed run replays them).
    pub master_seed: u64,
    /// Cell ids of the full matrix, in job order.
    pub cells: Vec<String>,
}

/// One completed cell, exactly as it will be reported.
#[derive(Clone, Debug)]
pub struct CellRecord {
    /// The cell's stable id (also its file name, sanitized).
    pub id: String,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u64,
    /// The ladder rung that produced the verdict.
    pub rung: Rung,
    /// Why full verification failed, for non-definite verdicts.
    pub failure: Option<FailureKind>,
    /// Free-form degradation detail (e.g. the simulation outcome).
    pub note: Option<String>,
    /// The full per-query report.
    pub report: CheckReport,
}

/// A handle to a checkpoint directory.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    dir: PathBuf,
}

impl Checkpoint {
    /// Creates (or re-manifests) a checkpoint directory for a run.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(
        dir: &Path,
        label: &str,
        master_seed: u64,
        cells: &[String],
    ) -> Result<Checkpoint, CheckpointError> {
        fs::create_dir_all(dir.join("cells"))?;
        let cp = Checkpoint {
            dir: dir.to_path_buf(),
        };
        let mut w = Writer::pretty();
        w.begin_obj()
            .field_u64("version", CHECKPOINT_VERSION)
            .field_str("label", label)
            .field_str("master_seed", &master_seed.to_string())
            .key("cells")
            .begin_arr();
        for id in cells {
            w.str_value(id);
        }
        w.end_arr().end_obj();
        cp.write_atomic(&cp.dir.join("manifest.json"), &w.finish())?;
        Ok(cp)
    }

    /// Opens an existing checkpoint and returns its manifest.
    ///
    /// # Errors
    ///
    /// Fails if the directory has no parsable manifest or the version
    /// is from a different format generation.
    pub fn open(dir: &Path) -> Result<(Checkpoint, Manifest), CheckpointError> {
        let raw = fs::read_to_string(dir.join("manifest.json"))?;
        let json = Json::parse(&raw).map_err(CheckpointError::Malformed)?;
        let version = get_u64_number(&json, "version")?;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::Incompatible(format!(
                "checkpoint version {version}, this binary writes {CHECKPOINT_VERSION}"
            )));
        }
        let manifest = Manifest {
            version,
            label: get_str(&json, "label")?.to_owned(),
            master_seed: get_u64_string(&json, "master_seed")?,
            cells: json
                .get("cells")
                .and_then(Json::as_array)
                .ok_or_else(|| CheckpointError::Malformed("manifest cells".into()))?
                .iter()
                .map(|c| {
                    c.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| CheckpointError::Malformed("cell id".into()))
                })
                .collect::<Result<_, _>>()?,
        };
        Ok((
            Checkpoint {
                dir: dir.to_path_buf(),
            },
            manifest,
        ))
    }

    /// The directory this checkpoint lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Atomically records a completed cell.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn record_cell(&self, record: &CellRecord) -> Result<(), CheckpointError> {
        let path = self.dir.join("cells").join(cell_file_name(&record.id));
        self.write_atomic(&path, &cell_to_json(record))
    }

    /// Loads every completed cell present in the checkpoint. Unparsable
    /// cell files are reported as errors (a corrupt checkpoint should
    /// not silently rerun work).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors and malformed cell files.
    pub fn load_cells(&self) -> Result<Vec<CellRecord>, CheckpointError> {
        let mut out = Vec::new();
        let dir = self.dir.join("cells");
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        entries.sort();
        for path in entries {
            let raw = fs::read_to_string(&path)?;
            let json = Json::parse(&raw)
                .map_err(|e| CheckpointError::Malformed(format!("{}: {e}", path.display())))?;
            out.push(cell_from_json(&json)?);
        }
        Ok(out)
    }

    /// Atomically saves an exploration-cache snapshot.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_cache(&self, snapshots: &[ExplorationSnapshot]) -> Result<(), CheckpointError> {
        let mut w = Writer::pretty();
        w.begin_obj()
            .field_u64("version", CHECKPOINT_VERSION)
            .key("explorations")
            .begin_arr();
        for s in snapshots {
            w.begin_obj()
                .field_str("automaton", &s.automaton.to_string())
                .field_raw("globally_empty", &usize_array(&s.globally_empty))
                .field_str("initially", &s.initially)
                .field_u64("copies", s.copies as u64)
                .field_bool("complete", s.complete)
                .field_raw("feasible", &chains_array(&s.feasible))
                .field_raw("infeasible", &chains_array(&s.infeasible))
                .field_raw("cores", &cores_array(&s.cores))
                .end_obj();
        }
        w.end_arr().end_obj();
        self.write_atomic(&self.dir.join("cache.json"), &w.finish())
    }

    /// Loads the exploration-cache snapshot, if one was saved.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors and malformed snapshots.
    pub fn load_cache(&self) -> Result<Vec<ExplorationSnapshot>, CheckpointError> {
        let path = self.dir.join("cache.json");
        let raw = match fs::read_to_string(&path) {
            Ok(raw) => raw,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        let json = Json::parse(&raw).map_err(CheckpointError::Malformed)?;
        let mut out = Vec::new();
        for e in json
            .get("explorations")
            .and_then(Json::as_array)
            .ok_or_else(|| CheckpointError::Malformed("cache explorations".into()))?
        {
            out.push(ExplorationSnapshot {
                automaton: get_u64_string(e, "automaton")?,
                globally_empty: get_usize_array(e, "globally_empty")?,
                initially: get_str(e, "initially")?.to_owned(),
                copies: get_u64_number(e, "copies")? as usize,
                complete: get_bool(e, "complete")?,
                feasible: get_chains(e, "feasible")?,
                infeasible: get_chains(e, "infeasible")?,
                cores: get_cores(e, "cores")?,
            });
        }
        Ok(out)
    }

    fn write_atomic(&self, path: &Path, body: &str) -> Result<(), CheckpointError> {
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, body)?;
        fs::rename(&tmp, path)?;
        Ok(())
    }
}

/// Sanitizes a cell id into a file name: alphanumerics, `-`, `.` and
/// `_` pass through; everything else becomes `_`.
fn cell_file_name(id: &str) -> String {
    let sanitized: String = id
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '.' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    format!("{sanitized}.json")
}

// ---------------------------------------------------------------- emit

fn usize_array(xs: &[usize]) -> String {
    let items: Vec<String> = xs.iter().map(usize::to_string).collect();
    format!("[{}]", items.join(","))
}

fn i64_array(xs: &[i64]) -> String {
    let items: Vec<String> = xs.iter().map(i64::to_string).collect();
    format!("[{}]", items.join(","))
}

fn u64_array(xs: &[u64]) -> String {
    let items: Vec<String> = xs.iter().map(u64::to_string).collect();
    format!("[{}]", items.join(","))
}

fn chains_array(chains: &[Vec<u64>]) -> String {
    let items: Vec<String> = chains.iter().map(|c| u64_array(c)).collect();
    format!("[{}]", items.join(","))
}

/// Core patterns `(mask, held, delta)` as an array of three-element
/// arrays, with the same number encoding (and the same sub-2^53
/// assumption) as the context masks inside feasible/infeasible chains.
fn cores_array(cores: &[(u64, u64, u64)]) -> String {
    let items: Vec<String> = cores
        .iter()
        .map(|&(m, h, d)| format!("[{m},{h},{d}]"))
        .collect();
    format!("[{}]", items.join(","))
}

fn duration_json(d: Duration) -> String {
    format!(
        "{{\"secs\": {}, \"nanos\": {}}}",
        d.as_secs(),
        d.subsec_nanos()
    )
}

fn config_json(c: &Config) -> String {
    format!(
        "{{\"counters\": {}, \"shared\": {}}}",
        i64_array(&c.counters),
        i64_array(&c.shared)
    )
}

fn verdict_json(v: &Verdict) -> String {
    match v {
        Verdict::Verified => "{\"kind\": \"verified\"}".to_owned(),
        Verdict::Unknown(msg) => {
            format!("{{\"kind\": \"unknown\", \"reason\": {}}}", quote(msg))
        }
        Verdict::Violated(ce) => {
            let steps: Vec<String> = ce
                .steps
                .iter()
                .map(|s| {
                    format!(
                        "{{\"segment\": {}, \"rule\": {}, \"times\": {}}}",
                        s.segment, s.rule.0, s.times
                    )
                })
                .collect();
            let boundaries: Vec<String> = ce.boundaries.iter().map(config_json).collect();
            format!(
                "{{\"kind\": \"violated\", \"counterexample\": {{\"params\": {}, \
                 \"initial\": {}, \"steps\": [{}], \"boundaries\": [{}]}}}}",
                i64_array(&ce.params),
                config_json(&ce.initial),
                steps.join(","),
                boundaries.join(",")
            )
        }
    }
}

fn stats_json(s: &QueryStats) -> String {
    let mut w = Writer::compact();
    w.begin_obj()
        .field_u64("schemas", s.schemas as u64)
        .field_raw("avg_segments", &num_exact(s.avg_segments))
        .field_raw("duration", &duration_json(s.duration))
        .field_bool("capped", s.capped)
        .field_bool("timed_out", s.timed_out)
        .field_str("strategy", &s.strategy.to_string())
        .field_u64("cache_hits", s.cache_hits)
        .field_u64("cache_misses", s.cache_misses)
        .field_bool("replayed", s.replayed)
        .field_u64("cores_learned", s.cores_learned)
        .field_u64("schemas_pruned_by_core", s.schemas_pruned_by_core)
        .field_u64("threads", s.threads as u64)
        .key("solver")
        .begin_obj()
        .field_u64("checks", s.solver.checks)
        .field_u64("branch_nodes", s.solver.branch_nodes)
        .field_u64("case_splits", s.solver.case_splits)
        .field_u64("pivots", s.solver.pivots)
        .field_u64("intern_hits", s.solver.intern_hits)
        .field_u64("intern_misses", s.solver.intern_misses)
        .field_u64("cores_extracted", s.solver.cores_extracted)
        .field_u64("core_members", s.solver.core_members)
        .field_u64("core_micros", s.solver.core_micros)
        .field_u64("propagations", s.solver.propagations)
        .field_u64("propagation_refutations", s.solver.propagation_refutations)
        .field_u64("learned_conflicts", s.solver.learned_conflicts)
        .field_u64("disjuncts_skipped", s.solver.disjuncts_skipped)
        .end_obj()
        .end_obj();
    w.finish()
}

fn cell_to_json(r: &CellRecord) -> String {
    let queries: Vec<String> = r
        .report
        .queries
        .iter()
        .map(|q| {
            format!(
                "    {{\"verdict\": {}, \"stats\": {}}}",
                verdict_json(&q.verdict),
                stats_json(&q.stats)
            )
        })
        .collect();
    let failure = match r.failure {
        Some(k) => quote(&k.to_string()),
        None => "null".to_owned(),
    };
    let note = match &r.note {
        Some(n) => quote(n),
        None => "null".to_owned(),
    };
    format!(
        "{{\n  \"version\": {CHECKPOINT_VERSION},\n  \"id\": {},\n  \"attempts\": {},\n  \
         \"rung\": {},\n  \"failure\": {failure},\n  \"note\": {note},\n  \
         \"duration\": {},\n  \"queries\": [\n{}\n  ]\n}}\n",
        quote(&r.id),
        r.attempts,
        quote(&r.rung.to_string()),
        duration_json(r.report.duration),
        queries.join(",\n")
    )
}

// --------------------------------------------------------------- parse

fn malformed(what: &str) -> CheckpointError {
    CheckpointError::Malformed(what.to_owned())
}

fn get_str<'a>(j: &'a Json, key: &str) -> Result<&'a str, CheckpointError> {
    j.get(key).and_then(Json::as_str).ok_or(malformed(key))
}

fn get_bool(j: &Json, key: &str) -> Result<bool, CheckpointError> {
    match j.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(malformed(key)),
    }
}

fn get_f64(j: &Json, key: &str) -> Result<f64, CheckpointError> {
    j.get(key).and_then(Json::as_f64).ok_or(malformed(key))
}

/// A u64 stored as a JSON number (safe only below 2^53).
fn get_u64_number(j: &Json, key: &str) -> Result<u64, CheckpointError> {
    let x = get_f64(j, key)?;
    if x >= 0.0 && x.fract() == 0.0 {
        Ok(x as u64)
    } else {
        Err(malformed(key))
    }
}

/// A u64 stored as a decimal string (full 64-bit range).
fn get_u64_string(j: &Json, key: &str) -> Result<u64, CheckpointError> {
    get_str(j, key)?.parse().map_err(|_| malformed(key))
}

fn get_duration(j: &Json, key: &str) -> Result<Duration, CheckpointError> {
    let d = j.get(key).ok_or(malformed(key))?;
    Ok(Duration::new(
        get_u64_number(d, "secs")?,
        get_u64_number(d, "nanos")? as u32,
    ))
}

fn get_usize_array(j: &Json, key: &str) -> Result<Vec<usize>, CheckpointError> {
    j.get(key)
        .and_then(Json::as_array)
        .ok_or(malformed(key))?
        .iter()
        .map(|x| match x.as_f64() {
            Some(v) if v >= 0.0 && v.fract() == 0.0 => Ok(v as usize),
            _ => Err(malformed(key)),
        })
        .collect()
}

fn get_i64_array(j: &Json, key: &str) -> Result<Vec<i64>, CheckpointError> {
    j.get(key)
        .and_then(Json::as_array)
        .ok_or(malformed(key))?
        .iter()
        .map(|x| match x.as_f64() {
            Some(v) if v.fract() == 0.0 => Ok(v as i64),
            _ => Err(malformed(key)),
        })
        .collect()
}

fn get_cores(j: &Json, key: &str) -> Result<Vec<(u64, u64, u64)>, CheckpointError> {
    get_chains(j, key)?
        .into_iter()
        .map(|entry| match entry[..] {
            [m, h, d] => Ok((m, h, d)),
            // Checkpoints from before held-conditioned patterns store
            // pairs; they are the unconditional `held = 0` case.
            [m, d] => Ok((m, 0, d)),
            _ => Err(malformed(key)),
        })
        .collect()
}

fn get_chains(j: &Json, key: &str) -> Result<Vec<Vec<u64>>, CheckpointError> {
    j.get(key)
        .and_then(Json::as_array)
        .ok_or(malformed(key))?
        .iter()
        .map(|chain| {
            chain
                .as_array()
                .ok_or(malformed(key))?
                .iter()
                .map(|x| match x.as_f64() {
                    Some(v) if v >= 0.0 && v.fract() == 0.0 => Ok(v as u64),
                    _ => Err(malformed(key)),
                })
                .collect()
        })
        .collect()
}

fn config_from(j: &Json) -> Result<Config, CheckpointError> {
    Ok(Config {
        counters: get_i64_array(j, "counters")?,
        shared: get_i64_array(j, "shared")?,
    })
}

fn verdict_from(j: &Json) -> Result<Verdict, CheckpointError> {
    match get_str(j, "kind")? {
        "verified" => Ok(Verdict::Verified),
        "unknown" => Ok(Verdict::Unknown(get_str(j, "reason")?.to_owned())),
        "violated" => {
            let ce = j.get("counterexample").ok_or(malformed("counterexample"))?;
            let steps = ce
                .get("steps")
                .and_then(Json::as_array)
                .ok_or(malformed("steps"))?
                .iter()
                .map(|s| {
                    Ok(CeStep {
                        segment: get_u64_number(s, "segment")? as usize,
                        rule: RuleId(get_u64_number(s, "rule")? as usize),
                        times: get_u64_number(s, "times")?,
                    })
                })
                .collect::<Result<_, CheckpointError>>()?;
            let boundaries = ce
                .get("boundaries")
                .and_then(Json::as_array)
                .ok_or(malformed("boundaries"))?
                .iter()
                .map(config_from)
                .collect::<Result<_, _>>()?;
            Ok(Verdict::Violated(Box::new(Counterexample {
                params: get_i64_array(ce, "params")?,
                initial: config_from(ce.get("initial").ok_or(malformed("initial"))?)?,
                steps,
                boundaries,
            })))
        }
        other => Err(CheckpointError::Malformed(format!(
            "unknown verdict kind {other:?}"
        ))),
    }
}

fn strategy_from(s: &str) -> Result<Strategy, CheckpointError> {
    match s {
        "auto" => Ok(Strategy::Auto),
        "enumerate" => Ok(Strategy::Enumerate),
        "monolithic" => Ok(Strategy::Monolithic),
        other => Err(CheckpointError::Malformed(format!(
            "unknown strategy {other:?}"
        ))),
    }
}

fn stats_from(j: &Json) -> Result<QueryStats, CheckpointError> {
    let solver = j.get("solver").ok_or(malformed("solver"))?;
    Ok(QueryStats {
        schemas: get_u64_number(j, "schemas")? as usize,
        avg_segments: get_f64(j, "avg_segments")?,
        duration: get_duration(j, "duration")?,
        capped: get_bool(j, "capped")?,
        timed_out: get_bool(j, "timed_out")?,
        strategy: strategy_from(get_str(j, "strategy")?)?,
        solver: SolverStats {
            checks: get_u64_number(solver, "checks")?,
            branch_nodes: get_u64_number(solver, "branch_nodes")?,
            case_splits: get_u64_number(solver, "case_splits")?,
            pivots: get_u64_number(solver, "pivots")?,
            intern_hits: get_u64_number(solver, "intern_hits")?,
            intern_misses: get_u64_number(solver, "intern_misses")?,
            cores_extracted: get_u64_number(solver, "cores_extracted")?,
            core_members: get_u64_number(solver, "core_members")?,
            core_micros: get_u64_number(solver, "core_micros")?,
            // Absent in checkpoints written before the propagation
            // layer existed; resuming one is still valid.
            propagations: get_u64_number(solver, "propagations").unwrap_or(0),
            propagation_refutations: get_u64_number(solver, "propagation_refutations").unwrap_or(0),
            learned_conflicts: get_u64_number(solver, "learned_conflicts").unwrap_or(0),
            disjuncts_skipped: get_u64_number(solver, "disjuncts_skipped").unwrap_or(0),
        },
        cache_hits: get_u64_number(j, "cache_hits")?,
        cache_misses: get_u64_number(j, "cache_misses")?,
        replayed: get_bool(j, "replayed")?,
        cores_learned: get_u64_number(j, "cores_learned")?,
        schemas_pruned_by_core: get_u64_number(j, "schemas_pruned_by_core")?,
        threads: get_u64_number(j, "threads")? as usize,
    })
}

fn cell_from_json(j: &Json) -> Result<CellRecord, CheckpointError> {
    let version = get_u64_number(j, "version")?;
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::Incompatible(format!(
            "cell version {version}"
        )));
    }
    let failure = match j.get("failure") {
        Some(Json::Null) | None => None,
        Some(Json::Str(s)) => Some(
            FailureKind::parse(s)
                .ok_or_else(|| CheckpointError::Malformed(format!("failure kind {s:?}")))?,
        ),
        _ => return Err(malformed("failure")),
    };
    let note = match j.get("note") {
        Some(Json::Null) | None => None,
        Some(Json::Str(s)) => Some(s.clone()),
        _ => return Err(malformed("note")),
    };
    let queries = j
        .get("queries")
        .and_then(Json::as_array)
        .ok_or(malformed("queries"))?
        .iter()
        .map(|q| {
            Ok(QueryReport {
                verdict: verdict_from(q.get("verdict").ok_or(malformed("verdict"))?)?,
                stats: stats_from(q.get("stats").ok_or(malformed("stats"))?)?,
            })
        })
        .collect::<Result<_, CheckpointError>>()?;
    Ok(CellRecord {
        id: get_str(j, "id")?.to_owned(),
        attempts: get_u64_number(j, "attempts")?,
        rung: Rung::parse(get_str(j, "rung")?).ok_or(malformed("rung"))?,
        failure,
        note,
        report: CheckReport {
            queries,
            duration: get_duration(j, "duration")?,
        },
    })
}

/// Whether two cell reports are equivalent for resume purposes: equal
/// verdicts (including full counterexamples) and equal stats in every
/// field except wall-clock durations.
pub fn reports_equivalent(a: &CheckReport, b: &CheckReport) -> bool {
    a.queries.len() == b.queries.len()
        && a.queries.iter().zip(&b.queries).all(|(x, y)| {
            format!("{:?}", x.verdict) == format!("{:?}", y.verdict)
                && stats_equivalent(&x.stats, &y.stats)
        })
}

/// [`QueryStats`] equality modulo wall-clock measurements: the
/// `duration` field and the solver's `core_micros` (the one timing
/// counter inside [`SolverStats`]).
pub fn stats_equivalent(a: &QueryStats, b: &QueryStats) -> bool {
    let solver_equivalent = {
        let (mut x, mut y) = (a.solver, b.solver);
        x.core_micros = 0;
        y.core_micros = 0;
        x == y
    };
    a.schemas == b.schemas
        && a.avg_segments == b.avg_segments
        && a.capped == b.capped
        && a.timed_out == b.timed_out
        && a.strategy == b.strategy
        && solver_equivalent
        && a.cache_hits == b.cache_hits
        && a.cache_misses == b.cache_misses
        && a.replayed == b.replayed
        && a.cores_learned == b.cores_learned
        && a.schemas_pruned_by_core == b.schemas_pruned_by_core
        && a.threads == b.threads
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(id: &str) -> CellRecord {
        let ce = Counterexample {
            params: vec![4, 1, 1],
            initial: Config {
                counters: vec![3, 0, 0],
                shared: vec![0],
            },
            steps: vec![CeStep {
                segment: 0,
                rule: RuleId(2),
                times: 3,
            }],
            boundaries: vec![
                Config {
                    counters: vec![3, 0, 0],
                    shared: vec![0],
                },
                Config {
                    counters: vec![0, 3, 0],
                    shared: vec![1],
                },
            ],
        };
        CellRecord {
            id: id.to_owned(),
            attempts: 2,
            rung: Rung::DepthBounded,
            failure: Some(FailureKind::TimeBudget),
            note: Some("stepped down after \"timeout\"".to_owned()),
            report: CheckReport {
                queries: vec![
                    QueryReport {
                        verdict: Verdict::Violated(Box::new(ce)),
                        stats: QueryStats {
                            schemas: 7,
                            avg_segments: 13.0 / 3.0,
                            duration: Duration::from_millis(123),
                            capped: false,
                            timed_out: true,
                            strategy: Strategy::Enumerate,
                            solver: SolverStats {
                                checks: 11,
                                branch_nodes: 5,
                                case_splits: 2,
                                pivots: 999,
                                intern_hits: 1,
                                intern_misses: 4,
                                cores_extracted: 2,
                                core_members: 7,
                                core_micros: 314,
                                propagations: 21,
                                propagation_refutations: 6,
                                learned_conflicts: 3,
                                disjuncts_skipped: 9,
                            },
                            cache_hits: 3,
                            cache_misses: 4,
                            replayed: false,
                            cores_learned: 2,
                            schemas_pruned_by_core: 5,
                            threads: 1,
                        },
                    },
                    QueryReport {
                        verdict: Verdict::Unknown("worker panic: boom".to_owned()),
                        stats: QueryStats {
                            schemas: 0,
                            avg_segments: 0.1 + 0.2, // deliberately inexact
                            duration: Duration::ZERO,
                            capped: true,
                            timed_out: false,
                            strategy: Strategy::Auto,
                            solver: SolverStats::default(),
                            cache_hits: 0,
                            cache_misses: 0,
                            replayed: true,
                            cores_learned: 0,
                            schemas_pruned_by_core: 0,
                            threads: 8,
                        },
                    },
                ],
                duration: Duration::new(1, 999_999_999),
            },
        }
    }

    #[test]
    fn cell_record_round_trips_byte_identically() {
        let rec = sample_record("bv/BV-Just0");
        let json = cell_to_json(&rec);
        let back = cell_from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back.id, rec.id);
        assert_eq!(back.attempts, rec.attempts);
        assert_eq!(back.rung, rec.rung);
        assert_eq!(back.failure, rec.failure);
        assert_eq!(back.note, rec.note);
        assert_eq!(back.report.duration, rec.report.duration);
        assert!(reports_equivalent(&back.report, &rec.report));
        // Durations must round-trip exactly too (nanosecond fields).
        for (a, b) in back.report.queries.iter().zip(&rec.report.queries) {
            assert_eq!(a.stats.duration, b.stats.duration);
            // Bitwise f64 equality, not approximate.
            assert_eq!(
                a.stats.avg_segments.to_bits(),
                b.stats.avg_segments.to_bits()
            );
        }
    }

    #[test]
    fn checkpoint_files_survive_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "holistic-cp-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let cells = vec!["a/one".to_owned(), "a/two".to_owned()];
        let cp = Checkpoint::create(&dir, "unit", u64::MAX - 7, &cells).unwrap();
        cp.record_cell(&sample_record("a/one")).unwrap();
        let snapshots = vec![ExplorationSnapshot {
            automaton: u64::MAX - 1, // exceeds 2^53: must survive as a string
            globally_empty: vec![1, 4],
            initially: "True".to_owned(),
            copies: 2,
            feasible: vec![vec![0], vec![0, 2]],
            infeasible: vec![vec![1]],
            cores: vec![(0, 0, 1), (2, 1, 4)],
            complete: true,
        }];
        cp.save_cache(&snapshots).unwrap();

        let (cp2, manifest) = Checkpoint::open(&dir).unwrap();
        assert_eq!(manifest.version, CHECKPOINT_VERSION);
        assert_eq!(manifest.label, "unit");
        assert_eq!(manifest.master_seed, u64::MAX - 7);
        assert_eq!(manifest.cells, cells);
        let loaded = cp2.load_cells().unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].id, "a/one");
        assert_eq!(cp2.load_cache().unwrap(), snapshots);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn ids_sanitize_into_distinct_files() {
        assert_eq!(cell_file_name("bv/BV-Just0"), "bv_BV-Just0.json");
        assert_eq!(cell_file_name("a b"), "a_b.json");
    }
}
