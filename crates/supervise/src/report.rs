//! Human- and machine-readable rendering of supervised matrix runs.

use std::fmt::Write as _;

use holistic_checker::Verdict;
use holistic_core::json::escape;

use crate::supervisor::MatrixRunReport;

/// The short verdict word used in both renderings.
fn verdict_word(v: &Verdict) -> &'static str {
    match v {
        Verdict::Verified => "verified",
        Verdict::Violated(_) => "violated",
        Verdict::Unknown(_) => "unknown",
    }
}

/// Renders the run as an aligned text table.
pub fn render(report: &MatrixRunReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<32} {:<10} {:<14} {:<16} {:>8} {:>8}",
        "cell", "verdict", "rung", "failure", "attempts", "resumed"
    );
    for cell in &report.cells {
        let r = &cell.record;
        let _ = writeln!(
            out,
            "{:<32} {:<10} {:<14} {:<16} {:>8} {:>8}",
            r.id,
            verdict_word(&r.report.verdict()),
            r.rung.as_str(),
            r.failure.map_or("-", |f| f.as_str()),
            r.attempts,
            if cell.resumed { "yes" } else { "no" },
        );
    }
    let _ = writeln!(
        out,
        "{} cells ({} resumed) in {:.2?}; checkpoint overhead {:.2?}",
        report.cells.len(),
        report.resumed_cells(),
        report.duration,
        report.checkpoint_overhead,
    );
    out
}

/// Renders the run as a JSON document (schema version 1).
pub fn to_json(label: &str, report: &MatrixRunReport) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"schema_version\": 1,\n  \"label\": \"{}\",\n  \
         \"duration_secs\": {:.6},\n  \"checkpoint_overhead_secs\": {:.6},\n  \
         \"resumed_cells\": {},\n  \"cells\": [",
        escape(label),
        report.duration.as_secs_f64(),
        report.checkpoint_overhead.as_secs_f64(),
        report.resumed_cells(),
    );
    for (i, cell) in report.cells.iter().enumerate() {
        let r = &cell.record;
        let sep = if i == 0 { "" } else { "," };
        let failure = r.failure.map_or("null".to_owned(), |f| format!("\"{f}\""));
        let note = r
            .note
            .as_deref()
            .map_or("null".to_owned(), |n| format!("\"{}\"", escape(n)));
        let _ = write!(
            out,
            "{sep}\n    {{\"id\": \"{}\", \"verdict\": \"{}\", \"rung\": \"{}\", \
             \"failure\": {failure}, \"attempts\": {}, \"resumed\": {}, \"note\": {note}}}",
            escape(&r.id),
            verdict_word(&r.report.verdict()),
            r.rung,
            r.attempts,
            cell.resumed,
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}
