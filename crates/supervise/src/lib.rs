//! # holistic-supervise — the resilient verification supervisor
//!
//! The paper's holistic pipeline only pays off if the checker can grind
//! through large property×automaton matrices without a single stalled
//! query, solver overflow or worker panic discarding hours of
//! exploration. This crate wraps [`holistic_checker`]'s matrix
//! scheduler in three robustness layers:
//!
//! 1. **Checkpoint/resume** ([`checkpoint`]) — every completed cell and
//!    the cross-property exploration cache are persisted to a versioned
//!    on-disk checkpoint with atomic writes; a resumed run loads the
//!    finished cells, warm-starts the cache and computes only the
//!    remainder, reporting completed cells byte-identically.
//! 2. **Worker isolation + retry** ([`supervisor`], [`failure`]) — each
//!    cell runs panic-isolated; failures are classified into a
//!    structured [`FailureKind`] taxonomy and transient ones retried
//!    with exponential backoff and seeded jitter.
//! 3. **Graceful degradation** ([`supervisor`]) — cells that exhaust a
//!    budget step down full verification → depth-bounded check →
//!    seeded simulation-based falsification, and the report records
//!    which [`Rung`] produced each verdict.
//!
//! The `HOLISTIC_CHAOS` hook ([`chaos`]) lets CI inject worker panics
//! and tiny budgets into real binaries to exercise all three layers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod checkpoint;
pub mod failure;
pub mod memory;
pub mod report;
pub mod supervisor;

pub use chaos::ChaosOptions;
pub use checkpoint::{
    reports_equivalent, stats_equivalent, CellRecord, Checkpoint, CheckpointError, Manifest,
    CHECKPOINT_VERSION,
};
pub use failure::{FailureKind, Rung};
pub use supervisor::{
    CellOutcome, LadderConfig, MatrixRunReport, SupervisedJob, Supervisor, SupervisorConfig,
};
