//! The `HOLISTIC_CHAOS` fault-injection hook.
//!
//! CI's chaos-smoke job sets `HOLISTIC_CHAOS="panic-every=40,budget-ms=50"`
//! to drive a matrix run through injected worker panics and a tiny time
//! budget, exercising the supervisor's isolation, retry and degradation
//! paths without any test-only code in the binaries.

use std::time::Duration;

use holistic_checker::{ChaosConfig, CheckerConfig};

/// Parsed chaos directives.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ChaosOptions {
    /// Panic on every Nth feasibility decision (0 = off); forwarded to
    /// [`ChaosConfig::panic_every`].
    pub panic_every: u64,
    /// Override the checker's wall-clock budget, in milliseconds.
    pub budget_ms: Option<u64>,
}

impl ChaosOptions {
    /// Reads `HOLISTIC_CHAOS` from the environment. `None` when unset
    /// or empty; panics on a malformed value (CI misconfiguration
    /// should be loud, not silently ignored).
    pub fn from_env() -> Option<ChaosOptions> {
        let raw = std::env::var("HOLISTIC_CHAOS").ok()?;
        if raw.trim().is_empty() {
            return None;
        }
        match ChaosOptions::parse(&raw) {
            Ok(opts) => Some(opts),
            Err(e) => panic!("malformed HOLISTIC_CHAOS={raw:?}: {e}"),
        }
    }

    /// Parses a directive string: comma-separated `key=value` pairs
    /// with keys `panic-every` (u64) and `budget-ms` (u64).
    pub fn parse(s: &str) -> Result<ChaosOptions, String> {
        let mut opts = ChaosOptions::default();
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {part:?}"))?;
            let value: u64 = value
                .trim()
                .parse()
                .map_err(|_| format!("{key}: expected an integer, got {value:?}"))?;
            match key.trim() {
                "panic-every" => opts.panic_every = value,
                "budget-ms" => opts.budget_ms = Some(value),
                other => return Err(format!("unknown chaos key {other:?}")),
            }
        }
        Ok(opts)
    }

    /// Applies the directives to a checker configuration.
    pub fn apply(&self, config: &mut CheckerConfig) {
        if self.panic_every > 0 {
            config.chaos = ChaosConfig {
                panic_every: self.panic_every,
            };
        }
        if let Some(ms) = self.budget_ms {
            config.time_budget = Some(Duration::from_millis(ms));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_directives() {
        let opts = ChaosOptions::parse("panic-every=40, budget-ms=50").unwrap();
        assert_eq!(opts.panic_every, 40);
        assert_eq!(opts.budget_ms, Some(50));
        let mut cfg = CheckerConfig::default();
        opts.apply(&mut cfg);
        assert_eq!(cfg.chaos.panic_every, 40);
        assert_eq!(cfg.time_budget, Some(Duration::from_millis(50)));
    }

    #[test]
    fn rejects_malformed_directives() {
        assert!(ChaosOptions::parse("panic-every").is_err());
        assert!(ChaosOptions::parse("panic-every=x").is_err());
        assert!(ChaosOptions::parse("frobnicate=1").is_err());
        assert_eq!(ChaosOptions::parse("").unwrap(), ChaosOptions::default());
    }
}
