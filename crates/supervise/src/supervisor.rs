//! The resilient matrix supervisor.
//!
//! [`Supervisor::run`] drives a property×automaton matrix to a verdict
//! for *every* cell, no matter what individual cells do:
//!
//! * **isolation** — each cell runs through
//!   [`Checker::check_cell`], so a worker panic becomes a per-cell
//!   `Unknown` instead of aborting the run;
//! * **retry** — transient failures (panics) are retried a bounded
//!   number of times with exponential backoff and seeded jitter;
//! * **degradation** — cells that exhaust their time budget, memory
//!   watermark, schema cap or retries step down the ladder
//!   (full → depth-bounded → simulation, see
//!   [`Rung`](crate::failure::Rung)) so the report still says
//!   *something* checked about the property;
//! * **checkpointing** — completed cells and the exploration cache are
//!   persisted after every cell, so a killed run resumes without
//!   losing finished work.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use holistic_checker::{
    CheckReport, Checker, CheckerConfig, MatrixJob, QueryReport, QueryStats, Strategy, Verdict,
};
use holistic_lia::SolverStats;
use holistic_ltl::{Justice, Ltl};
use holistic_sim::FaultPlan;
use holistic_ta::ThresholdAutomaton;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::checkpoint::{CellRecord, Checkpoint, CheckpointError};
use crate::failure::{FailureKind, Rung};
use crate::memory;

/// The degradation-ladder knobs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LadderConfig {
    /// Whether to step down at all (off = report the failure as-is).
    pub enabled: bool,
    /// Rung-2 schema bound for the depth-bounded re-check.
    pub depth_schemas: usize,
    /// Rung-2 wall-clock budget.
    pub depth_budget: Option<Duration>,
    /// Rung-3 scenario cap (0 = the full standard sweep).
    pub sim_scenarios: usize,
}

impl Default for LadderConfig {
    fn default() -> LadderConfig {
        LadderConfig {
            enabled: true,
            depth_schemas: 64,
            depth_budget: Some(Duration::from_secs(5)),
            sim_scenarios: 12,
        }
    }
}

/// Supervisor configuration.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// The checker configuration used at full strength (rung 1).
    pub checker: CheckerConfig,
    /// Concurrent cells (1 = deterministic sequential run).
    pub workers: usize,
    /// Retries after the first attempt for transient failures.
    pub max_retries: u64,
    /// Base backoff delay; attempt `k` waits `base * 2^(k-1)` plus
    /// jitter, capped at [`backoff_cap`](SupervisorConfig::backoff_cap).
    pub backoff_base: Duration,
    /// Upper bound on a single backoff sleep.
    pub backoff_cap: Duration,
    /// Flush the exploration-cache snapshot every N completed cells
    /// (cells themselves are always persisted immediately). `1` keeps
    /// the cache exactly in step with the cells, which is what the
    /// byte-identical-resume guarantee needs.
    pub checkpoint_every: usize,
    /// Resident-set watermark in KiB; when crossed, new full-strength
    /// attempts are skipped and the cell degrades with
    /// [`FailureKind::MemoryBudget`].
    pub memory_budget_kb: Option<u64>,
    /// The degradation ladder.
    pub ladder: LadderConfig,
    /// Master seed: retry jitter and simulation scenarios derive from
    /// it, so runs (and resumed runs) are reproducible.
    pub master_seed: u64,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            checker: CheckerConfig::default(),
            workers: 1,
            max_retries: 2,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            checkpoint_every: 1,
            memory_budget_kb: None,
            ladder: LadderConfig::default(),
            master_seed: 0,
        }
    }
}

/// One supervised matrix cell.
pub struct SupervisedJob<'a> {
    /// Stable id, unique within the run (doubles as the checkpoint
    /// file name after sanitization).
    pub id: String,
    /// The paper property name (picks the simulation monitor on
    /// rung 3).
    pub property: String,
    /// The automaton.
    pub ta: &'a ThresholdAutomaton,
    /// The LTL property.
    pub spec: &'a Ltl,
    /// The justice assumption.
    pub justice: &'a Justice,
}

/// One cell's outcome in the final report.
#[derive(Clone, Debug)]
pub struct CellOutcome {
    /// The record (identical whether computed now or resumed).
    pub record: CellRecord,
    /// Whether the record was loaded from a checkpoint instead of
    /// recomputed.
    pub resumed: bool,
}

/// The outcome of a supervised matrix run.
#[derive(Clone, Debug)]
pub struct MatrixRunReport {
    /// Per-cell outcomes, in job order.
    pub cells: Vec<CellOutcome>,
    /// Total wall-clock time of this run (excludes resumed cells'
    /// original compute time).
    pub duration: Duration,
    /// Time spent writing checkpoint files (the supervisor overhead
    /// the bench records).
    pub checkpoint_overhead: Duration,
}

impl MatrixRunReport {
    /// Number of cells loaded from the checkpoint.
    pub fn resumed_cells(&self) -> usize {
        self.cells.iter().filter(|c| c.resumed).count()
    }

    /// Whether every cell holds a definite verdict or a classified
    /// failure (the chaos-smoke invariant).
    pub fn all_classified(&self) -> bool {
        self.cells.iter().all(|c| {
            c.record
                .report
                .queries
                .iter()
                .all(|q| !matches!(q.verdict, Verdict::Unknown(_)))
                || c.record.failure.is_some()
        })
    }
}

/// The supervisor. Construct with a [`SupervisorConfig`], then call
/// [`run`](Supervisor::run).
#[derive(Clone, Debug, Default)]
pub struct Supervisor {
    config: SupervisorConfig,
}

struct Shared<'a> {
    checkpoint: Option<&'a Checkpoint>,
    checker: Checker,
    completed: AtomicUsize,
    overhead: Mutex<Duration>,
    errors: Mutex<Vec<CheckpointError>>,
}

impl Supervisor {
    /// A supervisor with the given configuration.
    pub fn new(config: SupervisorConfig) -> Supervisor {
        Supervisor { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SupervisorConfig {
        &self.config
    }

    /// Runs the matrix. With a checkpoint, previously completed cells
    /// are loaded instead of recomputed, the exploration cache is
    /// warm-started from the snapshot, and every newly completed cell
    /// is persisted immediately.
    ///
    /// # Errors
    ///
    /// Returns the first checkpoint I/O error encountered; the
    /// in-memory results for all completed cells are lost in that case
    /// (but previously persisted cells are still on disk).
    pub fn run(
        &self,
        jobs: &[SupervisedJob<'_>],
        checkpoint: Option<&Checkpoint>,
    ) -> Result<MatrixRunReport, CheckpointError> {
        let start = Instant::now();
        let checker = Checker::with_config(self.config.checker.clone());
        let mut done: Vec<Option<CellOutcome>> = (0..jobs.len()).map(|_| None).collect();
        if let Some(cp) = checkpoint {
            for record in cp.load_cells()? {
                if let Some(i) = jobs.iter().position(|j| j.id == record.id) {
                    done[i] = Some(CellOutcome {
                        record,
                        resumed: true,
                    });
                }
            }
            checker.exploration_cache().import(cp.load_cache()?);
        }
        let remaining: Vec<usize> = (0..jobs.len()).filter(|&i| done[i].is_none()).collect();
        let shared = Shared {
            checkpoint,
            checker,
            completed: AtomicUsize::new(0),
            overhead: Mutex::new(Duration::ZERO),
            errors: Mutex::new(Vec::new()),
        };
        let workers = self.config.workers.max(1).min(remaining.len().max(1));
        let fresh: Vec<Mutex<Option<CellOutcome>>> =
            remaining.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        if workers <= 1 {
            for (slot, &job_index) in remaining.iter().enumerate() {
                let outcome = self.run_one(&shared, &jobs[job_index]);
                *fresh[slot].lock().unwrap() = Some(outcome);
            }
        } else {
            // Supervision workers run cells on their own threads; parent
            // their spans under the caller's current span.
            let parent = holistic_obs::current();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let _adopt = holistic_obs::adopt(parent);
                        let slot = next.fetch_add(1, Ordering::SeqCst);
                        if slot >= remaining.len() {
                            break;
                        }
                        let outcome = self.run_one(&shared, &jobs[remaining[slot]]);
                        *fresh[slot].lock().unwrap() = Some(outcome);
                    });
                }
            });
        }
        if let Some(e) = shared.errors.lock().unwrap().pop() {
            return Err(e);
        }
        // Final cache flush so the checkpoint is complete even when
        // checkpoint_every > 1.
        if let Some(cp) = shared.checkpoint {
            let t = Instant::now();
            cp.save_cache(&shared.checker.exploration_cache().export())?;
            *shared.overhead.lock().unwrap() += t.elapsed();
        }
        for (slot, &job_index) in remaining.iter().enumerate() {
            done[job_index] = fresh[slot].lock().unwrap().take();
        }
        let checkpoint_overhead = *shared.overhead.lock().unwrap();
        Ok(MatrixRunReport {
            cells: done
                .into_iter()
                .map(|c| c.expect("every cell resolved"))
                .collect(),
            duration: start.elapsed(),
            checkpoint_overhead,
        })
    }

    /// Runs one cell to a record and persists it.
    fn run_one(&self, shared: &Shared<'_>, job: &SupervisedJob<'_>) -> CellOutcome {
        let record = self.supervise_cell(&shared.checker, job);
        if let Some(cp) = shared.checkpoint {
            let t = Instant::now();
            let mut result = cp.record_cell(&record);
            let completed = shared.completed.fetch_add(1, Ordering::SeqCst) + 1;
            let every = self.config.checkpoint_every.max(1);
            if result.is_ok() && completed.is_multiple_of(every) {
                result = cp.save_cache(&shared.checker.exploration_cache().export());
            }
            *shared.overhead.lock().unwrap() += t.elapsed();
            if let Err(e) = result {
                shared.errors.lock().unwrap().push(e);
            }
        }
        CellOutcome {
            record,
            resumed: false,
        }
    }

    /// The retry + degradation state machine for one cell.
    fn supervise_cell(&self, checker: &Checker, job: &SupervisedJob<'_>) -> CellRecord {
        let _span = holistic_obs::span_labeled("supervise.cell", &job.id);
        let matrix_job = MatrixJob {
            ta: job.ta,
            spec: job.spec,
            justice: job.justice,
            label: &job.property,
        };
        let mut attempts = 0u64;
        loop {
            attempts += 1;
            if let Some(limit) = self.config.memory_budget_kb {
                if let Some(rss) = memory::rss_kb().filter(|&rss| rss > limit) {
                    return self.degrade(
                        job,
                        attempts,
                        FailureKind::MemoryBudget,
                        None,
                        Some(format!(
                            "resident set {rss} KiB crossed the {limit} KiB watermark"
                        )),
                    );
                }
            }
            let attempt_span = holistic_obs::span_labeled("supervise.attempt", "full");
            let report = match checker.check_cell(&matrix_job) {
                Ok(report) => report,
                Err(e) => {
                    // Outside the fragment: deterministic, never
                    // retried, and the depth-bounded rung would reject
                    // it identically — only simulation can still probe
                    // the property.
                    return self.degrade(
                        job,
                        attempts,
                        FailureKind::ModelError,
                        None,
                        Some(format!("model rejected: {e}")),
                    );
                }
            };
            drop(attempt_span);
            let failure = report
                .queries
                .iter()
                .find_map(|q| FailureKind::classify(&q.verdict));
            let Some(kind) = failure else {
                return CellRecord {
                    id: job.id.clone(),
                    attempts,
                    rung: Rung::Full,
                    failure: None,
                    note: None,
                    report,
                };
            };
            if kind.is_transient() && attempts <= self.config.max_retries {
                holistic_obs::add("supervise.retries", 1);
                self.backoff(&job.id, attempts);
                continue;
            }
            let kind = if kind.is_transient() {
                FailureKind::RetryExhausted
            } else {
                kind
            };
            return self.degrade(job, attempts, kind, Some(report), None);
        }
    }

    /// Sleeps `base * 2^(attempt-1)` capped, with ±50% seeded jitter so
    /// retried cells don't stampede back in lockstep.
    fn backoff(&self, id: &str, attempt: u64) {
        let exp = self
            .config
            .backoff_base
            .saturating_mul(1u32 << (attempt - 1).min(16) as u32)
            .min(self.config.backoff_cap);
        let mut rng = StdRng::seed_from_u64(
            self.config.master_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ stable_hash(id) ^ attempt,
        );
        let jitter_pct: u64 = rng.gen_range(50..150);
        let delay = exp.mul_f64(jitter_pct as f64 / 100.0);
        if !delay.is_zero() {
            let _span = holistic_obs::span("supervise.backoff");
            holistic_obs::add("supervise.backoff_ms", delay.as_millis() as u64);
            std::thread::sleep(delay);
        }
    }

    /// Steps a failed cell down the ladder. `full` is the full-strength
    /// report when one exists (with its `Unknown` verdicts); `detail`
    /// is an extra note for failures that never produced a report.
    fn degrade(
        &self,
        job: &SupervisedJob<'_>,
        attempts: u64,
        kind: FailureKind,
        full: Option<CheckReport>,
        detail: Option<String>,
    ) -> CellRecord {
        let base = full.unwrap_or_else(|| {
            unknown_report(format!(
                "no full-strength report ({kind}{})",
                detail
                    .as_deref()
                    .map(|d| format!(": {d}"))
                    .unwrap_or_default()
            ))
        });
        let mut record = CellRecord {
            id: job.id.clone(),
            attempts,
            rung: Rung::Full,
            failure: Some(kind),
            note: detail,
            report: base,
        };
        if !self.config.ladder.enabled {
            return record;
        }
        holistic_obs::add("supervise.rung_drops", 1);
        // Rung 2: depth-bounded re-check. A Violated verdict here is
        // real (counterexamples are replay-validated regardless of the
        // bound), and a Verified one means the whole lattice happened
        // to fit inside the bound — both are sound, so either replaces
        // the Unknown report. Skipped for rejected models, which the
        // bounded checker rejects identically.
        if kind != FailureKind::ModelError {
            let _span = holistic_obs::span_labeled("supervise.attempt", "depth-bounded");
            let mut config = self.config.checker.clone();
            config.max_schemas = self.config.ladder.depth_schemas;
            config.time_budget = self.config.ladder.depth_budget;
            config.strategy = Strategy::Enumerate;
            config.threads = Some(1);
            config.chaos = Default::default();
            let bounded = Checker::with_config(config);
            let matrix_job = MatrixJob {
                ta: job.ta,
                spec: job.spec,
                justice: job.justice,
                label: &job.property,
            };
            if let Ok(report) = bounded.check_cell(&matrix_job) {
                let definite = !matches!(report.verdict(), Verdict::Unknown(_));
                if definite {
                    record.rung = Rung::DepthBounded;
                    record.note = Some(format!(
                        "depth-bounded re-check (<= {} schemas) reached a definite verdict",
                        self.config.ladder.depth_schemas
                    ));
                    record.report = report;
                    return record;
                }
            }
        }
        // Rung 3: seeded simulation-based falsification. Concrete
        // adversarial runs can refute the property but never prove it,
        // so the verdict stays Unknown; the note records what the
        // sweep saw.
        let _span = holistic_obs::span_labeled("supervise.attempt", "simulation");
        let seed = self.config.master_seed ^ stable_hash(&job.id);
        let mut plan = FaultPlan::standard(seed);
        if self.config.ladder.sim_scenarios > 0 {
            plan.scenarios.truncate(self.config.ladder.sim_scenarios);
        }
        let monitor = sim_property(&job.property);
        let total = plan.scenarios.len();
        let mut falsified = None;
        for scenario_report in plan.run() {
            let hit = scenario_report
                .violations
                .iter()
                .find(|v| monitor.is_none_or(|m| v.property == m));
            if let Some(v) = hit {
                falsified = Some(format!("{v} [{}]", scenario_report.label));
                break;
            }
        }
        record.rung = Rung::Simulation;
        let sim_note = match falsified {
            Some(v) => format!("simulation falsified the property: {v}"),
            None => format!("property survived {total} seeded adversarial scenarios (seed {seed})"),
        };
        record.note = Some(match record.note.take() {
            Some(prev) => format!("{prev}; {sim_note}"),
            None => sim_note,
        });
        record
    }
}

/// Maps a paper property name to the simulation monitor that watches
/// it. `None` means "count any safety violation" (used for liveness
/// and unrecognized properties, where any monitor hit is still signal).
fn sim_property(property: &str) -> Option<&'static str> {
    if property.contains("Just") {
        Some("BV-Justification")
    } else if property.starts_with("Inv1") || property.contains("Agreement") {
        Some("Agreement")
    } else if property.starts_with("Inv2") || property.contains("Validity") {
        Some("Validity")
    } else {
        None
    }
}

/// A synthetic single-query report for cells that failed before the
/// checker produced one.
fn unknown_report(message: String) -> CheckReport {
    CheckReport {
        queries: vec![QueryReport {
            verdict: Verdict::Unknown(message),
            stats: QueryStats {
                schemas: 0,
                avg_segments: 0.0,
                duration: Duration::ZERO,
                capped: false,
                timed_out: false,
                strategy: Strategy::Auto,
                solver: SolverStats::default(),
                cache_hits: 0,
                cache_misses: 0,
                replayed: false,
                cores_learned: 0,
                schemas_pruned_by_core: 0,
                threads: 1,
            },
        }],
        duration: Duration::ZERO,
    }
}

/// Stable FNV-1a hash of a cell id (deterministic across processes,
/// unlike `DefaultHasher` with random state — resume must reproduce the
/// same jitter and simulation seeds).
fn stable_hash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}
