//! The structured failure taxonomy and the degradation ladder rungs.
//!
//! Every non-`Proved` cell of a supervised matrix run carries a
//! [`FailureKind`] saying *why* full verification did not produce a
//! definite verdict, and a [`Rung`] saying *which level* of the
//! graceful-degradation ladder produced the verdict that was reported.

use std::fmt;

use holistic_checker::{Verdict, WORKER_PANIC_PREFIX};

/// Why a matrix cell failed to produce a definite verdict at full
/// verification strength.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailureKind {
    /// A DFS or matrix worker panicked; the panic was isolated and
    /// translated into an `Unknown` verdict.
    WorkerPanic,
    /// Exact rational arithmetic saturated on `i128` overflow inside
    /// the simplex, so the solver refused to trust its tableau.
    SolverOverflow,
    /// The wall-clock `time_budget` (or the in-pivot deadline) ran out.
    TimeBudget,
    /// The process crossed the supervisor's resident-memory watermark.
    MemoryBudget,
    /// The schema cap bounded the exploration before it finished.
    SchemaCap,
    /// The solver's branch/split budget ran dry.
    SolverBudget,
    /// The model was rejected before exploration (outside the
    /// supported fragment) — deterministic, never retried.
    ModelError,
    /// Bounded retries were exhausted without a definite verdict.
    RetryExhausted,
    /// An `Unknown` verdict that matched no known pattern.
    Other,
}

impl FailureKind {
    /// Classifies a checker verdict: `None` for definite verdicts
    /// (`Verified` / `Violated`), the matching failure otherwise.
    pub fn classify(verdict: &Verdict) -> Option<FailureKind> {
        match verdict {
            Verdict::Verified | Verdict::Violated(_) => None,
            Verdict::Unknown(msg) => Some(FailureKind::classify_message(msg)),
        }
    }

    /// Classifies an `Unknown` reason string by the stable message
    /// fragments the checker and solver emit.
    pub fn classify_message(msg: &str) -> FailureKind {
        if msg.starts_with(WORKER_PANIC_PREFIX) {
            FailureKind::WorkerPanic
        } else if msg.contains("overflowed i128") {
            FailureKind::SolverOverflow
        } else if msg.contains("time budget") || msg.contains("deadline expired") {
            FailureKind::TimeBudget
        } else if msg.contains("exceeded the cap") {
            FailureKind::SchemaCap
        } else if msg.contains("budget exhausted") {
            FailureKind::SolverBudget
        } else {
            FailureKind::Other
        }
    }

    /// Whether a retry could plausibly change the outcome. Panics are
    /// retried (they may be scheduling-dependent or injected);
    /// everything else is deterministic for a fixed configuration.
    pub fn is_transient(self) -> bool {
        matches!(self, FailureKind::WorkerPanic)
    }

    /// The stable kebab-case name used in checkpoint files and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            FailureKind::WorkerPanic => "worker-panic",
            FailureKind::SolverOverflow => "solver-overflow",
            FailureKind::TimeBudget => "time-budget",
            FailureKind::MemoryBudget => "memory-budget",
            FailureKind::SchemaCap => "schema-cap",
            FailureKind::SolverBudget => "solver-budget",
            FailureKind::ModelError => "model-error",
            FailureKind::RetryExhausted => "retry-exhausted",
            FailureKind::Other => "other",
        }
    }

    /// Parses [`as_str`](FailureKind::as_str) back.
    pub fn parse(s: &str) -> Option<FailureKind> {
        Some(match s {
            "worker-panic" => FailureKind::WorkerPanic,
            "solver-overflow" => FailureKind::SolverOverflow,
            "time-budget" => FailureKind::TimeBudget,
            "memory-budget" => FailureKind::MemoryBudget,
            "schema-cap" => FailureKind::SchemaCap,
            "solver-budget" => FailureKind::SolverBudget,
            "model-error" => FailureKind::ModelError,
            "retry-exhausted" => FailureKind::RetryExhausted,
            "other" => FailureKind::Other,
            _ => return None,
        })
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which level of the graceful-degradation ladder produced a cell's
/// reported verdict.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub enum Rung {
    /// Full parameterized verification (the normal path).
    #[default]
    Full,
    /// Depth-bounded exploration: a small schema bound that can still
    /// find (replay-validated) violations but proves nothing beyond
    /// the bound unless the lattice happens to fit inside it.
    DepthBounded,
    /// Seeded simulation-based falsification: adversarial concrete
    /// runs that can refute but never prove.
    Simulation,
}

impl Rung {
    /// The stable kebab-case name used in checkpoint files and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Rung::Full => "full",
            Rung::DepthBounded => "depth-bounded",
            Rung::Simulation => "simulation",
        }
    }

    /// Parses [`as_str`](Rung::as_str) back.
    pub fn parse(s: &str) -> Option<Rung> {
        Some(match s {
            "full" => Rung::Full,
            "depth-bounded" => Rung::DepthBounded,
            "simulation" => Rung::Simulation,
            _ => return None,
        })
    }
}

impl fmt::Display for Rung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_checker_messages() {
        let cases = [
            ("worker panic: boom", FailureKind::WorkerPanic),
            (
                "rational arithmetic overflowed i128",
                FailureKind::SolverOverflow,
            ),
            (
                "time budget of 1s exhausted after 3 schemas",
                FailureKind::TimeBudget,
            ),
            (
                "wall-clock deadline expired mid-check",
                FailureKind::TimeBudget,
            ),
            (
                "schedule DFS exceeded the cap of 100 schemas",
                FailureKind::SchemaCap,
            ),
            (
                "branch-and-bound node budget exhausted",
                FailureKind::SolverBudget,
            ),
            ("mystery", FailureKind::Other),
        ];
        for (msg, kind) in cases {
            assert_eq!(FailureKind::classify_message(msg), kind, "{msg}");
        }
        assert_eq!(FailureKind::classify(&Verdict::Verified), None);
    }

    #[test]
    fn names_round_trip() {
        for kind in [
            FailureKind::WorkerPanic,
            FailureKind::SolverOverflow,
            FailureKind::TimeBudget,
            FailureKind::MemoryBudget,
            FailureKind::SchemaCap,
            FailureKind::SolverBudget,
            FailureKind::ModelError,
            FailureKind::RetryExhausted,
            FailureKind::Other,
        ] {
            assert_eq!(FailureKind::parse(kind.as_str()), Some(kind));
        }
        for rung in [Rung::Full, Rung::DepthBounded, Rung::Simulation] {
            assert_eq!(Rung::parse(rung.as_str()), Some(rung));
        }
        assert_eq!(FailureKind::parse("nope"), None);
        assert_eq!(Rung::parse("nope"), None);
    }
}
