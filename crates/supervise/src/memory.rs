//! Resident-memory probing for the supervisor's memory watermark.

/// The current resident set size in KiB, read from `/proc/self/statm`.
/// `None` on platforms without procfs (the memory watermark is then
/// simply never triggered).
pub fn rss_kb() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let resident_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    // Page size is 4 KiB on every platform this repo targets; statm
    // reports pages, not bytes.
    Some(resident_pages * 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rss_is_positive_on_linux() {
        if std::path::Path::new("/proc/self/statm").exists() {
            assert!(rss_kb().unwrap() > 0);
        }
    }
}
