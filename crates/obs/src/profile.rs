//! Hierarchical self/child time aggregation over a span [`Snapshot`].
//!
//! The profile view answers "where did the wall time go" from the raw
//! span records: per span *name* (a phase — `lia.check`,
//! `checker.feasibility`, …) it reports how many spans closed, their
//! cumulative duration, and the cumulative *self* time (duration minus
//! the duration of direct children). For spans whose children run on
//! worker threads in parallel, child time can exceed the parent's wall
//! time; self time saturates at zero rather than going negative.

use std::collections::HashMap;

use crate::{Snapshot, SpanRecord};

/// Aggregated timing for one span name (or one label of a name).
#[derive(Clone, Debug)]
pub struct Row {
    /// Span name, or label for [`by_label`] rows.
    pub key: String,
    /// Number of closed spans aggregated.
    pub count: u64,
    /// Cumulative span duration, microseconds.
    pub total_us: u64,
    /// Cumulative self time (duration minus direct children),
    /// microseconds, saturating at zero per span.
    pub self_us: u64,
}

/// Duration of each span's direct children, by span id.
fn child_time(spans: &[SpanRecord]) -> HashMap<u64, u64> {
    let mut children: HashMap<u64, u64> = HashMap::new();
    for s in spans {
        if s.parent != 0 {
            *children.entry(s.parent).or_insert(0) += s.dur_us;
        }
    }
    children
}

fn aggregate<K: Fn(&SpanRecord) -> Option<String>>(snapshot: &Snapshot, key: K) -> Vec<Row> {
    let children = child_time(&snapshot.spans);
    let mut rows: HashMap<String, Row> = HashMap::new();
    for s in &snapshot.spans {
        let Some(k) = key(s) else { continue };
        let child = children.get(&s.id).copied().unwrap_or(0);
        let row = rows.entry(k.clone()).or_insert(Row {
            key: k,
            count: 0,
            total_us: 0,
            self_us: 0,
        });
        row.count += 1;
        row.total_us += s.dur_us;
        row.self_us += s.dur_us.saturating_sub(child);
    }
    let mut rows: Vec<Row> = rows.into_values().collect();
    rows.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.key.cmp(&b.key)));
    rows
}

/// Per-phase rows (aggregated by span name), longest total first, name
/// as the deterministic tiebreak.
pub fn by_name(snapshot: &Snapshot) -> Vec<Row> {
    aggregate(snapshot, |s| Some(s.name.to_owned()))
}

/// Per-label rows of one span name (e.g. per property for
/// `checker.cell` spans), longest total first.
pub fn by_label(snapshot: &Snapshot, name: &str) -> Vec<Row> {
    aggregate(snapshot, |s| (s.name == name).then(|| s.label.clone()))
}

/// The single longest span of each name — the "top spans" list,
/// longest first, capped at `top`.
pub fn slowest(snapshot: &Snapshot, top: usize) -> Vec<SpanRecord> {
    let mut best: HashMap<&'static str, SpanRecord> = HashMap::new();
    for s in &snapshot.spans {
        match best.get(s.name) {
            Some(b) if b.dur_us >= s.dur_us => {}
            _ => {
                best.insert(s.name, s.clone());
            }
        }
    }
    let mut spans: Vec<SpanRecord> = best.into_values().collect();
    spans.sort_by(|a, b| b.dur_us.cmp(&a.dur_us).then(a.name.cmp(b.name)));
    spans.truncate(top);
    spans
}

/// Microseconds of `wall_us` attributable to root spans (spans with no
/// parent), as a fraction of `wall_us` in `0.0..=1.0`. The bench root
/// span is opened around the whole run, so a healthy trace attributes
/// ≥95% here.
pub fn coverage(snapshot: &Snapshot, wall_us: u64) -> f64 {
    if wall_us == 0 {
        return 0.0;
    }
    let rooted: u64 = snapshot
        .spans
        .iter()
        .filter(|s| s.parent == 0)
        .map(|s| s.dur_us)
        .sum();
    (rooted as f64 / wall_us as f64).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, parent: u64, name: &'static str, start: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            thread: 0,
            name,
            label: String::new(),
            start_us: start,
            dur_us: dur,
        }
    }

    fn sample() -> Snapshot {
        Snapshot {
            spans: vec![
                rec(1, 0, "run", 0, 100),
                rec(2, 1, "phase_a", 0, 60),
                rec(3, 2, "inner", 5, 20),
                rec(4, 1, "phase_b", 60, 30),
            ],
            counters: Vec::new(),
            histograms: Vec::new(),
        }
    }

    #[test]
    fn self_time_subtracts_direct_children() {
        let rows = by_name(&sample());
        let get = |k: &str| rows.iter().find(|r| r.key == k).unwrap();
        assert_eq!(get("run").total_us, 100);
        assert_eq!(get("run").self_us, 10); // 100 - 60 - 30
        assert_eq!(get("phase_a").self_us, 40); // 60 - 20
        assert_eq!(get("inner").self_us, 20);
        assert_eq!(rows[0].key, "run", "longest total first");
    }

    #[test]
    fn coverage_counts_root_spans_only() {
        let c = coverage(&sample(), 100);
        assert!((c - 1.0).abs() < 1e-9);
        assert_eq!(coverage(&sample(), 0), 0.0);
    }

    #[test]
    fn slowest_keeps_one_span_per_name() {
        let mut snap = sample();
        snap.spans.push(rec(5, 1, "phase_a", 90, 5));
        let top = slowest(&snap, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].name, "run");
        assert_eq!(top[1].name, "phase_a");
        assert_eq!(top[1].dur_us, 60, "the longer phase_a span wins");
    }
}
