//! # holistic-obs — structured observability for the verification stack
//!
//! A zero-dependency span/metrics layer shared by the checker, the LIA
//! solver, the exploration cache, the supervisor and the bench harness.
//! Two design constraints shape everything here:
//!
//! * **Disabled mode is a near-no-op.** The layer is gated by one
//!   process-global [`AtomicBool`]; every instrumentation point pays a
//!   single relaxed load when tracing is off. The perf-smoke CI gate
//!   holds the instrumented binary to within a few percent of the
//!   committed baseline, so this is enforced, not aspirational.
//! * **Enabling tracing is verdict-inert.** Nothing in this crate feeds
//!   back into the instrumented computation: spans and counters are
//!   write-only from the pipeline's point of view. The
//!   `exploration_equivalence` suite pins tracing-on ≡ tracing-off down
//!   to byte-identical verdicts and counterexamples.
//!
//! ## Spans
//!
//! [`span`] opens a timed region closed by RAII drop. Records buffer in
//! a thread-local [`Vec`] and flush to a lock-striped global collector
//! (on buffer pressure and on thread exit), so hot paths never contend
//! on a global lock. Span ids are *stable*: each thread owns a dense
//! sequence embedded under its thread index, so id order equals open
//! order per thread and ids never collide across threads. Parent links
//! come from the opening thread's span stack; worker threads inherit a
//! cross-thread parent via [`adopt`], so an exploration's worker spans
//! hang off the exploration span that spawned them.
//!
//! ## Metrics
//!
//! [`add`] bumps a named monotonic counter in a process-global registry;
//! [`observe`] feeds a power-of-two-bucket histogram. The counters
//! mirror the legacy `SolverStats`/`QueryStats` aggregates at their
//! exact accumulation sites — the `obs_reconciliation` suite asserts the
//! registry totals equal the hand-threaded stats to the last event, so
//! neither pipeline can silently drift or double-count across threads.
//!
//! ## Snapshots
//!
//! [`drain`] flushes the calling thread and takes every buffered span
//! plus a counter/histogram snapshot. [`reset`] clears all global state
//! and invalidates still-buffered records from earlier runs (tests use
//! it to isolate measurements). Spans that are open across a `reset`
//! are discarded on close rather than corrupting the next snapshot.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

pub mod profile;

/// Lock stripes of the global span collector; threads map to stripes by
/// index, so the sequential checker and a handful of workers never
/// share one.
const STRIPES: usize = 8;

/// Thread-local records buffered before a flush to the collector.
const FLUSH_AT: usize = 256;

/// Histogram bucket count: bucket `i` holds values whose bit length is
/// `i` (value 0 goes to bucket 0), i.e. power-of-two ranges.
const HIST_BUCKETS: usize = 64;

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: AtomicU64 = AtomicU64::new(0);
static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);

/// Whether the observability layer is recording. One relaxed load —
/// this is the *entire* cost of every instrumentation point in disabled
/// mode.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off process-wide. Flipping the gate never
/// affects instrumented computations, only whether they are observed.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// The process-global monotonic clock all span timestamps are relative
/// to (microseconds since the first observability call).
fn clock() -> Instant {
    static CLOCK: OnceLock<Instant> = OnceLock::new();
    *CLOCK.get_or_init(Instant::now)
}

fn now_us() -> u64 {
    clock().elapsed().as_micros() as u64
}

/// One closed span: a named, timed region with a parent link.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Stable id: dense per-thread sequence under the thread index, so
    /// per-thread id order is per-thread open order.
    pub id: u64,
    /// The enclosing span's id (`0` = root, no parent).
    pub parent: u64,
    /// Observability thread index (dense, assigned at first use).
    pub thread: u32,
    /// Static span name (`checker.feasibility`, `lia.check`, …).
    pub name: &'static str,
    /// Dynamic detail, e.g. the property a `checker.cell` span ran
    /// (empty when the name says it all).
    pub label: String,
    /// Open time, microseconds since the process trace clock started.
    pub start_us: u64,
    /// Close − open, microseconds.
    pub dur_us: u64,
}

struct Collector {
    stripes: Vec<Mutex<Vec<SpanRecord>>>,
}

fn collector() -> &'static Collector {
    static COLLECTOR: OnceLock<Collector> = OnceLock::new();
    COLLECTOR.get_or_init(|| Collector {
        stripes: (0..STRIPES).map(|_| Mutex::new(Vec::new())).collect(),
    })
}

/// Thread-local tracing state: span stack, adopted cross-thread parent
/// and the pending record buffer.
struct ThreadTrace {
    epoch: u64,
    thread: u32,
    next_seq: u64,
    stack: Vec<u64>,
    adopted: u64,
    buf: Vec<SpanRecord>,
}

impl ThreadTrace {
    fn new() -> ThreadTrace {
        ThreadTrace {
            epoch: EPOCH.load(Ordering::SeqCst),
            thread: NEXT_THREAD.fetch_add(1, Ordering::SeqCst),
            next_seq: 0,
            stack: Vec::new(),
            adopted: 0,
            buf: Vec::new(),
        }
    }

    /// Drops state recorded before the last [`reset`]: stale records
    /// must never leak into the next snapshot.
    fn sync_epoch(&mut self) {
        let epoch = EPOCH.load(Ordering::Relaxed);
        if self.epoch != epoch {
            self.epoch = epoch;
            self.buf.clear();
            self.stack.clear();
            self.adopted = 0;
        }
    }

    fn alloc_id(&mut self) -> u64 {
        self.next_seq += 1;
        // Thread index in the high bits, sequence in the low 40: ids
        // stay unique across threads and below 2^53 (f64-exact for the
        // JSONL trace) for any realistic thread/span count.
        ((self.thread as u64 + 1) << 40) | self.next_seq
    }

    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        if self.epoch != EPOCH.load(Ordering::Relaxed) {
            self.buf.clear();
            return;
        }
        let stripe = self.thread as usize % STRIPES;
        let mut dst = collector().stripes[stripe]
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        dst.append(&mut self.buf);
    }
}

impl Drop for ThreadTrace {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static TLS: RefCell<ThreadTrace> = RefCell::new(ThreadTrace::new());
}

/// An open span, closed (recorded) on drop. Obtained from [`span`] /
/// [`span_labeled`]; inert when tracing was disabled at open.
#[must_use = "a span measures the region until it is dropped"]
pub struct Span {
    id: u64,
    parent: u64,
    name: &'static str,
    label: String,
    start_us: u64,
    epoch: u64,
    armed: bool,
}

impl Span {
    /// The span id, for cross-thread parent adoption via [`adopt`].
    /// `0` when the span is inert (tracing disabled at open).
    pub fn id(&self) -> u64 {
        if self.armed {
            self.id
        } else {
            0
        }
    }
}

fn open_span(name: &'static str, label: String) -> Span {
    if !enabled() {
        return Span {
            id: 0,
            parent: 0,
            name,
            label: String::new(),
            start_us: 0,
            epoch: 0,
            armed: false,
        };
    }
    TLS.with(|tls| {
        let mut t = tls.borrow_mut();
        t.sync_epoch();
        let id = t.alloc_id();
        let parent = t.stack.last().copied().unwrap_or(t.adopted);
        t.stack.push(id);
        Span {
            id,
            parent,
            name,
            label,
            start_us: now_us(),
            epoch: t.epoch,
            armed: true,
        }
    })
}

/// Opens a span; the region closes when the returned guard drops.
#[inline]
pub fn span(name: &'static str) -> Span {
    open_span(name, String::new())
}

/// Opens a span with a dynamic label (e.g. the property being checked).
#[inline]
pub fn span_labeled(name: &'static str, label: &str) -> Span {
    if !enabled() {
        return Span {
            id: 0,
            parent: 0,
            name,
            label: String::new(),
            start_us: 0,
            epoch: 0,
            armed: false,
        };
    }
    open_span(name, label.to_owned())
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let end_us = now_us();
        TLS.with(|tls| {
            let mut t = tls.borrow_mut();
            // A reset between open and close invalidates the record.
            if t.epoch != self.epoch || EPOCH.load(Ordering::Relaxed) != self.epoch {
                t.sync_epoch();
                return;
            }
            // Tolerate out-of-order drops (shouldn't happen with RAII,
            // but a missing id must not corrupt the stack).
            if let Some(pos) = t.stack.iter().rposition(|&id| id == self.id) {
                t.stack.truncate(pos);
            }
            let thread = t.thread;
            t.buf.push(SpanRecord {
                id: self.id,
                parent: self.parent,
                thread,
                name: self.name,
                label: std::mem::take(&mut self.label),
                start_us: self.start_us,
                dur_us: end_us.saturating_sub(self.start_us),
            });
            if t.buf.len() >= FLUSH_AT {
                t.flush();
            }
        });
    }
}

/// The current span id on this thread (innermost open span, or the
/// adopted cross-thread parent, or `0`). Pass it to [`adopt`] on a
/// worker thread so the worker's spans parent here.
pub fn current() -> u64 {
    if !enabled() {
        return 0;
    }
    TLS.with(|tls| {
        let mut t = tls.borrow_mut();
        t.sync_epoch();
        t.stack.last().copied().unwrap_or(t.adopted)
    })
}

/// Guard restoring the previously adopted parent on drop.
#[must_use = "adoption lasts until the guard is dropped"]
pub struct Adopt {
    prev: u64,
    epoch: u64,
    armed: bool,
}

/// Adopts `parent` (a span id from [`current`] on another thread) as
/// the parent of this thread's root-level spans until the guard drops.
pub fn adopt(parent: u64) -> Adopt {
    if !enabled() || parent == 0 {
        return Adopt {
            prev: 0,
            epoch: 0,
            armed: false,
        };
    }
    TLS.with(|tls| {
        let mut t = tls.borrow_mut();
        t.sync_epoch();
        let prev = t.adopted;
        t.adopted = parent;
        Adopt {
            prev,
            epoch: t.epoch,
            armed: true,
        }
    })
}

impl Drop for Adopt {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        TLS.with(|tls| {
            let mut t = tls.borrow_mut();
            if t.epoch == self.epoch {
                t.adopted = self.prev;
            }
        });
    }
}

/// A monotonic counter in the global metrics registry.
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` (unconditionally — the [`enabled`] gate lives in
    /// [`add`]; hold a `&'static Counter` to skip the registry lookup).
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A power-of-two-bucket histogram in the global metrics registry.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
}

impl Histogram {
    /// Records one observation of `v` (bucket = bit length of `v`).
    pub fn observe(&self, v: u64) {
        let bucket = (u64::BITS - v.leading_zeros()) as usize;
        self.buckets[bucket.min(HIST_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs in ascending
    /// bound order.
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then(|| (if i == 0 { 0 } else { 1u64 << (i - 1) }, n))
            })
            .collect()
    }
}

struct Registry {
    counters: Mutex<Vec<(&'static str, &'static Counter)>>,
    histograms: Mutex<Vec<(&'static str, &'static Histogram)>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(Vec::new()),
        histograms: Mutex::new(Vec::new()),
    })
}

/// The counter registered under `name` (registered on first use; the
/// set of names is static, so the one-time leak is bounded).
pub fn counter(name: &'static str) -> &'static Counter {
    let mut counters = registry()
        .counters
        .lock()
        .unwrap_or_else(|p| p.into_inner());
    if let Some((_, c)) = counters.iter().find(|(n, _)| *n == name) {
        return c;
    }
    let c: &'static Counter = Box::leak(Box::new(Counter {
        value: AtomicU64::new(0),
    }));
    counters.push((name, c));
    c
}

/// The histogram registered under `name`.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut histograms = registry()
        .histograms
        .lock()
        .unwrap_or_else(|p| p.into_inner());
    if let Some((_, h)) = histograms.iter().find(|(n, _)| *n == name) {
        return h;
    }
    let h: &'static Histogram = Box::leak(Box::new(Histogram {
        buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
    }));
    histograms.push((name, h));
    h
}

/// Adds `n` to the named counter — a no-op unless [`enabled`] (and when
/// `n == 0`, so zero contributions don't register phantom counters).
#[inline]
pub fn add(name: &'static str, n: u64) {
    if enabled() && n > 0 {
        counter(name).add(n);
    }
}

/// Records one observation into the named histogram when [`enabled`].
#[inline]
pub fn observe(name: &'static str, v: u64) {
    if enabled() {
        histogram(name).observe(v);
    }
}

/// The named counter's current total (`0` when never bumped).
pub fn counter_value(name: &str) -> u64 {
    let counters = registry()
        .counters
        .lock()
        .unwrap_or_else(|p| p.into_inner());
    counters
        .iter()
        .find(|(n, _)| *n == name)
        .map_or(0, |(_, c)| c.get())
}

/// Everything recorded since the last [`reset`]: closed spans (all
/// threads), counter totals and histogram buckets.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Closed spans, sorted by `(thread, id)` — per-thread open order.
    pub spans: Vec<SpanRecord>,
    /// Counter totals, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Histograms as `(name, [(bucket_lower_bound, count)])`, sorted by
    /// name.
    pub histograms: Vec<(String, Vec<(u64, u64)>)>,
}

/// Flushes the calling thread's buffered records to the collector.
/// Worker threads flush implicitly on exit; the main thread calls this
/// (via [`drain`]) before exporting.
pub fn flush() {
    TLS.with(|tls| tls.borrow_mut().flush());
}

/// Flushes the calling thread, then takes every buffered span and
/// snapshots the metrics registry. Spans still buffered on *other live
/// threads* are not included — the pipeline's worker threads are
/// scoped (joined before their exploration returns), so a drain after
/// a run observes everything.
pub fn drain() -> Snapshot {
    flush();
    let mut spans = Vec::new();
    for stripe in &collector().stripes {
        let mut s = stripe.lock().unwrap_or_else(|p| p.into_inner());
        spans.append(&mut s);
    }
    spans.sort_by_key(|s| (s.thread, s.id));
    let counters = {
        let reg = registry()
            .counters
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let mut v: Vec<(String, u64)> = reg
            .iter()
            .map(|(n, c)| ((*n).to_owned(), c.get()))
            .collect();
        v.sort();
        v
    };
    let histograms = {
        let reg = registry()
            .histograms
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let mut v: Vec<(String, Vec<(u64, u64)>)> = reg
            .iter()
            .map(|(n, h)| ((*n).to_owned(), h.snapshot()))
            .collect();
        v.sort();
        v
    };
    Snapshot {
        spans,
        counters,
        histograms,
    }
}

/// Clears all recorded state: collector stripes, counters, histograms,
/// and (lazily, via an epoch bump) every thread's local buffers and
/// adopted parents. Tests call this between measured runs.
pub fn reset() {
    EPOCH.fetch_add(1, Ordering::SeqCst);
    for stripe in &collector().stripes {
        stripe.lock().unwrap_or_else(|p| p.into_inner()).clear();
    }
    {
        let counters = registry()
            .counters
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        for (_, c) in counters.iter() {
            c.value.store(0, Ordering::Relaxed);
        }
    }
    {
        let histograms = registry()
            .histograms
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        for (_, h) in histograms.iter() {
            for b in &h.buckets {
                b.store(0, Ordering::Relaxed);
            }
        }
    }
    TLS.with(|tls| tls.borrow_mut().sync_epoch());
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Obs state is process-global; serialize the tests that toggle it.
    fn lock() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = lock();
        reset();
        set_enabled(false);
        {
            let _s = span("off.outer");
            add("off.counter", 3);
            observe("off.hist", 8);
        }
        let snap = drain();
        assert!(snap.spans.iter().all(|s| s.name != "off.outer"));
        assert_eq!(counter_value("off.counter"), 0);
    }

    #[test]
    fn spans_nest_and_link_parents() {
        let _g = lock();
        reset();
        set_enabled(true);
        {
            let _outer = span("t.outer");
            {
                let _inner = span_labeled("t.inner", "detail");
            }
        }
        set_enabled(false);
        let snap = drain();
        let outer = snap.spans.iter().find(|s| s.name == "t.outer").unwrap();
        let inner = snap.spans.iter().find(|s| s.name == "t.inner").unwrap();
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(inner.label, "detail");
        assert!(inner.start_us >= outer.start_us);
        assert!(inner.start_us + inner.dur_us <= outer.start_us + outer.dur_us + 1);
    }

    #[test]
    fn worker_threads_adopt_and_flush_on_exit() {
        let _g = lock();
        reset();
        set_enabled(true);
        let parent_id;
        {
            let parent = span("t.pool");
            parent_id = parent.id();
            let adopt_id = current();
            assert_eq!(adopt_id, parent_id);
            std::thread::scope(|scope| {
                for _ in 0..3 {
                    scope.spawn(move || {
                        let _adopt = adopt(adopt_id);
                        let _w = span("t.worker");
                        add("t.worker_count", 1);
                    });
                }
            });
        }
        set_enabled(false);
        let snap = drain();
        let workers: Vec<_> = snap.spans.iter().filter(|s| s.name == "t.worker").collect();
        assert_eq!(workers.len(), 3);
        for w in &workers {
            assert_eq!(w.parent, parent_id, "worker spans parent the pool span");
        }
        assert_eq!(counter_value("t.worker_count"), 3);
        // Ids are unique and per-thread monotone in open order.
        let mut ids: Vec<u64> = snap.spans.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), snap.spans.len());
    }

    #[test]
    fn reset_discards_open_spans_and_counters() {
        let _g = lock();
        reset();
        set_enabled(true);
        add("t.stale", 7);
        let open = span("t.stale_span");
        reset(); // invalidates both the counter and the open span
        drop(open);
        add("t.fresh", 2);
        set_enabled(false);
        let snap = drain();
        assert!(snap.spans.iter().all(|s| s.name != "t.stale_span"));
        assert_eq!(counter_value("t.stale"), 0);
        assert_eq!(counter_value("t.fresh"), 2);
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let _g = lock();
        reset();
        set_enabled(true);
        for v in [0, 1, 2, 3, 4, 1000] {
            observe("t.hist", v);
        }
        set_enabled(false);
        let snap = drain();
        let (_, buckets) = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "t.hist")
            .expect("histogram recorded");
        // 0 -> bucket 0; 1 -> [1,2); 2,3 -> [2,4); 4 -> [4,8); 1000 -> [512,1024)
        assert_eq!(buckets, &vec![(0, 1), (1, 1), (2, 2), (4, 1), (512, 1)]);
    }
}
