//! Stability analysis of state propositions.
//!
//! A proposition is **stable** if, once true, it remains true along any
//! run of the counter system. Stability is what lets the checker reduce
//! temporal operators to evaluation at the *stable tail* of a fair run
//! (see the crate docs of `holistic-checker`):
//!
//! * `♢p` with `p` stable ⟺ `p` holds at the tail;
//! * `□¬q` with `q` stable ⟺ `¬q` holds at the tail.
//!
//! Sources of stability in the increment-only TA class:
//!
//! * a **rise** guard (`vars ≥ threshold`) can only flip false → true;
//! * `∧ κ[L] = 0` over a location set `S` is stable iff no rule enters
//!   `S` from outside (emptiness of an inflow-closed set persists);
//! * `∨ κ[L] ≠ 0` over a set `S` is stable iff no rule leaves `S`
//!   (processes inside an outflow-closed set stay inside).
//!
//! The conjunction/disjunction cases are checked **as sets**, which is
//! strictly more precise than atom-by-atom: `C0` alone has outflow to
//! `CB0`, but the union `{C0, CB0, C01}` of the bv-broadcast automaton
//! is outflow-closed, so "value 0 was delivered by someone" is stable
//! even though "someone is in C0" is not.

use holistic_ta::{LocationId, ThresholdAutomaton};

use crate::prop::{Prop, StateAtom};

/// Whether no non-self-loop rule enters `set` from outside it.
pub fn inflow_closed(ta: &ThresholdAutomaton, set: &[LocationId]) -> bool {
    let inside = |l: LocationId| set.contains(&l);
    ta.rules
        .iter()
        .filter(|r| !r.is_self_loop())
        .all(|r| !inside(r.to) || inside(r.from))
}

/// Whether no non-self-loop rule leaves `set`.
pub fn outflow_closed(ta: &ThresholdAutomaton, set: &[LocationId]) -> bool {
    let inside = |l: LocationId| set.contains(&l);
    ta.rules
        .iter()
        .filter(|r| !r.is_self_loop())
        .all(|r| !inside(r.from) || inside(r.to))
}

/// Whether `prop` is stable (once true, true forever) in every run of
/// `ta`. Sound but not complete: a `false` answer means "could not prove
/// stable", upon which classification rejects the formula rather than
/// producing a possibly-wrong verdict.
pub fn is_stable(ta: &ThresholdAutomaton, prop: &Prop) -> bool {
    match prop {
        Prop::True | Prop::False => true,
        Prop::Atom(a) => atom_is_stable(ta, a),
        Prop::And(ps) => {
            // Group the emptiness atoms and check them as one set.
            let mut empties = Vec::new();
            for p in ps {
                match p {
                    Prop::Atom(StateAtom::LocEmpty(l)) => empties.push(*l),
                    other => {
                        if !is_stable(ta, other) {
                            return false;
                        }
                    }
                }
            }
            empties.is_empty() || inflow_closed(ta, &empties)
        }
        Prop::Or(ps) => {
            // Group the non-emptiness atoms and check them as one set.
            let mut nonempties = Vec::new();
            for p in ps {
                match p {
                    Prop::Atom(StateAtom::LocNonEmpty(l)) => nonempties.push(*l),
                    other => {
                        if !is_stable(ta, other) {
                            return false;
                        }
                    }
                }
            }
            nonempties.is_empty() || outflow_closed(ta, &nonempties)
        }
    }
}

fn atom_is_stable(ta: &ThresholdAutomaton, atom: &StateAtom) -> bool {
    match atom {
        StateAtom::LocEmpty(l) => inflow_closed(ta, &[*l]),
        StateAtom::LocNonEmpty(l) => outflow_closed(ta, &[*l]),
        // Rise guards only flip false → true; their truth is stable.
        StateAtom::Guard(g) => g.is_rise(),
        // NotGuard of a fall guard (`¬(vars < th)` = `vars ≥ th`) is
        // rise-like, hence stable; NotGuard of a rise guard is not.
        StateAtom::NotGuard(g) => !g.is_rise(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistic_ta::{AtomicGuard, Guard, ParamExpr, TaBuilder, VarExpr};

    /// V -> A -> B, V -> C; D isolated sink from C.
    fn chain() -> ThresholdAutomaton {
        let mut b = TaBuilder::new("chain");
        let n = b.param("n");
        let f = b.param("f");
        b.size_n_minus_f(n, f);
        let x = b.shared("x");
        let v = b.initial_location("V");
        let a = b.location("A");
        let bb = b.location("B");
        let c = b.location("C");
        let d = b.final_location("D");
        b.rule("r1", v, a, Guard::always()).inc(x, 1);
        b.rule("r2", a, bb, Guard::always());
        b.rule("r3", v, c, Guard::always());
        b.rule("r4", c, d, Guard::always());
        b.self_loop(d);
        b.build().unwrap()
    }

    fn loc(ta: &ThresholdAutomaton, name: &str) -> LocationId {
        ta.location_by_name(name).unwrap()
    }

    #[test]
    fn inflow_and_outflow_closure() {
        let ta = chain();
        let (v, a, bb, c, d) = (
            loc(&ta, "V"),
            loc(&ta, "A"),
            loc(&ta, "B"),
            loc(&ta, "C"),
            loc(&ta, "D"),
        );
        // V has no inflow.
        assert!(inflow_closed(&ta, &[v]));
        // A has inflow from V.
        assert!(!inflow_closed(&ta, &[a]));
        // {V, A} as a set: inflow only from V which is inside.
        assert!(inflow_closed(&ta, &[v, a]));
        // D has no outflow (self-loop ignored).
        assert!(outflow_closed(&ta, &[d]));
        // C flows out to D.
        assert!(!outflow_closed(&ta, &[c]));
        // {C, D} is outflow-closed.
        assert!(outflow_closed(&ta, &[c, d]));
        // {A, B} is outflow-closed and inflow-open.
        assert!(outflow_closed(&ta, &[a, bb]));
        assert!(!inflow_closed(&ta, &[a, bb]));
    }

    #[test]
    fn emptiness_of_initial_location_is_stable() {
        let ta = chain();
        assert!(is_stable(&ta, &Prop::loc_empty(loc(&ta, "V"))));
        assert!(!is_stable(&ta, &Prop::loc_empty(loc(&ta, "A"))));
    }

    #[test]
    fn set_conjunction_is_more_precise_than_atoms() {
        let ta = chain();
        let a = loc(&ta, "A");
        let bb = loc(&ta, "B");
        // κ[B]=0 alone is unstable (inflow from A) but κ[A]=0 ∧ κ[B]=0
        // only has inflow from V... which is outside, so still unstable.
        assert!(!is_stable(&ta, &Prop::loc_empty(bb)));
        assert!(!is_stable(&ta, &Prop::all_empty([a, bb])));
        // Adding V closes the set.
        let v = loc(&ta, "V");
        assert!(is_stable(&ta, &Prop::all_empty([v, a, bb])));
    }

    #[test]
    fn nonemptiness_disjunction_over_closed_set_is_stable() {
        let ta = chain();
        let c = loc(&ta, "C");
        let d = loc(&ta, "D");
        assert!(!is_stable(&ta, &Prop::loc_nonempty(c)));
        assert!(is_stable(&ta, &Prop::any_nonempty([c, d])));
    }

    #[test]
    fn rise_guard_truth_is_stable() {
        let ta = chain();
        let x = ta.variable_by_name("x").unwrap();
        let g = AtomicGuard::ge(VarExpr::var(x), ParamExpr::constant(1));
        assert!(is_stable(&ta, &Prop::guard(g.clone())));
        // Its negation is not.
        assert!(!is_stable(&ta, &Prop::Atom(StateAtom::Guard(g).negate())));
    }

    #[test]
    fn constants_are_vacuously_stable() {
        // `True` and `False` never change truth value along a run, and
        // the simplifying constructors collapse empty (and constant-
        // absorbing) connectives onto them, so classification treats
        // them as stable rather than rejecting the formula.
        let ta = chain();
        assert!(is_stable(&ta, &Prop::True));
        assert!(is_stable(&ta, &Prop::False));
        // Empty location sets collapse to the constants...
        assert!(is_stable(&ta, &Prop::all_empty([])));
        assert!(is_stable(&ta, &Prop::any_nonempty([])));
        // ...and so do connectives over constants.
        assert!(is_stable(&ta, &Prop::and([Prop::True, Prop::True])));
        assert!(is_stable(&ta, &Prop::or([Prop::False, Prop::False])));
    }

    #[test]
    fn connectives_with_constants_keep_real_members_decisive() {
        // `True ∧ p` / `False ∨ p` simplify to `p`: the constant must
        // neither mask an unstable member nor break a stable one.
        let ta = chain();
        let a = loc(&ta, "A");
        let unstable = Prop::loc_empty(a); // inflow from V
        assert!(!is_stable(&ta, &Prop::and([Prop::True, unstable.clone()])));
        assert!(!is_stable(&ta, &Prop::or([Prop::False, unstable])));
        let v = loc(&ta, "V");
        let stable = Prop::loc_empty(v);
        assert!(is_stable(&ta, &Prop::and([Prop::True, stable.clone()])));
        assert!(is_stable(&ta, &Prop::or([Prop::False, stable])));
    }

    #[test]
    fn inflow_outflow_of_the_empty_set_is_closed() {
        // Degenerate set queries must answer "closed", matching the
        // vacuous quantification they encode.
        let ta = chain();
        assert!(inflow_closed(&ta, &[]));
        assert!(outflow_closed(&ta, &[]));
        // And the full location set is always closed both ways.
        let all: Vec<LocationId> = (0..ta.locations.len()).map(LocationId).collect();
        assert!(inflow_closed(&ta, &all));
        assert!(outflow_closed(&ta, &all));
    }

    #[test]
    fn mixed_conjunction() {
        let ta = chain();
        let x = ta.variable_by_name("x").unwrap();
        let g = AtomicGuard::ge(VarExpr::var(x), ParamExpr::constant(1));
        let v = loc(&ta, "V");
        let p = Prop::and([Prop::loc_empty(v), Prop::guard(g)]);
        assert!(is_stable(&ta, &p));
    }
}
