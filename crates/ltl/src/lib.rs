//! # holistic-ltl — the specification layer
//!
//! Linear temporal logic over threshold-automaton state atoms (location
//! emptiness, guard evaluation), as used in §3.2 and §5 of the paper,
//! together with the machinery that makes the fragment checkable:
//!
//! * [`Prop`] / [`StateAtom`] — state propositions;
//! * [`Ltl`] — the temporal layer ([`Ltl::always`], [`Ltl::eventually`],
//!   implications);
//! * [`stability`] — proves propositions *stable* (once true, always
//!   true), the side condition for reducing `♢`/`□` to the stable tail
//!   of a fair run;
//! * [`classify`] — translates a formula into the [`Query`] form the
//!   checker decides, or rejects it with a [`FragmentError`];
//! * [`Justice`] — the reliable-communication fairness, rule-derived or
//!   property-derived (Appendix F).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod formula;
mod justice;
mod prop;
pub mod stability;

pub use formula::{classify, FragmentError, Ltl, Query};
pub use justice::{Justice, JusticeRequirement};
pub use prop::{Prop, StateAtom};
