//! State propositions over threshold-automaton configurations.

use std::fmt;

use holistic_ta::{AtomicGuard, Config, LocationId, ThresholdAutomaton};
use serde::{Deserialize, Serialize};

/// An atomic state predicate, the building block of LTL specifications
/// (§2 of the paper): location emptiness and threshold-guard evaluation.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum StateAtom {
    /// `κ[L] = 0` — no correct process is in `L`.
    LocEmpty(LocationId),
    /// `κ[L] ≠ 0` — at least one correct process is in `L`.
    LocNonEmpty(LocationId),
    /// A threshold comparison holds (e.g. `b0 ≥ t+1`).
    Guard(AtomicGuard),
    /// A threshold comparison does not hold.
    NotGuard(AtomicGuard),
}

impl StateAtom {
    /// The negation of the atom.
    pub fn negate(&self) -> StateAtom {
        match self {
            StateAtom::LocEmpty(l) => StateAtom::LocNonEmpty(*l),
            StateAtom::LocNonEmpty(l) => StateAtom::LocEmpty(*l),
            StateAtom::Guard(g) => StateAtom::NotGuard(g.clone()),
            StateAtom::NotGuard(g) => StateAtom::Guard(g.clone()),
        }
    }

    /// Evaluates the atom in a concrete configuration.
    pub fn eval(&self, config: &Config, params: &[i64]) -> bool {
        match self {
            StateAtom::LocEmpty(l) => config.counters[l.0] == 0,
            StateAtom::LocNonEmpty(l) => config.counters[l.0] != 0,
            StateAtom::Guard(g) => g.eval(&config.shared, params),
            StateAtom::NotGuard(g) => !g.eval(&config.shared, params),
        }
    }
}

/// A positive boolean combination of [`StateAtom`]s. Negation is pushed
/// to the atoms on construction, so the checker never sees `Not`.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Prop {
    /// Trivially true.
    True,
    /// Trivially false.
    False,
    /// An atom.
    Atom(StateAtom),
    /// Conjunction.
    And(Vec<Prop>),
    /// Disjunction.
    Or(Vec<Prop>),
}

impl Prop {
    /// `κ[L] = 0`.
    pub fn loc_empty(l: LocationId) -> Prop {
        Prop::Atom(StateAtom::LocEmpty(l))
    }

    /// `κ[L] ≠ 0`.
    pub fn loc_nonempty(l: LocationId) -> Prop {
        Prop::Atom(StateAtom::LocNonEmpty(l))
    }

    /// A threshold comparison.
    pub fn guard(g: AtomicGuard) -> Prop {
        Prop::Atom(StateAtom::Guard(g))
    }

    /// `∧ κ[L] = 0` over a set of locations.
    pub fn all_empty(locs: impl IntoIterator<Item = LocationId>) -> Prop {
        Prop::and(locs.into_iter().map(Prop::loc_empty))
    }

    /// `∨ κ[L] ≠ 0` over a set of locations.
    pub fn any_nonempty(locs: impl IntoIterator<Item = LocationId>) -> Prop {
        Prop::or(locs.into_iter().map(Prop::loc_nonempty))
    }

    /// Simplifying conjunction.
    pub fn and(ps: impl IntoIterator<Item = Prop>) -> Prop {
        let mut out = Vec::new();
        for p in ps {
            match p {
                Prop::True => {}
                Prop::False => return Prop::False,
                Prop::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Prop::True,
            1 => out.pop().unwrap(),
            _ => Prop::And(out),
        }
    }

    /// Simplifying disjunction.
    pub fn or(ps: impl IntoIterator<Item = Prop>) -> Prop {
        let mut out = Vec::new();
        for p in ps {
            match p {
                Prop::False => {}
                Prop::True => return Prop::True,
                Prop::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Prop::False,
            1 => out.pop().unwrap(),
            _ => Prop::Or(out),
        }
    }

    /// The negation, pushed down to the atoms.
    pub fn negate(&self) -> Prop {
        match self {
            Prop::True => Prop::False,
            Prop::False => Prop::True,
            Prop::Atom(a) => Prop::Atom(a.negate()),
            Prop::And(ps) => Prop::or(ps.iter().map(Prop::negate)),
            Prop::Or(ps) => Prop::and(ps.iter().map(Prop::negate)),
        }
    }

    /// Evaluates in a concrete configuration.
    pub fn eval(&self, config: &Config, params: &[i64]) -> bool {
        match self {
            Prop::True => true,
            Prop::False => false,
            Prop::Atom(a) => a.eval(config, params),
            Prop::And(ps) => ps.iter().all(|p| p.eval(config, params)),
            Prop::Or(ps) => ps.iter().any(|p| p.eval(config, params)),
        }
    }

    /// All threshold atoms appearing in the proposition (under `Guard`
    /// or `NotGuard`), in syntactic order with duplicates.
    pub fn guard_atoms(&self) -> Vec<AtomicGuard> {
        let mut out = Vec::new();
        self.collect_guard_atoms(&mut out);
        out
    }

    fn collect_guard_atoms(&self, out: &mut Vec<AtomicGuard>) {
        match self {
            Prop::True | Prop::False => {}
            Prop::Atom(StateAtom::Guard(g) | StateAtom::NotGuard(g)) => out.push(g.clone()),
            Prop::Atom(_) => {}
            Prop::And(ps) | Prop::Or(ps) => {
                for p in ps {
                    p.collect_guard_atoms(out);
                }
            }
        }
    }

    /// Partially evaluates the proposition, replacing every threshold
    /// atom on which `resolve` returns a truth value. Used by the
    /// checker to fold guard atoms whose truth is fixed by a schema's
    /// final context, which collapses the justice disjunctions into
    /// plain conjunctions.
    pub fn resolve_guards(&self, resolve: &impl Fn(&AtomicGuard) -> Option<bool>) -> Prop {
        match self {
            Prop::True => Prop::True,
            Prop::False => Prop::False,
            Prop::Atom(StateAtom::Guard(g)) => match resolve(g) {
                Some(true) => Prop::True,
                Some(false) => Prop::False,
                None => self.clone(),
            },
            Prop::Atom(StateAtom::NotGuard(g)) => match resolve(g) {
                Some(true) => Prop::False,
                Some(false) => Prop::True,
                None => self.clone(),
            },
            Prop::Atom(_) => self.clone(),
            Prop::And(ps) => Prop::and(ps.iter().map(|p| p.resolve_guards(resolve))),
            Prop::Or(ps) => Prop::or(ps.iter().map(|p| p.resolve_guards(resolve))),
        }
    }

    /// If the prop is a pure conjunction of `κ[L] = 0` atoms, the set of
    /// locations; `None` otherwise. Used for the `□ emptiness` premise
    /// encoding.
    pub fn as_emptiness_conjunction(&self) -> Option<Vec<LocationId>> {
        match self {
            Prop::True => Some(Vec::new()),
            Prop::Atom(StateAtom::LocEmpty(l)) => Some(vec![*l]),
            Prop::And(ps) => {
                let mut out = Vec::new();
                for p in ps {
                    out.extend(p.as_emptiness_conjunction()?);
                }
                Some(out)
            }
            _ => None,
        }
    }

    /// Renders with the automaton's names.
    pub fn display<'a>(&'a self, ta: &'a ThresholdAutomaton) -> impl fmt::Display + 'a {
        DisplayProp { prop: self, ta }
    }
}

struct DisplayProp<'a> {
    prop: &'a Prop,
    ta: &'a ThresholdAutomaton,
}

impl DisplayProp<'_> {
    fn fmt_prop(&self, p: &Prop, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ta = self.ta;
        match p {
            Prop::True => write!(f, "true"),
            Prop::False => write!(f, "false"),
            Prop::Atom(StateAtom::LocEmpty(l)) => {
                write!(f, "k[{}] = 0", ta.location_name(*l))
            }
            Prop::Atom(StateAtom::LocNonEmpty(l)) => {
                write!(f, "k[{}] != 0", ta.location_name(*l))
            }
            Prop::Atom(StateAtom::Guard(g)) => write!(
                f,
                "{} {} {}",
                g.lhs.display(&ta.variables),
                g.cmp,
                g.rhs.display(&ta.params)
            ),
            Prop::Atom(StateAtom::NotGuard(g)) => write!(
                f,
                "!({} {} {})",
                g.lhs.display(&ta.variables),
                g.cmp,
                g.rhs.display(&ta.params)
            ),
            Prop::And(ps) => {
                write!(f, "(")?;
                for (i, q) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " && ")?;
                    }
                    self.fmt_prop(q, f)?;
                }
                write!(f, ")")
            }
            Prop::Or(ps) => {
                write!(f, "(")?;
                for (i, q) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " || ")?;
                    }
                    self.fmt_prop(q, f)?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for DisplayProp<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prop(self.prop, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistic_ta::{Guard, TaBuilder};

    fn tiny() -> ThresholdAutomaton {
        let mut b = TaBuilder::new("tiny");
        let n = b.param("n");
        let f = b.param("f");
        b.size_n_minus_f(n, f);
        let v = b.initial_location("V");
        let d = b.final_location("D");
        b.rule("r", v, d, Guard::always());
        b.build().unwrap()
    }

    fn config(counters: Vec<i64>, shared: Vec<i64>) -> Config {
        Config { counters, shared }
    }

    #[test]
    fn atom_eval_and_negate() {
        let c = config(vec![2, 0], vec![]);
        let a = StateAtom::LocEmpty(LocationId(1));
        assert!(a.eval(&c, &[]));
        assert!(!a.negate().eval(&c, &[]));
        assert_eq!(a.negate().negate(), a);
    }

    #[test]
    fn prop_simplification() {
        assert_eq!(Prop::and([]), Prop::True);
        assert_eq!(Prop::or([]), Prop::False);
        assert_eq!(
            Prop::and([Prop::False, Prop::loc_empty(LocationId(0))]),
            Prop::False
        );
        assert_eq!(
            Prop::or([Prop::True, Prop::loc_empty(LocationId(0))]),
            Prop::True
        );
    }

    #[test]
    fn de_morgan_negation() {
        let p = Prop::and([
            Prop::loc_empty(LocationId(0)),
            Prop::loc_empty(LocationId(1)),
        ]);
        let n = p.negate();
        match &n {
            Prop::Or(ps) => {
                assert_eq!(ps.len(), 2);
                assert!(matches!(ps[0], Prop::Atom(StateAtom::LocNonEmpty(_))));
            }
            other => panic!("expected Or, got {other:?}"),
        }
        // Negation is an involution on the evaluation level.
        let c = config(vec![1, 0], vec![]);
        assert_eq!(p.eval(&c, &[]), !n.eval(&c, &[]));
    }

    #[test]
    fn emptiness_conjunction_extraction() {
        let p = Prop::all_empty([LocationId(0), LocationId(1)]);
        assert_eq!(
            p.as_emptiness_conjunction(),
            Some(vec![LocationId(0), LocationId(1)])
        );
        let q = Prop::any_nonempty([LocationId(0)]);
        assert_eq!(q.as_emptiness_conjunction(), None);
        assert_eq!(Prop::True.as_emptiness_conjunction(), Some(vec![]));
    }

    #[test]
    fn guard_atom_collection_and_resolution() {
        use holistic_ta::{AtomicGuard, ParamExpr, VarExpr, VarId};
        let g1 = AtomicGuard::ge(VarExpr::var(VarId(0)), ParamExpr::constant(1));
        let g2 = AtomicGuard::ge(VarExpr::var(VarId(1)), ParamExpr::constant(2));
        let p = Prop::or([
            Prop::and([Prop::guard(g1.clone()), Prop::loc_empty(LocationId(0))]),
            Prop::Atom(StateAtom::NotGuard(g2.clone())),
        ]);
        let atoms = p.guard_atoms();
        assert_eq!(atoms, vec![g1.clone(), g2.clone()]);

        // Resolving g1 := true and g2 := true collapses the structure:
        // (true ∧ empty) ∨ ¬true  =  empty.
        let resolved = p.resolve_guards(&|g| {
            if *g == g1 || *g == g2 {
                Some(true)
            } else {
                None
            }
        });
        assert_eq!(resolved, Prop::loc_empty(LocationId(0)));
        // Unresolvable atoms are left intact.
        let untouched = p.resolve_guards(&|_| None);
        assert_eq!(untouched, p);
    }

    #[test]
    fn display_uses_names() {
        let ta = tiny();
        let p = Prop::and([
            Prop::loc_empty(LocationId(0)),
            Prop::loc_nonempty(LocationId(1)),
        ]);
        assert_eq!(p.display(&ta).to_string(), "(k[V] = 0 && k[D] != 0)");
    }
}
