//! Justice (fairness-of-communication) specifications.
//!
//! The paper models reliable communication as: *"if the guard of a rule
//! is true infinitely often, then the origin location of that rule will
//! eventually be empty"*. On the stable tail of a fair run this becomes
//! a state condition: for every requirement, either its enabling
//! condition is false or its source location is empty.
//!
//! [`Justice::from_rules`] derives the default requirement set — one per
//! non-self-loop rule. Models may need **weaker** requirements: in the
//! simplified consensus automaton (Fig. 4) the gadget rules that stand
//! for bv-delivery are only guaranteed to make progress under the
//! *proved* bv-broadcast properties (Appendix F of the paper), e.g. `M1`
//! must drain only once `bvb0 ≥ t+1` (BV-Obligation), not as soon as
//! `bvb0 ≥ 1`. Such models construct their [`Justice`] explicitly.

use holistic_ta::{AtomicGuard, LocationId, ThresholdAutomaton};

use crate::prop::Prop;

/// One justice requirement: whenever `condition` holds at the stable
/// tail, `source` must be empty there.
#[derive(Clone, PartialEq, Debug)]
pub struct JusticeRequirement {
    /// The enabling condition (over the tail configuration).
    pub condition: Prop,
    /// The location that must have drained.
    pub source: LocationId,
    /// Human-readable origin of the requirement (rule name or property).
    pub origin: String,
}

/// A set of justice requirements under which liveness is checked.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Justice {
    /// The requirements.
    pub requirements: Vec<JusticeRequirement>,
}

impl Justice {
    /// No requirements at all (pure safety reasoning; liveness checks
    /// with empty justice will usually find trivial stutter violations).
    pub fn none() -> Justice {
        Justice::default()
    }

    /// The default justice: one requirement per non-self-loop rule —
    /// if the rule's guard holds (forever, at the tail), its source
    /// location must be empty. This is exactly the paper's reliable
    /// communication assumption applied rule-wise.
    pub fn from_rules(ta: &ThresholdAutomaton) -> Justice {
        let mut requirements = Vec::new();
        for rule in &ta.rules {
            if rule.is_self_loop() {
                continue;
            }
            let condition = Prop::and(
                rule.guard
                    .atoms()
                    .iter()
                    .cloned()
                    .map(|a: AtomicGuard| Prop::guard(a)),
            );
            requirements.push(JusticeRequirement {
                condition,
                source: rule.from,
                origin: rule.name.clone(),
            });
        }
        Justice { requirements }
    }

    /// Adds a requirement.
    pub fn require(
        &mut self,
        condition: Prop,
        source: LocationId,
        origin: impl Into<String>,
    ) -> &mut Self {
        self.requirements.push(JusticeRequirement {
            condition,
            source,
            origin: origin.into(),
        });
        self
    }

    /// Removes every requirement whose source is `loc` (used by models
    /// that replace rule-wise justice for a gadget location with
    /// property-derived requirements).
    pub fn clear_source(&mut self, loc: LocationId) -> &mut Self {
        self.requirements.retain(|r| r.source != loc);
        self
    }

    /// The tail condition expressed as a single proposition:
    /// `∧ (¬condition ∨ κ[source] = 0)`.
    pub fn as_prop(&self) -> Prop {
        Prop::and(
            self.requirements
                .iter()
                .map(|r| Prop::or([r.condition.negate(), Prop::loc_empty(r.source)])),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistic_ta::{Config, Guard, ParamExpr, TaBuilder, VarExpr};

    #[test]
    fn default_justice_mirrors_rules() {
        let mut b = TaBuilder::new("j");
        let n = b.param("n");
        let f = b.param("f");
        b.size_n_minus_f(n, f);
        let x = b.shared("x");
        let v = b.initial_location("V");
        let d = b.final_location("D");
        b.rule(
            "r1",
            v,
            d,
            Guard::atom(holistic_ta::AtomicGuard::ge(
                VarExpr::var(x),
                ParamExpr::constant(1),
            )),
        );
        b.self_loop(d);
        let ta = b.build().unwrap();
        let j = Justice::from_rules(&ta);
        assert_eq!(j.requirements.len(), 1, "self-loop must be skipped");
        assert_eq!(j.requirements[0].source, v);
    }

    #[test]
    fn justice_prop_semantics() {
        let mut b = TaBuilder::new("j");
        let n = b.param("n");
        let f = b.param("f");
        b.size_n_minus_f(n, f);
        let x = b.shared("x");
        let v = b.initial_location("V");
        let d = b.final_location("D");
        b.rule(
            "r1",
            v,
            d,
            Guard::atom(holistic_ta::AtomicGuard::ge(
                VarExpr::var(x),
                ParamExpr::constant(1),
            )),
        );
        let ta = b.build().unwrap();
        let j = Justice::from_rules(&ta);
        let p = j.as_prop();
        // Guard true (x=1), V non-empty: justice violated -> prop false.
        let stuck_bad = Config {
            counters: vec![1, 0],
            shared: vec![1],
        };
        assert!(!p.eval(&stuck_bad, &[2, 0]));
        // Guard false (x=0): prop true even with V non-empty.
        let waiting = Config {
            counters: vec![1, 0],
            shared: vec![0],
        };
        assert!(p.eval(&waiting, &[2, 0]));
        // V empty: prop true regardless.
        let drained = Config {
            counters: vec![0, 1],
            shared: vec![1],
        };
        assert!(p.eval(&drained, &[2, 0]));
    }

    #[test]
    fn empty_justice_is_the_vacuous_truth() {
        // No requirements: the tail condition is the empty conjunction,
        // i.e. literally `True` — every stall is fair. This is the
        // degenerate case liveness checks hit with `Justice::none()`,
        // and it must simplify away rather than build `And([])`.
        let j = Justice::none();
        assert!(j.requirements.is_empty());
        assert_eq!(j.as_prop(), Prop::True);
        let anything = Config {
            counters: vec![5, 3],
            shared: vec![7],
        };
        assert!(j.as_prop().eval(&anything, &[9, 1]));
    }

    #[test]
    fn from_rules_of_pure_self_loop_automaton_is_empty() {
        // An automaton whose only rules are self-loops generates no
        // requirements at all — same vacuous-truth tail as none().
        let mut b = TaBuilder::new("j");
        let n = b.param("n");
        let f = b.param("f");
        b.size_n_minus_f(n, f);
        let v = b.initial_location("V");
        b.self_loop(v);
        let ta = b.build().unwrap();
        let j = Justice::from_rules(&ta);
        assert!(j.requirements.is_empty());
        assert_eq!(j.as_prop(), Prop::True);
    }

    #[test]
    fn unguarded_rule_requirement_is_unconditional() {
        // Guard::always() has no atoms, so the condition is the empty
        // conjunction `True`: the requirement reduces to "source empty",
        // unconditionally — ¬True ∨ κ[V]=0 must simplify to κ[V]=0.
        let mut b = TaBuilder::new("j");
        let n = b.param("n");
        let f = b.param("f");
        b.size_n_minus_f(n, f);
        let v = b.initial_location("V");
        let d = b.final_location("D");
        b.rule("r1", v, d, Guard::always());
        let ta = b.build().unwrap();
        let j = Justice::from_rules(&ta);
        assert_eq!(j.requirements[0].condition, Prop::True);
        assert_eq!(j.as_prop(), Prop::loc_empty(v));
    }

    #[test]
    fn clear_and_require_override() {
        let mut b = TaBuilder::new("j");
        let n = b.param("n");
        let f = b.param("f");
        b.size_n_minus_f(n, f);
        let v = b.initial_location("V");
        let d = b.final_location("D");
        b.rule("r1", v, d, Guard::always());
        let ta = b.build().unwrap();
        let mut j = Justice::from_rules(&ta);
        j.clear_source(v);
        assert!(j.requirements.is_empty());
        j.require(Prop::True, v, "BV-Termination");
        assert_eq!(j.requirements.len(), 1);
        assert_eq!(j.requirements[0].origin, "BV-Termination");
    }
}
