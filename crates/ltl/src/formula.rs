//! The temporal layer and its reduction to checker queries.
//!
//! [`Ltl`] is the specification language; [`classify`] translates a
//! formula into the [`Query`] form the parameterized checker decides,
//! verifying on the way (via the stability analysis) that the reduction
//! is sound for the given automaton. Formulas outside the fragment are
//! rejected with an explanatory [`FragmentError`] — mirroring how ByMC
//! accepts only its `ELTL_FT` fragment — rather than ever producing an
//! unsound verdict.

use std::fmt;

use holistic_ta::{LocationId, ThresholdAutomaton};
use serde::{Deserialize, Serialize};

use crate::prop::Prop;
use crate::stability::is_stable;

/// A linear temporal logic formula over state propositions.
///
/// The checkable fragment consists of (conjunctions of):
///
/// | shape | paper examples |
/// |---|---|
/// | `p ⇒ □b` | BV-Just |
/// | `♢a ⇒ □b` | Inv1 |
/// | `□e ⇒ □b` (`e` a conjunction of emptiness atoms) | Inv2, Dec, Good |
/// | `□b` | — |
/// | `♢q` | BV-Term, SRoundTerm |
/// | `♢a ⇒ ♢q` | BV-Unif |
/// | `□(p ⇒ ♢q)` | BV-Obl |
/// | `□e ⇒ ♢q` | — |
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum Ltl {
    /// A state proposition (evaluated at the first configuration).
    State(Prop),
    /// `□ φ`.
    Always(Box<Ltl>),
    /// `♢ φ`.
    Eventually(Box<Ltl>),
    /// Conjunction.
    And(Vec<Ltl>),
    /// `φ ⇒ ψ`.
    Implies(Box<Ltl>, Box<Ltl>),
}

impl Ltl {
    /// A state proposition.
    pub fn state(p: Prop) -> Ltl {
        Ltl::State(p)
    }

    /// `□ φ`.
    pub fn always(f: Ltl) -> Ltl {
        Ltl::Always(Box::new(f))
    }

    /// `♢ φ`.
    pub fn eventually(f: Ltl) -> Ltl {
        Ltl::Eventually(Box::new(f))
    }

    /// `φ ⇒ ψ`.
    pub fn implies(premise: Ltl, conclusion: Ltl) -> Ltl {
        Ltl::Implies(Box::new(premise), Box::new(conclusion))
    }

    /// Conjunction.
    pub fn and(fs: impl IntoIterator<Item = Ltl>) -> Ltl {
        Ltl::And(fs.into_iter().collect())
    }
}

impl fmt::Display for Ltl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ltl::State(_) => write!(f, "<state>"),
            Ltl::Always(g) => write!(f, "[]({g})"),
            Ltl::Eventually(g) => write!(f, "<>({g})"),
            Ltl::And(gs) => {
                for (i, g) in gs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " && ")?;
                    }
                    write!(f, "({g})")?;
                }
                Ok(())
            }
            Ltl::Implies(p, c) => write!(f, "({p}) -> ({c})"),
        }
    }
}

/// A query the parameterized checker can decide directly. Both variants
/// describe the **violation** of the original property; the checker
/// searches for a witness run, so `Unreachable ⇒ property verified`.
#[derive(Clone, PartialEq, Debug)]
pub enum Query {
    /// Violation: a finite run, starting in a configuration satisfying
    /// `initially`, along which every prop in `witnesses` holds at some
    /// point (in any order), while the locations in `globally_empty`
    /// hold no process at any point.
    Safety {
        /// Locations forced empty along the entire violating run (the
        /// `□ emptiness` premise encoding).
        globally_empty: Vec<LocationId>,
        /// Constraint on the initial configuration.
        initially: Prop,
        /// Props that must each hold somewhere along the run.
        witnesses: Vec<Prop>,
    },
    /// Violation: a fair infinite run, which (in this automaton class)
    /// stabilises; equivalently a reachable *justice-stuck*
    /// configuration satisfying `tail`.
    Liveness {
        /// Locations forced empty along the entire violating run.
        globally_empty: Vec<LocationId>,
        /// Constraint on the initial configuration.
        initially: Prop,
        /// Constraint on the stable tail configuration (premise ∧ ¬goal;
        /// classification has verified the stability side conditions).
        tail: Prop,
    },
}

/// Why a formula fell outside the checkable fragment.
#[derive(Clone, PartialEq, Debug)]
pub enum FragmentError {
    /// The shape of the formula is not one of the supported patterns.
    UnsupportedShape(String),
    /// A reduction needed a proposition to be stable, and the stability
    /// analysis could not prove it.
    UnstableProp {
        /// Which role the proposition played.
        role: &'static str,
        /// Rendered proposition.
        prop: String,
    },
}

impl fmt::Display for FragmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FragmentError::UnsupportedShape(s) => {
                write!(f, "formula shape outside the checkable fragment: {s}")
            }
            FragmentError::UnstableProp { role, prop } => write!(
                f,
                "the {role} proposition `{prop}` is not provably stable, \
                 so the stable-tail reduction would be unsound"
            ),
        }
    }
}

impl std::error::Error for FragmentError {}

/// Translates a formula into checker queries (one per top-level
/// conjunct).
///
/// # Errors
///
/// [`FragmentError`] when the formula is outside the fragment or a
/// required stability side condition cannot be established.
pub fn classify(ta: &ThresholdAutomaton, formula: &Ltl) -> Result<Vec<Query>, FragmentError> {
    match formula {
        Ltl::And(fs) => {
            let mut out = Vec::new();
            for f in fs {
                out.extend(classify(ta, f)?);
            }
            Ok(out)
        }
        other => classify_one(ta, other).map(|q| vec![q]),
    }
}

fn require_stable(
    ta: &ThresholdAutomaton,
    prop: &Prop,
    role: &'static str,
) -> Result<(), FragmentError> {
    if is_stable(ta, prop) {
        Ok(())
    } else {
        Err(FragmentError::UnstableProp {
            role,
            prop: format!("{}", prop.display(ta)),
        })
    }
}

fn classify_one(ta: &ThresholdAutomaton, formula: &Ltl) -> Result<Query, FragmentError> {
    match formula {
        // □ b  — violation: ♢¬b.
        Ltl::Always(inner) => match inner.as_ref() {
            Ltl::State(b) => Ok(Query::Safety {
                globally_empty: Vec::new(),
                initially: Prop::True,
                witnesses: vec![b.negate()],
            }),
            // □(p ⇒ ♢q) — violation: ♢(p ∧ □¬q); stable-tail reduction.
            Ltl::Implies(p, q) => {
                let (Ltl::State(p), Ltl::Eventually(q_inner)) = (p.as_ref(), q.as_ref()) else {
                    return Err(FragmentError::UnsupportedShape(format!(
                        "[]({inner}) — expected [](p -> <>q) with state p, q"
                    )));
                };
                let Ltl::State(q) = q_inner.as_ref() else {
                    return Err(FragmentError::UnsupportedShape(format!(
                        "[]({inner}) — the <>-goal must be a state proposition"
                    )));
                };
                require_stable(ta, p, "recurring premise")?;
                require_stable(ta, q, "eventuality goal")?;
                Ok(Query::Liveness {
                    globally_empty: Vec::new(),
                    initially: Prop::True,
                    tail: Prop::and([p.clone(), q.negate()]),
                })
            }
            other => Err(FragmentError::UnsupportedShape(format!("[]({other})"))),
        },
        // ♢ q — violation: □¬q; stable-tail reduction.
        Ltl::Eventually(inner) => match inner.as_ref() {
            Ltl::State(q) => {
                require_stable(ta, q, "eventuality goal")?;
                Ok(Query::Liveness {
                    globally_empty: Vec::new(),
                    initially: Prop::True,
                    tail: q.negate(),
                })
            }
            other => Err(FragmentError::UnsupportedShape(format!("<>({other})"))),
        },
        Ltl::Implies(premise, conclusion) => classify_implication(ta, premise, conclusion),
        Ltl::State(_) | Ltl::And(_) => Err(FragmentError::UnsupportedShape(format!(
            "{formula} at top level"
        ))),
    }
}

fn classify_implication(
    ta: &ThresholdAutomaton,
    premise: &Ltl,
    conclusion: &Ltl,
) -> Result<Query, FragmentError> {
    // The three premise kinds: initial-state prop, ♢a, □e.
    enum Premise<'a> {
        Initial(&'a Prop),
        Eventually(&'a Prop),
        GloballyEmpty(Vec<LocationId>),
    }
    let prem = match premise {
        Ltl::State(p) => Premise::Initial(p),
        Ltl::Eventually(inner) => match inner.as_ref() {
            Ltl::State(a) => Premise::Eventually(a),
            other => {
                return Err(FragmentError::UnsupportedShape(format!(
                    "premise <>({other})"
                )))
            }
        },
        Ltl::Always(inner) => match inner.as_ref() {
            Ltl::State(e) => match e.as_emptiness_conjunction() {
                Some(locs) => Premise::GloballyEmpty(locs),
                None => {
                    return Err(FragmentError::UnsupportedShape(
                        "premise [](e) where e is not a conjunction of emptiness atoms".to_owned(),
                    ))
                }
            },
            other => {
                return Err(FragmentError::UnsupportedShape(format!(
                    "premise []({other})"
                )))
            }
        },
        other => return Err(FragmentError::UnsupportedShape(format!("premise {other}"))),
    };

    match conclusion {
        // … ⇒ □b — safety.
        Ltl::Always(inner) => {
            let Ltl::State(b) = inner.as_ref() else {
                return Err(FragmentError::UnsupportedShape(format!(
                    "conclusion []({inner})"
                )));
            };
            let not_b = b.negate();
            Ok(match prem {
                Premise::Initial(p) => Query::Safety {
                    globally_empty: Vec::new(),
                    initially: p.clone(),
                    witnesses: vec![not_b],
                },
                Premise::Eventually(a) => Query::Safety {
                    globally_empty: Vec::new(),
                    initially: Prop::True,
                    witnesses: vec![a.clone(), not_b],
                },
                Premise::GloballyEmpty(locs) => Query::Safety {
                    globally_empty: locs,
                    initially: Prop::True,
                    witnesses: vec![not_b],
                },
            })
        }
        // … ⇒ ♢q — liveness.
        Ltl::Eventually(inner) => {
            let Ltl::State(q) = inner.as_ref() else {
                return Err(FragmentError::UnsupportedShape(format!(
                    "conclusion <>({inner})"
                )));
            };
            require_stable(ta, q, "eventuality goal")?;
            let not_q = q.negate();
            Ok(match prem {
                Premise::Initial(p) => Query::Liveness {
                    globally_empty: Vec::new(),
                    initially: p.clone(),
                    tail: not_q,
                },
                Premise::Eventually(a) => {
                    require_stable(ta, a, "eventuality premise")?;
                    Query::Liveness {
                        globally_empty: Vec::new(),
                        initially: Prop::True,
                        tail: Prop::and([a.clone(), not_q]),
                    }
                }
                Premise::GloballyEmpty(locs) => Query::Liveness {
                    globally_empty: locs,
                    initially: Prop::True,
                    tail: not_q,
                },
            })
        }
        other => Err(FragmentError::UnsupportedShape(format!(
            "conclusion {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistic_ta::{Guard, TaBuilder};

    /// V0, V1 initial; V0 -> A -> D; D final, inflow-closed goals exist.
    fn ta() -> ThresholdAutomaton {
        let mut b = TaBuilder::new("t");
        let n = b.param("n");
        let f = b.param("f");
        b.size_n_minus_f(n, f);
        let v0 = b.initial_location("V0");
        let v1 = b.initial_location("V1");
        let a = b.location("A");
        let d = b.final_location("D");
        b.rule("r1", v0, a, Guard::always());
        b.rule("r2", a, d, Guard::always());
        b.rule("r3", v1, d, Guard::always());
        b.build().unwrap()
    }

    fn loc(ta: &ThresholdAutomaton, name: &str) -> LocationId {
        ta.location_by_name(name).unwrap()
    }

    #[test]
    fn classify_initial_premise_safety() {
        let ta = ta();
        let v0 = loc(&ta, "V0");
        let d = loc(&ta, "D");
        // k[V0]=0 => [](k[D]=0)   (BV-Just shape)
        let f = Ltl::implies(
            Ltl::state(Prop::loc_empty(v0)),
            Ltl::always(Ltl::state(Prop::loc_empty(d))),
        );
        let qs = classify(&ta, &f).unwrap();
        assert_eq!(qs.len(), 1);
        match &qs[0] {
            Query::Safety {
                initially,
                witnesses,
                globally_empty,
            } => {
                assert_eq!(*initially, Prop::loc_empty(v0));
                assert_eq!(witnesses.len(), 1);
                assert_eq!(witnesses[0], Prop::loc_nonempty(d));
                assert!(globally_empty.is_empty());
            }
            other => panic!("expected Safety, got {other:?}"),
        }
    }

    #[test]
    fn classify_eventually_premise_safety() {
        let ta = ta();
        let a = loc(&ta, "A");
        let d = loc(&ta, "D");
        // <>(k[A]!=0) => [](k[D]=0)   (Inv1 shape)
        let f = Ltl::implies(
            Ltl::eventually(Ltl::state(Prop::loc_nonempty(a))),
            Ltl::always(Ltl::state(Prop::loc_empty(d))),
        );
        let qs = classify(&ta, &f).unwrap();
        match &qs[0] {
            Query::Safety { witnesses, .. } => assert_eq!(witnesses.len(), 2),
            other => panic!("expected Safety, got {other:?}"),
        }
    }

    #[test]
    fn classify_globally_empty_premise() {
        let ta = ta();
        let v0 = loc(&ta, "V0");
        let v1 = loc(&ta, "V1");
        let d = loc(&ta, "D");
        // [](k[V0]=0 && k[V1]=0) => [](k[D]=0)   (Inv2/Dec shape)
        let f = Ltl::implies(
            Ltl::always(Ltl::state(Prop::all_empty([v0, v1]))),
            Ltl::always(Ltl::state(Prop::loc_empty(d))),
        );
        let qs = classify(&ta, &f).unwrap();
        match &qs[0] {
            Query::Safety { globally_empty, .. } => {
                assert_eq!(globally_empty.len(), 2);
            }
            other => panic!("expected Safety, got {other:?}"),
        }
    }

    #[test]
    fn classify_termination_liveness() {
        let ta = ta();
        let v0 = loc(&ta, "V0");
        let v1 = loc(&ta, "V1");
        let a = loc(&ta, "A");
        // <>(all non-final empty)   (BV-Term / SRoundTerm shape)
        let goal = Prop::all_empty([v0, v1, a]);
        let f = Ltl::eventually(Ltl::state(goal.clone()));
        let qs = classify(&ta, &f).unwrap();
        match &qs[0] {
            Query::Liveness { tail, .. } => {
                assert_eq!(*tail, goal.negate());
            }
            other => panic!("expected Liveness, got {other:?}"),
        }
    }

    #[test]
    fn classify_obligation_liveness() {
        let ta = ta();
        let v0 = loc(&ta, "V0");
        let v1 = loc(&ta, "V1");
        let a = loc(&ta, "A");
        let d = loc(&ta, "D");
        // [](k[D]!=0 => <>(k[V0]=0 && k[V1]=0 && k[A]=0))
        let p = Prop::loc_nonempty(d); // D is outflow-closed: stable.
        let q = Prop::all_empty([v0, v1, a]);
        let f = Ltl::always(Ltl::implies(
            Ltl::state(p.clone()),
            Ltl::eventually(Ltl::state(q.clone())),
        ));
        let qs = classify(&ta, &f).unwrap();
        match &qs[0] {
            Query::Liveness { tail, .. } => {
                assert_eq!(*tail, Prop::and([p, q.negate()]));
            }
            other => panic!("expected Liveness, got {other:?}"),
        }
    }

    #[test]
    fn unstable_goal_is_rejected() {
        let ta = ta();
        let a = loc(&ta, "A");
        // <>(k[A]=0): A has inflow from V0 and outflow to D, so its
        // emptiness is not stable; the reduction must refuse.
        let f = Ltl::eventually(Ltl::state(Prop::loc_empty(a)));
        let err = classify(&ta, &f).unwrap_err();
        assert!(matches!(err, FragmentError::UnstableProp { .. }), "{err}");
    }

    #[test]
    fn conjunction_splits_into_queries() {
        let ta = ta();
        let d = loc(&ta, "D");
        let f = Ltl::and([
            Ltl::always(Ltl::state(Prop::loc_empty(d))),
            Ltl::always(Ltl::state(Prop::loc_empty(d))),
        ]);
        assert_eq!(classify(&ta, &f).unwrap().len(), 2);
    }

    #[test]
    fn unsupported_shape_is_rejected() {
        let ta = ta();
        let d = loc(&ta, "D");
        let f = Ltl::state(Prop::loc_empty(d));
        assert!(matches!(
            classify(&ta, &f),
            Err(FragmentError::UnsupportedShape(_))
        ));
    }
}
