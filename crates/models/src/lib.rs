//! # holistic-models — the paper's threshold automata
//!
//! The three automata of *Holistic Verification of Blockchain Consensus*
//! (DISC 2022; PODC 2022 brief announcement), built programmatically
//! with `holistic-ta` and paired with their LTL specifications
//! (`holistic-ltl`) and justice assumptions:
//!
//! * [`BvBroadcastModel`] — the binary value broadcast (Fig. 2) with
//!   BV-Justification / Obligation / Uniformity / Termination (§3.2);
//! * [`NaiveConsensusModel`] — DBFT consensus modelled directly with the
//!   embedded broadcast (Fig. 3, Table 3); too many guards to enumerate,
//!   reproducing the Table 2 timeout row;
//! * [`SimplifiedConsensusModel`] — the gadget-based automaton (Fig. 4)
//!   with Inv1/Inv2 (⇒ Agreement, Validity), Dec/Good/SRoundTerm
//!   (⇒ Termination under fair bv-broadcast, Theorem 6) and the
//!   Appendix-F justice assumption;
//! * [`ReliableBroadcastModel`] — the classic Byzantine reliable
//!   broadcast (§7's canonical related-work benchmark), as an extra
//!   verified model and fast checker regression.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bv_broadcast;
mod naive_consensus;
mod reliable_broadcast;
mod simplified_consensus;

pub use bv_broadcast::{BvBroadcastModel, LocationRow};
pub use naive_consensus::NaiveConsensusModel;
pub use reliable_broadcast::ReliableBroadcastModel;
pub use simplified_consensus::SimplifiedConsensusModel;
