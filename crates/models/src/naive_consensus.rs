//! The naive DBFT consensus threshold automaton (paper Fig. 3, Table 3).
//!
//! Algorithm 1 (DBFT binary consensus, safe-but-not-live variant) is
//! modelled *directly*, with the bv-broadcast automaton embedded: a
//! superround concatenates an odd round (parity 1, decides 1) and an
//! even round (parity 0, decides 0). Delivery rules additionally send
//! the `aux` message (increment `a0`/`a1`), and the decision rules
//! compare `aux` counts with `n − t` (minus `f` Byzantine copies).
//!
//! This automaton is what a non-compositional ("holistic but naive")
//! verification attempt must check — and with 14 unique guards its
//! schedule lattice explodes; Table 2 reports ByMC timing out after a
//! day, and this reproduction's enumerative strategy hits its schema cap
//! the same way (see `holistic-checker`'s `Strategy`).

use holistic_ltl::{Justice, Ltl, Prop};
use holistic_ta::{
    AtomicGuard, Guard, LocationId, ParamExpr, TaBuilder, ThresholdAutomaton, VarExpr, VarId,
};

/// The naive consensus automaton plus its specifications.
#[derive(Clone, Debug)]
pub struct NaiveConsensusModel {
    /// The two-round superround automaton (26 locations, 45 rules,
    /// 14 unique guards).
    pub ta: ThresholdAutomaton,
}

impl Default for NaiveConsensusModel {
    fn default() -> Self {
        Self::new()
    }
}

/// Builds one consensus round into `b`. `suffix` distinguishes rounds
/// (`""` / `"'"`), `parity` is the value the round decides. Returns the
/// outcome locations `(est0, est1, decided)`.
#[allow(clippy::too_many_lines)]
fn build_round(
    b: &mut TaBuilder,
    suffix: &str,
    parity: u8,
    shared: &RoundVars,
    thresholds: &Thresholds,
    terminal: bool,
) -> RoundLocs {
    let name = |base: &str| format!("{base}{suffix}");
    let rule = |base: &str| format!("{base}{suffix}");

    let v0 = if suffix.is_empty() {
        b.initial_location(name("V0"))
    } else {
        b.location(name("V0"))
    };
    let v1 = if suffix.is_empty() {
        b.initial_location(name("V1"))
    } else {
        b.location(name("V1"))
    };
    let b0 = b.location(name("B0"));
    let b1 = b.location(name("B1"));
    let b01 = b.location(name("B01"));
    let c0 = b.location(name("C0"));
    let c1 = b.location(name("C1"));
    let cb0 = b.location(name("CB0"));
    let cb1 = b.location(name("CB1"));
    let c01 = b.location(name("C01"));
    // Outcome locations: estimates 0/1 carried to the next round, and
    // the round's decision (value == parity).
    let (e0, e1, decided) = if parity == 1 {
        (
            mk_loc(b, name("E0"), terminal),
            mk_loc(b, name("E1"), terminal),
            mk_loc(b, "D1".to_owned(), terminal),
        )
    } else {
        (
            mk_loc(b, name("E0"), terminal),
            mk_loc(b, name("E1"), terminal),
            mk_loc(b, "D0".to_owned(), terminal),
        )
    };

    let ge = |v: VarId, rhs: ParamExpr| Guard::atom(AtomicGuard::ge(VarExpr::var(v), rhs));
    let low = thresholds.low.clone();
    let high = thresholds.high.clone();
    let quorum = thresholds.quorum.clone();
    let ge2 = |x: VarId, y: VarId, rhs: ParamExpr| {
        let mut e = VarExpr::var(x);
        e.add_term(y, 1);
        Guard::atom(AtomicGuard::ge(e, rhs))
    };

    // The embedded bv-broadcast (Table 3, rules r1–r6, r8–r13); the
    // delivery rules also broadcast the aux message (a0/a1 increments).
    b.rule(rule("r1"), v0, b0, Guard::always())
        .inc(shared.b0, 1);
    b.rule(rule("r2"), v1, b1, Guard::always())
        .inc(shared.b1, 1);
    b.rule(rule("r3"), b0, c0, ge(shared.b0, high.clone()))
        .inc(shared.a0, 1);
    b.rule(rule("r4"), b0, b01, ge(shared.b1, low.clone()))
        .inc(shared.b1, 1);
    b.rule(rule("r5"), b1, b01, ge(shared.b0, low.clone()))
        .inc(shared.b0, 1);
    b.rule(rule("r6"), b1, c1, ge(shared.b1, high.clone()))
        .inc(shared.a1, 1);
    b.rule(rule("r8"), c0, cb0, ge(shared.b1, low.clone()))
        .inc(shared.b1, 1);
    b.rule(rule("r9"), b01, c1, ge(shared.b1, high.clone()))
        .inc(shared.a1, 1);
    b.rule(rule("r10"), b01, c0, ge(shared.b0, high.clone()))
        .inc(shared.a0, 1);
    b.rule(rule("r11"), c1, cb1, ge(shared.b0, low))
        .inc(shared.b0, 1);
    b.rule(rule("r12"), cb0, c01, ge(shared.b1, high.clone()));
    b.rule(rule("r13"), cb1, c01, ge(shared.b0, high));

    // Decision rules (Table 3, r7, r14–r19): a quorum of n−t aux
    // messages whose values were all delivered. qualifiers = {0} → E0
    // (or decide when parity 0); {1} → D1/E1; {0,1} → est := parity.
    let to_if0 = if parity == 0 { decided } else { e0 };
    let to_if1 = if parity == 1 { decided } else { e1 };
    let to_mixed = if parity == 1 { e1 } else { e0 };
    b.rule(rule("r7"), c1, to_if1, ge(shared.a1, quorum.clone()));
    b.rule(rule("r14"), c0, to_if0, ge(shared.a0, quorum.clone()));
    b.rule(rule("r15"), cb0, to_if0, ge(shared.a0, quorum.clone()));
    b.rule(rule("r16"), c01, to_if0, ge(shared.a0, quorum.clone()));
    b.rule(
        rule("r17"),
        c01,
        to_mixed,
        ge2(shared.a0, shared.a1, quorum.clone()),
    );
    b.rule(rule("r18"), cb1, to_if1, ge(shared.a1, quorum.clone()));
    b.rule(rule("r19"), c01, to_if1, ge(shared.a1, quorum));

    RoundLocs {
        v0,
        v1,
        e0,
        e1,
        decided,
    }
}

fn mk_loc(b: &mut TaBuilder, name: String, terminal: bool) -> LocationId {
    if terminal {
        b.final_location(name)
    } else {
        b.location(name)
    }
}

struct RoundVars {
    b0: VarId,
    b1: VarId,
    a0: VarId,
    a1: VarId,
}

struct Thresholds {
    /// `t + 1 − f`
    low: ParamExpr,
    /// `2t + 1 − f`
    high: ParamExpr,
    /// `n − t − f`
    quorum: ParamExpr,
}

struct RoundLocs {
    v0: LocationId,
    v1: LocationId,
    e0: LocationId,
    e1: LocationId,
    decided: LocationId,
}

impl NaiveConsensusModel {
    /// Builds the automaton of Fig. 3 with the standard resilience
    /// `n > 3t ∧ t ≥ f ≥ 0`.
    pub fn new() -> NaiveConsensusModel {
        Self::with_resilience(3)
    }

    /// Builds the automaton with resilience `n > k·t` — `k = 3` is the
    /// paper's condition; `k = 2` weakens it enough to exhibit the
    /// agreement counterexample of §6.
    pub fn with_resilience(k: i64) -> NaiveConsensusModel {
        let mut b = TaBuilder::new("naive_consensus");
        let n = b.param("n");
        let t = b.param("t");
        let f = b.param("f");
        b.resilience_gt(n, t, k);
        b.resilience_ge(t, f);
        b.resilience_ge_const(f, 0);
        b.size_n_minus_f(n, f);

        let thresholds = {
            let mut low = ParamExpr::param(t);
            low.add_constant(1);
            low.add_term(f, -1);
            let mut high = ParamExpr::term(t, 2);
            high.add_constant(1);
            high.add_term(f, -1);
            let mut quorum = ParamExpr::param(n);
            quorum.add_term(t, -1);
            quorum.add_term(f, -1);
            Thresholds { low, high, quorum }
        };

        let round1_vars = RoundVars {
            b0: b.shared("b0"),
            b1: b.shared("b1"),
            a0: b.shared("a0"),
            a1: b.shared("a1"),
        };
        let round2_vars = RoundVars {
            b0: b.shared("b0'"),
            b1: b.shared("b1'"),
            a0: b.shared("a0'"),
            a1: b.shared("a1'"),
        };

        let r1 = build_round(&mut b, "", 1, &round1_vars, &thresholds, false);
        let r2 = build_round(&mut b, "'", 0, &round2_vars, &thresholds, true);

        // Round switches (r20–r22): estimates carry over; a process that
        // decided 1 keeps estimate 1 and participates in the next round.
        b.rule("r20", r1.e0, r2.v0, Guard::always()).round_switch();
        b.rule("r21", r1.e1, r2.v1, Guard::always()).round_switch();
        b.rule("r22", r1.decided, r2.v1, Guard::always())
            .round_switch();

        // Self-loops on the superround's terminal locations (the paper's
        // rule count of 45 = 2×19 + 3 switches + 4 self-loops).
        for loc in [r1.decided, r2.decided, r2.e0, r2.e1] {
            b.self_loop(loc);
        }

        NaiveConsensusModel {
            ta: b.build().expect("naive consensus model is valid"),
        }
    }

    fn loc(&self, name: &str) -> LocationId {
        self.ta
            .location_by_name(name)
            .unwrap_or_else(|| panic!("location {name} exists"))
    }

    /// `Inv1ᵥ`: if some process decides `v`, no process ever decides
    /// `1−v` (in this superround) nor exits the superround with estimate
    /// `1−v`. Together with `Inv2ᵥ` this implies Agreement (paper §5.1).
    pub fn inv1(&self, v: u8) -> Ltl {
        let (dv, d_other, e_other) = if v == 0 {
            (self.loc("D0"), self.loc("D1"), self.loc("E1'"))
        } else {
            (self.loc("D1"), self.loc("D0"), self.loc("E0'"))
        };
        Ltl::implies(
            Ltl::eventually(Ltl::state(Prop::loc_nonempty(dv))),
            Ltl::always(Ltl::state(Prop::all_empty([d_other, e_other]))),
        )
    }

    /// `Inv2ᵥ`: if no process starts the superround with value `v`, no
    /// process decides `v` nor exits with estimate `v`. Together with
    /// `Inv1ᵥ` this implies Validity (paper §5.1).
    pub fn inv2(&self, v: u8) -> Ltl {
        let (vv, dv, ev) = if v == 0 {
            (self.loc("V0"), self.loc("D0"), self.loc("E0'"))
        } else {
            (self.loc("V1"), self.loc("D1"), self.loc("E1'"))
        };
        Ltl::implies(
            Ltl::always(Ltl::state(Prop::loc_empty(vv))),
            Ltl::always(Ltl::state(Prop::all_empty([dv, ev]))),
        )
    }

    /// `SRoundTerm`: every superround terminates — eventually only the
    /// terminal locations `D0`, `E0'`, `E1'` are occupied.
    pub fn sround_term(&self) -> Ltl {
        let terminals = [self.loc("D0"), self.loc("E0'"), self.loc("E1'")];
        let pending: Vec<LocationId> = (0..self.ta.locations.len())
            .map(LocationId)
            .filter(|l| !terminals.contains(l))
            .collect();
        Ltl::eventually(Ltl::state(Prop::all_empty(pending)))
    }

    /// Rule-wise reliable-communication justice.
    pub fn justice(&self) -> Justice {
        Justice::from_rules(&self.ta)
    }

    /// The properties benchmarked on this automaton in Table 2.
    pub fn table2_specs(&self) -> Vec<(&'static str, Ltl)> {
        vec![
            ("Inv1_0", self.inv1(0)),
            ("Inv2_0", self.inv2(0)),
            ("SRoundTerm", self.sround_term()),
        ]
    }

    /// The rule table (paper Table 3): `(name, guard, update)` rendered
    /// with the automaton's vocabulary.
    pub fn rule_table(&self) -> Vec<(String, String, String)> {
        self.ta
            .rules
            .iter()
            .map(|r| {
                let guard = if r.guard.is_true() {
                    "true".to_owned()
                } else {
                    r.guard
                        .atoms()
                        .iter()
                        .map(|a| {
                            format!(
                                "{} {} {}",
                                a.lhs.display(&self.ta.variables),
                                a.cmp,
                                a.rhs.display(&self.ta.params)
                            )
                        })
                        .collect::<Vec<_>>()
                        .join(" && ")
                };
                let update = if r.update.is_empty() {
                    "—".to_owned()
                } else {
                    r.update
                        .iter()
                        .map(|&(v, k)| {
                            if k == 1 {
                                format!("{}++", self.ta.variables[v.0])
                            } else {
                                format!("{} += {k}", self.ta.variables[v.0])
                            }
                        })
                        .collect::<Vec<_>>()
                        .join(", ")
                };
                (r.name.clone(), guard, update)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_close_to_table2() {
        let m = NaiveConsensusModel::new();
        let (guards, locs, rules) = m.ta.size_summary();
        // Table 2: 14 unique guards, 24 locations, 45 rules. We keep the
        // intermediate E0/E1 locations explicit (the paper merges them
        // with V0'/V1'), hence 26 locations.
        assert_eq!(guards, 14);
        assert_eq!(locs, 26);
        assert_eq!(rules, 45);
    }

    #[test]
    fn automaton_is_dag_and_valid() {
        let m = NaiveConsensusModel::new();
        assert!(m.ta.validate().is_ok());
        assert!(m.ta.is_dag());
    }

    #[test]
    fn decision_locations_by_parity() {
        let m = NaiveConsensusModel::new();
        // Round 1 decides 1, round 2 decides 0.
        assert!(m.ta.location_by_name("D1").is_some());
        assert!(m.ta.location_by_name("D0").is_some());
        // D1 switches into round 2 with estimate 1.
        let r22 = m.ta.rule_by_name("r22").unwrap();
        assert_eq!(m.ta.rules[r22.0].from, m.loc("D1"));
        assert_eq!(m.ta.rules[r22.0].to, m.loc("V1'"));
        assert!(m.ta.rules[r22.0].round_switch);
    }

    /// Explicit-state agreement at n=4, t=f=1: in the complete reachable
    /// state space, no configuration has processes in both D0 and D1.
    #[test]
    fn explicit_state_agreement() {
        use holistic_ta::CounterSystem;
        let m = NaiveConsensusModel::new();
        let sys = CounterSystem::new(&m.ta, &[4, 1, 1]).unwrap();
        let ex = sys.explore(2_000_000);
        assert!(ex.complete(), "state space fits the budget");
        let d0 = m.loc("D0");
        let d1 = m.loc("D1");
        assert!(ex.all(|c| c.counters[d0.0] == 0 || c.counters[d1.0] == 0));
    }

    /// Explicit-state validity: all-zero inputs never decide 1.
    #[test]
    fn explicit_state_validity() {
        use holistic_ta::CounterSystem;
        let m = NaiveConsensusModel::new();
        let sys = CounterSystem::new(&m.ta, &[4, 1, 1]).unwrap();
        let v1 = m.loc("V1");
        let roots: Vec<_> = sys
            .initial_configs()
            .into_iter()
            .filter(|c| c.counters[v1.0] == 0)
            .collect();
        let ex = sys.explore_from(roots, 2_000_000);
        assert!(ex.complete());
        let d1 = m.loc("D1");
        let e1p = m.loc("E1'");
        assert!(ex.all(|c| c.counters[d1.0] == 0 && c.counters[e1p.0] == 0));
    }

    #[test]
    fn rule_table_matches_automaton() {
        let m = NaiveConsensusModel::new();
        let table = m.rule_table();
        assert_eq!(table.len(), m.ta.rules.len());
        let r3 = table.iter().find(|(n, _, _)| n == "r3").unwrap();
        assert_eq!(r3.1, "b0 >= 2t - f + 1");
        assert_eq!(r3.2, "a0++");
    }
}
