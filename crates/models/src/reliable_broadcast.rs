//! Asynchronous Byzantine reliable broadcast (Srikanth & Toueg's
//! authenticated-broadcast simulation, the classic ByMC benchmark).
//!
//! The paper's related work (§7) points at the reliable broadcast as
//! the canonical component that explicit-state and parameterized model
//! checkers cut their teeth on ([33] in the paper); it is also the
//! ancestor of the bv-broadcast. We include it both as an additional
//! verified model and as a fast regression automaton for the checker:
//! only 2 unique guards, so the full schedule lattice is tiny.
//!
//! One (possibly Byzantine) sender INITs a message; correct processes
//! echo it, amplify echoes seen from `t+1` distinct processes, and
//! *accept* after `2t+1` distinct echoes:
//!
//! * `V1` — received INIT, will echo;
//! * `V0` — did not receive INIT (a Byzantine sender may equivocate);
//! * `SE` — echoed, waiting to accept;
//! * `AC` — accepted.

use holistic_ltl::{Justice, Ltl, Prop};
use holistic_ta::{
    AtomicGuard, Guard, LocationId, ParamExpr, TaBuilder, ThresholdAutomaton, VarExpr,
};

/// The reliable broadcast automaton plus its specifications.
#[derive(Clone, Debug)]
pub struct ReliableBroadcastModel {
    /// The threshold automaton (4 locations, 2 unique guards).
    pub ta: ThresholdAutomaton,
}

impl Default for ReliableBroadcastModel {
    fn default() -> Self {
        Self::new()
    }
}

impl ReliableBroadcastModel {
    /// Builds the automaton under `n > 3t ∧ t ≥ f ≥ 0`.
    pub fn new() -> ReliableBroadcastModel {
        let mut b = TaBuilder::new("reliable_broadcast");
        let n = b.param("n");
        let t = b.param("t");
        let f = b.param("f");
        b.resilience_gt(n, t, 3);
        b.resilience_ge(t, f);
        b.resilience_ge_const(f, 0);
        b.size_n_minus_f(n, f);

        let nsnt = b.shared("nsnt");
        let v0 = b.initial_location("V0");
        let v1 = b.initial_location("V1");
        let se = b.location("SE");
        let ac = b.final_location("AC");

        let mut low = ParamExpr::param(t); // t + 1 - f
        low.add_constant(1);
        low.add_term(f, -1);
        let mut high = ParamExpr::term(t, 2); // 2t + 1 - f
        high.add_constant(1);
        high.add_term(f, -1);

        // Received INIT: echo unconditionally.
        b.rule("r1", v1, se, Guard::always()).inc(nsnt, 1);
        // Amplification: echo after t+1 distinct echoes.
        b.rule(
            "r2",
            v0,
            se,
            Guard::atom(AtomicGuard::ge(VarExpr::var(nsnt), low)),
        )
        .inc(nsnt, 1);
        // Accept after 2t+1 distinct echoes.
        b.rule(
            "r3",
            se,
            ac,
            Guard::atom(AtomicGuard::ge(VarExpr::var(nsnt), high)),
        );
        b.self_loop(se);
        b.self_loop(ac);

        ReliableBroadcastModel {
            ta: b.build().expect("reliable broadcast model is valid"),
        }
    }

    fn loc(&self, name: &str) -> LocationId {
        self.ta.location_by_name(name).expect("location exists")
    }

    /// **Unforgeability**: if no correct process received INIT, no
    /// correct process ever accepts.
    pub fn unforgeability(&self) -> Ltl {
        Ltl::implies(
            Ltl::state(Prop::loc_empty(self.loc("V1"))),
            Ltl::always(Ltl::state(Prop::loc_empty(self.loc("AC")))),
        )
    }

    /// **Correctness**: if every correct process received INIT, every
    /// correct process eventually accepts.
    pub fn correctness(&self) -> Ltl {
        let pending = [self.loc("V0"), self.loc("V1"), self.loc("SE")];
        Ltl::implies(
            Ltl::state(Prop::loc_empty(self.loc("V0"))),
            Ltl::eventually(Ltl::state(Prop::all_empty(pending))),
        )
    }

    /// **Relay**: if some correct process accepts, every correct
    /// process eventually accepts.
    pub fn relay(&self) -> Ltl {
        let pending = [self.loc("V0"), self.loc("V1"), self.loc("SE")];
        Ltl::implies(
            Ltl::eventually(Ltl::state(Prop::loc_nonempty(self.loc("AC")))),
            Ltl::eventually(Ltl::state(Prop::all_empty(pending))),
        )
    }

    /// Rule-wise reliable-communication justice.
    pub fn justice(&self) -> Justice {
        Justice::from_rules(&self.ta)
    }

    /// All three properties, named.
    pub fn all_specs(&self) -> Vec<(&'static str, Ltl)> {
        vec![
            ("Unforgeability", self.unforgeability()),
            ("Correctness", self.correctness()),
            ("Relay", self.relay()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistic_checker::Checker;
    use holistic_ta::CounterSystem;

    #[test]
    fn automaton_shape() {
        let m = ReliableBroadcastModel::new();
        assert_eq!(m.ta.size_summary(), (2, 4, 5));
        assert!(m.ta.is_dag());
    }

    #[test]
    fn all_three_properties_verify() {
        let m = ReliableBroadcastModel::new();
        let checker = Checker::new();
        let justice = m.justice();
        for (name, spec) in m.all_specs() {
            let report = checker.check_ltl(&m.ta, &spec, &justice).unwrap();
            assert!(
                report.verdict().is_verified(),
                "{name}: {:?}",
                report.verdict()
            );
        }
    }

    #[test]
    fn broken_amplification_threshold_is_caught() {
        // Lower the amplification threshold to 1 (i.e. `f` Byzantine
        // echoes alone could trigger it): unforgeability breaks.
        let mut b = TaBuilder::new("broken_rb");
        let n = b.param("n");
        let t = b.param("t");
        let f = b.param("f");
        b.resilience_gt(n, t, 3);
        b.resilience_ge(t, f);
        b.resilience_ge_const(f, 0);
        b.size_n_minus_f(n, f);
        let nsnt = b.shared("nsnt");
        let v0 = b.initial_location("V0");
        let v1 = b.initial_location("V1");
        let se = b.location("SE");
        let ac = b.final_location("AC");
        b.rule("r1", v1, se, Guard::always()).inc(nsnt, 1);
        // BROKEN: t+1-f should be the threshold; f Byzantine echoes can
        // fake `nsnt >= 1 - f + f`, modelled by threshold 1-f... which
        // over correct counters is `nsnt >= 1 - f`.
        let mut broken = ParamExpr::constant(1);
        broken.add_term(f, -1);
        b.rule(
            "r2",
            v0,
            se,
            Guard::atom(AtomicGuard::ge(VarExpr::var(nsnt), broken)),
        )
        .inc(nsnt, 1);
        let mut high = ParamExpr::term(t, 2);
        high.add_constant(1);
        high.add_term(f, -1);
        b.rule(
            "r3",
            se,
            ac,
            Guard::atom(AtomicGuard::ge(VarExpr::var(nsnt), high)),
        );
        let ta = b.build().unwrap();

        let spec = Ltl::implies(
            Ltl::state(Prop::loc_empty(ta.location_by_name("V1").unwrap())),
            Ltl::always(Ltl::state(Prop::loc_empty(
                ta.location_by_name("AC").unwrap(),
            ))),
        );
        let checker = Checker::new();
        let report = checker
            .check_ltl(&ta, &spec, &holistic_ltl::Justice::from_rules(&ta))
            .unwrap();
        let verdict = report.verdict();
        let ce = verdict
            .counterexample()
            .expect("broken threshold must forge an accept");
        // The forged accept happens with f >= 1 (Byzantine help).
        assert!(ce.params[2] >= 1, "params {:?}", ce.params);
    }

    #[test]
    fn explicit_state_relay_holds() {
        let m = ReliableBroadcastModel::new();
        let sys = CounterSystem::new(&m.ta, &[4, 1, 1]).unwrap();
        let ex = sys.explore(200_000);
        assert!(ex.complete());
        let ac = m.loc("AC");
        let se = m.loc("SE");
        for c in ex.configs() {
            if sys.is_stuck(c) && c.counters[ac.0] > 0 {
                assert_eq!(c.counters[se.0], 0, "relay: stuck with AC nonempty");
            }
        }
    }
}
