//! The simplified DBFT consensus automaton (paper Fig. 4, §4.2, App. F).
//!
//! The inner bv-broadcast of the naive automaton is replaced by a
//! *gadget*: a single waiting location `M` from which a process moves to
//! `M0`/`M1` when the first value is delivered (guard `bvb_v ≥ 1`
//! encodes **BV-Justification**: something can only be delivered if a
//! correct process broadcast it) and on to `M01` when the second value
//! arrives. The progress of the gadget is *not* the rule-wise reliable
//! communication assumption — the gadget rule guards are weaker than
//! what the broadcast actually guarantees — so the justice assumption is
//! assembled from the **verified** bv-broadcast properties exactly as in
//! the paper's Appendix F:
//!
//! * BV-Termination → `M` drains unconditionally;
//! * BV-Obligation → `bvb₀ ≥ t+1` drains `M1` (and symmetrically);
//! * BV-Uniformity → `a₀ ≥ 1` (someone delivered 0 first) drains `M1`;
//! * "business as usual" → an aux quorum drains `M0`/`M1`/`M01`.

use holistic_ltl::{Justice, Ltl, Prop};
use holistic_ta::{
    AtomicGuard, Guard, LocationId, ParamExpr, TaBuilder, ThresholdAutomaton, VarExpr, VarId,
};

/// The simplified consensus automaton plus its specifications and the
/// Appendix-F justice assumption.
#[derive(Clone, Debug)]
pub struct SimplifiedConsensusModel {
    /// The two-round superround automaton (18 locations, 37 rules,
    /// 10 unique guards).
    pub ta: ThresholdAutomaton,
}

impl Default for SimplifiedConsensusModel {
    fn default() -> Self {
        Self::new()
    }
}

struct GadgetRound {
    v0: LocationId,
    v1: LocationId,
    m: LocationId,
    m0: LocationId,
    m1: LocationId,
    m01: LocationId,
    e0: LocationId,
    e1: LocationId,
    decided: LocationId,
}

fn build_round(
    b: &mut TaBuilder,
    suffix: &str,
    parity: u8,
    quorum: &ParamExpr,
    terminal: bool,
) -> GadgetRound {
    let name = |base: &str| format!("{base}{suffix}");
    let bvb0 = b.shared(name("bvb0"));
    let bvb1 = b.shared(name("bvb1"));
    let a0 = b.shared(name("a0"));
    let a1 = b.shared(name("a1"));

    let v0 = if suffix.is_empty() {
        b.initial_location(name("V0"))
    } else {
        b.location(name("V0"))
    };
    let v1 = if suffix.is_empty() {
        b.initial_location(name("V1"))
    } else {
        b.location(name("V1"))
    };
    let m = b.location(name("M"));
    let m0 = b.location(name("M0"));
    let m1 = b.location(name("M1"));
    let m01 = b.location(name("M01"));
    let mk = |b: &mut TaBuilder, n: String| {
        if terminal {
            b.final_location(n)
        } else {
            b.location(n)
        }
    };
    let e0 = mk(b, name("E0"));
    let e1 = mk(b, name("E1"));
    let decided = mk(b, format!("D{parity}"));

    let ge1 = |v: VarId| Guard::atom(AtomicGuard::ge(VarExpr::var(v), ParamExpr::constant(1)));
    let geq = |v: VarId| Guard::atom(AtomicGuard::ge(VarExpr::var(v), quorum.clone()));
    let geq2 = |x: VarId, y: VarId| {
        let mut e = VarExpr::var(x);
        e.add_term(y, 1);
        Guard::atom(AtomicGuard::ge(e, quorum.clone()))
    };
    let rn = |base: &str| format!("{base}{suffix}");

    // s1/s2: bv-broadcast the estimate.
    b.rule(rn("s1"), v0, m, Guard::always()).inc(bvb0, 1);
    b.rule(rn("s2"), v1, m, Guard::always()).inc(bvb1, 1);
    // s3/s4: first delivery; the aux message is broadcast
    // (BV-Justification is the `bvb ≥ 1` guard).
    b.rule(rn("s3"), m, m0, ge1(bvb0)).inc(a0, 1);
    b.rule(rn("s4"), m, m1, ge1(bvb1)).inc(a1, 1);
    // s6/s7: second delivery.
    b.rule(rn("s6"), m0, m01, ge1(bvb1));
    b.rule(rn("s7"), m1, m01, ge1(bvb0));
    // Decisions: qualifiers {0} / {1} / {0,1} with an n−t quorum of aux
    // messages; the parity value decides, the other estimates carry.
    let to_if0 = if parity == 0 { decided } else { e0 };
    let to_if1 = if parity == 1 { decided } else { e1 };
    let to_mixed = if parity == 1 { e1 } else { e0 };
    b.rule(rn("s5"), m0, to_if0, geq(a0));
    b.rule(rn("s8"), m1, to_if1, geq(a1));
    b.rule(rn("s9"), m01, to_if0, geq(a0));
    b.rule(rn("s10"), m01, to_mixed, geq2(a0, a1));
    b.rule(rn("s11"), m01, to_if1, geq(a1));

    GadgetRound {
        v0,
        v1,
        m,
        m0,
        m1,
        m01,
        e0,
        e1,
        decided,
    }
}

impl SimplifiedConsensusModel {
    /// Builds the automaton of Fig. 4 with the standard resilience
    /// `n > 3t ∧ t ≥ f ≥ 0`.
    pub fn new() -> SimplifiedConsensusModel {
        Self::with_resilience(3)
    }

    /// Builds the automaton with resilience `n > k·t`; `k = 2` weakens
    /// the fault assumption enough for the §6 agreement counterexample.
    pub fn with_resilience(k: i64) -> SimplifiedConsensusModel {
        let mut b = TaBuilder::new("simplified_consensus");
        let n = b.param("n");
        let t = b.param("t");
        let f = b.param("f");
        b.resilience_gt(n, t, k);
        b.resilience_ge(t, f);
        b.resilience_ge_const(f, 0);
        b.size_n_minus_f(n, f);

        let mut quorum = ParamExpr::param(n);
        quorum.add_term(t, -1);
        quorum.add_term(f, -1);

        let r1 = build_round(&mut b, "", 1, &quorum, false);
        let r2 = build_round(&mut b, "'", 0, &quorum, true);

        // s12–s14: round switches (dotted in Fig. 4 are the next
        // superround; these are the solid odd→even switches).
        b.rule("s12", r1.e0, r2.v0, Guard::always()).round_switch();
        b.rule("s13", r1.e1, r2.v1, Guard::always()).round_switch();
        b.rule("s14", r1.decided, r2.v1, Guard::always())
            .round_switch();

        // 12 self-loops: the gadget waiting locations of both rounds and
        // the superround's terminal locations (rule count 37 = 2×11 + 3
        // switches + 12 self-loops).
        for loc in [
            r1.m, r1.m0, r1.m1, r1.m01, r2.m, r2.m0, r2.m1, r2.m01, r1.decided, r2.decided, r2.e0,
            r2.e1,
        ] {
            b.self_loop(loc);
        }

        SimplifiedConsensusModel {
            ta: b.build().expect("simplified consensus model is valid"),
        }
    }

    fn loc(&self, name: &str) -> LocationId {
        self.ta
            .location_by_name(name)
            .unwrap_or_else(|| panic!("location {name} exists"))
    }

    fn var(&self, name: &str) -> VarId {
        self.ta
            .variable_by_name(name)
            .unwrap_or_else(|| panic!("variable {name} exists"))
    }

    fn param_expr_t_plus_1(&self) -> ParamExpr {
        let t = self.ta.param_by_name("t").expect("parameter t");
        let mut e = ParamExpr::param(t);
        e.add_constant(1);
        e
    }

    fn quorum_expr(&self) -> ParamExpr {
        let n = self.ta.param_by_name("n").expect("parameter n");
        let t = self.ta.param_by_name("t").expect("parameter t");
        let f = self.ta.param_by_name("f").expect("parameter f");
        let mut e = ParamExpr::param(n);
        e.add_term(t, -1);
        e.add_term(f, -1);
        e
    }

    /// `Inv1ᵥ` (Appendix F `inv1_0` / `inv1_1`).
    pub fn inv1(&self, v: u8) -> Ltl {
        let (dv, d_other, e_other) = if v == 0 {
            (self.loc("D0"), self.loc("D1"), self.loc("E1'"))
        } else {
            (self.loc("D1"), self.loc("D0"), self.loc("E0'"))
        };
        Ltl::implies(
            Ltl::eventually(Ltl::state(Prop::loc_nonempty(dv))),
            Ltl::always(Ltl::state(Prop::all_empty([d_other, e_other]))),
        )
    }

    /// `Inv2ᵥ` (Appendix F `inv2_0` / `inv2_1`).
    pub fn inv2(&self, v: u8) -> Ltl {
        let (vv, dv, ev) = if v == 0 {
            (self.loc("V0"), self.loc("D0"), self.loc("E0'"))
        } else {
            (self.loc("V1"), self.loc("D1"), self.loc("E1'"))
        };
        Ltl::implies(
            Ltl::always(Ltl::state(Prop::loc_empty(vv))),
            Ltl::always(Ltl::state(Prop::all_empty([dv, ev]))),
        )
    }

    /// `Decᵥ` (paper (Dec), Appendix F `dec_0` / `dec_1`): if no process
    /// starts with `v`, everyone decides `1−v` in the round of that
    /// parity (nobody exits it undecided).
    pub fn dec(&self, v: u8) -> Ltl {
        let (vv, exits) = if v == 0 {
            (self.loc("V0"), [self.loc("E0"), self.loc("E1")])
        } else {
            (self.loc("V1"), [self.loc("E0'"), self.loc("E1'")])
        };
        Ltl::implies(
            Ltl::always(Ltl::state(Prop::loc_empty(vv))),
            Ltl::always(Ltl::state(Prop::all_empty(exits))),
        )
    }

    /// `Goodᵥ` (paper (Good), Appendix F `good_0` / `good_1`): the
    /// consequence of a `v`-good bv-broadcast round (Corollary 5).
    pub fn good(&self, v: u8) -> Ltl {
        if v == 0 {
            // [](k[M0] = 0) => [](k[D0] = 0 && k[E0'] = 0)
            Ltl::implies(
                Ltl::always(Ltl::state(Prop::loc_empty(self.loc("M0")))),
                Ltl::always(Ltl::state(Prop::all_empty([
                    self.loc("D0"),
                    self.loc("E0'"),
                ]))),
            )
        } else {
            // [](k[M1'] = 0) => [](k[E1'] = 0)
            Ltl::implies(
                Ltl::always(Ltl::state(Prop::loc_empty(self.loc("M1'")))),
                Ltl::always(Ltl::state(Prop::loc_empty(self.loc("E1'")))),
            )
        }
    }

    /// `SRoundTerm` (paper (SRoundTerm), Appendix F
    /// `s_round_termination`): eventually only `D0`, `E0'`, `E1'` are
    /// occupied.
    pub fn sround_term(&self) -> Ltl {
        let terminals = [self.loc("D0"), self.loc("E0'"), self.loc("E1'")];
        let pending: Vec<LocationId> = (0..self.ta.locations.len())
            .map(LocationId)
            .filter(|l| !terminals.contains(l))
            .collect();
        Ltl::eventually(Ltl::state(Prop::all_empty(pending)))
    }

    /// The justice assumption of Appendix F: rule-wise justice for the
    /// real rules, and property-derived requirements for the gadget
    /// locations (BV-Termination, BV-Obligation, BV-Uniformity, plus
    /// the aux-quorum progress).
    pub fn justice(&self) -> Justice {
        let mut j = Justice::none();
        let t_plus_1 = self.param_expr_t_plus_1();
        let quorum = self.quorum_expr();
        let ge = |v: VarId, e: ParamExpr| Prop::guard(AtomicGuard::ge(VarExpr::var(v), e));
        let ge2 = |x: VarId, y: VarId, e: ParamExpr| {
            let mut lhs = VarExpr::var(x);
            lhs.add_term(y, 1);
            Prop::guard(AtomicGuard::ge(lhs, e))
        };

        // Unconditional drains: broadcasting (s1/s2/s'1/s'2), the round
        // switches (s12–s14), and BV-Termination for M / M'.
        for l in ["V0", "V1", "V0'", "V1'", "E0", "E1", "D1"] {
            j.require(Prop::True, self.loc(l), format!("reliable send ({l})"));
        }
        j.require(Prop::True, self.loc("M"), "BV-Termination");
        j.require(Prop::True, self.loc("M'"), "BV-Termination'");

        for suffix in ["", "'"] {
            let bvb0 = self.var(&format!("bvb0{suffix}"));
            let bvb1 = self.var(&format!("bvb1{suffix}"));
            let a0 = self.var(&format!("a0{suffix}"));
            let a1 = self.var(&format!("a1{suffix}"));
            let m0 = self.loc(&format!("M0{suffix}"));
            let m1 = self.loc(&format!("M1{suffix}"));
            let m01 = self.loc(&format!("M01{suffix}"));
            // BV-Obligation: t+1 correct broadcasts of v force delivery
            // of v everywhere, draining the other-value-only location.
            j.require(
                ge(bvb0, t_plus_1.clone()),
                m1,
                format!("BV-Obligation{suffix}"),
            );
            j.require(
                ge(bvb1, t_plus_1.clone()),
                m0,
                format!("BV-Obligation{suffix}"),
            );
            // BV-Uniformity: one first-delivery of v forces delivery of
            // v everywhere.
            j.require(
                ge(a0, ParamExpr::constant(1)),
                m1,
                format!("BV-Uniformity{suffix}"),
            );
            j.require(
                ge(a1, ParamExpr::constant(1)),
                m0,
                format!("BV-Uniformity{suffix}"),
            );
            // Business as usual: an aux quorum completes the wait of
            // Algorithm 1, line 9.
            j.require(ge(a0, quorum.clone()), m0, format!("aux quorum{suffix}"));
            j.require(ge(a1, quorum.clone()), m1, format!("aux quorum{suffix}"));
            j.require(
                ge2(a0, a1, quorum.clone()),
                m01,
                format!("aux quorum{suffix}"),
            );
        }
        j
    }

    /// The properties benchmarked on this automaton in Table 2 (`v = 0`
    /// instances, as in the paper).
    pub fn table2_specs(&self) -> Vec<(&'static str, Ltl)> {
        vec![
            ("Inv1_0", self.inv1(0)),
            ("Inv2_0", self.inv2(0)),
            ("SRoundTerm", self.sround_term()),
            ("Good_0", self.good(0)),
            ("Dec_0", self.dec(0)),
        ]
    }

    /// Every safety/liveness property of §5 and Appendix F.
    pub fn all_specs(&self) -> Vec<(String, Ltl)> {
        let mut out = Vec::new();
        for v in [0u8, 1] {
            out.push((format!("Inv1_{v}"), self.inv1(v)));
            out.push((format!("Inv2_{v}"), self.inv2(v)));
            out.push((format!("Dec_{v}"), self.dec(v)));
            out.push((format!("Good_{v}"), self.good(v)));
        }
        out.push(("SRoundTerm".to_owned(), self.sround_term()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_close_to_table2() {
        let m = SimplifiedConsensusModel::new();
        let (guards, locs, rules) = m.ta.size_summary();
        // Table 2: 10 unique guards, 16 locations, 37 rules. We keep
        // E0/E1 explicit (the paper merges them with V0'/V1'), hence 18.
        assert_eq!(guards, 10);
        assert_eq!(locs, 18);
        assert_eq!(rules, 37);
    }

    #[test]
    fn automaton_is_dag_and_valid() {
        let m = SimplifiedConsensusModel::new();
        assert!(m.ta.validate().is_ok());
        assert!(m.ta.is_dag());
    }

    #[test]
    fn justice_covers_all_waiting_locations() {
        let m = SimplifiedConsensusModel::new();
        let j = m.justice();
        // Every non-final location with guarded exits has at least one
        // requirement.
        for name in ["M", "M0", "M1", "M01", "M'", "M0'", "M1'", "M01'"] {
            let l = m.loc(name);
            assert!(
                j.requirements.iter().any(|r| r.source == l),
                "no justice for {name}"
            );
        }
    }

    /// Explicit-state agreement at n=4, t=f=1 over the complete state
    /// space.
    #[test]
    fn explicit_state_agreement() {
        use holistic_ta::CounterSystem;
        let m = SimplifiedConsensusModel::new();
        let sys = CounterSystem::new(&m.ta, &[4, 1, 1]).unwrap();
        let ex = sys.explore(2_000_000);
        assert!(ex.complete());
        let d0 = m.loc("D0");
        let d1 = m.loc("D1");
        assert!(ex.all(|c| c.counters[d0.0] == 0 || c.counters[d1.0] == 0));
    }

    /// With the weakened resilience n > 2t, disagreement IS reachable
    /// (the §6 counterexample), already at n=3, t=f=1.
    #[test]
    fn explicit_state_disagreement_when_resilience_weakened() {
        use holistic_ta::CounterSystem;
        let m = SimplifiedConsensusModel::with_resilience(2);
        let sys = CounterSystem::new(&m.ta, &[3, 1, 1]).unwrap();
        let ex = sys.explore(2_000_000);
        assert!(ex.complete());
        let d0 = m.loc("D0");
        let d1 = m.loc("D1");
        assert!(
            ex.find(|c| c.counters[d0.0] > 0 && c.counters[d1.0] > 0)
                .is_some(),
            "disagreement must be reachable under n > 2t"
        );
    }

    /// The gadget mirrors Corollary 5: if M0 is never entered, nobody
    /// decides 0 in this superround (state-level Good_0, explicit).
    #[test]
    fn explicit_state_good() {
        use holistic_ta::CounterSystem;
        let m = SimplifiedConsensusModel::new();
        let sys = CounterSystem::new(&m.ta, &[4, 1, 1]).unwrap();
        let ex = sys.explore(2_000_000);
        assert!(ex.complete());
        let m0 = m.loc("M0");
        let d0 = m.loc("D0");
        // Reaching D0 requires someone to have passed M0 (a0 > 0 forces
        // an M0 visit in round 1... via the aux chain). State-level
        // proxy: D0 occupied implies a0' > 0 implies M0' was visited,
        // whose guard needs bvb0' > 0, i.e. someone reached V0' = exited
        // round 1 with estimate 0 through E0, which needs a0 ≥ quorum,
        // which needs M0 visits.
        let a0 = m.var("a0");
        assert!(ex.all(|c| c.counters[d0.0] == 0 || c.shared[a0.0] > 0));
        let _ = m0;
    }
}
