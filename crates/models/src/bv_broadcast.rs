//! The binary value broadcast (paper Fig. 1 pseudocode, Fig. 2 TA).
//!
//! The bv-broadcast of Mostéfaoui, Moumen & Raynal guarantees that every
//! delivered binary value was broadcast by a correct process. A process
//! starts in `V0`/`V1` (its input bit), broadcasts it (`b0++`/`b1++`),
//! re-broadcasts a value received from `t+1` distinct processes, and
//! *delivers* a value received from `2t+1` distinct processes. Since up
//! to `f` of the received copies may be Byzantine, the guards compare
//! the count of **correct** senders with `t+1−f` and `2t+1−f`.
//!
//! Locations encode `(values broadcast, values delivered)` per the
//! paper's Table 1:
//!
//! | location | broadcast | delivered |
//! |---|---|---|
//! | V0 / V1 | – | – |
//! | B0 / B1 | 0 / 1 | – |
//! | B01 | 0,1 | – |
//! | C0 / C1 | 0 / 1 | 0 / 1 |
//! | CB0 / CB1 | 0,1 | 0 / 1 |
//! | C01 | 0,1 | 0,1 |

use holistic_ltl::{Justice, Ltl, Prop};
use holistic_ta::{
    AtomicGuard, Guard, LocationId, ParamExpr, ParamId, TaBuilder, ThresholdAutomaton, VarExpr,
};

/// One row of the paper's Table 1.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LocationRow {
    /// Location name.
    pub location: &'static str,
    /// Values this process has broadcast so far.
    pub broadcast: &'static str,
    /// Values this process has delivered so far.
    pub delivered: &'static str,
}

/// The bv-broadcast threshold automaton plus its specifications.
#[derive(Clone, Debug)]
pub struct BvBroadcastModel {
    /// The threshold automaton of Fig. 2 (12 proper rules + 7
    /// self-loops, 10 locations, 4 unique guards).
    pub ta: ThresholdAutomaton,
}

impl Default for BvBroadcastModel {
    fn default() -> Self {
        Self::new()
    }
}

impl BvBroadcastModel {
    /// Builds the automaton of Fig. 2.
    pub fn new() -> BvBroadcastModel {
        let mut b = TaBuilder::new("bv_broadcast");
        let n = b.param("n");
        let t = b.param("t");
        let f = b.param("f");
        b.resilience_gt(n, t, 3);
        b.resilience_ge(t, f);
        b.resilience_ge_const(f, 0);
        b.size_n_minus_f(n, f);

        let b0 = b.shared("b0");
        let b1 = b.shared("b1");

        let v0 = b.initial_location("V0");
        let v1 = b.initial_location("V1");
        let lb0 = b.location("B0");
        let lb1 = b.location("B1");
        let b01 = b.location("B01");
        let c0 = b.final_location("C0");
        let c1 = b.final_location("C1");
        let cb0 = b.final_location("CB0");
        let cb1 = b.final_location("CB1");
        let c01 = b.final_location("C01");

        let low = |var: ParamId, fv: ParamId| {
            // t + 1 - f
            let mut e = ParamExpr::param(var);
            e.add_constant(1);
            e.add_term(fv, -1);
            e
        };
        let high = |var: ParamId, fv: ParamId| {
            // 2t + 1 - f
            let mut e = ParamExpr::term(var, 2);
            e.add_constant(1);
            e.add_term(fv, -1);
            e
        };
        let ge = |v, rhs| Guard::atom(AtomicGuard::ge(VarExpr::var(v), rhs));

        // r1, r2: broadcast the input value.
        b.rule("r1", v0, lb0, Guard::always()).inc(b0, 1);
        b.rule("r2", v1, lb1, Guard::always()).inc(b1, 1);
        // r3: deliver 0 after 2t+1 copies of 0.
        b.rule("r3", lb0, c0, ge(b0, high(t, f)));
        // r4: echo 1 after t+1 copies of 1 (not yet re-broadcast).
        b.rule("r4", lb0, b01, ge(b1, low(t, f))).inc(b1, 1);
        // r5: echo 0 symmetric.
        b.rule("r5", lb1, b01, ge(b0, low(t, f))).inc(b0, 1);
        // r6: deliver 1.
        b.rule("r6", lb1, c1, ge(b1, high(t, f)));
        // r7: after delivering 0, echo 1.
        b.rule("r7", c0, cb0, ge(b1, low(t, f))).inc(b1, 1);
        // r8/r9: from both-broadcast, deliver either value first.
        b.rule("r8", b01, c0, ge(b0, high(t, f)));
        b.rule("r9", b01, c1, ge(b1, high(t, f)));
        // r10: after delivering 1, echo 0.
        b.rule("r10", c1, cb1, ge(b0, low(t, f))).inc(b0, 1);
        // r11/r12: deliver the second value.
        b.rule("r11", cb0, c01, ge(b1, high(t, f)));
        b.rule("r12", cb1, c01, ge(b0, high(t, f)));

        // The paper counts 19 rules = 12 proper + 7 self-loops. The
        // figure does not name the looped locations; we put them where a
        // process can legitimately wait forever: the guarded-waiting
        // locations B0, B1 and the delivered locations. (B01's exits are
        // also guarded; the count in the paper fixes 7, so B01 stutters
        // implicitly like V0/V1 — self-loops are semantically inert for
        // the checker either way.)
        for loc in [lb0, lb1, c0, c1, cb0, cb1, c01] {
            b.self_loop(loc);
        }

        BvBroadcastModel {
            ta: b.build().expect("bv-broadcast model is valid"),
        }
    }

    fn loc(&self, name: &str) -> LocationId {
        self.ta
            .location_by_name(name)
            .unwrap_or_else(|| panic!("location {name} exists"))
    }

    /// `Cv`, `CBv`, `C01` — the locations where `v ∈ contestants`.
    pub fn delivered_locs(&self, v: u8) -> Vec<LocationId> {
        assert!(v <= 1, "binary value");
        vec![
            self.loc(&format!("C{v}")),
            self.loc(&format!("CB{v}")),
            self.loc("C01"),
        ]
    }

    /// `Locsᵥ` — locations a process can be in while `v ∉ contestants`.
    pub fn not_delivered_locs(&self, v: u8) -> Vec<LocationId> {
        assert!(v <= 1, "binary value");
        let w = 1 - v;
        vec![
            self.loc("V0"),
            self.loc("V1"),
            self.loc("B0"),
            self.loc("B1"),
            self.loc("B01"),
            self.loc(&format!("C{w}")),
            self.loc(&format!("CB{w}")),
        ]
    }

    /// BV-Justification (paper `BV-Justᵥ`): if no correct process
    /// bv-broadcasts `v` (i.e. `Vᵥ` starts empty), no correct process
    /// ever delivers `v`.
    pub fn justification(&self, v: u8) -> Ltl {
        let vv = self.loc(&format!("V{v}"));
        Ltl::implies(
            Ltl::state(Prop::loc_empty(vv)),
            Ltl::always(Ltl::state(Prop::all_empty(self.delivered_locs(v)))),
        )
    }

    /// BV-Obligation (`BV-Oblᵥ`): if at least `t+1` correct processes
    /// bv-broadcast `v`, then `v` is eventually delivered by every
    /// correct process.
    pub fn obligation(&self, v: u8) -> Ltl {
        let bv = self
            .ta
            .variable_by_name(&format!("b{v}"))
            .expect("shared variable");
        let t = self.ta.param_by_name("t").expect("parameter t");
        let mut thresh = ParamExpr::param(t);
        thresh.add_constant(1);
        let premise = Prop::guard(AtomicGuard::ge(VarExpr::var(bv), thresh));
        Ltl::always(Ltl::implies(
            Ltl::state(premise),
            Ltl::eventually(Ltl::state(Prop::all_empty(self.not_delivered_locs(v)))),
        ))
    }

    /// BV-Uniformity (`BV-Unifᵥ`): if some correct process delivers `v`,
    /// every correct process eventually delivers `v`.
    pub fn uniformity(&self, v: u8) -> Ltl {
        Ltl::implies(
            Ltl::eventually(Ltl::state(Prop::any_nonempty(self.delivered_locs(v)))),
            Ltl::eventually(Ltl::state(Prop::all_empty(self.not_delivered_locs(v)))),
        )
    }

    /// BV-Termination (`BV-Term`): eventually every correct process has
    /// delivered some value (left `V0, V1, B0, B1, B01`).
    pub fn termination(&self) -> Ltl {
        let pending = vec![
            self.loc("V0"),
            self.loc("V1"),
            self.loc("B0"),
            self.loc("B1"),
            self.loc("B01"),
        ];
        Ltl::eventually(Ltl::state(Prop::all_empty(pending)))
    }

    /// The reliable-communication justice: rule-wise (every guard that
    /// holds forever drains its source).
    pub fn justice(&self) -> Justice {
        Justice::from_rules(&self.ta)
    }

    /// All four properties of §3.2, named as in Table 2 (the `v = 0`
    /// instances, as benchmarked in the paper, plus termination).
    pub fn table2_specs(&self) -> Vec<(&'static str, Ltl)> {
        vec![
            ("BV-Just0", self.justification(0)),
            ("BV-Obl0", self.obligation(0)),
            ("BV-Unif0", self.uniformity(0)),
            ("BV-Term", self.termination()),
        ]
    }

    /// The paper's Table 1: what each location means.
    pub fn location_table(&self) -> Vec<LocationRow> {
        vec![
            LocationRow {
                location: "V0",
                broadcast: "/",
                delivered: "/",
            },
            LocationRow {
                location: "V1",
                broadcast: "/",
                delivered: "/",
            },
            LocationRow {
                location: "B0",
                broadcast: "0",
                delivered: "/",
            },
            LocationRow {
                location: "B1",
                broadcast: "1",
                delivered: "/",
            },
            LocationRow {
                location: "B01",
                broadcast: "0,1",
                delivered: "/",
            },
            LocationRow {
                location: "C0",
                broadcast: "0",
                delivered: "0",
            },
            LocationRow {
                location: "CB0",
                broadcast: "0,1",
                delivered: "0",
            },
            LocationRow {
                location: "C1",
                broadcast: "1",
                delivered: "1",
            },
            LocationRow {
                location: "CB1",
                broadcast: "0,1",
                delivered: "1",
            },
            LocationRow {
                location: "C01",
                broadcast: "0,1",
                delivered: "0,1",
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_matches_table2() {
        let m = BvBroadcastModel::new();
        // Table 2: 4 unique guards, 10 locations, 19 rules.
        assert_eq!(m.ta.size_summary(), (4, 10, 19));
    }

    #[test]
    fn automaton_is_a_dag() {
        let m = BvBroadcastModel::new();
        assert!(m.ta.is_dag());
        assert!(m.ta.validate().is_ok());
    }

    #[test]
    fn initial_and_final_locations() {
        let m = BvBroadcastModel::new();
        assert_eq!(m.ta.initial_locations().len(), 2);
        assert_eq!(m.ta.final_locations().len(), 5);
    }

    #[test]
    fn location_table_covers_all_locations() {
        let m = BvBroadcastModel::new();
        let table = m.location_table();
        assert_eq!(table.len(), m.ta.locations.len());
        for row in &table {
            assert!(m.ta.location_by_name(row.location).is_some());
        }
    }

    #[test]
    fn delivered_and_pending_partition() {
        let m = BvBroadcastModel::new();
        for v in [0u8, 1] {
            let delivered = m.delivered_locs(v);
            let pending = m.not_delivered_locs(v);
            assert_eq!(delivered.len() + pending.len(), m.ta.locations.len());
            for l in &delivered {
                assert!(!pending.contains(l));
            }
        }
    }

    /// Concrete sanity check of the semantics at n=4, t=f=1: explore the
    /// full state space and verify the four properties' state-level
    /// ingredients.
    #[test]
    fn explicit_state_justification_holds() {
        use holistic_ta::CounterSystem;
        let m = BvBroadcastModel::new();
        let sys = CounterSystem::new(&m.ta, &[4, 1, 1]).unwrap();
        // Start with nobody proposing 0: V0 empty.
        let roots: Vec<_> = sys
            .initial_configs()
            .into_iter()
            .filter(|c| c.counters[m.loc("V0").0] == 0)
            .collect();
        let ex = sys.explore_from(roots, 500_000);
        assert!(ex.complete());
        // No configuration delivers 0.
        let delivered0 = m.delivered_locs(0);
        assert!(ex.all(|c| delivered0.iter().all(|l| c.counters[l.0] == 0)));
    }

    #[test]
    fn explicit_state_termination_reachable() {
        use holistic_ta::CounterSystem;
        let m = BvBroadcastModel::new();
        let sys = CounterSystem::new(&m.ta, &[4, 1, 1]).unwrap();
        let ex = sys.explore(500_000);
        assert!(ex.complete());
        let pending = [
            m.loc("V0"),
            m.loc("V1"),
            m.loc("B0"),
            m.loc("B1"),
            m.loc("B01"),
        ];
        // From every initial config, some terminating config is
        // reachable, and every justice-stuck config has everyone
        // delivered (the state-level content of BV-Term).
        assert!(ex
            .find(|c| pending.iter().all(|l| c.counters[l.0] == 0))
            .is_some());
        for c in ex.configs() {
            if sys.is_stuck(c) {
                assert!(
                    pending.iter().all(|l| c.counters[l.0] == 0),
                    "stuck but undelivered: {c:?}"
                );
            }
        }
    }
}
