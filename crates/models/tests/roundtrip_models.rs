//! parse ∘ print is the identity on every automaton shipped by this
//! crate — the paper's figures survive the text format exactly, so a
//! model written to disk and re-read verifies identically.

use holistic_models::{
    BvBroadcastModel, NaiveConsensusModel, ReliableBroadcastModel, SimplifiedConsensusModel,
};
use holistic_ta::{parse_ta, to_ta_source, ThresholdAutomaton};

fn roundtrip(name: &str, ta: &ThresholdAutomaton) {
    let printed = to_ta_source(ta);
    let reparsed =
        parse_ta(&printed).unwrap_or_else(|e| panic!("{name}: reparse failed: {e}\n{printed}"));
    assert_eq!(ta, &reparsed, "{name}: round trip not the identity");
    // And printing the reparse is byte-identical (print is canonical).
    assert_eq!(printed, to_ta_source(&reparsed), "{name}: print not stable");
}

#[test]
fn all_four_models_roundtrip() {
    roundtrip("bv-broadcast", &BvBroadcastModel::new().ta);
    roundtrip("naive-consensus", &NaiveConsensusModel::new().ta);
    roundtrip("simplified-consensus", &SimplifiedConsensusModel::new().ta);
    roundtrip("reliable-broadcast", &ReliableBroadcastModel::new().ta);
}
