//! The shipped `.ta` text models must stay in sync with the builders.

use holistic_models::{BvBroadcastModel, NaiveConsensusModel, SimplifiedConsensusModel};
use holistic_ta::{parse_ta, to_ta_source};

#[test]
fn bv_broadcast_file_matches_builder() {
    let ta = BvBroadcastModel::new().ta;
    let shipped = include_str!("../ta/bv_broadcast.ta");
    assert_eq!(parse_ta(shipped).unwrap(), ta);
    assert_eq!(to_ta_source(&ta), shipped);
}

#[test]
fn naive_consensus_file_matches_builder() {
    let ta = NaiveConsensusModel::new().ta;
    let shipped = include_str!("../ta/naive_consensus.ta");
    assert_eq!(parse_ta(shipped).unwrap(), ta);
    assert_eq!(to_ta_source(&ta), shipped);
}

#[test]
fn simplified_consensus_file_matches_builder() {
    let ta = SimplifiedConsensusModel::new().ta;
    let shipped = include_str!("../ta/simplified_consensus.ta");
    assert_eq!(parse_ta(shipped).unwrap(), ta);
    assert_eq!(to_ta_source(&ta), shipped);
}
