//! Criterion benches for the substrate layers: the LIA solver, the
//! explicit-state counter system, and guard analysis. These are not in
//! the paper's Table 2; they are ablation-style measurements of the
//! components this reproduction had to build in place of Z3 and ByMC's
//! internals.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use holistic_checker::GuardInfo;
use holistic_lia::{Constraint, LinExpr, Solver};
use holistic_models::{BvBroadcastModel, SimplifiedConsensusModel};
use holistic_ta::CounterSystem;

fn bench_lia(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/lia");

    group.bench_function("feasible_chain_50", |b| {
        // x1 <= x2 <= ... <= x50, x50 <= 100, sum >= 500.
        b.iter_batched(
            Solver::new,
            |mut solver| {
                let vars: Vec<_> = (0..50)
                    .map(|i| solver.new_nonneg_var(format!("x{i}")))
                    .collect();
                for w in vars.windows(2) {
                    solver
                        .assert_constraint(Constraint::le(LinExpr::var(w[0]), LinExpr::var(w[1])));
                }
                solver.assert_constraint(Constraint::le(
                    LinExpr::var(vars[49]),
                    LinExpr::constant(100),
                ));
                let mut sum = LinExpr::zero();
                for &v in &vars {
                    sum += LinExpr::var(v);
                }
                solver.assert_constraint(Constraint::ge(sum, LinExpr::constant(500)));
                assert!(solver.check().is_sat());
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("infeasible_parity", |b| {
        // 2x + 4y + 6z == 101 (GCD-tightened to false instantly).
        b.iter_batched(
            Solver::new,
            |mut solver| {
                let x = solver.new_var("x");
                let y = solver.new_var("y");
                let z = solver.new_var("z");
                let mut e = LinExpr::term(x, 2);
                e += LinExpr::term(y, 4);
                e += LinExpr::term(z, 6);
                solver.assert_constraint(Constraint::eq(e, LinExpr::constant(101)));
                assert!(solver.check().is_unsat());
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_counter_system(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/counter_system");
    group.sample_size(10);
    let bv = BvBroadcastModel::new();
    group.bench_function("bv_broadcast_explore_n4", |b| {
        b.iter(|| {
            let sys = CounterSystem::new(&bv.ta, &[4, 1, 1]).unwrap();
            let ex = sys.explore(1_000_000);
            assert!(ex.complete());
            ex.len()
        })
    });
    group.finish();
}

fn bench_guard_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/guard_analysis");
    group.sample_size(10);
    let simplified = SimplifiedConsensusModel::new();
    group.bench_function("simplified_10_guards", |b| {
        b.iter(|| GuardInfo::analyse(&simplified.ta).unwrap().len())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_lia,
    bench_counter_system,
    bench_guard_analysis
);
criterion_main!(benches);
