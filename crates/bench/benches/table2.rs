//! Criterion benches for the Table 2 verification tasks.
//!
//! Each bench measures one property's full parameterized verification
//! (guard analysis + schedule DFS + SMT). The multi-second properties
//! (`Inv1_0`, `SRoundTerm` on the simplified automaton, and everything
//! on the naive automaton) are exercised once by the `table2` binary
//! instead of being iterated here.

use criterion::{criterion_group, criterion_main, Criterion};
use holistic_checker::{Checker, CheckerConfig, Strategy};
use holistic_models::{BvBroadcastModel, NaiveConsensusModel, SimplifiedConsensusModel};

fn bench_bv_broadcast(c: &mut Criterion) {
    let model = BvBroadcastModel::new();
    let justice = model.justice();
    let checker = Checker::new();
    let mut group = c.benchmark_group("table2/bv_broadcast");
    group.sample_size(10);
    for (name, spec) in model.table2_specs() {
        group.bench_function(name, |b| {
            b.iter(|| {
                let report = checker.check_ltl(&model.ta, &spec, &justice).unwrap();
                assert!(report.verdict().is_verified());
                report.total_schemas()
            })
        });
    }
    group.finish();
}

fn bench_simplified_fast(c: &mut Criterion) {
    let model = SimplifiedConsensusModel::new();
    let justice = model.justice();
    let checker = Checker::new();
    let mut group = c.benchmark_group("table2/simplified_consensus");
    group.sample_size(10);
    for (name, spec) in [
        ("Inv2_0", model.inv2(0)),
        ("Good_0", model.good(0)),
        ("Dec_0", model.dec(0)),
        ("Inv2_1", model.inv2(1)),
        ("Dec_1", model.dec(1)),
        ("Good_1", model.good(1)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let report = checker.check_ltl(&model.ta, &spec, &justice).unwrap();
                assert!(report.verdict().is_verified());
                report.total_schemas()
            })
        });
    }
    group.finish();
}

fn bench_counterexample(c: &mut Criterion) {
    // The §6 experiment: a counterexample to Inv1_0 when the resilience
    // condition is weakened to n > 2t (paper: ~4 s with ByMC).
    let model = SimplifiedConsensusModel::with_resilience(2);
    let justice = model.justice();
    let checker = Checker::new();
    let mut group = c.benchmark_group("table2/counterexample");
    group.sample_size(10);
    group.bench_function("Inv1_0_weak_resilience", |b| {
        b.iter(|| {
            let report = checker
                .check_ltl(&model.ta, &model.inv1(0), &justice)
                .unwrap();
            assert!(report.verdict().is_violated());
        })
    });
    group.finish();
}

fn bench_naive_explosion(c: &mut Criterion) {
    // Time to *detect* the explosion (hit a small schema cap) on the
    // naive automaton — the reproduction of the timeout row.
    let model = NaiveConsensusModel::new();
    let justice = model.justice();
    let checker = Checker::with_config(CheckerConfig {
        max_schemas: 15,
        strategy: Strategy::Enumerate,
        ..CheckerConfig::default()
    });
    let mut group = c.benchmark_group("table2/naive_explosion");
    group.sample_size(10);
    group.bench_function("Inv2_0_cap15", |b| {
        b.iter(|| {
            let report = checker
                .check_ltl(&model.ta, &model.inv2(0), &justice)
                .unwrap();
            report.total_schemas()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_bv_broadcast,
    bench_simplified_fast,
    bench_counterexample,
    bench_naive_explosion
);
criterion_main!(benches);
