//! Trace serialization and profile rendering for bench binaries.
//!
//! The [`holistic_obs`] collector is dependency-free and cannot see the
//! repo's JSON emitter (it sits below the checker in the crate graph),
//! so the JSONL trace writer and the human-readable `--profile` table
//! live here, next to the binaries that expose the flags.
//!
//! The trace format is one JSON object per line (JSONL), parseable by
//! [`holistic_core::json::Json::parse`] line-by-line:
//!
//! * a `meta` header: schema version, wall time, record counts;
//! * one `span` line per closed span (`id`, `parent`, `thread`,
//!   `name`, `label`, `start_us`, `dur_us`);
//! * one `counter` line per registry counter;
//! * one `histogram` line per registry histogram, buckets as
//!   `[lower_bound, count]` pairs.
//!
//! Span ids are below 2^53, so every field survives the f64 number
//! round-trip of the hand-rolled parser.

use std::fmt::Write as _;

use holistic_core::json::Writer;
use holistic_obs::{profile, Snapshot};

/// Trace schema version, bumped on any incompatible line change.
pub const TRACE_SCHEMA_VERSION: u64 = 1;

/// Serializes a drained snapshot as a JSONL trace document.
pub fn write_trace(snapshot: &Snapshot, wall_us: u64, generated_by: &str) -> String {
    let mut out = String::new();
    let mut meta = Writer::compact();
    meta.begin_obj()
        .field_str("type", "meta")
        .field_u64("schema_version", TRACE_SCHEMA_VERSION)
        .field_str("generated_by", generated_by)
        .field_u64("wall_us", wall_us)
        .field_u64("spans", snapshot.spans.len() as u64)
        .field_u64("counters", snapshot.counters.len() as u64)
        .field_u64("histograms", snapshot.histograms.len() as u64)
        .end_obj();
    out.push_str(&meta.finish());
    out.push('\n');
    for s in &snapshot.spans {
        let mut w = Writer::compact();
        w.begin_obj()
            .field_str("type", "span")
            .field_u64("id", s.id)
            .field_u64("parent", s.parent)
            .field_u64("thread", s.thread as u64)
            .field_str("name", s.name)
            .field_str("label", &s.label)
            .field_u64("start_us", s.start_us)
            .field_u64("dur_us", s.dur_us)
            .end_obj();
        out.push_str(&w.finish());
        out.push('\n');
    }
    for (name, value) in &snapshot.counters {
        let mut w = Writer::compact();
        w.begin_obj()
            .field_str("type", "counter")
            .field_str("name", name)
            .field_u64("value", *value)
            .end_obj();
        out.push_str(&w.finish());
        out.push('\n');
    }
    for (name, buckets) in &snapshot.histograms {
        let mut w = Writer::compact();
        w.begin_obj()
            .field_str("type", "histogram")
            .field_str("name", name)
            .key("buckets")
            .begin_arr();
        for (lower, count) in buckets {
            w.begin_arr().u64_value(*lower).u64_value(*count).end_arr();
        }
        w.end_arr().end_obj();
        out.push_str(&w.finish());
        out.push('\n');
    }
    out
}

/// Human-readable duration: `987µs`, `12.345ms`, `1.234s`.
fn fmt_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.3}ms", us as f64 / 1e3)
    } else {
        format!("{:.3}s", us as f64 / 1e6)
    }
}

fn profile_table(out: &mut String, rows: &[profile::Row]) {
    let _ = writeln!(
        out,
        "{:<28} {:>8} {:>12} {:>12}",
        "phase", "count", "total", "self"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>12} {:>12}",
            r.key,
            r.count,
            fmt_us(r.total_us),
            fmt_us(r.self_us)
        );
    }
}

/// Renders the hierarchical `--profile` report: per-phase self/total
/// time, per-property time (from `checker.cell` labels), the longest
/// span of each phase, and the non-zero registry counters.
pub fn render_profile(snapshot: &Snapshot, wall_us: u64, top: usize) -> String {
    let mut out = String::new();
    let coverage = profile::coverage(snapshot, wall_us);
    let _ = writeln!(
        out,
        "profile: {} spans on {} thread(s), wall {}, root-span coverage {:.1}%",
        snapshot.spans.len(),
        snapshot
            .spans
            .iter()
            .map(|s| s.thread)
            .collect::<std::collections::HashSet<_>>()
            .len()
            .max(1),
        fmt_us(wall_us),
        coverage * 100.0
    );
    out.push('\n');
    profile_table(&mut out, &profile::by_name(snapshot));

    let per_property = profile::by_label(snapshot, "checker.cell");
    if !per_property.is_empty() {
        out.push('\n');
        let _ = writeln!(out, "per property (checker.cell)");
        profile_table(&mut out, &per_property);
    }

    let slowest = profile::slowest(snapshot, top);
    if !slowest.is_empty() {
        out.push('\n');
        let _ = writeln!(out, "top spans (longest of each phase, top {top})");
        for s in &slowest {
            let _ = writeln!(
                out,
                "{:<28} {:>12}  thread {}{}",
                s.name,
                fmt_us(s.dur_us),
                s.thread,
                if s.label.is_empty() {
                    String::new()
                } else {
                    format!("  [{}]", s.label)
                }
            );
        }
    }

    let counters: Vec<_> = snapshot.counters.iter().filter(|(_, v)| *v > 0).collect();
    if !counters.is_empty() {
        out.push('\n');
        let _ = writeln!(out, "counters");
        for (name, value) in counters {
            let _ = writeln!(out, "{name:<36} {value:>12}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistic_core::json::Json;
    use holistic_obs::SpanRecord;

    fn sample() -> Snapshot {
        Snapshot {
            spans: vec![
                SpanRecord {
                    id: 1,
                    parent: 0,
                    thread: 0,
                    name: "bench.run",
                    label: String::new(),
                    start_us: 0,
                    dur_us: 1000,
                },
                SpanRecord {
                    id: 2,
                    parent: 1,
                    thread: 0,
                    name: "checker.cell",
                    label: "BV-Just0".into(),
                    start_us: 10,
                    dur_us: 900,
                },
            ],
            counters: vec![
                ("checker.schemas".to_owned(), 6),
                ("lia.checks".to_owned(), 0),
            ],
            histograms: vec![("lia.core_size".to_owned(), vec![(2, 3)])],
        }
    }

    #[test]
    fn trace_lines_parse_individually() {
        let doc = write_trace(&sample(), 1000, "test");
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), 1 + 2 + 2 + 1);
        for line in &lines {
            Json::parse(line).unwrap_or_else(|e| panic!("unparsable line {line}: {e}"));
        }
        let meta = Json::parse(lines[0]).unwrap();
        assert_eq!(meta.get("type").unwrap().as_str(), Some("meta"));
        assert_eq!(meta.get("wall_us").unwrap().as_f64(), Some(1000.0));
        let span = Json::parse(lines[1]).unwrap();
        assert_eq!(span.get("name").unwrap().as_str(), Some("bench.run"));
    }

    #[test]
    fn profile_reports_coverage_and_labels() {
        let text = render_profile(&sample(), 1000, 5);
        assert!(text.contains("coverage 100.0%"), "{text}");
        assert!(text.contains("bench.run"), "{text}");
        assert!(text.contains("BV-Just0"), "{text}");
        assert!(text.contains("checker.schemas"), "{text}");
        assert!(!text.contains("lia.checks"), "zero counters hidden: {text}");
    }
}
