//! # holistic-bench — the Table 2 harness
//!
//! The paper's evaluation is a single table (Table 2): per automaton and
//! property, the number of schemas, the average schema length, and the
//! verification time; the naive consensus automaton times out while the
//! decomposed approach finishes in under 70 seconds.
//!
//! * the [`table2`](bv_broadcast_rows) API produces the same rows from
//!   this reproduction's checker (the `table2` binary prints them);
//! * the Criterion benches (`cargo bench -p holistic-bench`) measure the
//!   fast properties per-iteration and the substrate layers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use holistic_core::json;

pub mod trace;

use std::time::Duration;

use holistic_checker::{Checker, CheckerConfig, Strategy, Verdict};
use holistic_ltl::{Justice, Ltl};
use holistic_models::{BvBroadcastModel, NaiveConsensusModel, SimplifiedConsensusModel};
use holistic_ta::ThresholdAutomaton;

/// One Table-2 cell as a *checkable object*: the automaton, the
/// property and the justice assumption, independent of any particular
/// driver. `table2` renders these through the symbolic checker;
/// `holistic-oracle`'s differential harness sweeps the same list
/// through explicit-state enumeration at small parameters, so the two
/// pipelines can never silently drift onto different cell sets.
pub struct Table2Cell {
    /// Automaton block name as used in reports (`bv-broadcast` …).
    pub automaton: &'static str,
    /// Property name (`BV-Just0`, `Inv1_0`, …).
    pub property: String,
    /// The automaton.
    pub ta: ThresholdAutomaton,
    /// The LTL property.
    pub spec: Ltl,
    /// The justice assumption the paper pairs with this automaton.
    pub justice: Justice,
}

/// Every cell of the paper's Table 2, in row order: the four
/// bv-broadcast properties, the three naive-consensus properties and
/// the five simplified-consensus properties.
pub fn table2_cells() -> Vec<Table2Cell> {
    let mut cells = Vec::new();
    let bv = BvBroadcastModel::new();
    let justice = bv.justice();
    for (name, spec) in bv.table2_specs() {
        cells.push(Table2Cell {
            automaton: "bv-broadcast",
            property: name.to_owned(),
            ta: bv.ta.clone(),
            spec,
            justice: justice.clone(),
        });
    }
    let naive = NaiveConsensusModel::new();
    let justice = naive.justice();
    for (name, spec) in naive.table2_specs() {
        cells.push(Table2Cell {
            automaton: "naive-consensus",
            property: name.to_owned(),
            ta: naive.ta.clone(),
            spec,
            justice: justice.clone(),
        });
    }
    let simplified = SimplifiedConsensusModel::new();
    let justice = simplified.justice();
    for (name, spec) in simplified.table2_specs() {
        cells.push(Table2Cell {
            automaton: "simplified-consensus",
            property: name.to_owned(),
            ta: simplified.ta.clone(),
            spec,
            justice: justice.clone(),
        });
    }
    cells
}

/// One row of Table 2.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Automaton block (`bv-broadcast`, `naive consensus`,
    /// `simplified consensus`).
    pub automaton: &'static str,
    /// Automaton size `(unique guards, locations, rules)`.
    pub size: (usize, usize, usize),
    /// Property name.
    pub property: String,
    /// Verdict.
    pub verdict: Verdict,
    /// Number of schemas.
    pub schemas: usize,
    /// Whether the schema count is a lower bound (cap hit).
    pub schemas_capped: bool,
    /// Average schema length.
    pub avg_segments: f64,
    /// Wall-clock time.
    pub time: Duration,
    /// What the paper reports for this row (for EXPERIMENTS.md).
    pub paper: &'static str,
}

/// Runs the bv-broadcast block of Table 2.
pub fn bv_broadcast_rows(checker: &Checker) -> Vec<Table2Row> {
    let model = BvBroadcastModel::new();
    let justice = model.justice();
    let paper = [
        ("BV-Just0", "90 schemas, len 54, 5.61s"),
        ("BV-Obl0", "90 schemas, len 79, 6.87s"),
        ("BV-Unif0", "760 schemas, len 97, 27.64s"),
        ("BV-Term", "90 schemas, len 79, 6.75s"),
    ];
    model
        .table2_specs()
        .into_iter()
        .zip(paper)
        .map(|((name, spec), (_, paper))| {
            let report = checker
                .check_ltl(&model.ta, &spec, &justice)
                .expect("bv-broadcast model in fragment");
            Table2Row {
                automaton: "bv-broadcast (Fig. 2)",
                size: model.ta.size_summary(),
                property: name.to_owned(),
                verdict: report.verdict(),
                schemas: report.total_schemas(),
                schemas_capped: false,
                avg_segments: report.avg_segments(),
                time: report.duration,
                paper,
            }
        })
        .collect()
}

/// Runs the simplified-consensus block of Table 2.
pub fn simplified_rows(checker: &Checker) -> Vec<Table2Row> {
    let model = SimplifiedConsensusModel::new();
    let justice = model.justice();
    let paper = [
        ("Inv1_0", "6 schemas, len 102, 4.68s"),
        ("Inv2_0", "2 schemas, len 73, 4.56s"),
        ("SRoundTerm", "2 schemas, len 109, 4.13s"),
        ("Good_0", "2 schemas, len 67, 4.55s"),
        ("Dec_0", "2 schemas, len 73, 4.62s"),
    ];
    model
        .table2_specs()
        .into_iter()
        .zip(paper)
        .map(|((name, spec), (_, paper))| {
            let report = checker
                .check_ltl(&model.ta, &spec, &justice)
                .expect("simplified model in fragment");
            Table2Row {
                automaton: "simplified consensus (Fig. 4)",
                size: model.ta.size_summary(),
                property: name.to_owned(),
                verdict: report.verdict(),
                schemas: report.total_schemas(),
                schemas_capped: false,
                avg_segments: report.avg_segments(),
                time: report.duration,
                paper,
            }
        })
        .collect()
}

/// Runs the naive-consensus block of Table 2 with the given schema cap:
/// like ByMC on a 64-core machine, the checker cannot finish — the DFS
/// blows through the cap, reproducing the `>100 000 schemas, >24h` rows.
pub fn naive_rows(cap: usize) -> Vec<Table2Row> {
    let model = NaiveConsensusModel::new();
    let justice = model.justice();
    let checker = Checker::with_config(CheckerConfig {
        max_schemas: cap,
        strategy: Strategy::Enumerate,
        ..CheckerConfig::default()
    });
    // The paper could not verify any of the three within a day. This
    // reproduction's feasibility-pruned DFS actually *finishes* Inv2_0
    // (its □-emptiness premise collapses the lattice) and blows the cap
    // on the other two — the shape of the explosion is preserved where
    // it exists.
    let paper = [
        ("Inv1_0", ">100 000 schemas, >24h (timeout)"),
        ("Inv2_0", ">100 000 schemas, >24h (timeout)"),
        ("SRoundTerm", ">100 000 schemas, >24h (timeout)"),
    ];
    model
        .table2_specs()
        .into_iter()
        .zip(paper)
        .map(|((name, spec), (_, paper))| {
            let report = checker
                .check_ltl(&model.ta, &spec, &justice)
                .expect("naive model in fragment");
            let capped = matches!(report.verdict(), Verdict::Unknown(_));
            Table2Row {
                automaton: "naive consensus (Fig. 3)",
                size: model.ta.size_summary(),
                property: name.to_owned(),
                verdict: report.verdict(),
                schemas: report.total_schemas(),
                schemas_capped: capped,
                avg_segments: report.avg_segments(),
                time: report.duration,
                paper,
            }
        })
        .collect()
}

/// Formats rows as an aligned text table.
pub fn render(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<40} {:<12} {:<10} {:>9} {:>8} {:>12}   {}\n",
        "TA (guards/locs/rules)",
        "property",
        "verdict",
        "#schemas",
        "avg len",
        "time",
        "paper reports"
    ));
    for r in rows {
        let verdict = match &r.verdict {
            Verdict::Verified => "verified".to_owned(),
            Verdict::Violated(_) => "VIOLATED".to_owned(),
            Verdict::Unknown(_) => "gave up".to_owned(),
        };
        let schemas = if r.schemas_capped {
            format!(">{}", r.schemas)
        } else {
            r.schemas.to_string()
        };
        out.push_str(&format!(
            "{:<40} {:<12} {:<10} {:>9} {:>8.1} {:>12.2?}   {}\n",
            format!("{} {}/{}/{}", r.automaton, r.size.0, r.size.1, r.size.2),
            r.property,
            verdict,
            schemas,
            r.avg_segments,
            r.time,
            r.paper,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bv_rows_all_verified() {
        let checker = Checker::new();
        let rows = bv_broadcast_rows(&checker);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.verdict.is_verified(), "{}", r.property);
        }
        let table = render(&rows);
        assert!(table.contains("BV-Unif0"), "{table}");
    }

    #[test]
    fn table2_cells_cover_every_row() {
        let cells = table2_cells();
        assert_eq!(cells.len(), 12);
        let props: Vec<&str> = cells.iter().map(|c| c.property.as_str()).collect();
        assert_eq!(
            props,
            [
                "BV-Just0",
                "BV-Obl0",
                "BV-Unif0",
                "BV-Term",
                "Inv1_0",
                "Inv2_0",
                "SRoundTerm",
                "Inv1_0",
                "Inv2_0",
                "SRoundTerm",
                "Good_0",
                "Dec_0",
            ]
        );
        for c in &cells {
            assert!(c.ta.validate().is_ok(), "{}/{}", c.automaton, c.property);
        }
    }

    #[test]
    fn naive_rows_show_the_explosion() {
        // Tiny cap: enough to show the explosion signal quickly. Inv2_0
        // is the exception — its globally-empty premise collapses the
        // lattice and it verifies outright (beyond the paper).
        let rows = naive_rows(40);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            if r.property == "Inv2_0" {
                assert!(r.verdict.is_verified(), "Inv2_0 verifies even naively");
            } else {
                assert!(r.schemas_capped, "{} should hit the cap", r.property);
            }
        }
    }
}
