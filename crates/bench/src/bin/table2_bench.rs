//! Machine-readable Table 2 benchmark: emits `BENCH_table2.json`.
//!
//! ```text
//! cargo run --release -p holistic-bench --bin table2_bench -- \
//!     [--quick] [--iters N] [--threads N] [--out PATH] [--baseline PATH]
//! ```
//!
//! Runs the full decomposed Table 2 matrix (bv-broadcast + simplified
//! consensus, nine properties) and writes per-property wall time, schema
//! counts, verdicts, SMT solver statistics, exploration-cache hit rates
//! and the thread count as JSON — the repo's perf trajectory record.
//!
//! Each iteration uses a fresh checker, so the exploration cache starts
//! cold and is shared across the properties of one matrix pass (the
//! intended production shape); the per-property time is the minimum over
//! iterations. `--quick` is a single pass for CI smoke use.
//!
//! With `--baseline PATH`, the run is compared against a previously
//! emitted file: the process exits nonzero if any verdict changed or any
//! property got more than 3x slower — a coarse gate that survives noisy
//! CI machines while still catching catastrophic regressions.

use std::env;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Duration;

use holistic_bench::json::{escape, num, Json};
use holistic_checker::{CheckReport, Checker, CheckerConfig, Verdict};
use holistic_ltl::{Justice, Ltl};
use holistic_models::{BvBroadcastModel, SimplifiedConsensusModel};
use holistic_ta::ThresholdAutomaton;

/// Factor by which a property may slow down vs the baseline before the
/// comparison fails.
const REGRESSION_FACTOR: f64 = 3.0;

struct PropResult {
    automaton: &'static str,
    property: String,
    verdict: &'static str,
    schemas: usize,
    avg_segments: f64,
    /// Minimum wall time over iterations, in milliseconds.
    wall_ms: f64,
    cache_hits: u64,
    cache_misses: u64,
    replayed: bool,
    threads: usize,
    solver: holistic_lia::SolverStats,
}

fn verdict_name(v: &Verdict) -> &'static str {
    match v {
        Verdict::Verified => "verified",
        Verdict::Violated(_) => "violated",
        Verdict::Unknown(_) => "unknown",
    }
}

fn run_block(
    checker: &Checker,
    automaton: &'static str,
    ta: &ThresholdAutomaton,
    specs: &[(&'static str, Ltl)],
    justice: &Justice,
) -> Vec<(String, CheckReport)> {
    specs
        .iter()
        .map(|(name, spec)| {
            let report = checker
                .check_ltl(ta, spec, justice)
                .unwrap_or_else(|e| panic!("{automaton}/{name}: {e}"));
            (name.to_string(), report)
        })
        .collect()
}

/// One full pass over the decomposed matrix with a cold shared cache.
fn run_matrix(threads: Option<usize>) -> Vec<(&'static str, String, CheckReport)> {
    let checker = Checker::with_config(CheckerConfig {
        threads,
        ..CheckerConfig::default()
    });
    let mut out = Vec::new();
    let bv = BvBroadcastModel::new();
    let bv_justice = bv.justice();
    for (name, report) in run_block(
        &checker,
        "bv-broadcast",
        &bv.ta,
        &bv.table2_specs(),
        &bv_justice,
    ) {
        out.push(("bv-broadcast", name, report));
    }
    let sc = SimplifiedConsensusModel::new();
    let sc_justice = sc.justice();
    for (name, report) in run_block(
        &checker,
        "simplified-consensus",
        &sc.ta,
        &sc.table2_specs(),
        &sc_justice,
    ) {
        out.push(("simplified-consensus", name, report));
    }
    out
}

fn emit(results: &[PropResult], iters: usize, baseline: Option<(&str, f64, f64)>) -> String {
    let total_ms: f64 = results.iter().map(|r| r.wall_ms).sum();
    let threads = results.first().map_or(1, |r| r.threads);
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema_version\": 1,");
    let _ = writeln!(out, "  \"generated_by\": \"table2_bench\",");
    let _ = writeln!(out, "  \"threads\": {threads},");
    let _ = writeln!(out, "  \"iters\": {iters},");
    let _ = writeln!(out, "  \"total_wall_ms\": {},", num(total_ms));
    if let Some((file, base_ms, speedup)) = baseline {
        let _ = writeln!(out, "  \"baseline_file\": \"{}\",", escape(file));
        let _ = writeln!(out, "  \"baseline_total_wall_ms\": {},", num(base_ms));
        let _ = writeln!(out, "  \"speedup_vs_baseline\": {},", num(speedup));
    }
    out.push_str("  \"properties\": [\n");
    for (i, r) in results.iter().enumerate() {
        let hit_rate = if r.cache_hits + r.cache_misses > 0 {
            r.cache_hits as f64 / (r.cache_hits + r.cache_misses) as f64
        } else {
            0.0
        };
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"automaton\": \"{}\",", escape(r.automaton));
        let _ = writeln!(out, "      \"property\": \"{}\",", escape(&r.property));
        let _ = writeln!(out, "      \"verdict\": \"{}\",", r.verdict);
        let _ = writeln!(out, "      \"schemas\": {},", r.schemas);
        let _ = writeln!(out, "      \"avg_segments\": {},", num(r.avg_segments));
        let _ = writeln!(out, "      \"wall_ms\": {},", num(r.wall_ms));
        let _ = writeln!(out, "      \"cache_hits\": {},", r.cache_hits);
        let _ = writeln!(out, "      \"cache_misses\": {},", r.cache_misses);
        let _ = writeln!(out, "      \"cache_hit_rate\": {},", num(hit_rate));
        let _ = writeln!(out, "      \"replayed\": {},", r.replayed);
        out.push_str("      \"solver\": {\n");
        let s = &r.solver;
        let _ = writeln!(out, "        \"checks\": {},", s.checks);
        let _ = writeln!(out, "        \"branch_nodes\": {},", s.branch_nodes);
        let _ = writeln!(out, "        \"case_splits\": {},", s.case_splits);
        let _ = writeln!(out, "        \"pivots\": {},", s.pivots);
        let _ = writeln!(out, "        \"intern_hits\": {},", s.intern_hits);
        let _ = writeln!(out, "        \"intern_misses\": {}", s.intern_misses);
        out.push_str("      }\n");
        out.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Compares this run against a baseline document. Returns the list of
/// failures (empty means the gate passes).
fn compare(results: &[PropResult], baseline: &Json) -> (Vec<String>, f64) {
    let mut failures = Vec::new();
    let empty: &[Json] = &[];
    let rows = baseline
        .get("properties")
        .and_then(|p| p.as_array())
        .unwrap_or(empty);
    let mut base_total = 0.0;
    for r in results {
        let Some(base) = rows.iter().find(|row| {
            row.get("automaton").and_then(Json::as_str) == Some(r.automaton)
                && row.get("property").and_then(Json::as_str) == Some(r.property.as_str())
        }) else {
            failures.push(format!(
                "{}/{}: missing from baseline",
                r.automaton, r.property
            ));
            continue;
        };
        let base_verdict = base.get("verdict").and_then(Json::as_str).unwrap_or("?");
        if base_verdict != r.verdict {
            failures.push(format!(
                "{}/{}: verdict changed: {} -> {}",
                r.automaton, r.property, base_verdict, r.verdict
            ));
        }
        let base_ms = base
            .get("wall_ms")
            .and_then(Json::as_f64)
            .unwrap_or(f64::INFINITY);
        base_total += base_ms;
        if r.wall_ms > REGRESSION_FACTOR * base_ms {
            failures.push(format!(
                "{}/{}: {:.0} ms vs baseline {:.0} ms (> {REGRESSION_FACTOR}x regression)",
                r.automaton, r.property, r.wall_ms, base_ms
            ));
        }
    }
    (failures, base_total)
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().collect();
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let quick = args.iter().any(|a| a == "--quick");
    let iters: usize = flag_value("--iters")
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick { 1 } else { 3 });
    let threads: Option<usize> = flag_value("--threads").and_then(|s| s.parse().ok());
    let out_path = flag_value("--out").map_or("BENCH_table2.json", String::as_str);
    let baseline_path = flag_value("--baseline").map(String::as_str);

    // Read the baseline up front: `--out` may point at the same file.
    let baseline = baseline_path.map(|path| {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        Json::parse(&text).unwrap_or_else(|e| panic!("cannot parse baseline {path}: {e}"))
    });

    eprintln!(
        "table2_bench: {iters} iteration(s), threads={}",
        threads.map_or("auto".to_owned(), |t| t.to_string())
    );
    let mut results: Vec<PropResult> = Vec::new();
    for iter in 0..iters {
        let pass = run_matrix(threads);
        for (idx, (automaton, property, report)) in pass.into_iter().enumerate() {
            let wall_ms = report.duration.as_secs_f64() * 1e3;
            if iter == 0 {
                let stats_threads = report.queries.first().map_or(1, |q| q.stats.threads);
                results.push(PropResult {
                    automaton,
                    property: property.clone(),
                    verdict: verdict_name(&report.verdict()),
                    schemas: report.total_schemas(),
                    avg_segments: report.avg_segments(),
                    wall_ms,
                    cache_hits: report.total_cache_hits(),
                    cache_misses: report.total_cache_misses(),
                    replayed: report.queries.iter().all(|q| q.stats.replayed)
                        && !report.queries.is_empty(),
                    threads: stats_threads,
                    solver: report.solver_stats(),
                });
                eprintln!(
                    "  {automaton}/{property}: {} in {:.2?} ({} schemas, {} cache hits)",
                    verdict_name(&report.verdict()),
                    report.duration,
                    report.total_schemas(),
                    report.total_cache_hits(),
                );
            } else {
                let slot = &mut results[idx];
                assert_eq!(slot.property, property, "iteration order must be stable");
                assert_eq!(
                    slot.verdict,
                    verdict_name(&report.verdict()),
                    "{automaton}/{property}: verdict must not vary across iterations"
                );
                if wall_ms < slot.wall_ms {
                    slot.wall_ms = wall_ms;
                }
            }
        }
        let total: f64 = results.iter().map(|r| r.wall_ms).sum();
        eprintln!(
            "  pass {}/{iters} done; best-total {:.1?}",
            iter + 1,
            Duration::from_secs_f64(total / 1e3)
        );
    }

    let comparison = baseline.as_ref().map(|b| compare(&results, b));
    let baseline_block = comparison.as_ref().and_then(|(_, base_total)| {
        let total: f64 = results.iter().map(|r| r.wall_ms).sum();
        (*base_total > 0.0).then(|| {
            (
                baseline_path.unwrap(),
                *base_total,
                *base_total / total.max(f64::MIN_POSITIVE),
            )
        })
    });

    let doc = emit(&results, iters, baseline_block);
    std::fs::write(out_path, &doc).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("wrote {out_path}");

    if let Some((failures, base_total)) = comparison {
        let total: f64 = results.iter().map(|r| r.wall_ms).sum();
        eprintln!(
            "baseline total {:.1?} -> current total {:.1?} ({:.2}x)",
            Duration::from_secs_f64(base_total / 1e3),
            Duration::from_secs_f64(total / 1e3),
            base_total / total.max(f64::MIN_POSITIVE),
        );
        if !failures.is_empty() {
            eprintln!("BASELINE COMPARISON FAILED:");
            for f in &failures {
                eprintln!("  {f}");
            }
            return ExitCode::FAILURE;
        }
        eprintln!(
            "baseline comparison passed (verdicts stable, no >{REGRESSION_FACTOR}x regression)"
        );
    }
    ExitCode::SUCCESS
}
