//! Machine-readable Table 2 benchmark: emits `BENCH_table2.json`.
//!
//! ```text
//! cargo run --release -p holistic-bench --bin table2_bench -- \
//!     [--quick] [--iters N] [--threads N] [--out PATH] [--baseline PATH] \
//!     [--automaton NAME] [--property NAME] \
//!     [--trace PATH] [--profile] [--max-total-regression FRAC]
//! ```
//!
//! Runs the full decomposed Table 2 matrix (bv-broadcast + simplified
//! consensus, nine properties) and writes per-property wall time, schema
//! counts, verdicts, SMT solver statistics, exploration-cache hit rates
//! and the thread count as JSON — the repo's perf trajectory record.
//!
//! Each iteration uses a fresh checker, so the exploration cache starts
//! cold and is shared across the properties of one matrix pass (the
//! intended production shape); the per-property time is the minimum over
//! iterations. `--quick` is a single pass for CI smoke use.
//!
//! With `--baseline PATH`, the run is compared against a previously
//! emitted file: the process exits nonzero if any verdict changed, any
//! property got more than 3x slower, or any deterministic solver
//! statistic (checks, pivots, case splits) regressed beyond its own
//! factor — wall time alone is too noisy on shared CI machines to
//! either trust or fake.
//!
//! `--automaton NAME` / `--property NAME` (substring match, repeatable
//! by intent via a comma list) restrict the matrix, so the dev loop on
//! one hot property doesn't pay for the full run. Filtered runs skip
//! the baseline *totals* block but still gate the selected rows.
//!
//! `--checkpoint DIR` persists every completed cell (and the
//! exploration cache) to a versioned checkpoint through the
//! supervisor; `--resume DIR` additionally loads whatever a previous
//! (killed) run completed and computes only the remainder.
//! `--checkpoint-every N` controls the cache-snapshot cadence
//! (default 1 = after every cell). Supervised runs are single-pass:
//! a second iteration would just reload the checkpoint. The
//! `HOLISTIC_CHAOS` env hook (`panic-every=N,budget-ms=M`) injects
//! worker panics and a tiny budget for the CI chaos-smoke job.
//!
//! `--trace PATH` enables the [`holistic_obs`] span collector and
//! writes a JSONL trace of the whole run; `--profile` prints the
//! hierarchical self/child time table (per phase and per property) to
//! stdout. Both are verdict-inert: tracing only observes.
//! `--max-total-regression FRAC` (with `--baseline`) additionally
//! fails the run when the total wall time exceeds the baseline total
//! by more than the given fraction — the CI gate that keeps
//! disabled-mode tracing overhead honest.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use holistic_bench::json::{num, Json, Writer};
use holistic_bench::trace;
use holistic_checker::{CheckReport, Checker, CheckerConfig, MatrixJob, Verdict};
use holistic_models::{BvBroadcastModel, SimplifiedConsensusModel};
use holistic_supervise::{ChaosOptions, Checkpoint, SupervisedJob, Supervisor, SupervisorConfig};

/// Factor by which a property may slow down vs the baseline before the
/// comparison fails.
const REGRESSION_FACTOR: f64 = 3.0;

/// Factor by which a *deterministic* solver statistic (checks, pivots,
/// case splits) may grow vs the baseline before the comparison fails.
/// These counters don't depend on machine speed, so the tolerance is
/// much tighter than the wall-time gate — a noisy CI machine can
/// neither mask nor fake a solver-work regression.
const STAT_REGRESSION_FACTOR: f64 = 1.10;

/// Absolute slack under which a statistic increase is ignored (tiny
/// properties legitimately wobble by a handful of checks when encoding
/// details change).
const STAT_REGRESSION_SLACK: u64 = 64;

struct PropResult {
    automaton: &'static str,
    property: String,
    verdict: &'static str,
    schemas: usize,
    avg_segments: f64,
    /// Minimum wall time over iterations, in milliseconds.
    wall_ms: f64,
    cache_hits: u64,
    cache_misses: u64,
    replayed: bool,
    /// Core patterns newly learned while this property explored.
    cores_learned: u64,
    /// Extension attempts pruned by learned core patterns.
    schemas_pruned_by_core: u64,
    threads: usize,
    solver: holistic_lia::SolverStats,
}

fn verdict_name(v: &Verdict) -> &'static str {
    match v {
        Verdict::Verified => "verified",
        Verdict::Violated(_) => "violated",
        Verdict::Unknown(_) => "unknown",
    }
}

/// Row selection for the dev loop: comma-separated substring matches on
/// the automaton and/or property name; `None` selects everything.
struct Filter {
    automaton: Option<String>,
    property: Option<String>,
}

impl Filter {
    fn matches_list(selector: &Option<String>, name: &str) -> bool {
        match selector {
            None => true,
            Some(list) => list.split(',').any(|pat| name.contains(pat.trim())),
        }
    }

    fn keep(&self, automaton: &str, property: &str) -> bool {
        Self::matches_list(&self.automaton, automaton)
            && Self::matches_list(&self.property, property)
    }

    fn is_full(&self) -> bool {
        self.automaton.is_none() && self.property.is_none()
    }
}

/// Checkpoint/resume options for a supervised run.
struct SuperviseOpts {
    dir: PathBuf,
    resume: bool,
    every: usize,
}

/// One full pass over the decomposed matrix with a cold shared cache.
///
/// `--threads N` with `N > 1` hands the properties to the checker's
/// matrix scheduler: `N` workers pull whole properties off a shared
/// queue (each property itself running the inline deterministic walk),
/// so the dominant simplified-consensus properties overlap instead of
/// serializing. `N <= 1` (and the default) is the sequential,
/// byte-deterministic walk.
///
/// Returns the per-property reports plus the supervisor's checkpoint
/// overhead (zero when checkpointing is off).
fn run_matrix(
    threads: Option<usize>,
    filter: &Filter,
    supervise: Option<&SuperviseOpts>,
    explain: bool,
) -> (Vec<(&'static str, String, CheckReport)>, Duration) {
    let workers = threads.unwrap_or(1);
    let mut config = CheckerConfig {
        // Property-level concurrency subsumes intra-property pooling
        // here; each matrix job stays single-threaded internally.
        threads: if workers > 1 { Some(1) } else { threads },
        ..CheckerConfig::default()
    };
    if let Some(chaos) = ChaosOptions::from_env() {
        eprintln!("  chaos injection armed: {chaos:?}");
        chaos.apply(&mut config);
    }
    let bv = BvBroadcastModel::new();
    let bv_justice = bv.justice();
    let bv_specs: Vec<_> = bv
        .table2_specs()
        .into_iter()
        .filter(|(name, _)| filter.keep("bv-broadcast", name))
        .collect();
    let sc = SimplifiedConsensusModel::new();
    let sc_justice = sc.justice();
    let sc_specs: Vec<_> = sc
        .table2_specs()
        .into_iter()
        .filter(|(name, _)| filter.keep("simplified-consensus", name))
        .collect();

    let mut labels: Vec<(&'static str, &'static str)> = Vec::new();
    let mut jobs: Vec<MatrixJob<'_>> = Vec::new();
    for (name, spec) in &bv_specs {
        labels.push(("bv-broadcast", name));
        jobs.push(MatrixJob {
            ta: &bv.ta,
            spec,
            justice: &bv_justice,
            label: name,
        });
    }
    for (name, spec) in &sc_specs {
        labels.push(("simplified-consensus", name));
        jobs.push(MatrixJob {
            ta: &sc.ta,
            spec,
            justice: &sc_justice,
            label: name,
        });
    }

    let Some(opts) = supervise else {
        let checker = Checker::with_config(config);
        let reports = checker.check_matrix(&jobs, workers);
        if explain {
            explain_prunes(&checker, "bv-broadcast", &bv.ta);
            explain_prunes(&checker, "simplified-consensus", &sc.ta);
            for ((automaton, name), report) in labels.iter().zip(&reports) {
                if let Ok(report) = report {
                    let s = report.solver_stats();
                    eprintln!(
                        "  [explain-prunes] {automaton}/{name}: {} propagation(s), \
                         {} presolve refutation(s), {} pervasive conflict(s), \
                         {} disjunct(s) skipped",
                        s.propagations,
                        s.propagation_refutations,
                        s.learned_conflicts,
                        s.disjuncts_skipped
                    );
                }
            }
        }
        let rows = labels
            .into_iter()
            .zip(reports)
            .map(|((automaton, name), report)| {
                let report = report.unwrap_or_else(|e| panic!("{automaton}/{name}: {e}"));
                (automaton, name.to_string(), report)
            })
            .collect();
        return (rows, Duration::ZERO);
    };
    if explain {
        eprintln!("  --explain-prunes: not available on supervised (checkpointed) runs");
    }

    // Supervised path: per-cell isolation/retry/degradation plus the
    // on-disk checkpoint.
    let master_seed: u64 = env::var("HOLISTIC_MASTER_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let ids: Vec<String> = labels.iter().map(|(a, n)| format!("{a}/{n}")).collect();
    let supervised: Vec<SupervisedJob<'_>> = jobs
        .iter()
        .zip(labels.iter().zip(&ids))
        .map(|(job, ((_, name), id))| SupervisedJob {
            id: id.clone(),
            property: (*name).to_owned(),
            ta: job.ta,
            spec: job.spec,
            justice: job.justice,
        })
        .collect();
    let checkpoint = if opts.resume && opts.dir.join("manifest.json").exists() {
        let (cp, manifest) = Checkpoint::open(&opts.dir)
            .unwrap_or_else(|e| panic!("cannot resume from {}: {e}", opts.dir.display()));
        assert_eq!(
            manifest.cells,
            ids,
            "checkpoint at {} belongs to a different matrix",
            opts.dir.display()
        );
        cp
    } else {
        Checkpoint::create(&opts.dir, "table2", master_seed, &ids)
            .unwrap_or_else(|e| panic!("cannot create checkpoint {}: {e}", opts.dir.display()))
    };
    let supervisor = Supervisor::new(SupervisorConfig {
        checker: config,
        workers,
        checkpoint_every: opts.every,
        master_seed,
        ..SupervisorConfig::default()
    });
    let run = supervisor
        .run(&supervised, Some(&checkpoint))
        .unwrap_or_else(|e| panic!("supervised run failed: {e}"));
    if run.resumed_cells() > 0 {
        eprintln!(
            "  resumed {} completed cell(s) from {}",
            run.resumed_cells(),
            opts.dir.display()
        );
    }
    for cell in &run.cells {
        let r = &cell.record;
        if let Some(kind) = r.failure {
            eprintln!(
                "  {}: {} (rung {}, {} attempt(s){})",
                r.id,
                kind,
                r.rung,
                r.attempts,
                r.note
                    .as_deref()
                    .map(|n| format!("; {n}"))
                    .unwrap_or_default()
            );
        }
    }
    let overhead = run.checkpoint_overhead;
    let rows = labels
        .into_iter()
        .zip(run.cells)
        .map(|((automaton, name), cell)| (automaton, name.to_string(), cell.record.report))
        .collect();
    (rows, overhead)
}

/// How many learned core patterns `--explain-prunes` renders per
/// automaton.
const EXPLAIN_TOP: usize = 10;

/// Dumps the learned core patterns for one automaton to stderr, most
/// general first, rendered with guard formulas and the rule names each
/// blocked guard gates — the human-readable face of the certificate
/// pipeline.
fn explain_prunes(checker: &Checker, label: &str, ta: &holistic_ta::ThresholdAutomaton) {
    let mut cores = checker.exploration_cache().cores_for(ta);
    if cores.is_empty() {
        eprintln!("  [explain-prunes] {label}: no learned core patterns");
        return;
    }
    // Most general first: fewer guards to unlock, fewer guards that
    // must be held, larger context mask.
    cores.sort_by_key(|&(m, h, d)| {
        (
            d.count_ones(),
            h.count_ones(),
            std::cmp::Reverse(m.count_ones()),
            d,
            h,
            m,
        )
    });
    let info = holistic_checker::GuardInfo::analyse(ta).expect("guard analysis");
    let render_guard = |gi: usize| -> String {
        let g = &info.guards[gi];
        let gated: Vec<&str> = ta
            .rules
            .iter()
            .filter(|r| info.rule_mask(r) & (1 << gi) != 0)
            .map(|r| r.name.as_str())
            .collect();
        format!(
            "g{gi}: {} {} {} (gates {})",
            g.lhs.display(&ta.variables),
            g.cmp,
            g.rhs.display(&ta.params),
            if gated.is_empty() {
                "no rules".to_owned()
            } else {
                gated.join(", ")
            }
        )
    };
    let render_mask = |mask: u64| -> String {
        if mask == 0 {
            return "(initial: no guards unlocked)".to_owned();
        }
        let names: Vec<String> = (0..info.len())
            .filter(|gi| mask & (1 << gi) != 0)
            .map(render_guard)
            .collect();
        names.join("; ")
    };
    eprintln!(
        "  [explain-prunes] {label}: {} learned core pattern(s), top {}:",
        cores.len(),
        cores.len().min(EXPLAIN_TOP)
    );
    for (i, &(m, h, d)) in cores.iter().take(EXPLAIN_TOP).enumerate() {
        eprintln!("    #{:<2} under contexts within {}", i + 1, render_mask(m));
        if h != 0 {
            eprintln!("        having already unlocked {}", render_mask(h));
        }
        eprintln!("        cannot newly unlock {}", render_mask(d));
    }
}

fn emit(
    results: &[PropResult],
    iters: usize,
    supervisor_overhead_ms: Option<f64>,
    baseline: Option<(&str, f64, f64)>,
) -> String {
    let total_ms: f64 = results.iter().map(|r| r.wall_ms).sum();
    let threads = results.first().map_or(1, |r| r.threads);
    // Farkas-certificate core pipeline: patterns learned, extension
    // attempts they pruned, and the average extracted-core size
    // (members per certificate, from the cumulative solver counters).
    let cores_learned: u64 = results.iter().map(|r| r.cores_learned).sum();
    let pruned_by_core: u64 = results.iter().map(|r| r.schemas_pruned_by_core).sum();
    let (extracted, members): (u64, u64) = results.iter().fold((0, 0), |(e, m), r| {
        (e + r.solver.cores_extracted, m + r.solver.core_members)
    });
    let core_avg_size = if extracted == 0 {
        0.0
    } else {
        members as f64 / extracted as f64
    };
    let mut w = Writer::pretty();
    w.begin_obj()
        .field_u64("schema_version", 1)
        .field_str("generated_by", "table2_bench")
        .field_u64("threads", threads as u64)
        .field_u64("iters", iters as u64)
        .field_raw("total_wall_ms", &num(total_ms))
        .field_u64("cores_learned", cores_learned)
        .field_u64("schemas_pruned_by_core", pruned_by_core)
        .field_raw("core_avg_size", &num(core_avg_size));
    // Supervisor overhead: time spent writing checkpoint files. Null
    // when checkpointing was off, so the perf trajectory can tell "no
    // checkpointing" from "free checkpointing".
    match supervisor_overhead_ms {
        Some(ms) => {
            w.field_raw("supervisor_overhead_ms", &num(ms));
        }
        None => {
            w.field_null("supervisor_overhead_ms");
        }
    }
    if let Some((file, base_ms, speedup)) = baseline {
        w.field_str("baseline_file", file)
            .field_raw("baseline_total_wall_ms", &num(base_ms))
            .field_raw("speedup_vs_baseline", &num(speedup));
    }
    w.key("properties").begin_arr();
    for r in results {
        let hit_rate = if r.cache_hits + r.cache_misses > 0 {
            r.cache_hits as f64 / (r.cache_hits + r.cache_misses) as f64
        } else {
            0.0
        };
        let s = &r.solver;
        w.begin_obj()
            .field_str("automaton", r.automaton)
            .field_str("property", &r.property)
            .field_str("verdict", r.verdict)
            .field_u64("schemas", r.schemas as u64)
            .field_raw("avg_segments", &num(r.avg_segments))
            .field_raw("wall_ms", &num(r.wall_ms))
            .field_u64("cache_hits", r.cache_hits)
            .field_u64("cache_misses", r.cache_misses)
            .field_raw("cache_hit_rate", &num(hit_rate))
            .field_bool("replayed", r.replayed)
            .field_u64("cores_learned", r.cores_learned)
            .field_u64("schemas_pruned_by_core", r.schemas_pruned_by_core)
            .key("solver")
            .begin_obj()
            .field_u64("checks", s.checks)
            .field_u64("branch_nodes", s.branch_nodes)
            .field_u64("case_splits", s.case_splits)
            .field_u64("pivots", s.pivots)
            .field_u64("propagations", s.propagations)
            .field_u64("propagation_refutations", s.propagation_refutations)
            .field_u64("learned_conflicts", s.learned_conflicts)
            .field_u64("disjuncts_skipped", s.disjuncts_skipped)
            .field_u64("intern_hits", s.intern_hits)
            .field_u64("intern_misses", s.intern_misses)
            .field_u64("cores_extracted", s.cores_extracted)
            .field_u64("core_members", s.core_members)
            .field_u64("core_micros", s.core_micros)
            .end_obj()
            .end_obj();
    }
    w.end_arr().end_obj();
    w.finish()
}

/// Compares this run against a baseline document. Returns the list of
/// failures (empty means the gate passes).
fn compare(results: &[PropResult], baseline: &Json) -> (Vec<String>, f64) {
    let mut failures = Vec::new();
    let empty: &[Json] = &[];
    let rows = baseline
        .get("properties")
        .and_then(|p| p.as_array())
        .unwrap_or(empty);
    // Timing and solver-work gates only make sense against a baseline
    // recorded at the same thread count; a cross-thread comparison
    // (e.g. the CI threads=4 divergence check against the threads=1
    // baseline) still gates everything deterministic — verdicts, schema
    // counts, average segment lengths.
    let base_threads = baseline
        .get("threads")
        .and_then(Json::as_f64)
        .map_or(1, |t| t as usize);
    let same_threads = results.first().is_none_or(|r| r.threads == base_threads);
    let mut base_total = 0.0;
    for r in results {
        let Some(base) = rows.iter().find(|row| {
            row.get("automaton").and_then(Json::as_str) == Some(r.automaton)
                && row.get("property").and_then(Json::as_str) == Some(r.property.as_str())
        }) else {
            failures.push(format!(
                "{}/{}: missing from baseline",
                r.automaton, r.property
            ));
            continue;
        };
        let base_verdict = base.get("verdict").and_then(Json::as_str).unwrap_or("?");
        if base_verdict != r.verdict {
            failures.push(format!(
                "{}/{}: verdict changed: {} -> {}",
                r.automaton, r.property, base_verdict, r.verdict
            ));
        }
        if let Some(base_schemas) = base.get("schemas").and_then(Json::as_f64) {
            if base_schemas as usize != r.schemas {
                failures.push(format!(
                    "{}/{}: schema count changed: {} -> {}",
                    r.automaton, r.property, base_schemas as usize, r.schemas
                ));
            }
        }
        if let Some(base_avg) = base.get("avg_segments").and_then(Json::as_f64) {
            // The emitter rounds (`num()`), so compare at its precision.
            if num(base_avg) != num(r.avg_segments) {
                failures.push(format!(
                    "{}/{}: avg segments changed: {} -> {}",
                    r.automaton, r.property, base_avg, r.avg_segments
                ));
            }
        }
        let base_ms = base
            .get("wall_ms")
            .and_then(Json::as_f64)
            .unwrap_or(f64::INFINITY);
        base_total += base_ms;
        if !same_threads {
            continue; // deterministic gates only across thread counts
        }
        if r.wall_ms > REGRESSION_FACTOR * base_ms {
            failures.push(format!(
                "{}/{}: {:.0} ms vs baseline {:.0} ms (> {REGRESSION_FACTOR}x regression)",
                r.automaton, r.property, r.wall_ms, base_ms
            ));
        }
        let base_solver = base.get("solver");
        let stats: [(&str, u64); 3] = [
            ("checks", r.solver.checks),
            ("case_splits", r.solver.case_splits),
            ("pivots", r.solver.pivots),
        ];
        for (stat, current) in stats {
            let Some(base_stat) = base_solver.and_then(|s| s.get(stat)).and_then(Json::as_f64)
            else {
                continue; // pre-stats baseline: wall-time gate only
            };
            let limit = (base_stat * STAT_REGRESSION_FACTOR) + STAT_REGRESSION_SLACK as f64;
            if current as f64 > limit {
                failures.push(format!(
                    "{}/{}: solver {stat} regressed: {current} vs baseline {base_stat:.0} \
                     (> {STAT_REGRESSION_FACTOR}x + {STAT_REGRESSION_SLACK})",
                    r.automaton, r.property,
                ));
            }
        }
    }
    (failures, base_total)
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().collect();
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let quick = args.iter().any(|a| a == "--quick");
    let explain = args.iter().any(|a| a == "--explain-prunes");
    let mut iters: usize = flag_value("--iters")
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick { 1 } else { 3 });
    let threads: Option<usize> = flag_value("--threads").and_then(|s| s.parse().ok());
    let out_path = flag_value("--out").map_or("BENCH_table2.json", String::as_str);
    let baseline_path = flag_value("--baseline").map(String::as_str);
    let filter = Filter {
        automaton: flag_value("--automaton").cloned(),
        property: flag_value("--property").cloned(),
    };
    let trace_path = flag_value("--trace").cloned();
    let profile_on = args.iter().any(|a| a == "--profile");
    let max_total_regression: Option<f64> =
        flag_value("--max-total-regression").and_then(|s| s.parse().ok());
    let resume_dir = flag_value("--resume").map(PathBuf::from);
    let checkpoint_dir = flag_value("--checkpoint").map(PathBuf::from);
    let supervise = match (resume_dir, checkpoint_dir) {
        (Some(dir), _) => Some(SuperviseOpts {
            dir,
            resume: true,
            every: 1,
        }),
        (None, Some(dir)) => Some(SuperviseOpts {
            dir,
            resume: false,
            every: 1,
        }),
        (None, None) => None,
    };
    let supervise = supervise.map(|mut opts| {
        opts.every = flag_value("--checkpoint-every")
            .and_then(|s| s.parse().ok())
            .unwrap_or(1);
        opts
    });
    if supervise.is_some() && iters > 1 {
        eprintln!("checkpointed runs are single-pass; forcing --iters 1");
        iters = 1;
    }

    // Read the baseline up front: `--out` may point at the same file.
    let baseline = baseline_path.map(|path| {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        Json::parse(&text).unwrap_or_else(|e| panic!("cannot parse baseline {path}: {e}"))
    });

    eprintln!(
        "table2_bench: {iters} iteration(s), threads={}",
        threads.map_or("auto".to_owned(), |t| t.to_string())
    );
    // Tracing is strictly opt-in: without these flags the collector
    // stays disabled and every span/counter call is a near-no-op.
    if trace_path.is_some() || profile_on {
        holistic_obs::set_enabled(true);
    }
    let run_started = Instant::now();
    let run_span = holistic_obs::span("bench.run");
    let mut results: Vec<PropResult> = Vec::new();
    let mut supervisor_overhead = Duration::ZERO;
    for iter in 0..iters {
        let (pass, overhead) =
            run_matrix(threads, &filter, supervise.as_ref(), explain && iter == 0);
        supervisor_overhead += overhead;
        for (idx, (automaton, property, report)) in pass.into_iter().enumerate() {
            let wall_ms = report.duration.as_secs_f64() * 1e3;
            if iter == 0 {
                // Matrix-scheduled runs are 1 thread *per property*;
                // report the scheduler width, not the inner walk's.
                let stats_threads = report.queries.first().map_or(1, |q| q.stats.threads);
                let stats_threads = threads.map_or(stats_threads, |t| t.max(stats_threads));
                results.push(PropResult {
                    automaton,
                    property: property.clone(),
                    verdict: verdict_name(&report.verdict()),
                    schemas: report.total_schemas(),
                    avg_segments: report.avg_segments(),
                    wall_ms,
                    cache_hits: report.total_cache_hits(),
                    cache_misses: report.total_cache_misses(),
                    replayed: report.queries.iter().all(|q| q.stats.replayed)
                        && !report.queries.is_empty(),
                    cores_learned: report.total_cores_learned(),
                    schemas_pruned_by_core: report.total_schemas_pruned_by_core(),
                    threads: stats_threads,
                    solver: report.solver_stats(),
                });
                eprintln!(
                    "  {automaton}/{property}: {} in {:.2?} ({} schemas, {} cache hits)",
                    verdict_name(&report.verdict()),
                    report.duration,
                    report.total_schemas(),
                    report.total_cache_hits(),
                );
            } else {
                let slot = &mut results[idx];
                assert_eq!(slot.property, property, "iteration order must be stable");
                assert_eq!(
                    slot.verdict,
                    verdict_name(&report.verdict()),
                    "{automaton}/{property}: verdict must not vary across iterations"
                );
                if wall_ms < slot.wall_ms {
                    slot.wall_ms = wall_ms;
                }
            }
        }
        let total: f64 = results.iter().map(|r| r.wall_ms).sum();
        eprintln!(
            "  pass {}/{iters} done; best-total {:.1?}",
            iter + 1,
            Duration::from_secs_f64(total / 1e3)
        );
    }

    drop(run_span);
    let wall_us = run_started.elapsed().as_micros() as u64;

    if results.is_empty() {
        eprintln!("no properties match the filter");
        return ExitCode::FAILURE;
    }

    let comparison = baseline.as_ref().map(|b| compare(&results, b));
    // A filtered run still gates its rows but must not publish a
    // misleading "matrix" speedup computed over a subset.
    let baseline_block = comparison.as_ref().and_then(|(_, base_total)| {
        let total: f64 = results.iter().map(|r| r.wall_ms).sum();
        (*base_total > 0.0 && filter.is_full()).then(|| {
            (
                baseline_path.unwrap(),
                *base_total,
                *base_total / total.max(f64::MIN_POSITIVE),
            )
        })
    });

    let overhead_ms = supervise
        .as_ref()
        .map(|_| supervisor_overhead.as_secs_f64() * 1e3);
    let doc = emit(&results, iters, overhead_ms, baseline_block);
    std::fs::write(out_path, &doc).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("wrote {out_path}");

    if trace_path.is_some() || profile_on {
        let snapshot = holistic_obs::drain();
        if let Some(path) = &trace_path {
            let trace_doc = trace::write_trace(&snapshot, wall_us, "table2_bench");
            std::fs::write(path, &trace_doc)
                .unwrap_or_else(|e| panic!("cannot write trace {path}: {e}"));
            eprintln!("wrote trace {path} ({} spans)", snapshot.spans.len());
        }
        if profile_on {
            print!("{}", trace::render_profile(&snapshot, wall_us, 10));
        }
    }

    if let Some((failures, base_total)) = comparison {
        let total: f64 = results.iter().map(|r| r.wall_ms).sum();
        eprintln!(
            "baseline total {:.1?} -> current total {:.1?} ({:.2}x)",
            Duration::from_secs_f64(base_total / 1e3),
            Duration::from_secs_f64(total / 1e3),
            base_total / total.max(f64::MIN_POSITIVE),
        );
        if !failures.is_empty() {
            eprintln!("BASELINE COMPARISON FAILED:");
            for f in &failures {
                eprintln!("  {f}");
            }
            return ExitCode::FAILURE;
        }
        eprintln!(
            "baseline comparison passed (verdicts stable, no >{REGRESSION_FACTOR}x regression)"
        );
        // The tight total-wall gate (CI: tracing-disabled overhead must
        // stay within a few percent of the recorded baseline). Only
        // meaningful for a full, same-thread-count matrix run.
        if let Some(frac) = max_total_regression {
            if filter.is_full() && base_total > 0.0 {
                let limit = base_total * (1.0 + frac);
                if total > limit {
                    eprintln!(
                        "TOTAL WALL REGRESSION: {total:.1} ms vs baseline {base_total:.1} ms \
                         (limit +{:.0}% = {limit:.1} ms)",
                        frac * 100.0
                    );
                    return ExitCode::FAILURE;
                }
                eprintln!(
                    "total-wall gate passed: {total:.1} ms <= {limit:.1} ms \
                     (baseline {base_total:.1} ms +{:.0}%)",
                    frac * 100.0
                );
            } else {
                eprintln!("total-wall gate skipped (filtered run or empty baseline)");
            }
        }
    }
    ExitCode::SUCCESS
}
