//! Regenerates the paper's Table 2.
//!
//! ```text
//! cargo run --release -p holistic-bench --bin table2            # decomposed blocks
//! cargo run --release -p holistic-bench --bin table2 -- --naive # + the timeout block
//! cargo run --release -p holistic-bench --bin table2 -- --naive-cap 100000
//! cargo run --release -p holistic-bench --bin table2 -- --profile # span/counter report
//! ```
//!
//! The decomposed blocks (bv-broadcast + simplified consensus) are what
//! the paper verifies in under 70 seconds; the `--naive` block
//! demonstrates the combinatorial explosion that made the
//! non-compositional attempt time out after a day on a 64-core machine.

use std::env;

use holistic_bench::trace::render_profile;
use holistic_bench::{bv_broadcast_rows, naive_rows, render, simplified_rows};
use holistic_checker::{count_schedules, Checker, GuardInfo};
use holistic_models::NaiveConsensusModel;

fn main() {
    let args: Vec<String> = env::args().collect();
    let naive = args.iter().any(|a| a == "--naive");
    let naive_cap = args
        .iter()
        .position(|a| a == "--naive-cap")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000usize);

    let profile = args.iter().any(|a| a == "--profile");
    if profile {
        holistic_obs::set_enabled(true);
    }

    let checker = Checker::new();
    let start = std::time::Instant::now();
    let run_span = holistic_obs::span("bench.run");

    println!("Table 2 — holistic verification of the Red Belly / DBFT consensus");
    println!("==================================================================");
    let mut rows = bv_broadcast_rows(&checker);
    println!("{}", render(&rows));

    let simplified = simplified_rows(&checker);
    println!("{}", render(&simplified));
    rows.extend(simplified);

    let decomposed_time: std::time::Duration = rows.iter().map(|r| r.time).sum();
    println!(
        "decomposed approach total: {:.1?} (paper: < 70 s on an 8-thread laptop with Z3)",
        decomposed_time
    );

    if naive {
        println!();
        println!(
            "naive (non-compositional) automaton, schema cap {naive_cap} — the paper's \
             run timed out after a day on 64 cores:"
        );
        let naive = naive_rows(naive_cap);
        println!("{}", render(&naive));
        // The raw lattice size behind those rows, via the
        // allocation-free counting DFS (no SMT, no schedule storage).
        let model = NaiveConsensusModel::new();
        let info = GuardInfo::analyse(&model.ta).expect("naive TA guards analyse");
        let (count, capped) = count_schedules(&info, 1_000_000);
        println!(
            "raw (unpruned) schedule lattice of the naive automaton: {}{count} schedules",
            if capped { ">" } else { "" }
        );
    } else {
        println!("(pass --naive to also run the naive-automaton explosion block)");
    }
    drop(run_span);
    println!("total wall clock: {:.1?}", start.elapsed());
    if profile {
        let wall_us = start.elapsed().as_micros() as u64;
        let snapshot = holistic_obs::drain();
        println!();
        print!("{}", render_profile(&snapshot, wall_us, 10));
    }
}
