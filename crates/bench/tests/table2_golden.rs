//! Golden-output test for the `table2` binary.
//!
//! Pins `docs/table2_sample_output.txt` against the binary's actual
//! report so formatting regressions (dropped columns, renamed
//! properties, reordered blocks, changed verdicts or schema counts)
//! are caught. Timings vary run to run, so every duration token is
//! normalized to `<T>` and runs of spaces are collapsed (column
//! padding widens with the printed duration) before comparing.

use std::process::Command;

/// Whether a token is a rendered `Duration` (e.g. `7.99ms`, `1.40s`,
/// `22.4µs`, `391.2s`) — digits and dots followed by a time unit.
fn is_duration(token: &str) -> bool {
    for unit in ["ns", "µs", "us", "ms", "s"] {
        if let Some(prefix) = token.strip_suffix(unit) {
            if !prefix.is_empty()
                && prefix
                    .chars()
                    .all(|c| c.is_ascii_digit() || c == '.' || c == ',')
                && prefix.chars().any(|c| c.is_ascii_digit())
            {
                return true;
            }
        }
    }
    false
}

/// Normalizes a report: duration tokens become `<T>`, space runs
/// collapse, trailing whitespace is trimmed.
fn normalize(report: &str) -> String {
    let mut out = String::new();
    for line in report.lines() {
        let tokens: Vec<String> = line
            .split_whitespace()
            .map(|t| {
                if is_duration(t) {
                    "<T>".to_owned()
                } else {
                    t.to_owned()
                }
            })
            .collect();
        out.push_str(&tokens.join(" "));
        out.push('\n');
    }
    out
}

#[test]
fn table2_report_matches_the_golden_sample() {
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../docs/table2_sample_output.txt"
    );
    let golden = std::fs::read_to_string(golden_path).expect("golden sample exists");

    let output = Command::new(env!("CARGO_BIN_EXE_table2"))
        .output()
        .expect("table2 runs");
    assert!(
        output.status.success(),
        "table2 failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let actual = String::from_utf8(output.stdout).expect("utf-8 report");

    let (golden_n, actual_n) = (normalize(&golden), normalize(&actual));
    if golden_n != actual_n {
        for (i, (g, a)) in golden_n.lines().zip(actual_n.lines()).enumerate() {
            assert_eq!(
                g,
                a,
                "report line {} diverges from docs/table2_sample_output.txt \
                 (regenerate the sample if the format change is intentional)",
                i + 1
            );
        }
        panic!(
            "report length diverges: golden {} lines, actual {} lines",
            golden_n.lines().count(),
            actual_n.lines().count()
        );
    }
}

#[test]
fn normalizer_masks_durations_only() {
    assert!(is_duration("7.99ms"));
    assert!(is_duration("1.40s"));
    assert!(is_duration("22.4µs"));
    assert!(is_duration("391.2s"));
    assert!(!is_duration("s"));
    assert!(!is_duration("schemas"));
    assert!(!is_duration("4.68s,")); // trailing comma: not a bare token
    assert!(!is_duration("90"));
    assert!(!is_duration("BV-Just0"));
    assert_eq!(
        normalize("total:   3.2s  (paper: < 70 s)"),
        "total: <T> (paper: < 70 s)\n"
    );
}
