//! Golden-output test for the `--profile` report format.
//!
//! Pins `docs/profile_sample_output.txt` against
//! [`holistic_bench::trace::render_profile`] on a fixed synthetic
//! snapshot, so formatting regressions (dropped sections, renamed
//! columns, changed alignment) are caught. Duration tokens are
//! normalized to `<T>` — the sample stays valid if the duration
//! renderer changes its rounding — and space runs collapse, same
//! convention as `table2_golden.rs`.
//!
//! Regenerate after an intentional format change with:
//!
//! ```sh
//! HOLISTIC_REGEN=1 cargo test -p holistic-bench --test profile_golden
//! ```

use holistic_bench::trace::render_profile;
use holistic_obs::{Snapshot, SpanRecord};

/// Whether a token is a rendered duration (`237µs`, `12.345ms`,
/// `1.234s`).
fn is_duration(token: &str) -> bool {
    for unit in ["µs", "us", "ms", "s"] {
        if let Some(prefix) = token.strip_suffix(unit) {
            if !prefix.is_empty()
                && prefix.chars().all(|c| c.is_ascii_digit() || c == '.')
                && prefix.chars().any(|c| c.is_ascii_digit())
            {
                return true;
            }
        }
    }
    false
}

/// Duration tokens → `<T>`, space runs collapsed, lines trimmed.
fn normalize(report: &str) -> String {
    let mut out = String::new();
    for line in report.lines() {
        let tokens: Vec<String> = line
            .split_whitespace()
            .map(|t| {
                if is_duration(t) {
                    "<T>".to_owned()
                } else {
                    t.to_owned()
                }
            })
            .collect();
        out.push_str(&tokens.join(" "));
        out.push('\n');
    }
    out
}

fn span(
    id: u64,
    parent: u64,
    thread: u32,
    name: &'static str,
    label: &str,
    start_us: u64,
    dur_us: u64,
) -> SpanRecord {
    SpanRecord {
        id,
        parent,
        thread,
        name,
        label: label.to_owned(),
        start_us,
        dur_us,
    }
}

/// A miniature but structurally complete run: a root, two labeled
/// properties, nested query/solver work on two threads, counters and a
/// histogram — every section of the report renders.
fn sample() -> Snapshot {
    Snapshot {
        spans: vec![
            span(1, 0, 0, "bench.run", "", 0, 200_000),
            span(2, 1, 0, "checker.cell", "BV-Just0", 100, 120_000),
            span(3, 2, 0, "checker.query", "", 200, 119_000),
            span(4, 3, 0, "lia.check", "", 300, 40_000),
            span(5, 3, 0, "lia.check", "", 41_000, 30_000),
            span(6, 1, 0, "checker.cell", "BV-Term", 121_000, 70_000),
            span(7, 6, 0, "checker.query", "", 121_100, 69_000),
            span(8, 7, 1, "checker.worker", "", 121_200, 60_000),
            span(9, 8, 1, "lia.check", "", 122_000, 800),
        ],
        counters: vec![
            ("cache.replay_hit".to_owned(), 0),
            ("checker.cache_hits".to_owned(), 105),
            ("checker.schemas".to_owned(), 136),
            ("lia.checks".to_owned(), 3),
            ("lia.propagations".to_owned(), 75_052),
        ],
        histograms: vec![("lia.core_size".to_owned(), vec![(2, 3), (4, 1)])],
    }
}

#[test]
fn profile_report_matches_the_golden_sample() {
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../docs/profile_sample_output.txt"
    );
    let actual = normalize(&render_profile(&sample(), 205_000, 5));

    if std::env::var("HOLISTIC_REGEN").is_ok() {
        std::fs::write(golden_path, &actual).expect("write golden sample");
        eprintln!("regenerated {golden_path}");
        return;
    }

    let golden = std::fs::read_to_string(golden_path).expect("golden sample exists");
    let golden = normalize(&golden);
    if golden != actual {
        for (i, (g, a)) in golden.lines().zip(actual.lines()).enumerate() {
            assert_eq!(
                g,
                a,
                "profile line {} diverges from docs/profile_sample_output.txt \
                 (HOLISTIC_REGEN=1 regenerates if the change is intentional)",
                i + 1
            );
        }
        panic!(
            "profile length diverges: golden {} lines, actual {} lines",
            golden.lines().count(),
            actual.lines().count()
        );
    }
}

#[test]
fn sample_exercises_every_section() {
    let text = render_profile(&sample(), 205_000, 5);
    for section in [
        "root-span coverage",
        "per property (checker.cell)",
        "top spans",
        "counters",
    ] {
        assert!(text.contains(section), "missing section {section}: {text}");
    }
    // Zero-valued counters stay out of the report.
    assert!(!text.contains("cache.replay_hit"), "{text}");
}
