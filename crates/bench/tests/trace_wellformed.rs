//! Well-formedness of the `--trace` JSONL document emitted by
//! `table2_bench`.
//!
//! Runs the real binary (quick mode, one thread, bv-broadcast only) and
//! validates the structural invariants the trace format promises:
//!
//! * every line parses as a standalone JSON object, and the `meta`
//!   header's record counts match the actual line counts;
//! * every span id is unique — a span is closed exactly once;
//! * every nonzero `parent` refers to a span that exists in the trace;
//! * per thread, `start_us` is monotone in span-id order (ids encode
//!   the open order);
//! * there is exactly one root `bench.run` span and it covers at least
//!   95% of the reported wall time — the `--profile` coverage claim,
//!   checked against the raw records.

use std::collections::{HashMap, HashSet};
use std::process::Command;

use holistic_bench::json::Json;

struct Span {
    id: u64,
    parent: u64,
    thread: u64,
    name: String,
    start_us: u64,
    dur_us: u64,
}

fn field(json: &Json, key: &str) -> u64 {
    json.get(key)
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| panic!("missing numeric field {key}")) as u64
}

#[test]
fn trace_document_is_well_formed() {
    let dir = std::env::temp_dir().join(format!("holistic_trace_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let out_path = dir.join("bench.json");
    let trace_path = dir.join("trace.jsonl");

    let output = Command::new(env!("CARGO_BIN_EXE_table2_bench"))
        .args([
            "--quick",
            "--threads",
            "1",
            "--automaton",
            "bv-broadcast",
            "--out",
            out_path.to_str().unwrap(),
            "--trace",
            trace_path.to_str().unwrap(),
            "--profile",
        ])
        .output()
        .expect("table2_bench runs");
    assert!(
        output.status.success(),
        "table2_bench failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    let doc = std::fs::read_to_string(&trace_path).expect("trace written");
    let lines: Vec<&str> = doc.lines().collect();
    assert!(lines.len() > 1, "trace must have a meta line plus records");

    let mut spans: Vec<Span> = Vec::new();
    let mut counters = 0usize;
    let mut histograms = 0usize;
    let meta = Json::parse(lines[0]).expect("meta line parses");
    assert_eq!(meta.get("type").unwrap().as_str(), Some("meta"));
    assert_eq!(field(&meta, "schema_version"), 1, "trace schema version");
    let wall_us = field(&meta, "wall_us");

    for line in &lines[1..] {
        let json = Json::parse(line).unwrap_or_else(|e| panic!("unparsable line {line}: {e}"));
        match json.get("type").and_then(|t| t.as_str()) {
            Some("span") => spans.push(Span {
                id: field(&json, "id"),
                parent: field(&json, "parent"),
                thread: field(&json, "thread"),
                name: json.get("name").unwrap().as_str().unwrap().to_owned(),
                start_us: field(&json, "start_us"),
                dur_us: field(&json, "dur_us"),
            }),
            Some("counter") => counters += 1,
            Some("histogram") => histograms += 1,
            other => panic!("unknown record type {other:?} in {line}"),
        }
    }

    // The meta header's counts describe the document exactly.
    assert_eq!(field(&meta, "spans"), spans.len() as u64, "meta span count");
    assert_eq!(field(&meta, "counters"), counters as u64);
    assert_eq!(field(&meta, "histograms"), histograms as u64);

    // Closed exactly once: ids are unique.
    let ids: HashSet<u64> = spans.iter().map(|s| s.id).collect();
    assert_eq!(ids.len(), spans.len(), "duplicate span id: closed twice");

    // Every declared parent exists in the document.
    for s in &spans {
        assert!(
            s.parent == 0 || ids.contains(&s.parent),
            "span {} ({}) has dangling parent {}",
            s.id,
            s.name,
            s.parent
        );
        assert!(
            s.start_us.saturating_add(s.dur_us) <= wall_us.saturating_add(wall_us / 10),
            "span {} ({}) extends implausibly past the wall",
            s.id,
            s.name
        );
    }

    // Per thread, ids encode open order, so start_us must be monotone
    // in id order.
    let mut by_thread: HashMap<u64, Vec<&Span>> = HashMap::new();
    for s in &spans {
        by_thread.entry(s.thread).or_default().push(s);
    }
    for (thread, mut list) in by_thread {
        list.sort_by_key(|s| s.id);
        for pair in list.windows(2) {
            assert!(
                pair[0].start_us <= pair[1].start_us,
                "thread {thread}: span {} opened after {} but starts earlier",
                pair[1].id,
                pair[0].id
            );
        }
    }

    // Exactly one root, and it accounts for ≥95% of the wall time.
    let roots: Vec<&Span> = spans.iter().filter(|s| s.name == "bench.run").collect();
    assert_eq!(roots.len(), 1, "exactly one bench.run root span");
    let root = roots[0];
    assert_eq!(root.parent, 0, "the root has no parent");
    assert!(
        root.dur_us as f64 >= 0.95 * wall_us as f64,
        "root span covers {}µs of {wall_us}µs wall (< 95%)",
        root.dur_us
    );

    // The --profile report printed alongside makes the same claim.
    let stdout = String::from_utf8(output.stdout).expect("utf-8 profile");
    let coverage_line = stdout
        .lines()
        .find(|l| l.contains("root-span coverage"))
        .unwrap_or_else(|| panic!("no coverage line in profile:\n{stdout}"));
    let pct: f64 = coverage_line
        .rsplit_once("coverage ")
        .and_then(|(_, tail)| tail.trim_end_matches('%').parse().ok())
        .unwrap_or_else(|| panic!("unparsable coverage line: {coverage_line}"));
    assert!(pct >= 95.0, "profile reports {pct}% coverage (< 95%)");

    // The spans the checker actually wires must be present.
    for expected in [
        "checker.cell",
        "checker.query",
        "checker.explore",
        "lia.check",
    ] {
        assert!(
            spans.iter().any(|s| s.name == expected),
            "no {expected} span in the trace"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
