//! # holistic-checker — a parameterized model checker for threshold automata
//!
//! A from-scratch Rust rebuild of the verification pipeline the paper
//! runs through ByMC: given a threshold automaton (`holistic-ta`), an
//! LTL property (`holistic-ltl`) and a justice assumption, decide the
//! property for **every** parameter valuation admitted by the resilience
//! condition (e.g. all `n > 3t ≥ 3f ≥ 0`).
//!
//! ## Theory, in brief
//!
//! The supported class — all the paper's automata — is *increment-only,
//! DAG-shaped* threshold automata with rise guards. There:
//!
//! 1. Rise guards flip false → true at most once, so the **context**
//!    (set of unlocked guards) grows monotonically along any run, and
//!    every run factors through a monotone *context schedule*
//!    ([`enumeration`] module; implication-pruned via `holistic-lia`).
//! 2. Within a fixed context all enabled firings commute, so a run
//!    segment reorders into rule-grouped topological form with
//!    *acceleration factors*; reachability per schedule becomes a linear
//!    integer constraint system ([`Encoding`]).
//! 3. Safety properties need finitely many *witness points*, placed at
//!    schema boundaries (`assert_prop_somewhere`).
//! 4. For liveness, every infinite run of a DAG automaton stabilises;
//!    under the paper's justice ("a rule whose guard holds forever
//!    drains its source"), a fair violation is exactly a reachable
//!    *justice-consistent* tail satisfying the negated goal — provided
//!    the goal/premise propositions are **stable**, which
//!    `holistic-ltl`'s classification verifies before reducing.
//! 5. Satisfying models are **replayed** through the concrete counter
//!    system before being reported ([`Counterexample::replay`]).
//!
//! Two strategies generate schemas: [`Strategy::Enumerate`] (one SMT
//! query per schedule — yields Table 2's schema counts) and
//! [`Strategy::Monolithic`] (one query with symbolic contexts — scales
//! past schedule-lattice explosions like the paper's naive consensus
//! automaton).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod checker;
mod counterexample;
mod encode;
mod enumeration;
mod explore;
mod guards;
mod matrix;

pub use checker::{
    panic_message, ChaosConfig, CheckError, CheckReport, Checker, CheckerConfig, QueryReport,
    QueryStats, Strategy, Verdict, WORKER_PANIC_PREFIX,
};
pub use counterexample::{CeStep, Counterexample, ReplayError};
pub use encode::{Encoding, Provenance, SegmentKind, SymbolicRun};
pub use enumeration::{count_schedules, enumerate_schedules, ContextSchedule, ScheduleEnumeration};
pub use explore::{
    CorePatternSet, Exploration, ExplorationCache, ExplorationKey, ExplorationSnapshot, Pruner,
};
pub use guards::{GuardError, GuardInfo};
pub use matrix::MatrixJob;
