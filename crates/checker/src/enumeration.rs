//! Enumeration of monotone context schedules.
//!
//! A *context* is the set of unlocked rise guards (a `u64` bitmask). In
//! the increment-only class, contexts only grow along a run, so every
//! run induces a strictly increasing *schedule* `ctx₀ ⊂ ctx₁ ⊂ … ⊂ ctxₘ`
//! — the backbone of a schema (POPL'17). This module enumerates all
//! schedules, pruned by:
//!
//! * **implication closure** — contexts must be closed under the guard
//!   implication order of [`GuardInfo`](crate::GuardInfo);
//! * **initial feasibility** — `ctx₀` may only contain guards that can
//!   hold with all shared variables zero.
//!
//! Steps may unlock several guards at once (equal thresholds can be
//! crossed by a single increment, e.g. `t+1−f` and `2t+1−f` coincide at
//! `t = 0`), so schedules are chains in the closed-context lattice, not
//! just single-event paths.
//!
//! Enumeration is capped: for the paper's naive consensus automaton the
//! 14-guard lattice explodes combinatorially — reproducing the `>100 000
//! schemas / timeout` row of Table 2 — and the cap turns that into a
//! fast, explicit [`ScheduleEnumeration::capped`] signal.

use crate::guards::GuardInfo;

/// A strictly increasing sequence of implication-closed contexts,
/// starting with the (possibly empty) initial context.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ContextSchedule {
    /// The contexts, `ctx₀ ⊂ ctx₁ ⊂ …` (bitmasks over guard indices).
    pub contexts: Vec<u64>,
}

impl ContextSchedule {
    /// Number of segments a schema over this schedule has.
    pub fn num_segments(&self) -> usize {
        self.contexts.len()
    }
}

/// The outcome of schedule enumeration.
#[derive(Clone, Debug)]
pub struct ScheduleEnumeration {
    /// The schedules found (complete only if not capped).
    pub schedules: Vec<ContextSchedule>,
    /// Whether enumeration stopped at the cap.
    capped: bool,
    /// Total schedules *counted* (equals `schedules.len()` unless capped
    /// and counting continued past the cap).
    pub counted: usize,
}

impl ScheduleEnumeration {
    /// Whether the cap was hit (schedules are incomplete).
    pub fn capped(&self) -> bool {
        self.capped
    }
}

/// Enumerates every monotone schedule of closed contexts, up to `cap`.
///
/// When the cap is reached, enumeration stops early and
/// [`capped`](ScheduleEnumeration::capped) is set; callers must not
/// treat the result as exhaustive.
pub fn enumerate_schedules(info: &GuardInfo, cap: usize) -> ScheduleEnumeration {
    let full: u64 = if info.len() == 64 {
        u64::MAX
    } else {
        (1u64 << info.len()) - 1
    };

    // Initial contexts: closed subsets of the initially-possible guards.
    let mut initial_contexts = Vec::new();
    collect_closed_subsets(info, info.initially_possible, &mut initial_contexts);

    let mut out = ScheduleEnumeration {
        schedules: Vec::new(),
        capped: false,
        counted: 0,
    };
    for &start in &initial_contexts {
        let mut prefix = vec![start];
        dfs(info, full, &mut prefix, cap, &mut out);
        if out.capped {
            break;
        }
    }
    out
}

/// Counts schedules without storing them; stops at `cap`.
///
/// Unlike [`enumerate_schedules`], this never materializes a schedule
/// (the full enumeration clones a `Vec<u64>` per lattice node, which
/// for the naive-explosion demo means hundreds of thousands of
/// allocations just to read the count) — it walks the same pruned
/// lattice with a single reusable prefix and a counter.
pub fn count_schedules(info: &GuardInfo, cap: usize) -> (usize, bool) {
    let full: u64 = if info.len() == 64 {
        u64::MAX
    } else {
        (1u64 << info.len()) - 1
    };
    let mut initial_contexts = Vec::new();
    collect_closed_subsets(info, info.initially_possible, &mut initial_contexts);

    let mut counted = 0usize;
    let mut capped = false;
    for &start in &initial_contexts {
        count_dfs(info, full, start, cap, &mut counted, &mut capped);
        if capped {
            break;
        }
    }
    (counted, capped)
}

/// Allocation-free counting walk over the schedule lattice; mirrors
/// [`dfs`] exactly but only carries the current context, not the chain.
fn count_dfs(
    info: &GuardInfo,
    full: u64,
    current: u64,
    cap: usize,
    counted: &mut usize,
    capped: &mut bool,
) {
    if *counted >= cap {
        *capped = true;
        return;
    }
    *counted += 1;

    let remaining = full & !current;
    if remaining == 0 {
        return;
    }
    let mut sub = remaining;
    loop {
        let next = current | sub;
        if info.can_unlock_set(sub, current) && info.is_closed(next) {
            count_dfs(info, full, next, cap, counted, capped);
            if *capped {
                return;
            }
        }
        sub = (sub - 1) & remaining;
        if sub == 0 {
            break;
        }
    }
}

fn collect_closed_subsets(info: &GuardInfo, universe: u64, out: &mut Vec<u64>) {
    // Iterate subsets of `universe` (which is small in practice: usually
    // 0), keeping the closed ones.
    let mut sub = universe;
    loop {
        if info.is_closed(sub) {
            out.push(sub);
        }
        if sub == 0 {
            break;
        }
        sub = (sub - 1) & universe;
    }
    out.sort_unstable();
}

fn dfs(
    info: &GuardInfo,
    full: u64,
    prefix: &mut Vec<u64>,
    cap: usize,
    out: &mut ScheduleEnumeration,
) {
    if out.counted >= cap {
        out.capped = true;
        return;
    }
    out.counted += 1;
    out.schedules.push(ContextSchedule {
        contexts: prefix.clone(),
    });

    let current = *prefix.last().unwrap();
    let remaining = full & !current;
    if remaining == 0 {
        return;
    }
    // Extend by every non-empty subset of the remaining guards that
    // yields a closed context and whose members can actually unlock
    // after a segment in the current context (static dependency filter).
    let mut sub = remaining;
    loop {
        let next = current | sub;
        if info.can_unlock_set(sub, current) && info.is_closed(next) {
            prefix.push(next);
            dfs(info, full, prefix, cap, out);
            prefix.pop();
            if out.capped {
                return;
            }
        }
        sub = (sub - 1) & remaining;
        if sub == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake GuardInfo with the given implications.
    fn info(n: usize, implications: &[(usize, usize)], initially: u64) -> GuardInfo {
        let mut implies = vec![0u64; n];
        for &(g, h) in implications {
            implies[g] |= 1 << h;
        }
        GuardInfo {
            guards: Vec::new(), // not consulted by enumeration
            implies,
            initially_possible: initially,
            // Any set unconditionally unlockable.
            raisers: vec![(0, u64::MAX)],
        }
    }

    #[test]
    fn zero_guards_single_schedule() {
        let e = enumerate_schedules(&info(0, &[], 0), 1000);
        assert_eq!(e.schedules.len(), 1);
        assert_eq!(e.schedules[0].contexts, vec![0]);
        assert!(!e.capped());
    }

    #[test]
    fn one_guard() {
        let e = enumerate_schedules(&info(1, &[], 0), 1000);
        // [∅] and [∅, {g}].
        assert_eq!(e.schedules.len(), 2);
    }

    #[test]
    fn two_independent_guards() {
        let e = enumerate_schedules(&info(2, &[], 0), 1000);
        // Chains in the 4-element boolean lattice starting at ∅:
        // [∅], [∅,a], [∅,b], [∅,ab], [∅,a,ab], [∅,b,ab].
        assert_eq!(e.schedules.len(), 6);
    }

    #[test]
    fn implication_prunes() {
        // g1 implies g0: context {g1} alone is not closed.
        let e = enumerate_schedules(&info(2, &[(1, 0)], 0), 1000);
        // [∅], [∅,{g0}], [∅,{g0},{g0,g1}], [∅,{g0,g1}].
        assert_eq!(e.schedules.len(), 4);
        for s in &e.schedules {
            for &ctx in &s.contexts {
                assert!(ctx != 0b10, "non-closed context enumerated");
            }
        }
    }

    #[test]
    fn initial_context_possibilities() {
        // Guard 0 can hold initially.
        let e = enumerate_schedules(&info(2, &[], 0b01), 1000);
        // Starts: ∅ and {g0}; from ∅: 6 as before; from {g0}:
        // [{g0}], [{g0},{g0,g1}] -> 2 more.
        assert_eq!(e.schedules.len(), 8);
    }

    #[test]
    fn cap_stops_enumeration() {
        let e = enumerate_schedules(&info(6, &[], 0), 50);
        assert!(e.capped());
        assert_eq!(e.counted, 50);
    }

    #[test]
    fn schedules_are_strictly_increasing() {
        let e = enumerate_schedules(&info(3, &[(2, 1), (1, 0)], 0), 10_000);
        assert!(!e.capped());
        for s in &e.schedules {
            for w in s.contexts.windows(2) {
                assert!(w[0] & !w[1] == 0 && w[0] != w[1], "not increasing: {s:?}");
            }
        }
        // Fully ordered chain of 3: contexts ∅ ⊂ {0} ⊂ {0,1} ⊂ {0,1,2}:
        // schedules = chains starting at ∅ in a 4-chain = 2^3 = 8.
        assert_eq!(e.schedules.len(), 8);
    }

    #[test]
    fn count_agrees_with_enumeration() {
        for (n, implications, initially) in [
            (0, &[][..], 0u64),
            (1, &[][..], 0),
            (2, &[][..], 0),
            (2, &[(1, 0)][..], 0),
            (2, &[][..], 0b01),
            (3, &[(2, 1), (1, 0)][..], 0),
            (6, &[][..], 0),
        ] {
            let i = info(n, implications, initially);
            let e = enumerate_schedules(&i, 1_000_000);
            let (counted, capped) = count_schedules(&i, 1_000_000);
            assert_eq!(counted, e.counted, "n={n}");
            assert_eq!(capped, e.capped(), "n={n}");
        }
    }

    #[test]
    fn count_respects_the_cap() {
        let i = info(6, &[], 0);
        let (counted, capped) = count_schedules(&i, 50);
        assert!(capped);
        assert_eq!(counted, 50);
    }

    #[test]
    fn simultaneous_unlock_steps_are_included() {
        let e = enumerate_schedules(&info(2, &[], 0), 1000);
        assert!(
            e.schedules.iter().any(|s| s.contexts == vec![0b00, 0b11]),
            "missing the double unlock"
        );
    }
}
