//! Cross-property matrix scheduler.
//!
//! A verification *matrix* (the paper's Table 2) checks many properties
//! over a few automata. Intra-property parallelism runs dry quickly —
//! most properties replay or prune from the exploration cache and
//! finish in milliseconds, while the two dominant simplified-consensus
//! properties dominate the tail. This module schedules *whole
//! properties* as tasks on a small work-stealing pool: idle workers
//! pull the next unstarted property, so `Inv1_0` and `SRoundTerm`
//! overlap instead of serializing.
//!
//! Safe to share: the [`ExplorationCache`](crate::ExplorationCache) is
//! lock-striped, and feasibility verdicts are cache-*independent* — a
//! property's verdict, schema count, and counterexample are identical
//! whether its exploration was replayed, pruned, or fresh. Scheduling
//! therefore affects only wall time and cache-hit counters, never
//! results; `tests/exploration_equivalence.rs` pins this.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use holistic_lia::SolverStats;
use holistic_ltl::{Justice, Ltl};
use holistic_ta::ThresholdAutomaton;

use crate::checker::{
    panic_message, CheckError, CheckReport, Checker, QueryReport, QueryStats, Verdict,
    WORKER_PANIC_PREFIX,
};

/// One cell of the verification matrix: a property of one automaton
/// under one justice assumption.
pub struct MatrixJob<'a> {
    /// The automaton to check.
    pub ta: &'a ThresholdAutomaton,
    /// The LTL property.
    pub spec: &'a Ltl,
    /// The justice assumption for liveness reduction.
    pub justice: &'a Justice,
    /// Human-readable cell name (the property label). Only used as the
    /// label of the cell's `checker.cell` tracing span, so `--profile`
    /// can attribute time per property; empty is fine.
    pub label: &'a str,
}

impl Checker {
    /// Checks every job of the matrix, running up to `workers` whole
    /// properties concurrently, and returns the reports in job order
    /// (deterministic regardless of completion order).
    ///
    /// `workers <= 1` degenerates to the inline sequential walk — byte
    /// for byte the same behavior as calling
    /// [`check_ltl`](Checker::check_ltl) in a loop.
    pub fn check_matrix(
        &self,
        jobs: &[MatrixJob<'_>],
        workers: usize,
    ) -> Vec<Result<CheckReport, CheckError>> {
        let n = jobs.len();
        let workers = workers.min(n);
        if workers <= 1 {
            return jobs.iter().map(|j| self.check_cell(j)).collect();
        }
        let results: Vec<Mutex<Option<Result<CheckReport, CheckError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        // Matrix workers are detached threads; parent their cell spans
        // under whatever span the caller currently has open.
        let parent = holistic_obs::current();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let _adopt = holistic_obs::adopt(parent);
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= n {
                        break;
                    }
                    let r = self.check_cell(&jobs[i]);
                    *results[i].lock().unwrap() = Some(r);
                });
            }
        });
        results
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("every job slot is filled"))
            .collect()
    }

    /// Checks one matrix cell with panic isolation: a panic anywhere in
    /// the cell's exploration (including inside the intra-property DFS
    /// pool) is translated into a per-cell
    /// `Verdict::Unknown("worker panic: ...")` report instead of
    /// aborting the whole matrix run.
    pub fn check_cell(&self, job: &MatrixJob<'_>) -> Result<CheckReport, CheckError> {
        let _span = holistic_obs::span_labeled("checker.cell", job.label);
        let start = Instant::now();
        match catch_unwind(AssertUnwindSafe(|| {
            self.check_ltl(job.ta, job.spec, job.justice)
        })) {
            Ok(r) => r,
            Err(payload) => Ok(panicked_report(
                panic_message(payload.as_ref()),
                start.elapsed(),
            )),
        }
    }
}

/// A synthetic report for a cell whose worker panicked: one query with
/// an `Unknown` verdict carrying the panic message and zeroed stats.
fn panicked_report(message: String, duration: Duration) -> CheckReport {
    CheckReport {
        queries: vec![QueryReport {
            verdict: Verdict::Unknown(format!("{WORKER_PANIC_PREFIX}: {message}")),
            stats: QueryStats {
                schemas: 0,
                avg_segments: 0.0,
                duration,
                capped: false,
                timed_out: false,
                strategy: crate::checker::Strategy::Auto,
                solver: SolverStats::default(),
                cache_hits: 0,
                cache_misses: 0,
                replayed: false,
                cores_learned: 0,
                schemas_pruned_by_core: 0,
                threads: 1,
            },
        }],
        duration,
    }
}
